"""Unit tests for the fault-injection plan, runtime, and injectors."""

import numpy as np
import pytest

from repro.faults import (
    ActiveFaults,
    CirSaturation,
    ClockDriftRamp,
    FaultContext,
    FaultInjector,
    FaultPlan,
    ImpulsiveInterference,
    NlosOnset,
    PollLoss,
    ReplyJitter,
    ResponderDropout,
)


class TestFaultPlan:
    def test_empty_plan(self):
        plan = FaultPlan([], seed=7)
        assert plan.is_empty
        assert len(plan) == 0
        assert plan.describe() == "FaultPlan(empty)"

    def test_rejects_non_injectors(self):
        with pytest.raises(TypeError):
            FaultPlan([object()], seed=0)

    def test_with_seed_keeps_injectors(self):
        plan = FaultPlan([ResponderDropout(0.5)], seed=1)
        reseeded = plan.with_seed((1, 42))
        assert reseeded.injectors == plan.injectors
        assert reseeded.seed == (1, 42)

    def test_describe_names_injectors(self):
        plan = FaultPlan([ResponderDropout(0.5), PollLoss(0.1)], seed=3)
        text = plan.describe()
        assert "dropout" in text
        assert "poll_loss" in text

    def test_tuple_seeds_accepted(self):
        # Trial functions derive fault entropy from (base_seed, index);
        # SeedSequence must accept the tuple directly (hash() would break
        # serial == parallel under PYTHONHASHSEED randomisation).
        active = FaultPlan([ResponderDropout(0.5)], seed=(9, 3)).activate()
        assert isinstance(active, ActiveFaults)


class TestActiveFaultsDeterminism:
    def _decisions(self, seed, n=64):
        active = FaultPlan([ResponderDropout(0.5)], seed=seed).activate()
        ctx = FaultContext()
        return [active.responder_dropped(ctx, rid) for rid in range(n)]

    def test_same_seed_same_decisions(self):
        assert self._decisions(11) == self._decisions(11)

    def test_different_seed_different_decisions(self):
        assert self._decisions(11) != self._decisions(12)

    def test_per_injector_streams_are_independent(self):
        """Adding an injector must not shift another injector's stream."""
        ctx = FaultContext()
        alone = FaultPlan([ResponderDropout(0.5)], seed=5).activate()
        first_alone = [
            alone.responder_dropped(ctx, rid) for rid in range(32)
        ]
        combined = FaultPlan(
            [ResponderDropout(0.5), PollLoss(0.5)], seed=5
        ).activate()
        first_combined = []
        for rid in range(32):
            first_combined.append(
                combined.plan.injectors[0].drops_response(
                    ctx, rid, combined._rngs[0]
                )
            )
        assert first_alone == first_combined


class TestBookkeeping:
    def test_counts_and_round_events(self):
        active = FaultPlan(
            [ResponderDropout(1.0, responder_ids=[2])], seed=0
        ).activate()
        ctx = FaultContext()
        active.begin_round(ctx)
        assert not active.responder_dropped(ctx, 1)
        assert active.responder_dropped(ctx, 2)
        assert active.counts == {"dropout": 1}
        assert active.round_events == [(2, "dropout")]
        assert active.events_for(2) == ("dropout",)
        assert active.events_for(1) == ()
        assert active.total_injected == 1

    def test_begin_round_resets_events_not_counts(self):
        active = FaultPlan([ResponderDropout(1.0)], seed=0).activate()
        ctx = FaultContext()
        active.begin_round(ctx)
        active.responder_dropped(ctx, 1)
        active.begin_round(FaultContext(round_index=1))
        assert active.round_events == []
        assert active.counts == {"dropout": 1}

    def test_no_transform_injectors_means_none_seams(self):
        active = FaultPlan([ResponderDropout(0.5)], seed=0).activate()
        ctx = FaultContext()
        assert active.channel_transform(ctx) is None
        assert active.cir_transform(ctx) is None


class TestInjectorValidation:
    def test_dropout_probability_bounds(self):
        with pytest.raises(ValueError):
            ResponderDropout(1.5)
        with pytest.raises(ValueError):
            ResponderDropout(-0.1)

    def test_empty_responder_ids_rejected(self):
        with pytest.raises(ValueError):
            ResponderDropout(0.5, responder_ids=[])

    def test_reply_jitter_noop_config_rejected(self):
        with pytest.raises(ValueError):
            ReplyJitter()
        with pytest.raises(ValueError):
            ReplyJitter(std_s=-1e-9)

    def test_drift_ramp_validation(self):
        with pytest.raises(ValueError):
            ClockDriftRamp(0.0)
        with pytest.raises(ValueError):
            ClockDriftRamp(1.0, max_ppm=0.0)

    def test_interference_validation(self):
        with pytest.raises(ValueError):
            ImpulsiveInterference(amplitude_scale=0.0)
        with pytest.raises(ValueError):
            ImpulsiveInterference(n_bursts=0)

    def test_saturation_validation(self):
        with pytest.raises(ValueError):
            CirSaturation(0.0)
        with pytest.raises(ValueError):
            CirSaturation(1.5)

    def test_nlos_onset_validation(self):
        with pytest.raises(ValueError):
            NlosOnset(onset_round=-1)
        with pytest.raises(ValueError):
            NlosOnset(attenuation=-0.5)


class TestInjectorBehaviour:
    def test_drift_ramp_grows_and_clips(self):
        injector = ClockDriftRamp(10.0, max_ppm=25.0)
        rng = np.random.default_rng(0)
        ramp = [
            injector.clock_drift_offset_ppm(
                FaultContext(round_index=r), 1, rng
            )
            for r in range(5)
        ]
        assert ramp == [0.0, 10.0, 20.0, 25.0, 25.0]

    def test_reply_jitter_spike_applies(self):
        injector = ReplyJitter(spike_probability=1.0, spike_s=3e-9)
        rng = np.random.default_rng(0)
        offset = injector.reply_delay_offset_s(FaultContext(), 1, rng)
        assert offset == pytest.approx(3e-9)

    def test_interference_adds_energy_without_mutating_input(self):
        injector = ImpulsiveInterference(amplitude_scale=2.0, n_bursts=2)
        samples = np.zeros(64, dtype=complex)
        samples[10] = 1.0
        original = samples.copy()
        rng = np.random.default_rng(3)
        out = injector.transform_cir(FaultContext(), samples, 0.0, rng)
        assert out is not samples
        assert np.array_equal(samples, original)
        assert np.sum(np.abs(out)) > np.sum(np.abs(samples))

    def test_saturation_caps_magnitudes(self):
        injector = CirSaturation(0.5)
        samples = np.array([1.0 + 0j, 0.2 + 0j, 0.6j])
        out = injector.transform_cir(
            FaultContext(), samples, 0.0, np.random.default_rng(0)
        )
        limit = 0.5 * 1.0
        assert np.all(np.abs(out) <= limit + 1e-12)
        # Phase (sign/direction) is preserved.
        assert out[2].real == pytest.approx(0.0)
        assert out[2].imag > 0

    def test_saturation_unity_is_identity(self):
        injector = CirSaturation(1.0)
        samples = np.array([1.0 + 0j, 0.2 + 0j])
        out = injector.transform_cir(
            FaultContext(), samples, 0.0, np.random.default_rng(0)
        )
        assert out is samples

    def test_nlos_pre_onset_is_identity(self):
        from repro.channel.cir import ChannelRealization, ChannelTap

        channel = ChannelRealization(
            [
                ChannelTap(delay_s=1e-8, amplitude=1e-3, kind="los", order=0),
                ChannelTap(delay_s=2e-8, amplitude=5e-4, kind="reflection"),
            ]
        )
        injector = NlosOnset(onset_round=3)
        rng = np.random.default_rng(0)
        same = injector.transform_channel(
            FaultContext(round_index=1), 0, 1, channel, rng
        )
        assert same is channel
        changed = injector.transform_channel(
            FaultContext(round_index=3), 0, 1, channel, rng
        )
        assert changed is not channel
        assert changed.los_tap is None

    def test_nlos_keeps_channel_when_los_is_only_tap(self):
        from repro.channel.cir import ChannelRealization, ChannelTap

        channel = ChannelRealization(
            [ChannelTap(delay_s=1e-8, amplitude=1e-3, kind="los", order=0)]
        )
        injector = NlosOnset(onset_round=0)
        same = injector.transform_channel(
            FaultContext(), 0, 1, channel, np.random.default_rng(0)
        )
        assert same is channel


class TestComposedTransforms:
    def test_channel_transform_counts_only_real_changes(self):
        from repro.channel.cir import ChannelRealization, ChannelTap

        nlos = ChannelRealization(
            [ChannelTap(delay_s=2e-8, amplitude=5e-4, kind="reflection")]
        )
        active = FaultPlan([NlosOnset(onset_round=0)], seed=0).activate()
        transform = active.channel_transform(FaultContext())
        assert transform is not None
        # A channel without a LOS tap passes through untouched — and is
        # not counted as an injected fault.
        assert transform(0, 1, nlos) is nlos
        assert active.total_injected == 0

    def test_cir_transform_composes_in_order(self):
        """Interference then saturation: the burst must be clipped."""
        active = FaultPlan(
            [
                ImpulsiveInterference(amplitude_scale=5.0, n_bursts=1),
                CirSaturation(0.5),
            ],
            seed=4,
        ).activate()
        transform = active.cir_transform(FaultContext())
        samples = np.zeros(128, dtype=complex)
        samples[20] = 1.0
        out = transform(samples, 1e-6)
        peak = float(np.max(np.abs(out)))
        assert np.all(np.abs(out) <= 0.5 * 5.0 + 1e-9)
        assert active.counts["interference"] == 1
        assert active.counts["saturation"] == 1
        assert peak > 0


class TestBaseInjector:
    def test_all_hooks_are_pass_through(self):
        injector = FaultInjector()
        ctx = FaultContext()
        rng = np.random.default_rng(0)
        assert injector.drops_init(ctx, 1, rng) is False
        assert injector.drops_response(ctx, 1, rng) is False
        assert injector.reply_delay_offset_s(ctx, 1, rng) == 0.0
        assert injector.clock_drift_offset_ppm(ctx, 1, rng) == 0.0
        sentinel = object()
        assert injector.transform_channel(ctx, 0, 1, sentinel, rng) is sentinel
        samples = np.zeros(4, dtype=complex)
        assert injector.transform_cir(ctx, samples, 0.0, rng) is samples
