"""Differential test harness for the many-agent swarm path.

The contracts pinned here:

* **Shard invariance** — ``shards=1`` and ``shards=K`` produce
  byte-identical event streams and digests (the tentpole guarantee of
  the sharded event loop).
* **Batched == serial** — routing classification through
  :func:`classify_batch` or the serial classifier changes nothing.
* **Seed determinism** — same seed, same bytes; different seed,
  different bytes.
* **Scheme extensions** — anchor-slot decoding and persistent
  ``scheme_ids`` keep every legacy default byte-identical.
* **Capacity-stress dispatch** — counts <= capacity still run the
  historical static path byte-for-byte; counts above it delegate to
  the swarm medium.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.detection import DetectedResponse
from repro.core.pulse_id import ClassifiedResponse
from repro.core.rpm import SlotPlan
from repro.core.scheme import CombinedScheme
from repro.netsim.swarm import MobilityTrace, SwarmConfig, SwarmScenario
from repro.signal.templates import TemplateBank

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


def tiny_config(**overrides) -> SwarmConfig:
    """A fast scenario: small scheme, narrow window, light upsampling."""
    params = dict(
        n_responders=14,
        n_initiators=2,
        n_concurrent=2,
        n_slots=8,
        n_shapes=8,
        window=6,
        upsample_factor=2,
    )
    params.update(overrides)
    return SwarmConfig(**params)


class TestShardInvariance:
    def test_serial_equals_sharded_events_and_digest(self):
        runs = {
            shards: SwarmScenario(tiny_config(), seed=3, shards=shards).run(3)
            for shards in (1, 3)
        }
        assert runs[1].events == runs[3].events
        assert runs[1].digest() == runs[3].digest()

    def test_many_shard_counts_agree(self):
        digests = {
            SwarmScenario(tiny_config(), seed=9, shards=shards)
            .run(2)
            .digest()
            for shards in (1, 2, 5, 8)
        }
        assert len(digests) == 1

    def test_all_deterministic_fields_match(self):
        a = SwarmScenario(tiny_config(), seed=4, shards=1).run(3)
        b = SwarmScenario(tiny_config(), seed=4, shards=4).run(3)
        assert a.rounds == b.rounds
        assert a.polled == b.polled
        assert a.identified == b.identified
        assert a.ambiguous == b.ambiguous
        assert a.errors_m == b.errors_m
        assert a.fix_errors_m == b.fix_errors_m
        assert a.track_errors_m == b.track_errors_m
        assert a.coverage == b.coverage


class TestBatchedEqualsSerial:
    def test_batched_classifier_matches_serial(self):
        batched = SwarmScenario(
            tiny_config(serial_classifier=False), seed=5, shards=1
        ).run(3)
        serial = SwarmScenario(
            tiny_config(serial_classifier=True), seed=5, shards=1
        ).run(3)
        assert batched.events == serial.events
        assert batched.digest() == serial.digest()

    def test_batched_sharded_matches_serial_unsharded(self):
        batched = SwarmScenario(
            tiny_config(serial_classifier=False, batch_size=3),
            seed=6,
            shards=3,
        ).run(2)
        serial = SwarmScenario(
            tiny_config(serial_classifier=True), seed=6, shards=1
        ).run(2)
        assert batched.digest() == serial.digest()


class TestSeedDeterminism:
    def test_same_seed_same_bytes(self):
        a = SwarmScenario(tiny_config(), seed=11, shards=2).run(2)
        b = SwarmScenario(tiny_config(), seed=11, shards=2).run(2)
        assert a.digest() == b.digest()

    def test_different_seed_different_bytes(self):
        a = SwarmScenario(tiny_config(), seed=11, shards=1).run(2)
        b = SwarmScenario(tiny_config(), seed=12, shards=1).run(2)
        assert a.digest() != b.digest()

    def test_digest_ignores_wall_clock(self):
        import dataclasses

        result = SwarmScenario(tiny_config(), seed=13, shards=1).run(1)
        clone = dataclasses.replace(result, elapsed_s=result.elapsed_s * 7 + 1)
        assert result.digest() == clone.digest()

    def test_mobility_trace_is_stream_deterministic(self):
        traces = [
            MobilityTrace(np.random.default_rng(21), arena_m=10.0, speed_mps=1.0)
            for _ in range(2)
        ]
        for trace in traces:
            for _ in range(5):
                trace.step(0.25)
        assert traces[0].position == traces[1].position


class TestSwarmScaleExperiment:
    def test_workers_invariance(self):
        from repro.experiments import swarm_scale

        kwargs = dict(trials=2, seed=71, counts=(12, 30))
        serial = swarm_scale.run(workers=1, **kwargs)
        parallel = swarm_scale.run(workers=2, **kwargs)
        assert serial.as_dict() == parallel.as_dict()

    def test_shards_invariance(self):
        from repro.experiments import swarm_scale

        kwargs = dict(trials=2, seed=71, counts=(12, 30))
        assert (
            swarm_scale.run(shards=1, **kwargs).as_dict()
            == swarm_scale.run(shards=3, **kwargs).as_dict()
        )

    def test_capacity_metric_covers_the_claim(self):
        from repro.experiments import swarm_scale

        result = swarm_scale.run(trials=1, seed=71, counts=(12,))
        capacity = result.metric("scheme_capacity")
        assert capacity.measured >= capacity.paper == 1500.0


class TestSchemeExtensions:
    @staticmethod
    def _scheme(n_slots=8, n_shapes=3):
        return CombinedScheme(
            SlotPlan.for_range(20.0, n_slots=n_slots),
            TemplateBank.paper_bank(n_shapes),
        )

    @staticmethod
    def _response(delay_s, shape_index):
        return ClassifiedResponse(
            response=DetectedResponse(
                index=delay_s / 1e-9, delay_s=delay_s, amplitude=1.0 + 0j
            ),
            shape_index=shape_index,
            confidence=2.0,
        )

    def test_anchor_slot_shifts_decoded_ids(self):
        scheme = self._scheme()
        slot = scheme.slot_plan.slot_duration_s
        classified = [
            self._response(0.0, 1),
            self._response(2 * slot, 2),
        ]
        plain = scheme.decode_responses(classified, d_twr_m=5.0)
        shifted = scheme.decode_responses(
            classified, d_twr_m=5.0, anchor_slot=3
        )
        assert plain.responder_ids == (
            scheme.decode_id(0, 1),
            scheme.decode_id(2, 2),
        )
        assert shifted.responder_ids == (
            scheme.decode_id(3, 1),
            scheme.decode_id(5, 2),
        )
        # Distances depend only on residuals, never on the slot shift.
        assert plain.distances_m == shifted.distances_m

    def test_anchor_slot_zero_is_the_default_byte_for_byte(self):
        scheme = self._scheme()
        slot = scheme.slot_plan.slot_duration_s
        classified = [
            self._response(0.3e-9, 0),
            self._response(slot + 0.1e-9, 2),
            self._response(3 * slot - 0.2e-9, 1),
        ]
        default = scheme.decode_responses(classified, d_twr_m=4.0)
        explicit = scheme.decode_responses(
            classified, d_twr_m=4.0, anchor_slot=0
        )
        assert default == explicit

    def test_anchor_slot_clamps_relative_slots_to_capacity(self):
        scheme = self._scheme()
        slot = scheme.slot_plan.slot_duration_s
        classified = [
            self._response(0.0, 0),
            self._response(6 * slot, 1),
        ]
        decoded = scheme.decode_responses(
            classified, d_twr_m=2.0, anchor_slot=5
        )
        # 5 + 6 would overflow the 8-slot plan; the relative offset is
        # clamped so the decoded slot stays valid.
        assert decoded.responder_ids[1] == scheme.decode_id(7, 1)

    def test_anchor_slot_out_of_range_raises(self):
        scheme = self._scheme()
        with pytest.raises(ValueError, match="anchor slot"):
            scheme.decode_responses([], d_twr_m=1.0, anchor_slot=8)

    def test_session_scheme_ids_validation(self):
        from repro.channel.stochastic import IndoorEnvironment
        from repro.netsim.medium import Medium
        from repro.netsim.node import Node
        from repro.protocol.concurrent import ConcurrentRangingSession

        rng = np.random.default_rng(0)
        medium = Medium(environment=IndoorEnvironment.office(), rng=rng)
        initiator = Node.at(0, 0.0, 0.0, rng=rng)
        responders = [
            Node.at(i + 1, 1.0 + i, 0.0, rng=rng) for i in range(3)
        ]
        medium.add_nodes([initiator] + responders)
        scheme = self._scheme()
        with pytest.raises(ValueError, match="scheme_ids"):
            ConcurrentRangingSession(
                medium=medium,
                initiator=initiator,
                responders=responders,
                scheme=scheme,
                rng=rng,
                scheme_ids=[1, 2],  # wrong length
            )
        with pytest.raises(ValueError, match="non-negative"):
            ConcurrentRangingSession(
                medium=medium,
                initiator=initiator,
                responders=responders,
                scheme=scheme,
                rng=rng,
                scheme_ids=[1, -2, 3],  # negative identity
            )


class TestCapacityStressDispatch:
    def test_static_counts_byte_identical_to_legacy_path(self):
        """Counts <= capacity reproduce the direct static computation."""
        from repro.experiments import capacity_stress

        result = capacity_stress.run(trials=2, seed=5)
        for name, count in (
            ("id_rate_2", 2),
            ("id_rate_9", 9),
            ("id_rate_12_full", 12),
        ):
            direct = capacity_stress._identification_rate(count, 2, 5 + count)
            assert result.metric(name).measured == direct

    def test_oversubscribed_counts_delegate_to_swarm(self, monkeypatch):
        from repro.experiments import capacity_stress

        calls = []
        real = capacity_stress._swarm_identification_rate

        def spy(count, trials, seed):
            calls.append(count)
            return real(count, trials, seed)

        monkeypatch.setattr(
            capacity_stress, "_swarm_identification_rate", spy
        )
        result = capacity_stress.run(trials=1, seed=5)
        assert sorted(calls) == sorted(capacity_stress.SWARM_COUNTS)
        for count in capacity_stress.SWARM_COUNTS:
            rate = result.metric(f"id_rate_{count}_swarm").measured
            assert 0.0 <= rate <= 1.0

    def test_static_path_never_sees_oversubscribed_counts(self, monkeypatch):
        from repro.experiments import capacity_stress

        seen = []
        real = capacity_stress._identification_rate

        def spy(count, trials, seed):
            seen.append(count)
            return real(count, trials, seed)

        monkeypatch.setattr(capacity_stress, "_identification_rate", spy)
        capacity_stress.run(trials=1, seed=5)
        assert max(seen) <= capacity_stress.N_SLOTS * capacity_stress.N_SHAPES


class TestSwarmProperties:
    @settings(max_examples=6, deadline=None)
    @given(
        n=st.integers(min_value=5, max_value=25),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        shards=st.integers(min_value=2, max_value=4),
    )
    def test_shard_invariance_property(self, n, seed, shards):
        config = tiny_config(n_responders=n)
        a = SwarmScenario(config, seed=seed, shards=1).run(2)
        b = SwarmScenario(config, seed=seed, shards=shards).run(2)
        assert a.events == b.events
        assert a.digest() == b.digest()

    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_counters_are_consistent(self, seed):
        result = SwarmScenario(tiny_config(), seed=seed, shards=2).run(2)
        assert result.identified + result.ambiguous <= result.polled
        assert len(result.errors_m) == result.identified
        assert 0.0 <= result.coverage <= 1.0
        assert result.n_epochs == 2
