"""Smoke tests: every example script runs end to end.

The examples double as integration tests of the public API: each one is
imported and its ``main()`` executed with stdout captured.  Assertions
check the deliverable each example promises, not exact numbers.
"""

import importlib.util
import sys
from pathlib import Path


EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart", capsys)
        assert "Anchor distance" in out
        assert out.count("OK") >= 2  # most responders identified

    def test_museum_localization(self, capsys):
        out = run_example("museum_localization", capsys)
        assert "median error" in out
        assert "messages per fix: 2" in out

    def test_warehouse_scalability(self, capsys):
        out = run_example("warehouse_scalability", capsys)
        assert "identified" in out
        assert "50x" in out

    def test_overlap_stress(self, capsys):
        out = run_example("overlap_stress", capsys)
        assert "search&subtract" in out
        assert "92.6" in out  # the paper reference line

    def test_record_and_replay(self, capsys):
        out = run_example("record_and_replay", capsys)
        assert "recorded 25 captures" in out
        assert "offline analysis" in out

    def test_cooperative_swarm(self, capsys):
        out = run_example("cooperative_swarm", capsys)
        assert "robot 10" in out and "robot 11" in out
        assert "rms residual" in out
