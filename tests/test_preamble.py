"""Unit tests for the preamble-code accumulator model."""

import numpy as np
import pytest

from repro.radio.preamble import (
    CODE_LENGTH_PRF16,
    CODE_LENGTH_PRF64,
    estimate_cir_from_preamble,
    m_sequence,
    periodic_autocorrelation,
    preamble_code,
)


class TestMSequence:
    def test_lengths(self):
        assert len(m_sequence(5)) == 31
        assert len(m_sequence(7)) == 127

    def test_binary_levels(self):
        code = m_sequence(7)
        assert set(np.unique(code)) == {-1.0, 1.0}

    def test_balance(self):
        """An m-sequence has one more +1 than -1 (or vice versa)."""
        assert abs(np.sum(m_sequence(7))) == 1

    def test_two_valued_autocorrelation(self):
        """Periodic autocorrelation is N at lag 0 and -1 elsewhere —
        the property that turns correlation into channel estimation."""
        code = m_sequence(7)
        autocorr = periodic_autocorrelation(code)
        assert autocorr[0] == pytest.approx(127.0)
        assert np.allclose(autocorr[1:], -1.0, atol=1e-9)

    def test_seed_is_cyclic_shift(self):
        a = m_sequence(7, seed=1)
        b = m_sequence(7, seed=5)
        found = any(
            np.array_equal(np.roll(a, shift), b) for shift in range(127)
        )
        assert found

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            m_sequence(6)

    def test_invalid_seed(self):
        with pytest.raises(ValueError):
            m_sequence(7, seed=0)


class TestPreambleCode:
    def test_standard_lengths(self):
        assert len(preamble_code(CODE_LENGTH_PRF16)) == 31
        assert len(preamble_code(CODE_LENGTH_PRF64)) == 127

    def test_other_length_rejected(self):
        with pytest.raises(ValueError):
            preamble_code(63)


class TestAccumulator:
    def _channel(self):
        taps = np.zeros(20, dtype=complex)
        taps[3] = 1.0
        taps[7] = 0.4 * np.exp(1j * 1.0)
        taps[12] = 0.2 * np.exp(1j * 2.5)
        return taps

    def test_recovers_channel_noiseless(self, rng):
        code = preamble_code(127)
        result = estimate_cir_from_preamble(
            self._channel(), code, n_symbols=4, noise_std=0.0, rng=rng
        )
        # Output = N*h - sum(h) bias from the -1 floor; normalise by N.
        estimate = result.cir / 127.0
        assert abs(estimate[3]) == pytest.approx(1.0, abs=0.02)
        assert abs(estimate[7]) == pytest.approx(0.4, abs=0.02)
        assert abs(estimate[12]) == pytest.approx(0.2, abs=0.02)
        # Taps without channel content stay at the tiny -1/N floor.
        assert abs(estimate[50]) < 0.03

    def test_accumulation_gain(self, rng):
        """Noise on the estimate drops like sqrt(n_symbols) — the PSR
        gain the DW1000 model applies analytically."""
        code = preamble_code(127)
        channel = self._channel()

        def residual_noise(n_symbols: int) -> float:
            result = estimate_cir_from_preamble(
                channel, code, n_symbols, noise_std=1.0, rng=rng
            )
            # Look at channel-free taps only.
            return float(np.std(np.abs(result.cir[30:100])))

        few = np.mean([residual_noise(8) for _ in range(5)])
        many = np.mean([residual_noise(128) for _ in range(5)])
        assert few / many == pytest.approx(np.sqrt(128 / 8), rel=0.35)

    def test_superposition_of_two_transmitters(self, rng):
        """Two responders with the same code superpose linearly in the
        accumulator — the physical basis of concurrent ranging."""
        code = preamble_code(127)
        h1 = np.zeros(30, dtype=complex)
        h1[5] = 1.0
        h2 = np.zeros(30, dtype=complex)
        h2[20] = 0.7
        combined = estimate_cir_from_preamble(
            h1 + h2, code, 16, noise_std=0.0, rng=rng
        )
        separate1 = estimate_cir_from_preamble(h1, code, 16, 0.0, rng)
        separate2 = estimate_cir_from_preamble(h2, code, 16, 0.0, rng)
        assert np.allclose(
            combined.cir, separate1.cir + separate2.cir, atol=1e-9
        )

    def test_channel_too_long_rejected(self, rng):
        code = preamble_code(31)
        with pytest.raises(ValueError):
            estimate_cir_from_preamble(
                np.zeros(64, dtype=complex), code, 4, 0.0, rng
            )
