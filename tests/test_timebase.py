"""Unit tests for repro.radio.timebase."""

import pytest

from repro.constants import (
    DW1000_DELAYED_TX_RESOLUTION_S,
    DW1000_TIMESTAMP_RESOLUTION_S,
)
from repro.radio.timebase import (
    Clock,
    quantize_delayed_tx_s,
    quantize_timestamp_s,
    seconds_to_ticks,
    ticks_to_seconds,
)


class TestTickConversion:
    def test_roundtrip(self):
        t = 123.456e-6
        assert ticks_to_seconds(seconds_to_ticks(t)) == pytest.approx(
            t, abs=DW1000_TIMESTAMP_RESOLUTION_S
        )

    def test_one_tick_is_15_65ps(self):
        assert ticks_to_seconds(1) == pytest.approx(15.65e-12, rel=1e-3)


class TestTimestampQuantization:
    def test_idempotent(self):
        t = quantize_timestamp_s(1.0000000001234)
        assert quantize_timestamp_s(t) == pytest.approx(t, abs=1e-15)

    def test_error_below_resolution(self):
        for t in (0.0, 1e-6, 0.5, 0.123456789):
            assert abs(quantize_timestamp_s(t) - t) <= DW1000_TIMESTAMP_RESOLUTION_S


class TestDelayedTxQuantization:
    def test_grid_is_8ns(self):
        assert DW1000_DELAYED_TX_RESOLUTION_S == pytest.approx(8.01e-9, rel=1e-2)

    def test_floors_to_grid(self):
        """The DW1000 ignores low bits, so the actual TX time is never
        later than programmed — and at most ~8 ns earlier."""
        for t in (290e-6, 1.2345e-3, 17.0):
            q = quantize_delayed_tx_s(t)
            assert q <= t + 1e-15
            assert t - q < DW1000_DELAYED_TX_RESOLUTION_S

    def test_grid_points_fixed(self):
        q = quantize_delayed_tx_s(100e-6)
        assert quantize_delayed_tx_s(q) == pytest.approx(q, abs=1e-15)

    def test_coarser_than_timestamp_grid(self):
        t = 123.456789e-6
        tx = quantize_delayed_tx_s(t)
        ts = quantize_timestamp_s(t)
        assert abs(t - tx) >= 0
        assert abs(t - ts) <= abs(t - tx) + 1e-15


class TestClock:
    def test_ideal_clock_identity(self):
        clock = Clock()
        assert clock.local_from_global(1.5) == pytest.approx(1.5)
        assert clock.global_from_local(1.5) == pytest.approx(1.5)

    def test_roundtrip(self):
        clock = Clock(drift_ppm=3.7, offset_s=0.42)
        t = 123.456
        assert clock.global_from_local(clock.local_from_global(t)) == pytest.approx(t)

    def test_drift_scales_durations(self):
        clock = Clock(drift_ppm=10.0)
        # A 1 s global duration appears 10 us longer locally.
        assert clock.local_duration(1.0) == pytest.approx(1.0 + 10e-6)
        assert clock.global_duration(1.0 + 10e-6) == pytest.approx(1.0)

    def test_relative_drift(self):
        a = Clock(drift_ppm=5.0)
        b = Clock(drift_ppm=-5.0)
        assert a.relative_drift_ppm(b) == pytest.approx(10.0, rel=1e-4)
        assert b.relative_drift_ppm(a) == pytest.approx(-10.0, rel=1e-4)

    def test_relative_drift_self_is_zero(self):
        clock = Clock(drift_ppm=2.0)
        assert clock.relative_drift_ppm(clock) == pytest.approx(0.0)

    def test_random_within_range(self, rng):
        for _ in range(20):
            clock = Clock.random(rng, drift_ppm_range=2.0)
            assert abs(clock.drift_ppm) <= 2.0

    def test_offset_affects_phase_not_rate(self):
        clock = Clock(drift_ppm=0.0, offset_s=10.0)
        assert clock.local_from_global(0.0) == pytest.approx(10.0)
        assert clock.local_duration(5.0) == pytest.approx(5.0)


class TestDriftImpactOnRanging:
    def test_uncompensated_reply_bias_magnitude(self):
        """With 290 us reply delay and 2 ppm relative drift, the SS-TWR
        bias is tens of centimetres — why compensation matters."""
        from repro.constants import DELTA_RESP_S, SPEED_OF_LIGHT

        drift_ppm = 2.0
        bias_m = DELTA_RESP_S * drift_ppm * 1e-6 / 2.0 * SPEED_OF_LIGHT
        assert 0.05 < bias_m < 0.15
