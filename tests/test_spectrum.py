"""Unit tests for repro.signal.spectrum."""

import numpy as np
import pytest

from repro.signal.pulses import dw1000_pulse, narrowband_pulse
from repro.signal.spectrum import (
    estimate_bandwidth_3db,
    estimate_bandwidth_10db,
    occupies_mask,
    power_spectrum,
)


class TestPowerSpectrum:
    def test_peak_normalised(self, default_pulse):
        _, power = power_spectrum(default_pulse)
        assert power.max() == pytest.approx(1.0)

    def test_frequency_axis_symmetric(self, default_pulse):
        freqs, _ = power_spectrum(default_pulse)
        assert freqs[0] < 0 < freqs[-1]
        df = abs(freqs[1] - freqs[0])
        assert abs(freqs[0] + freqs[-1]) <= df * (1 + 1e-9)

    def test_flat_band_at_dc(self, default_pulse):
        # The RC spectrum is flat across the band, so DC power sits at
        # the normalised maximum.
        freqs, power = power_spectrum(default_pulse)
        dc = power[np.argmin(np.abs(freqs))]
        assert dc == pytest.approx(1.0, abs=0.05)


class TestBandwidthEstimates:
    def test_default_pulse_near_900mhz(self):
        pulse = dw1000_pulse(sampling_period_s=0.1252e-9)
        bw = estimate_bandwidth_3db(pulse)
        assert 700e6 < bw < 1100e6

    def test_10db_wider_than_3db(self, default_pulse):
        assert estimate_bandwidth_10db(default_pulse) >= estimate_bandwidth_3db(
            default_pulse
        )

    def test_wider_register_means_smaller_bandwidth(self):
        fine = 0.1252e-9
        bw_default = estimate_bandwidth_10db(dw1000_pulse(0x93, fine))
        bw_wide = estimate_bandwidth_10db(dw1000_pulse(0xE6, fine))
        assert bw_wide < bw_default / 2

    def test_narrowband_pulse_bandwidth(self):
        pulse = narrowband_pulse(50e6, sampling_period_s=1e-9)
        bw = estimate_bandwidth_3db(pulse)
        assert 25e6 < bw < 80e6


class TestMask:
    def test_all_registers_fit_default_mask(self):
        """The paper's regulatory argument: every wider pulse fits any
        mask the default pulse fits."""
        fine = 0.1252e-9
        for register in (0x93, 0xC8, 0xE6, 0xF0, 0xFF):
            assert occupies_mask(dw1000_pulse(register, fine), 1.1e9)

    def test_too_narrow_mask_fails(self):
        pulse = dw1000_pulse(sampling_period_s=0.1252e-9)
        assert not occupies_mask(pulse, 200e6)
