"""Unit tests for the artifact cache: accounting, sharing, helpers."""

import pytest

from repro.constants import CIR_SAMPLING_PERIOD_S
from repro.runtime import (
    ArtifactCache,
    all_cache_snapshots,
    clear_all_caches,
    get_cache,
    pulse,
    template_bank,
)


@pytest.fixture(autouse=True)
def fresh_caches():
    """Each test sees empty process-local caches."""
    clear_all_caches()
    yield
    clear_all_caches()


class TestArtifactCache:
    def test_miss_then_hit(self):
        cache = ArtifactCache("test")
        built = []

        def factory():
            built.append(1)
            return "artifact"

        assert cache.get_or_create("k", factory) == "artifact"
        assert cache.get_or_create("k", factory) == "artifact"
        assert built == [1]  # factory ran exactly once
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_distinct_keys_distinct_entries(self):
        cache = ArtifactCache("test")
        cache.get_or_create("a", lambda: 1)
        cache.get_or_create("b", lambda: 2)
        assert len(cache) == 2
        assert "a" in cache and "b" in cache
        assert cache.misses == 2

    def test_hit_rate_empty(self):
        assert ArtifactCache("test").hit_rate == 0.0

    def test_clear_resets_accounting(self):
        cache = ArtifactCache("test")
        cache.get_or_create("a", lambda: 1)
        cache.get_or_create("a", lambda: 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.snapshot() == (0, 0)

    def test_snapshot_is_picklable_tuple(self):
        import pickle

        cache = ArtifactCache("test")
        cache.get_or_create("a", lambda: 1)
        assert pickle.loads(pickle.dumps(cache.snapshot())) == (0, 1)


class TestNamedCaches:
    def test_get_cache_returns_same_instance(self):
        assert get_cache("x") is get_cache("x")
        assert get_cache("x") is not get_cache("y")

    def test_all_snapshots(self):
        get_cache("alpha").get_or_create("k", lambda: 1)
        get_cache("alpha").get_or_create("k", lambda: 1)
        snapshots = all_cache_snapshots()
        assert snapshots["alpha"] == (1, 1)


class TestSharedArtifacts:
    def test_template_bank_memoised(self):
        first = template_bank((0x93, 0xC8))
        second = template_bank((0x93, 0xC8))
        assert first is second
        assert get_cache("templates").snapshot() == (1, 1)

    def test_template_bank_key_includes_period(self):
        first = template_bank((0x93,))
        second = template_bank((0x93,), sampling_period_s=CIR_SAMPLING_PERIOD_S / 8)
        assert first is not second
        assert get_cache("templates").misses == 2

    def test_template_bank_matches_direct_construction(self):
        import numpy as np

        from repro.signal.templates import TemplateBank

        cached = template_bank((0x93, 0xE6))
        direct = TemplateBank((0x93, 0xE6))
        assert cached.registers == direct.registers
        for a, b in zip(cached, direct):
            assert np.allclose(a.samples, b.samples)

    def test_pulse_memoised(self):
        assert pulse(0x93) is pulse(0x93)
        assert pulse(0x93) is not pulse(0xC8)
        assert get_cache("pulses").snapshot() == (2, 2)
