"""Unit tests for cooperative localization."""

import pytest

from repro.channel.geometry import Point
from repro.localization.cooperative import RangeMeasurement, solve_cooperative

ANCHORS = {0: Point(0, 0), 1: Point(10, 0), 2: Point(10, 10), 3: Point(0, 10)}


def measure(a_pos: Point, b_pos: Point, a: int, b: int, noise=0.0, rng=None):
    d = a_pos.distance_to(b_pos)
    if noise:
        d += float(rng.normal(0, noise))
    return RangeMeasurement(a, b, max(d, 0.0))


class TestSolveCooperative:
    def test_single_tag_reduces_to_multilateration(self):
        tag = Point(3.0, 7.0)
        measurements = [
            measure(tag, p, 10, aid) for aid, p in ANCHORS.items()
        ]
        result = solve_cooperative(ANCHORS, measurements, [10])
        assert result.positions[10].distance_to(tag) < 1e-5
        assert result.converged

    def test_two_tags_with_inter_tag_range(self):
        tag_a, tag_b = Point(3.0, 3.0), Point(7.0, 6.0)
        measurements = (
            [measure(tag_a, p, 10, aid) for aid, p in ANCHORS.items()]
            + [measure(tag_b, p, 11, aid) for aid, p in ANCHORS.items()]
            + [measure(tag_a, tag_b, 10, 11)]
        )
        result = solve_cooperative(ANCHORS, measurements, [10, 11])
        assert result.positions[10].distance_to(tag_a) < 1e-4
        assert result.positions[11].distance_to(tag_b) < 1e-4

    def test_cooperation_helps_underdetermined_tag(self, rng):
        """Tag B sees only two anchors — unsolvable alone — but becomes
        solvable through its range to well-anchored tag A."""
        tag_a, tag_b = Point(4.0, 4.0), Point(6.0, 7.0)
        measurements = (
            [measure(tag_a, p, 10, aid) for aid, p in ANCHORS.items()]
            + [
                measure(tag_b, ANCHORS[0], 11, 0),
                measure(tag_b, ANCHORS[1], 11, 1),
                measure(tag_a, tag_b, 10, 11),
            ]
        )
        result = solve_cooperative(
            ANCHORS,
            measurements,
            [10, 11],
            initial={10: Point(4.5, 4.5), 11: Point(5.5, 6.5)},
        )
        assert result.positions[11].distance_to(tag_b) < 0.01

    def test_noisy_network(self, rng):
        tags = {10: Point(2.5, 3.5), 11: Point(7.0, 6.0), 12: Point(5.0, 8.0)}
        measurements = []
        for tid, tpos in tags.items():
            for aid, apos in ANCHORS.items():
                measurements.append(measure(tpos, apos, tid, aid, 0.05, rng))
        tag_ids = list(tags)
        for i, a in enumerate(tag_ids):
            for b in tag_ids[i + 1 :]:
                measurements.append(measure(tags[a], tags[b], a, b, 0.05, rng))
        result = solve_cooperative(ANCHORS, measurements, tag_ids)
        for tid, tpos in tags.items():
            assert result.positions[tid].distance_to(tpos) < 0.2
        assert result.rms_residual_m < 0.2

    def test_anchor_only_measurements_ignored(self):
        tag = Point(5.0, 5.0)
        measurements = [
            RangeMeasurement(0, 1, 10.0),  # anchor-anchor: no info
        ] + [measure(tag, p, 10, aid) for aid, p in ANCHORS.items()]
        result = solve_cooperative(ANCHORS, measurements, [10])
        assert result.positions[10].distance_to(tag) < 1e-4


class TestValidation:
    def test_self_range_rejected(self):
        with pytest.raises(ValueError):
            RangeMeasurement(1, 1, 5.0)

    def test_negative_range_rejected(self):
        with pytest.raises(ValueError):
            RangeMeasurement(0, 1, -1.0)

    def test_no_unknowns(self):
        with pytest.raises(ValueError):
            solve_cooperative(ANCHORS, [RangeMeasurement(0, 10, 5.0)], [])

    def test_anchor_unknown_overlap(self):
        with pytest.raises(ValueError):
            solve_cooperative(ANCHORS, [RangeMeasurement(0, 1, 5.0)], [0])

    def test_unknown_without_measurement(self):
        with pytest.raises(ValueError):
            solve_cooperative(
                ANCHORS, [RangeMeasurement(0, 10, 5.0)], [10, 99]
            )

    def test_orphan_node_in_measurement(self):
        with pytest.raises(ValueError):
            solve_cooperative(
                ANCHORS, [RangeMeasurement(77, 10, 5.0)], [10]
            )

    def test_no_useful_measurements(self):
        with pytest.raises(ValueError):
            solve_cooperative(ANCHORS, [RangeMeasurement(0, 1, 10.0)], [10])
