"""Unit tests for the scheduled-vs-concurrent cost model (Sect. VIII)."""

import pytest

from repro.protocol.scheduling import (
    concurrent_round_cost,
    network_sweep,
    scheduled_round_cost,
)


class TestScheduledCost:
    def test_paper_message_count(self):
        """The paper's N(N-1) for full-network ranging."""
        for n in (2, 5, 10, 50):
            assert scheduled_round_cost(n).messages == n * (n - 1)

    def test_single_initiator_count(self):
        assert scheduled_round_cost(10, full_network=False).messages == 18

    def test_duration_grows_quadratically(self):
        d10 = scheduled_round_cost(10).duration_s
        d20 = scheduled_round_cost(20).duration_s
        assert d20 / d10 == pytest.approx(380 / 90, rel=1e-6)

    def test_too_few_nodes(self):
        with pytest.raises(ValueError):
            scheduled_round_cost(1)

    def test_energy_positive(self):
        assert scheduled_round_cost(5).energy_j > 0


class TestConcurrentCost:
    def test_paper_message_count(self):
        """One broadcast + one aggregate per round."""
        cost = concurrent_round_cost(10)
        assert cost.messages == 20  # 2 per round x 10 rounds

    def test_transmissions_still_physical(self):
        cost = concurrent_round_cost(10)
        assert cost.transmissions == 10 * 10  # 1 INIT + 9 RESP per round

    def test_channel_slots_constant_per_round(self):
        assert concurrent_round_cost(50, full_network=False).channel_slots == 2

    def test_duration_linear(self):
        d10 = concurrent_round_cost(10).duration_s
        d20 = concurrent_round_cost(20).duration_s
        assert d20 / d10 == pytest.approx(2.0, rel=1e-6)


class TestComparison:
    def test_concurrent_wins_asymptotically(self):
        for n in (10, 50, 100):
            scheduled = scheduled_round_cost(n)
            concurrent = concurrent_round_cost(n)
            assert concurrent.messages < scheduled.messages
            assert concurrent.duration_s < scheduled.duration_s
            assert concurrent.energy_j < scheduled.energy_j

    def test_message_ratio_matches_paper(self):
        """N(N-1) vs ~N: ratio ~ (N-1)/2 under our counting."""
        n = 100
        ratio = scheduled_round_cost(n).messages / concurrent_round_cost(n).messages
        assert ratio == pytest.approx((n - 1) / 2, rel=1e-6)

    def test_small_network_crossover(self):
        """At N = 2 the schemes are equivalent (concurrent has no
        advantage with a single responder)."""
        scheduled = scheduled_round_cost(2)
        concurrent = concurrent_round_cost(2)
        assert concurrent.messages >= scheduled.messages

    def test_sweep_shape(self):
        pairs = network_sweep((5, 10))
        assert len(pairs) == 2
        assert pairs[0][0].scheme == "scheduled"
        assert pairs[0][1].scheme == "concurrent"
