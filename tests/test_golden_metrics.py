"""Golden regression suite: pinned experiment metrics under fixed seeds.

Every metric of the headline experiments is computed once under a fixed
seed and stored in ``tests/golden/experiment_metrics.json``.  The tests
re-run the same configurations and require the same metric *names* and
values within ``rtol <= 1e-9`` — any drift (a refactor changing RNG
consumption order, a detector "optimisation" changing decisions, a new
engine path that is not actually equivalent) fails loudly with the
offending metric.

Trial counts are deliberately tiny: the point is bit-stability of the
full pipeline (protocol -> channel -> detection -> analysis), not
statistical power — the statistical bands live in
``tests/test_runtime_experiments.py`` and ``benchmarks/``.

Regenerating (after an *intentional* behaviour change)::

    PYTHONPATH=src python -m pytest tests/test_golden_metrics.py --update-golden

then review the JSON diff like any other code change: every changed
value is a behaviour change you are signing off on.
"""

import json
import math
from pathlib import Path

import pytest

from repro.experiments import (
    ablation_detectors,
    fig7_overlap,
    fig8_combined,
    sect5_precision,
    security_study,
    swarm_scale,
    table1_pulse_id,
)

GOLDEN_PATH = Path(__file__).parent / "golden" / "experiment_metrics.json"

RTOL = 1e-9

#: Case name -> zero-argument callable producing an ExperimentResult.
#: The name encodes the exact configuration so a changed trial count or
#: seed shows up as a new entry instead of silently comparing apples to
#: oranges.
CASES = {
    "table1_pulse_id(trials=5, seed=17)": (
        lambda: table1_pulse_id.run(trials=5, seed=17)
    ),
    "fig7_overlap(trials=10, seed=23)": (
        lambda: fig7_overlap.run(trials=10, seed=23)
    ),
    "sect5_precision(trials=30, seed=29)": (
        lambda: sect5_precision.run(trials=30, seed=29)
    ),
    "ablation_detectors(trials=10, seed=37)": (
        lambda: ablation_detectors.run(trials=10, seed=37)
    ),
    # Pinned on the batched-classifier port: any drift between the
    # serial and batched identification engines shows up here first
    # (run() defaults to batch_size="auto" on this workload).
    "fig8_combined(trials=6, seed=31)": (
        lambda: fig8_combined.run(trials=6, seed=31)
    ),
    # The exact configuration CI's security-smoke gate runs (--quick):
    # the pinned values double as the acceptance numbers — detection
    # >= 0.9 at full intensity, clean false positives <= 0.05.
    "security_study(trials=4, rounds=6, seed=41, intensities=(1.0,))": (
        lambda: security_study.run(
            trials=4, rounds=6, seed=41, intensities=(1.0,)
        )
    ),
    # The exact configuration CI's swarm-smoke gate runs (--quick): the
    # sharded many-agent path end to end — swarm event loop -> batched
    # classification -> anchor-slot decode -> localization.  Every
    # pinned metric is byte-deterministic in (seed, counts, epochs) and
    # invariant in --workers and --shards.
    "swarm_scale(trials=3, seed=71, counts=(12, 100, 500))": (
        lambda: swarm_scale.run(trials=3, seed=71, counts=(12, 100, 500))
    ),
}


def _measure(name: str) -> dict:
    return {
        key: float(value) for key, value in CASES[name]().as_dict().items()
    }


def _load_golden() -> dict:
    with open(GOLDEN_PATH) as handle:
        return json.load(handle)


@pytest.mark.parametrize("name", sorted(CASES))
def test_golden_metrics(name, request):
    measured = _measure(name)
    if request.config.getoption("--update-golden"):
        data = _load_golden() if GOLDEN_PATH.exists() else {}
        data[name] = measured
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(
            json.dumps(data, indent=2, sort_keys=True) + "\n"
        )
        pytest.skip(f"golden entry for {name} regenerated")
    assert GOLDEN_PATH.exists(), (
        "golden file missing; generate it with "
        "`python -m pytest tests/test_golden_metrics.py --update-golden`"
    )
    golden = _load_golden()
    assert name in golden, (
        f"no golden entry for {name!r}; run --update-golden and commit "
        "the diff"
    )
    want = golden[name]
    assert set(measured) == set(want), (
        "metric names drifted: "
        f"missing={sorted(set(want) - set(measured))}, "
        f"new={sorted(set(measured) - set(want))}"
    )
    for key, value in sorted(want.items()):
        got = measured[key]
        if math.isnan(value):
            assert math.isnan(got), f"{name}:{key} was NaN, now {got}"
        else:
            assert got == pytest.approx(value, rel=RTOL, abs=1e-12), (
                f"{name}:{key} drifted from {value!r} to {got!r}"
            )


def test_golden_cases_are_repeatable():
    """Precondition for pinning: the same configuration must yield the
    same metrics twice within one process."""
    first = table1_pulse_id.run(trials=3, seed=17).as_dict()
    second = table1_pulse_id.run(trials=3, seed=17).as_dict()
    assert first == second


def test_golden_file_is_committed_and_well_formed():
    """The suite must not silently pass because the file is absent."""
    assert GOLDEN_PATH.exists()
    data = _load_golden()
    assert set(data) == set(CASES)
    for name, metrics in data.items():
        assert metrics, f"empty golden entry for {name}"
        for key, value in metrics.items():
            assert isinstance(key, str)
            assert isinstance(value, float)
