"""Unit tests for the markdown report generator and its CLI command."""

import pytest

from repro.analysis.reporting import generate_report
from repro.cli import main


class TestGenerateReport:
    def test_subset(self):
        report = generate_report(names=["fig3"])
        assert "# Concurrent-ranging reproduction report" in report
        assert "Fig. 3" in report
        assert "178" in report

    def test_tables_fenced(self):
        report = generate_report(names=["fig5"])
        assert report.count("```") % 2 == 0
        assert "TC_PGDELAY" in report

    def test_trials_forwarded(self):
        report = generate_report(names=["sect5"], trials=25)
        assert "25 SS-TWR exchanges" in report

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            generate_report(names=["nope"])

    def test_comparison_rows_present(self):
        report = generate_report(names=["fig3"])
        assert "| min_delay_us |" in report


class TestReportCommand:
    def test_stdout(self, capsys):
        assert main(["report", "fig3"]) == 0
        assert "min_delay_us" in capsys.readouterr().out

    def test_file_output(self, tmp_path, capsys):
        target = tmp_path / "report.md"
        assert main(["report", "fig3", "-o", str(target)]) == 0
        assert target.exists()
        assert "Fig. 3" in target.read_text()

    def test_unknown_experiment(self, capsys):
        assert main(["report", "bogus"]) == 2
        assert "unknown" in capsys.readouterr().err
