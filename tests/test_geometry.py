"""Unit tests for repro.channel.geometry."""

import math

import pytest

from repro.channel.cir import ChannelRealization
from repro.channel.geometry import (
    Obstacle,
    Point,
    Room,
    image_source_taps,
)
from repro.constants import SPEED_OF_LIGHT


class TestPoint:
    def test_distance(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_add_sub(self):
        p = Point(1, 2) + Point(3, 4)
        assert (p.x, p.y) == (4, 6)
        q = Point(3, 4) - Point(1, 2)
        assert (q.x, q.y) == (2, 2)

    def test_midpoint(self):
        m = Point(0, 0).midpoint(Point(4, 6))
        assert (m.x, m.y) == (2, 3)


class TestRoom:
    def test_contains(self):
        room = Room(10, 5)
        assert room.contains(Point(5, 2))
        assert not room.contains(Point(11, 2))
        assert not room.contains(Point(5, -0.1))

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            Room(0, 5)

    def test_invalid_reflection_coefficient(self):
        with pytest.raises(ValueError):
            Room(10, 5, reflection_coefficient=1.5)

    def test_mirror_left(self):
        room = Room(10, 5)
        image = room.mirror(Point(2, 3), "left")
        assert (image.x, image.y) == (-2, 3)

    def test_mirror_right(self):
        room = Room(10, 5)
        image = room.mirror(Point(2, 3), "right")
        assert (image.x, image.y) == (18, 3)

    def test_mirror_top_bottom(self):
        room = Room(10, 5)
        assert room.mirror(Point(2, 3), "bottom").y == -3
        assert room.mirror(Point(2, 3), "top").y == 7

    def test_mirror_unknown_wall(self):
        with pytest.raises(ValueError):
            Room(10, 5).mirror(Point(1, 1), "ceiling")

    def test_reflection_point_on_wall(self):
        room = Room(10, 5)
        bounce = room.reflection_point(Point(2, 3), Point(8, 3), "bottom")
        assert bounce is not None
        assert bounce.y == pytest.approx(0.0)
        assert 2 < bounce.x < 8

    def test_reflection_point_angle_of_incidence(self):
        """Specular law: the bounce splits the path symmetrically."""
        room = Room(10, 5)
        tx, rx = Point(2, 3), Point(8, 1)
        bounce = room.reflection_point(tx, rx, "bottom")
        angle_in = math.atan2(tx.y - bounce.y, tx.x - bounce.x)
        angle_out = math.atan2(rx.y - bounce.y, rx.x - bounce.x)
        assert math.sin(angle_in) == pytest.approx(math.sin(math.pi - angle_out))

    def test_reflection_path_length_via_image(self):
        room = Room(10, 5)
        tx, rx = Point(2, 3), Point(8, 1)
        bounce = room.reflection_point(tx, rx, "top")
        direct = room.mirror(tx, "top").distance_to(rx)
        via_bounce = tx.distance_to(bounce) + bounce.distance_to(rx)
        assert via_bounce == pytest.approx(direct)


class TestObstacle:
    def test_intersects_crossing_segment(self):
        obstacle = Obstacle(4, 0, 6, 3)
        assert obstacle.intersects_segment(Point(0, 1), Point(10, 1))

    def test_misses_segment_beside(self):
        obstacle = Obstacle(4, 0, 6, 3)
        assert not obstacle.intersects_segment(Point(0, 4), Point(10, 4))

    def test_misses_segment_short(self):
        obstacle = Obstacle(4, 0, 6, 3)
        assert not obstacle.intersects_segment(Point(0, 1), Point(3, 1))

    def test_invalid_extent(self):
        with pytest.raises(ValueError):
            Obstacle(4, 0, 4, 3)

    def test_invalid_attenuation(self):
        with pytest.raises(ValueError):
            Obstacle(0, 0, 1, 1, attenuation=2.0)


class TestImageSourceTaps:
    def test_five_taps_in_open_room(self):
        """The Fig. 1a structure: LOS + 4 first-order reflections."""
        room = Room(10, 5)
        taps = image_source_taps(room, Point(2, 3), Point(7.5, 1.6))
        assert len(taps) == 5
        kinds = [tap.kind for tap in taps]
        assert kinds.count("los") == 1
        assert kinds.count("reflection") == 4

    def test_los_is_earliest(self):
        room = Room(10, 5)
        taps = image_source_taps(room, Point(2, 3), Point(7.5, 1.6))
        channel = ChannelRealization(taps)
        assert channel.first_path.kind == "los"

    def test_los_delay_matches_distance(self):
        room = Room(10, 5)
        tx, rx = Point(2, 3), Point(7, 3)
        taps = image_source_taps(room, tx, rx)
        channel = ChannelRealization(taps)
        assert channel.first_path.delay_s == pytest.approx(
            tx.distance_to(rx) / SPEED_OF_LIGHT
        )

    def test_reflections_weaker_than_los(self):
        room = Room(10, 5)
        taps = image_source_taps(room, Point(2, 3), Point(7.5, 1.6))
        channel = ChannelRealization(taps)
        los_power = channel.los_tap.power
        for tap in channel:
            if tap.kind == "reflection":
                assert tap.power < los_power

    def test_obstacle_blocks_los(self):
        room = Room(10, 5, obstacles=[Obstacle(4, 2, 5, 4, attenuation=0.0)])
        taps = image_source_taps(room, Point(2, 3), Point(8, 3))
        assert all(tap.kind != "los" for tap in taps)

    def test_obstacle_attenuates_los(self):
        clear = Room(10, 5)
        blocked = Room(10, 5, obstacles=[Obstacle(4, 2, 5, 4, attenuation=0.2)])
        clear_taps = image_source_taps(clear, Point(2, 3), Point(8, 3))
        blocked_taps = image_source_taps(blocked, Point(2, 3), Point(8, 3))
        clear_los = next(t for t in clear_taps if t.kind == "los")
        blocked_los = next(t for t in blocked_taps if t.kind == "los")
        assert abs(blocked_los.amplitude) == pytest.approx(
            0.2 * abs(clear_los.amplitude)
        )

    def test_outside_position_rejected(self):
        room = Room(10, 5)
        with pytest.raises(ValueError):
            image_source_taps(room, Point(-1, 3), Point(8, 3))

    def test_exclude_los(self):
        room = Room(10, 5)
        taps = image_source_taps(room, Point(2, 3), Point(8, 3), include_los=False)
        assert all(tap.kind == "reflection" for tap in taps)
