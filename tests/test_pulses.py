"""Unit tests for repro.signal.pulses."""

import numpy as np
import pytest

from repro.constants import (
    NUM_PULSE_SHAPES,
    TC_PGDELAY_DEFAULT,
    TC_PGDELAY_MAX,
)
from repro.signal.pulses import (
    BASE_BANDWIDTH_HZ,
    Pulse,
    RegisterRangeError,
    dw1000_pulse,
    narrowband_pulse,
    pulse_bandwidth_hz,
    pulse_width_factor,
    raised_cosine_pulse,
)


class TestWidthFactor:
    def test_default_register_is_unity(self):
        assert pulse_width_factor(TC_PGDELAY_DEFAULT) == 1.0

    def test_monotone_increasing(self):
        factors = [
            pulse_width_factor(r)
            for r in range(TC_PGDELAY_DEFAULT, TC_PGDELAY_MAX + 1)
        ]
        assert all(a < b for a, b in zip(factors, factors[1:]))

    def test_below_default_rejected(self):
        with pytest.raises(RegisterRangeError):
            pulse_width_factor(TC_PGDELAY_DEFAULT - 1)

    def test_above_8bit_rejected(self):
        with pytest.raises(RegisterRangeError):
            pulse_width_factor(0x100)

    def test_number_of_usable_shapes_matches_paper(self):
        # The paper claims "up to 108 different pulse shapes".
        assert NUM_PULSE_SHAPES == 108


class TestBandwidth:
    def test_default_is_900mhz(self):
        assert pulse_bandwidth_hz(TC_PGDELAY_DEFAULT) == BASE_BANDWIDTH_HZ

    def test_wider_pulse_means_less_bandwidth(self):
        assert pulse_bandwidth_hz(0xC8) < pulse_bandwidth_hz(0x93)
        assert pulse_bandwidth_hz(0xE6) < pulse_bandwidth_hz(0xC8)


class TestRaisedCosinePulse:
    def test_peak_at_zero(self):
        t = np.linspace(-5e-9, 5e-9, 1001)
        values = raised_cosine_pulse(t, 900e6)
        assert np.argmax(values) == 500

    def test_unit_peak(self):
        assert raised_cosine_pulse(np.array([0.0]), 900e6)[0] == pytest.approx(1.0)

    def test_zero_at_nyquist_spaced_nulls(self):
        # RC pulse has nulls at multiples of 1/B (except at the peak).
        bandwidth = 500e6
        t = np.array([1.0, 2.0, 3.0]) / bandwidth
        values = raised_cosine_pulse(t, bandwidth)
        assert np.allclose(values, 0.0, atol=1e-12)

    def test_singularity_handled(self):
        # t = 1/(2 * rolloff * B) is a removable singularity.
        bandwidth, rolloff = 900e6, 0.1
        t_singular = 1.0 / (2.0 * rolloff * bandwidth)
        value = raised_cosine_pulse(np.array([t_singular]), bandwidth, rolloff)
        assert np.isfinite(value[0])

    def test_symmetric(self):
        t = np.linspace(0.1e-9, 8e-9, 50)
        assert np.allclose(
            raised_cosine_pulse(t, 900e6), raised_cosine_pulse(-t, 900e6)
        )

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            raised_cosine_pulse(np.array([0.0]), -1.0)

    def test_invalid_rolloff_rejected(self):
        with pytest.raises(ValueError):
            raised_cosine_pulse(np.array([0.0]), 900e6, rolloff=1.5)


class TestDw1000Pulse:
    def test_unit_energy(self):
        for register in (0x93, 0xC8, 0xE6, 0xF0):
            assert dw1000_pulse(register).energy() == pytest.approx(1.0)

    def test_width_monotone_in_register(self):
        fine = 0.1e-9
        widths = [
            dw1000_pulse(r, sampling_period_s=fine).width_3db_s
            for r in (0x93, 0xC8, 0xE6, 0xF0)
        ]
        assert widths == sorted(widths)
        assert widths[0] < widths[-1] / 2  # clearly distinguishable

    def test_peak_is_centred(self, default_pulse):
        assert default_pulse.peak_index == len(default_pulse) // 2

    def test_duration_scales_with_width(self):
        narrow = dw1000_pulse(0x93)
        wide = dw1000_pulse(0xF0)
        assert wide.duration_s > narrow.duration_s

    def test_resampled_preserves_register_and_bandwidth(self, default_pulse):
        fine = default_pulse.resampled(0.1252e-9)
        assert fine.register == default_pulse.register
        assert fine.bandwidth_hz == default_pulse.bandwidth_hz
        assert fine.sampling_period_s == pytest.approx(0.1252e-9)
        assert fine.energy() == pytest.approx(1.0)

    def test_resampled_has_more_samples(self, default_pulse):
        fine = default_pulse.resampled(default_pulse.sampling_period_s / 8)
        assert len(fine) > 4 * len(default_pulse)

    def test_rejects_bad_register(self):
        with pytest.raises(RegisterRangeError):
            dw1000_pulse(0x40)

    def test_pulse_requires_unit_energy(self):
        with pytest.raises(ValueError):
            Pulse(
                samples=np.array([1.0, 2.0]),
                sampling_period_s=1e-9,
                register=0x93,
                bandwidth_hz=900e6,
            )


class TestNarrowbandPulse:
    def test_50mhz_pulse_much_wider_than_900mhz(self):
        fine = 0.25e-9
        wide = dw1000_pulse(sampling_period_s=fine)
        narrow = narrowband_pulse(50e6, sampling_period_s=fine)
        assert narrow.width_3db_s > 10 * wide.width_3db_s

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ValueError):
            narrowband_pulse(0.0)

    def test_unit_energy(self):
        assert narrowband_pulse(50e6).energy() == pytest.approx(1.0)
