"""Unit tests for the experiment harness (ExperimentResult etc.)."""

import pytest

from repro.analysis.tables import Table
from repro.experiments.common import Comparison, ExperimentResult


class TestComparison:
    def test_ratio(self):
        assert Comparison("x", measured=2.0, paper=4.0).ratio == 0.5

    def test_ratio_without_paper_value(self):
        assert Comparison("x", measured=2.0).ratio is None

    def test_ratio_zero_paper(self):
        assert Comparison("x", measured=2.0, paper=0.0).ratio is None


class TestExperimentResult:
    def _result(self):
        result = ExperimentResult("Fig. X", "demo experiment")
        result.compare("metric_a", 1.5, paper=2.0, unit="m")
        result.compare("metric_b", 3.0)
        return result

    def test_metric_lookup(self):
        result = self._result()
        assert result.metric("metric_a").measured == 1.5
        assert result.metric("metric_a").paper == 2.0

    def test_metric_missing(self):
        with pytest.raises(KeyError):
            self._result().metric("nope")

    def test_as_dict(self):
        assert self._result().as_dict() == {"metric_a": 1.5, "metric_b": 3.0}

    def test_render_contains_everything(self):
        result = self._result()
        table = Table(["col"], title="inner")
        table.add_row([42])
        result.add_table(table)
        result.note("a caveat")
        text = result.render()
        assert "Fig. X" in text
        assert "inner" in text
        assert "metric_a" in text
        assert "a caveat" in text

    def test_render_dash_for_missing_paper(self):
        text = self._result().render()
        # metric_b has no paper value -> rendered as '-'.
        lines = [l for l in text.splitlines() if "metric_b" in l]
        assert lines and "-" in lines[0]


class TestNewExperimentsSmoke:
    def test_nlos_degrades_monotonically_enough(self):
        from repro.experiments import nlos_study

        result = nlos_study.run(trials=12)
        assert (
            result.metric("id_rate_nlos").measured
            <= result.metric("id_rate_los").measured
        )

    def test_ablation_amplitude_smoke(self):
        from repro.experiments import ablation_amplitude

        result = ablation_amplitude.run(trials=8)
        assert result.metric("plain_rmse_separated").measured < 0.1

    def test_ablation_twr_smoke(self):
        from repro.experiments import ablation_twr

        result = ablation_twr.run(trials=60)
        assert result.metric("ss_compensated_std_m").measured < 0.05
        assert result.metric("ss_raw_abs_bias_m").measured > 0.005
