"""Unit tests for the experiment harness (ExperimentResult etc.)."""

import pytest

from repro.analysis.tables import Table
from repro.experiments.common import Comparison, ExperimentResult


class TestComparison:
    def test_ratio(self):
        assert Comparison("x", measured=2.0, paper=4.0).ratio == 0.5

    def test_ratio_without_paper_value(self):
        assert Comparison("x", measured=2.0).ratio is None

    def test_ratio_zero_paper(self):
        assert Comparison("x", measured=2.0, paper=0.0).ratio is None


class TestExperimentResult:
    def _result(self):
        result = ExperimentResult("Fig. X", "demo experiment")
        result.compare("metric_a", 1.5, paper=2.0, unit="m")
        result.compare("metric_b", 3.0)
        return result

    def test_metric_lookup(self):
        result = self._result()
        assert result.metric("metric_a").measured == 1.5
        assert result.metric("metric_a").paper == 2.0

    def test_metric_missing(self):
        with pytest.raises(KeyError):
            self._result().metric("nope")

    def test_as_dict(self):
        assert self._result().as_dict() == {"metric_a": 1.5, "metric_b": 3.0}

    def test_render_contains_everything(self):
        result = self._result()
        table = Table(["col"], title="inner")
        table.add_row([42])
        result.add_table(table)
        result.note("a caveat")
        text = result.render()
        assert "Fig. X" in text
        assert "inner" in text
        assert "metric_a" in text
        assert "a caveat" in text

    def test_render_dash_for_missing_paper(self):
        text = self._result().render()
        # metric_b has no paper value -> rendered as '-'.
        lines = [l for l in text.splitlines() if "metric_b" in l]
        assert lines and "-" in lines[0]


class TestNewExperimentsSmoke:
    def test_nlos_degrades_monotonically_enough(self):
        from repro.experiments import nlos_study

        result = nlos_study.run(trials=12)
        assert (
            result.metric("id_rate_nlos").measured
            <= result.metric("id_rate_los").measured
        )

    def test_ablation_amplitude_smoke(self):
        from repro.experiments import ablation_amplitude

        result = ablation_amplitude.run(trials=8)
        assert result.metric("plain_rmse_separated").measured < 0.1

    def test_ablation_twr_smoke(self):
        from repro.experiments import ablation_twr

        result = ablation_twr.run(trials=60)
        assert result.metric("ss_compensated_std_m").measured < 0.05
        assert result.metric("ss_raw_abs_bias_m").measured > 0.005


class TestStandardRun:
    """The standard-signature shim: legacy positional calls keep
    working (with a DeprecationWarning), renamed parameters translate,
    and abuse raises TypeError."""

    @staticmethod
    def _make():
        from repro.experiments.common import standard_run

        calls = {}

        @standard_run(
            "seed", "trials", "checkpoint_dir",
            renames={"checkpoint_dir": "checkpoint"},
        )
        def run(*, trials=25, seed=2, checkpoint=None):
            calls.update(trials=trials, seed=seed, checkpoint=checkpoint)
            return calls

        return run, calls

    def test_keyword_call_is_silent(self):
        run, _ = self._make()
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert run(trials=7, seed=3) == {
                "trials": 7, "seed": 3, "checkpoint": None,
            }

    def test_legacy_positional_order_remaps(self):
        """Old call order was (seed, trials): run(3, 25) must still mean
        seed=3, trials=25 even though trials is now canonical-first."""
        run, _ = self._make()
        with pytest.warns(DeprecationWarning, match="positional"):
            result = run(3, 25)
        assert result == {"trials": 25, "seed": 3, "checkpoint": None}

    def test_legacy_rename_in_positional_slot(self):
        run, _ = self._make()
        with pytest.warns(DeprecationWarning):
            result = run(3, 25, "/tmp/ckpt")
        assert result["checkpoint"] == "/tmp/ckpt"

    def test_legacy_keyword_rename(self):
        run, _ = self._make()
        with pytest.warns(DeprecationWarning, match="checkpoint_dir"):
            result = run(checkpoint_dir="/tmp/ckpt")
        assert result["checkpoint"] == "/tmp/ckpt"

    def test_too_many_positionals_raise(self):
        run, _ = self._make()
        with pytest.raises(TypeError, match="at most"):
            run(1, 2, None, 4)

    def test_positional_keyword_conflict_raises(self):
        run, _ = self._make()
        with pytest.raises(TypeError, match="multiple values"), \
                pytest.warns(DeprecationWarning):
            run(3, seed=4)

    def test_rename_conflict_raises(self):
        run, _ = self._make()
        with pytest.raises(TypeError, match="both"), \
                pytest.warns(DeprecationWarning):
            run(checkpoint_dir="/a", checkpoint="/b")

    def test_marker_attributes(self):
        run, _ = self._make()
        assert run.__standard_run__ is True
        assert run.__legacy_order__ == ("seed", "trials", "checkpoint_dir")

    def test_every_ported_experiment_is_decorated(self):
        """The canonical vocabulary holds across the ported suite."""
        import inspect

        from repro.experiments import (
            ablation_detectors, chaos_sweep, fig2_cir, fig4_detection,
            fig6_pulse_id, fig7_overlap, fig8_combined, nlos_study,
            sect5_precision, sect8_scalability, table1_pulse_id,
        )

        for module in (
            ablation_detectors, chaos_sweep, fig2_cir, fig4_detection,
            fig6_pulse_id, fig7_overlap, fig8_combined, nlos_study,
            sect5_precision, sect8_scalability, table1_pulse_id,
        ):
            assert getattr(module.run, "__standard_run__", False), module
            parameters = inspect.signature(
                inspect.unwrap(module.run)
            ).parameters
            for name in ("trials", "seed", "workers", "batch_size",
                         "checkpoint", "metrics"):
                assert name in parameters, (module.__name__, name)
                assert parameters[name].kind is (
                    inspect.Parameter.KEYWORD_ONLY
                ), (module.__name__, name)


class TestBuildRunKwargs:
    def test_matches_supported_flags(self):
        from repro.experiments.common import build_run_kwargs

        def run(*, trials=1, seed=0, workers=1):
            return None

        kwargs, unsupported = build_run_kwargs(
            run, trials=5, seed=2, workers=4, batch_size=8
        )
        assert kwargs == {"trials": 5, "seed": 2, "workers": 4}
        assert unsupported == ["batch_size"]

    def test_none_values_skipped(self):
        from repro.experiments.common import build_run_kwargs

        def run(*, trials=1, seed=0):
            return None

        kwargs, unsupported = build_run_kwargs(run, trials=None, seed=3)
        assert kwargs == {"seed": 3}
        assert unsupported == []

    def test_inspects_through_standard_run_wrapper(self):
        from repro.experiments.common import build_run_kwargs, standard_run

        @standard_run("trials", "seed")
        def run(*, trials=1, seed=0, batch_size=1):
            return None

        kwargs, unsupported = build_run_kwargs(
            run, trials=2, batch_size="auto", checkpoint="/tmp/x"
        )
        assert kwargs == {"trials": 2, "batch_size": "auto"}
        assert unsupported == ["checkpoint"]

    def test_var_keyword_accepts_everything(self):
        from repro.experiments.common import build_run_kwargs

        def run(**kwargs):
            return None

        kwargs, unsupported = build_run_kwargs(run, anything=1, more=2)
        assert kwargs == {"anything": 1, "more": 2}
        assert unsupported == []
