"""Graceful-degradation tests: resilient rounds, quorum, quarantine."""

import math

import numpy as np
import pytest

from repro.core.detection import SearchAndSubtractConfig
from repro.faults import FaultInjector, FaultPlan, ResponderDropout
from repro.protocol.campaign import RangingCampaign, ResiliencePolicy
from repro.protocol.concurrent import ConcurrentRangingSession
from repro.runtime import MetricsRegistry

DISTANCES_M = (3.0, 6.0, 10.0)


def make_session(faults=None, seed=3, distances=DISTANCES_M):
    return ConcurrentRangingSession.build(
        distances,
        seed=seed,
        detector_config=SearchAndSubtractConfig(
            max_responses=len(distances), min_peak_snr=8.0
        ),
        faults=faults,
    )


class DropUntilRound(FaultInjector):
    """Test injector: one responder stays silent until a given round."""

    name = "dropout"

    def __init__(self, responder_id: int, until_round: int) -> None:
        self.responder_id = responder_id
        self.until_round = until_round

    def drops_response(self, ctx, responder_id, rng) -> bool:
        return (
            responder_id == self.responder_id
            and ctx.round_index < self.until_round
        )


class TestResiliencePolicyValidation:
    def test_defaults_are_valid(self):
        ResiliencePolicy()

    @pytest.mark.parametrize("fraction", [-0.1, 1.1])
    def test_quorum_fraction_bounds(self, fraction):
        with pytest.raises(ValueError, match="quorum_fraction"):
            ResiliencePolicy(quorum_fraction=fraction)

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError, match="max_round_retries"):
            ResiliencePolicy(max_round_retries=-1)

    def test_negative_backoff_rejected(self):
        with pytest.raises(ValueError, match="backoff_base_s"):
            ResiliencePolicy(backoff_base_s=-1e-3)

    def test_sub_unit_backoff_factor_rejected(self):
        with pytest.raises(ValueError, match="backoff_factor"):
            ResiliencePolicy(backoff_factor=0.9)

    @pytest.mark.parametrize("jitter", [-0.1, 1.5])
    def test_backoff_jitter_bounds(self, jitter):
        with pytest.raises(ValueError, match="backoff_jitter"):
            ResiliencePolicy(backoff_jitter=jitter)

    def test_quarantine_after_lower_bound(self):
        with pytest.raises(ValueError, match="quarantine_after"):
            ResiliencePolicy(quarantine_after=0)

    def test_quorum_math(self):
        policy = ResiliencePolicy(quorum_fraction=0.6)
        assert policy.quorum(0) == 0
        assert policy.quorum(3) == math.ceil(0.6 * 3)
        assert ResiliencePolicy(quorum_fraction=1.0).quorum(5) == 5
        assert ResiliencePolicy(quorum_fraction=0.0).quorum(5) == 0


class TestResilientRound:
    def test_all_silent_round_becomes_partial_result(self):
        plan = FaultPlan([ResponderDropout(1.0)], seed=0)
        result = make_session(plan).run_resilient_round(
            start_time_s=0.25, quorum=2, max_retries=1
        )
        assert result.partial
        assert result.attempts == 2  # initial try + one retry
        assert math.isnan(result.d_twr_m)
        assert len(result.outcomes) == len(DISTANCES_M)
        assert all(not o.detected for o in result.outcomes)
        # The loss is annotated, not raised.
        assert all("dropout" in o.faults for o in result.outcomes)

    def test_clean_round_accepted_first_attempt(self):
        result = make_session(None).run_resilient_round(
            start_time_s=0.25, quorum=len(DISTANCES_M), max_retries=3
        )
        assert result.attempts == 1
        assert not result.partial

    def test_retry_budget_spent_below_quorum(self):
        # Everyone silent and a non-zero quorum: every attempt falls
        # short, the budget is spent, and the best (empty) try is kept.
        plan = FaultPlan([ResponderDropout(1.0)], seed=0)
        result = make_session(plan).run_resilient_round(
            start_time_s=0.25,
            quorum=1,
            max_retries=2,
        )
        assert result.attempts == 3
        assert result.partial
        assert result.detection_count == 0

    def test_resilient_round_is_deterministic(self):
        def run_once():
            plan = FaultPlan([ResponderDropout(0.5)], seed=7)
            return make_session(plan, seed=5).run_resilient_round(
                start_time_s=0.25, quorum=3, max_retries=2
            )

        a, b = run_once(), run_once()
        assert a.attempts == b.attempts
        assert [o.estimated_distance_m for o in a.outcomes] == [
            o.estimated_distance_m for o in b.outcomes
        ]


class TestCampaignResilience:
    def test_no_policy_path_is_deterministic_and_clean(self):
        def run_once():
            campaign = RangingCampaign(make_session(None), 0.05)
            return campaign.run(3)

        a, b = run_once(), run_once()
        assert [r.d_twr_m for r in a.rounds] == [r.d_twr_m for r in b.rounds]
        assert a.retries == 0
        assert a.partial_rounds == 0
        assert a.quarantined_responders == ()
        assert a.faults_injected == {}

    def test_dead_responder_is_quarantined_not_raised(self):
        metrics = MetricsRegistry()
        plan = FaultPlan([ResponderDropout(1.0, responder_ids=[2])], seed=0)
        campaign = RangingCampaign(
            # Session seed 0: the silent responder is never mistaken for
            # a multipath phantom, so the quarantine sticks.
            make_session(plan, seed=0),
            0.05,
            resilience=ResiliencePolicy(
                quorum_fraction=0.6,
                max_round_retries=1,
                quarantine_after=2,
                seed=1,
            ),
            metrics=metrics,
        )
        result = campaign.run(4)
        assert result.quarantined_responders == (2,)
        assert result.faults_injected.get("dropout", 0) > 0
        assert metrics.counter("campaign.quarantined_responders").value == 1
        assert metrics.counter("faults.dropout").value > 0

    def test_returning_responder_has_quarantine_lifted(self):
        metrics = MetricsRegistry()
        plan = FaultPlan([DropUntilRound(2, until_round=4)], seed=0)
        campaign = RangingCampaign(
            make_session(plan),
            0.05,
            resilience=ResiliencePolicy(
                quorum_fraction=0.6,
                max_round_retries=0,
                quarantine_after=2,
                seed=1,
            ),
            metrics=metrics,
        )
        result = campaign.run(7)
        # Quarantined while silent, lifted once it identifies again.
        assert metrics.counter("campaign.quarantined_responders").value == 1
        assert metrics.counter("campaign.quarantine_lifted").value >= 1
        assert 2 not in result.quarantined_responders

    def test_empty_plan_campaign_matches_no_plan(self):
        clean = RangingCampaign(make_session(None), 0.05).run(3)
        empty = RangingCampaign(
            make_session(FaultPlan([], seed=13)), 0.05
        ).run(3)
        assert [r.d_twr_m for r in clean.rounds] == [
            r.d_twr_m for r in empty.rounds
        ]
        assert empty.faults_injected == {}

    def test_all_silent_campaign_survives(self):
        plan = FaultPlan([ResponderDropout(1.0)], seed=0)
        campaign = RangingCampaign(
            make_session(plan),
            0.05,
            resilience=ResiliencePolicy(
                quorum_fraction=0.5, max_round_retries=1, quarantine_after=2
            ),
        )
        result = campaign.run(3)  # must not raise
        assert result.partial_rounds == 3
        assert result.retries == 3  # one retry per round
        assert all(math.isnan(r.d_twr_m) for r in result.rounds)
        assert set(result.quarantined_responders) == {0, 1, 2}

    def test_retry_jitter_is_process_stable(self):
        """Two campaigns with the same policy seed draw identical retry
        jitter (no hash()-based seeding)."""

        def run_once():
            plan = FaultPlan([ResponderDropout(0.6)], seed=21)
            campaign = RangingCampaign(
                make_session(plan, seed=5),
                0.05,
                resilience=ResiliencePolicy(
                    quorum_fraction=1.0,
                    max_round_retries=2,
                    backoff_jitter=0.5,
                    seed=77,
                ),
            )
            return campaign.run(3)

        a, b = run_once(), run_once()
        assert a.retries == b.retries
        assert [r.d_twr_m for r in a.rounds] == [
            np.float64(r.d_twr_m) for r in b.rounds
        ] or all(
            (math.isnan(x.d_twr_m) and math.isnan(y.d_twr_m))
            or x.d_twr_m == y.d_twr_m
            for x, y in zip(a.rounds, b.rounds)
        )
