"""Checkpoint/resume tests: shard store, resume equality, kill-resume."""

import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.runtime import (
    CheckpointStore,
    MetricsRegistry,
    SerialExecutor,
    run_key,
    run_trials,
    spawn_trial_seeds,
)


def draw_normal(rng, index):
    return float(rng.normal())


def draw_pair(rng, index):
    return (index, float(rng.normal()))


class TestRunKey:
    def test_stable_across_calls(self):
        assert run_key(7, 100, "x") == run_key(7, 100, "x")

    def test_int_and_seed_sequence_agree(self):
        assert run_key(7, 10) == run_key(np.random.SeedSequence(7), 10)

    def test_distinguishes_seed_count_and_label(self):
        base = run_key(7, 10, "a")
        assert run_key(8, 10, "a") != base
        assert run_key(7, 11, "a") != base
        assert run_key(7, 10, "b") != base

    def test_tuple_seeds_supported(self):
        assert run_key((7, 3), 10) == run_key((7, 3), 10)
        assert run_key((7, 3), 10) != run_key((7, 4), 10)


class TestCheckpointStore:
    def test_flush_every_validation(self):
        with pytest.raises(ValueError):
            CheckpointStore("/tmp/x", "k", flush_every=0)

    def test_save_and_load_roundtrip(self, tmp_path):
        store = CheckpointStore.for_run(tmp_path, 3, 10, label="t")
        store.save_entries([(0, True, 1.5), (1, True, 2.5)])
        store.save_entries([(5, False, "failure-payload")])
        loaded = store.load_entries()
        assert loaded == {
            0: (True, 1.5),
            1: (True, 2.5),
            5: (False, "failure-payload"),
        }
        assert store.completed_indices() == {0, 1, 5}

    def test_empty_batch_writes_nothing(self, tmp_path):
        store = CheckpointStore.for_run(tmp_path, 3, 10)
        assert store.save_entries([]) is None
        assert store.load_entries() == {}

    def test_stores_with_different_keys_are_isolated(self, tmp_path):
        a = CheckpointStore.for_run(tmp_path, 3, 10, label="a")
        b = CheckpointStore.for_run(tmp_path, 3, 10, label="b")
        a.save_entries([(0, True, "a0")])
        b.save_entries([(0, True, "b0")])
        assert a.load_entries() == {0: (True, "a0")}
        assert b.load_entries() == {0: (True, "b0")}

    def test_later_shards_win_duplicates(self, tmp_path):
        store = CheckpointStore.for_run(tmp_path, 3, 10)
        store.save_entries([(2, True, "old")])
        store.save_entries([(2, True, "new")])
        assert store.load_entries()[2] == (True, "new")

    def test_corrupt_shard_is_skipped(self, tmp_path):
        store = CheckpointStore.for_run(tmp_path, 3, 10)
        store.save_entries([(0, True, 1.0)])
        good = store.save_entries([(1, True, 2.0)])
        assert good is not None
        # Truncate the first shard (full-disk style corruption).
        first = sorted(tmp_path.glob(f"{store.key}.shard-*.pkl"))[0]
        first.write_bytes(b"\x80corrupt")
        loaded = store.load_entries()
        assert 1 in loaded
        assert 0 not in loaded  # its trial simply runs again

    def test_clear_removes_only_this_run(self, tmp_path):
        a = CheckpointStore.for_run(tmp_path, 3, 10, label="a")
        b = CheckpointStore.for_run(tmp_path, 3, 10, label="b")
        a.save_entries([(0, True, 1.0)])
        b.save_entries([(0, True, 2.0)])
        assert a.clear() == 1
        assert a.load_entries() == {}
        assert b.load_entries() == {0: (True, 2.0)}


class TestRunTrialsCheckpointing:
    def test_checkpointed_run_matches_plain_run(self, tmp_path):
        plain = run_trials(draw_normal, 15, seed=9)
        checked = run_trials(
            draw_normal, 15, seed=9, checkpoint_dir=str(tmp_path)
        )
        assert checked.values == plain.values

    def test_full_resume_skips_all_trials(self, tmp_path):
        first = run_trials(
            draw_normal, 12, seed=4, checkpoint_dir=str(tmp_path)
        )
        metrics = MetricsRegistry()
        resumed = run_trials(
            draw_normal,
            12,
            seed=4,
            checkpoint_dir=str(tmp_path),
            metrics=metrics,
        )
        assert resumed.values == first.values
        assert metrics.counter("runtime.checkpoint_hits").value == 12
        # Nothing re-ran.
        assert metrics.counter("runtime.trials").value == 0

    def test_partial_resume_runs_only_missing(self, tmp_path):
        # Pre-populate trials 0..4 as a killed run would have left them.
        seeds = spawn_trial_seeds(6, 20)
        store = CheckpointStore.for_run(
            tmp_path, 6, 20, label="draw_normal"
        )
        store.save_entries(
            [
                (i, True, float(np.random.default_rng(seeds[i]).normal()))
                for i in range(5)
            ]
        )
        metrics = MetricsRegistry()
        resumed = run_trials(
            draw_normal,
            20,
            seed=6,
            checkpoint_dir=str(tmp_path),
            metrics=metrics,
        )
        uninterrupted = run_trials(draw_normal, 20, seed=6)
        assert resumed.values == uninterrupted.values
        assert metrics.counter("runtime.checkpoint_hits").value == 5
        # Only the 15 missing trials actually executed.
        assert metrics.counter("runtime.trials_ok").value == 15

    def test_parallel_checkpointed_matches_serial(self, tmp_path):
        serial = run_trials(draw_pair, 16, seed=2)
        parallel = run_trials(
            draw_pair,
            16,
            seed=2,
            workers=2,
            checkpoint_dir=str(tmp_path / "p"),
        )
        assert parallel.values == serial.values
        # And resuming the parallel store serially still agrees.
        resumed = run_trials(
            draw_pair, 16, seed=2, checkpoint_dir=str(tmp_path / "p")
        )
        assert resumed.values == serial.values

    def test_label_separates_experiments(self, tmp_path):
        run_trials(
            draw_normal,
            8,
            seed=1,
            checkpoint_dir=str(tmp_path),
            checkpoint_label="exp-a",
        )
        metrics = MetricsRegistry()
        run_trials(
            draw_normal,
            8,
            seed=1,
            checkpoint_dir=str(tmp_path),
            checkpoint_label="exp-b",
            metrics=metrics,
        )
        # Different label: no hits, everything re-ran.
        assert metrics.counter("runtime.checkpoint_hits").value == 0
        assert metrics.counter("runtime.trials").value == 8

    def test_failed_trials_are_not_resumed_as_done(self, tmp_path):
        def sometimes_fail(rng, index):
            if index == 2:
                raise ValueError("boom")
            return index

        report = run_trials(
            sometimes_fail,
            5,
            seed=0,
            fail_fast=False,
            checkpoint_dir=str(tmp_path),
            checkpoint_label="flaky",
        )
        assert len(report.failures) == 1
        resumed = run_trials(
            sometimes_fail,
            5,
            seed=0,
            fail_fast=False,
            checkpoint_dir=str(tmp_path),
            checkpoint_label="flaky",
        )
        assert resumed.values == report.values
        assert len(resumed.failures) == 1


#: Subprocess body for the kill-resume integration check: a slow,
#: per-trial-flushed serial run the parent SIGTERMs mid-campaign.
_KILL_SCRIPT = """
import sys, time
from repro.runtime import CheckpointStore, SerialExecutor

def slow_trial(rng, index):
    time.sleep(0.2)
    return float(rng.normal())

directory = sys.argv[1]
store = CheckpointStore.for_run(directory, 5, 12, label="kill", flush_every=1)
SerialExecutor().run(slow_trial, 12, 5, checkpoint=store)
"""


class TestKillResumeIntegration:
    def test_sigterm_mid_run_then_resume_equals_uninterrupted(self, tmp_path):
        """Kill a checkpointed run mid-campaign; the resumed run must be
        byte-identical to one that was never interrupted."""
        directory = tmp_path / "ckpt"
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        process = subprocess.Popen(
            [sys.executable, "-c", _KILL_SCRIPT, str(directory)], env=env
        )
        try:
            # Wait until at least two shards hit the disk, then kill.
            deadline = time.monotonic() + 30.0
            store = CheckpointStore.for_run(directory, 5, 12, label="kill")
            while time.monotonic() < deadline:
                if len(store.completed_indices()) >= 2:
                    break
                if process.poll() is not None:
                    break
                time.sleep(0.05)
            if process.poll() is None:
                process.send_signal(signal.SIGTERM)
            process.wait(timeout=30)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)

        completed = store.completed_indices()
        assert len(completed) >= 1, "no shards were written before the kill"

        # Resume with a fast trial function drawing the same stream (the
        # sleep does not consume entropy), and compare against a run that
        # was never interrupted.
        resumed = run_trials(
            draw_normal,
            12,
            seed=5,
            checkpoint_dir=str(directory),
            checkpoint_label="kill",
        )
        uninterrupted = run_trials(draw_normal, 12, seed=5)
        assert resumed.values == uninterrupted.values
