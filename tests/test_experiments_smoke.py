"""Smoke/integration tests: every paper experiment runs and its headline
numbers land in the paper's neighbourhood (small trial counts — the
benchmark suite runs the full versions)."""

import pytest

from repro.experiments import (
    ablation_bank,
    ablation_detectors,
    fig1_bandwidth,
    fig2_cir,
    fig3_timing,
    fig4_detection,
    fig5_pulse_shapes,
    fig6_pulse_id,
    fig7_overlap,
    fig8_combined,
    localization_exp,
    sect5_precision,
    sect8_scalability,
    table1_pulse_id,
)


class TestFig1:
    def test_bandwidth_contrast(self):
        result = fig1_bandwidth.run()
        wide = result.metric("resolved_900MHz").measured
        narrow = result.metric("resolved_50MHz").measured
        assert wide >= 4
        assert narrow <= 1


class TestFig2:
    def test_six_components(self):
        result = fig2_cir.run()
        assert result.metric("detected_components").measured == 6
        assert result.metric("snr_db").measured > 20


class TestFig3:
    def test_min_delay_178_5us(self):
        result = fig3_timing.run()
        assert result.metric("min_delay_us").measured == pytest.approx(
            178.5, abs=0.5
        )
        assert result.metric("chosen_delta_resp_us").measured == 290.0


class TestFig4:
    def test_three_responders_detected(self):
        result = fig4_detection.run(trials=25, compensate_tx_quantization=True)
        assert result.metric("all_three_detected_rate").measured > 0.85
        for i, expected in enumerate((3.0, 6.0, 10.0), start=1):
            measured = result.metric(f"mean_distance_resp{i}_m").measured
            assert measured == pytest.approx(expected, abs=0.4)

    def test_pipeline_stages(self):
        stages = fig4_detection.pipeline_stages(seed=11)
        assert len(stages.detections) == 3
        assert stages.filter_output.max() > 0
        # Subtraction removes the dominant peak's energy.
        assert stages.after_first_subtraction.max() < stages.filter_output.max()


class TestFig5:
    def test_monotone_and_108_shapes(self):
        result = fig5_pulse_shapes.run()
        assert result.metric("width_monotone_in_register").measured == 1.0
        assert result.metric("supported_shapes").measured == 108


class TestFig6:
    def test_identification(self):
        result = fig6_pulse_id.run(trials=30)
        assert result.metric("both_detected_rate").measured > 0.9
        assert result.metric("both_identified_rate").measured > 0.9


class TestTable1:
    def test_high_accuracy(self):
        result = table1_pulse_id.run(trials=25)
        for comparison in result.comparisons:
            assert comparison.measured > 85.0  # percent


class TestFig7:
    def test_search_beats_threshold(self):
        result = fig7_overlap.run(trials=80)
        search = result.metric("search_and_subtract_rate").measured
        threshold = result.metric("threshold_rate").measured
        assert search > 0.8
        assert threshold < 0.65
        assert search > 1.3 * threshold


class TestSect5:
    def test_sigma_band(self):
        result = sect5_precision.run(trials=200)
        for name in ("sigma_s1_m", "sigma_s2_m", "sigma_s3_m"):
            sigma = result.metric(name).measured
            assert 0.015 < sigma < 0.04  # the paper's 2-3 cm band


class TestFig8:
    def test_nine_responders(self):
        result = fig8_combined.run(trials=10)
        assert result.metric("mean_identified_of_9").measured > 8.0
        assert result.metric("capacity").measured == 12


class TestSect8:
    def test_scalability_numbers(self):
        result = sect8_scalability.run()
        assert result.metric("n_rpm_75m").measured == 4
        assert result.metric("n_max_20m").measured >= 1500
        assert result.metric("scheduled_messages_n100").measured == 9900


class TestAblations:
    def test_detectors(self):
        result = ablation_detectors.run(trials=25)
        search = result.metric("mean_search_rate_overlapping").measured
        threshold = result.metric("mean_threshold_rate_overlapping").measured
        assert search > threshold

    def test_bank(self):
        result = ablation_bank.run(trials=25)
        assert result.metric("accuracy_3_shapes").measured > 0.9


class TestLocalization:
    def test_median_error(self):
        result = localization_exp.run(n_waypoints=6)
        assert result.metric("median_error_m").measured < 0.3


class TestRendering:
    def test_every_result_renders(self):
        result = fig3_timing.run()
        text = result.render()
        assert "Fig. 3" in text
        assert "measured" in text
