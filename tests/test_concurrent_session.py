"""Integration tests for the concurrent ranging session (Fig. 3 right)."""

import numpy as np
import pytest

from repro.channel.stochastic import IndoorEnvironment
from repro.core.rpm import SlotPlan
from repro.core.scheme import CombinedScheme
from repro.netsim.medium import Medium
from repro.netsim.node import Node
from repro.protocol.concurrent import ConcurrentRangingSession
from repro.signal.templates import TemplateBank


class TestBuild:
    def test_line_topology(self):
        session = ConcurrentRangingSession.build(
            responder_distances_m=[3.0, 6.0], seed=1
        )
        assert len(session.responders) == 2
        assert session.initiator.distance_to(session.responders[1]) == pytest.approx(
            6.0
        )

    def test_empty_distances_rejected(self):
        with pytest.raises(ValueError):
            ConcurrentRangingSession.build(responder_distances_m=[])

    def test_capacity_enforced(self):
        with pytest.raises(ValueError):
            ConcurrentRangingSession.build(
                responder_distances_m=[1.0, 2.0, 3.0], n_slots=1, n_shapes=2,
                seed=1,
            )

    def test_duplicate_assignments_opt_in(self, rng):
        medium = Medium(environment=IndoorEnvironment.hallway(), rng=rng)
        nodes = [Node.at(i, float(i), 0.0, rng=rng) for i in range(4)]
        medium.add_nodes(nodes)
        scheme = CombinedScheme(
            SlotPlan.for_range(20.0, n_slots=1), TemplateBank((0x93,))
        )
        session = ConcurrentRangingSession(
            medium=medium,
            initiator=nodes[0],
            responders=nodes[1:],
            scheme=scheme,
            allow_duplicate_assignments=True,
            rng=rng,
        )
        # Wrapped assignments all map to the single (slot, shape).
        assert session._assignment(2).slot == 0
        assert session._assignment(2).shape_index == 0


class TestRound:
    def test_anchor_distance_accuracy(self):
        session = ConcurrentRangingSession.build(
            responder_distances_m=[3.0, 6.0, 10.0], n_shapes=3, seed=2
        )
        errors = [abs(session.run_round().d_twr_m - 3.0) for _ in range(20)]
        assert np.median(errors) < 0.08

    def test_identification_with_compensation(self):
        session = ConcurrentRangingSession.build(
            responder_distances_m=[3.0, 6.0, 10.0],
            n_shapes=3,
            seed=3,
            compensate_tx_quantization=True,
        )
        hits = 0
        trials = 20
        for _ in range(trials):
            result = session.run_round()
            hits += sum(o.identified for o in result.outcomes)
        assert hits / (3 * trials) > 0.9

    def test_quantization_spreads_distance_error(self):
        """With faithful ~8 ns TX flooring, CIR distances jitter by
        ~0.5 m; with compensation they tighten to centimetres — the
        artefact the paper declares out of scope."""
        errors = {}
        for compensate in (False, True):
            session = ConcurrentRangingSession.build(
                responder_distances_m=[3.0, 8.0],
                n_shapes=2,
                seed=4,
                compensate_tx_quantization=compensate,
            )
            far_errors = []
            for _ in range(40):
                result = session.run_round()
                outcome = result.outcome_for(1)
                if outcome.identified:
                    far_errors.append(outcome.error_m)
            errors[compensate] = np.std(far_errors)
        assert errors[True] < 0.15
        assert errors[False] > 2 * errors[True]

    def test_trace_records_round(self):
        session = ConcurrentRangingSession.build(
            responder_distances_m=[3.0, 6.0], n_shapes=2, seed=5
        )
        result = session.run_round()
        # 1 INIT + 2 RESP transmissions.
        assert result.trace.message_count == 3
        assert result.trace.count("rx") == 3  # 2 INIT receptions + 1 aggregate

    def test_capture_contains_all_arrivals(self):
        session = ConcurrentRangingSession.build(
            responder_distances_m=[3.0, 6.0, 9.0], n_shapes=3, seed=6
        )
        result = session.run_round()
        assert len(result.capture.arrivals) == 3

    def test_outcome_for_unknown_raises(self):
        session = ConcurrentRangingSession.build(
            responder_distances_m=[3.0], seed=7
        )
        result = session.run_round()
        with pytest.raises(KeyError):
            result.outcome_for(99)

    def test_deterministic_given_start_time(self):
        a = ConcurrentRangingSession.build(
            responder_distances_m=[3.0, 6.0], n_shapes=2, seed=8
        )
        b = ConcurrentRangingSession.build(
            responder_distances_m=[3.0, 6.0], n_shapes=2, seed=8
        )
        ra = a.run_round(start_time_s=0.5)
        rb = b.run_round(start_time_s=0.5)
        assert ra.d_twr_m == rb.d_twr_m
        assert ra.ranging.distances_m == rb.ranging.distances_m

    def test_single_responder(self):
        session = ConcurrentRangingSession.build(
            responder_distances_m=[4.0], seed=9
        )
        result = session.run_round()
        assert result.outcome_for(0).detected

    def test_rpm_slots_separate_responses(self):
        """With 2 slots, the two responses appear ~one slot apart in the
        CIR even though the nodes are equidistant."""
        session = ConcurrentRangingSession.build(
            responder_distances_m=[5.0, 5.0],
            n_slots=2,
            n_shapes=1,
            seed=10,
            compensate_tx_quantization=True,
        )
        result = session.run_round()
        assert len(result.classified) == 2
        gap = abs(result.classified[1].delay_s - result.classified[0].delay_s)
        assert gap == pytest.approx(
            session.scheme.slot_plan.slot_duration_s, rel=0.05
        )
