"""Unit tests for repro.signal.templates."""

import numpy as np
import pytest

from repro.constants import (
    CIR_SAMPLING_PERIOD_S,
    NUM_PULSE_SHAPES,
    TC_PGDELAY_DEFAULT,
    TC_PGDELAY_MAX,
)
from repro.signal.templates import (
    PAPER_REGISTERS,
    TemplateBank,
    evenly_spaced_registers,
)


class TestEvenlySpacedRegisters:
    def test_single_register_is_default(self):
        assert evenly_spaced_registers(1) == [TC_PGDELAY_DEFAULT]

    def test_endpoints_included(self):
        registers = evenly_spaced_registers(5)
        assert registers[0] == TC_PGDELAY_DEFAULT
        assert registers[-1] == TC_PGDELAY_MAX

    def test_count_respected(self):
        for count in (2, 3, 10, 50, NUM_PULSE_SHAPES):
            assert len(evenly_spaced_registers(count)) == count

    def test_all_unique_and_sorted(self):
        registers = evenly_spaced_registers(40)
        assert registers == sorted(set(registers))

    def test_rejects_zero_and_excess(self):
        with pytest.raises(ValueError):
            evenly_spaced_registers(0)
        with pytest.raises(ValueError):
            evenly_spaced_registers(NUM_PULSE_SHAPES + 1)

    def test_max_count_fills_whole_range(self):
        registers = evenly_spaced_registers(NUM_PULSE_SHAPES)
        assert len(set(registers)) == NUM_PULSE_SHAPES


class TestTemplateBank:
    def test_paper_bank_registers(self):
        bank = TemplateBank.paper_bank(4)
        assert bank.registers == PAPER_REGISTERS

    def test_paper_bank_count_limits(self):
        with pytest.raises(ValueError):
            TemplateBank.paper_bank(0)
        with pytest.raises(ValueError):
            TemplateBank.paper_bank(5)

    def test_len_and_iteration(self, paper_bank):
        assert len(paper_bank) == 3
        assert len(list(paper_bank)) == 3

    def test_names_follow_paper_convention(self, paper_bank):
        assert paper_bank.names == ["s1", "s2", "s3"]
        assert paper_bank.name_of(0) == "s1"

    def test_name_of_out_of_range(self, paper_bank):
        with pytest.raises(IndexError):
            paper_bank.name_of(3)

    def test_index_of_register(self, paper_bank):
        assert paper_bank.index_of_register(0x93) == 0
        assert paper_bank.index_of_register(0xC8) == 1

    def test_index_of_unknown_register(self, paper_bank):
        with pytest.raises(KeyError):
            paper_bank.index_of_register(0xAA)

    def test_pulse_for_register(self, paper_bank):
        pulse = paper_bank.pulse_for_register(0xC8)
        assert pulse.register == 0xC8

    def test_duplicate_registers_rejected(self):
        with pytest.raises(ValueError):
            TemplateBank((0x93, 0x93))

    def test_empty_bank_rejected(self):
        with pytest.raises(ValueError):
            TemplateBank(())

    def test_all_templates_unit_energy(self, paper_bank):
        for pulse in paper_bank:
            assert pulse.energy() == pytest.approx(1.0)

    def test_resampled_bank(self, paper_bank):
        fine = paper_bank.resampled(CIR_SAMPLING_PERIOD_S / 8)
        assert fine.registers == paper_bank.registers
        assert fine.sampling_period_s == pytest.approx(CIR_SAMPLING_PERIOD_S / 8)

    def test_spread_bank_distinct_widths(self):
        bank = TemplateBank.spread(6)
        widths = [p.width_3db_s for p in bank]
        assert widths == sorted(widths)


class TestCrossCorrelationMatrix:
    def test_diagonal_is_one(self, paper_bank):
        matrix = paper_bank.cross_correlation_matrix()
        assert np.allclose(np.diag(matrix), 1.0)

    def test_symmetric(self, paper_bank):
        matrix = paper_bank.cross_correlation_matrix()
        assert np.allclose(matrix, matrix.T)

    def test_off_diagonal_below_one(self, paper_bank):
        matrix = paper_bank.cross_correlation_matrix()
        off = matrix[~np.eye(len(paper_bank), dtype=bool)]
        assert np.all(off < 0.95)
        assert np.all(off > 0.0)

    def test_adjacent_shapes_more_similar_than_distant(self):
        bank = TemplateBank.paper_bank(3)
        matrix = bank.cross_correlation_matrix()
        # s2 vs s3 (similar widths) correlate more than s1 vs s3.
        assert matrix[1, 2] > matrix[0, 2]
