"""Unit tests for the ranging math (paper Eq. 2 and Eq. 4)."""

import pytest

from repro.constants import SPEED_OF_LIGHT
from repro.core.detection import DetectedResponse
from repro.core.ranging import (
    RangingResult,
    concurrent_distances,
    sort_responses,
    twr_distance,
    twr_distance_compensated,
)


def response(delay_s, amplitude=1.0):
    return DetectedResponse(
        index=delay_s / 1e-9, delay_s=delay_s, amplitude=amplitude
    )


class TestTwrDistance:
    def test_ideal_exchange(self):
        d = 10.0
        tof = d / SPEED_OF_LIGHT
        reply = 290e-6
        # Tolerance reflects float cancellation in (t_round - t_reply):
        # a 290 us reply against a 30 ns round trip costs ~1e-8 m.
        assert twr_distance(0.0, 2 * tof + reply, 1.0, 1.0 + reply) == pytest.approx(
            d, abs=1e-6
        )

    def test_zero_distance(self):
        reply = 100e-6
        assert twr_distance(0.0, reply, 0.5, 0.5 + reply) == pytest.approx(0.0, abs=1e-6)

    def test_negative_round_trip_rejected(self):
        with pytest.raises(ValueError):
            twr_distance(1.0, 0.5, 0.0, 0.1)

    def test_negative_reply_rejected(self):
        with pytest.raises(ValueError):
            twr_distance(0.0, 1.0, 0.5, 0.4)

    def test_drift_bias_direction(self):
        """A responder clock running fast (positive ppm) measures the
        reply window as longer, so the uncompensated distance reads
        short."""
        d = 5.0
        tof = d / SPEED_OF_LIGHT
        reply_true = 290e-6
        drift_ppm = 2.0
        reply_measured = reply_true * (1 + drift_ppm * 1e-6)
        biased = twr_distance(0.0, 2 * tof + reply_true, 1.0, 1.0 + reply_measured)
        assert biased < d

    def test_compensation_removes_bias(self):
        d = 5.0
        tof = d / SPEED_OF_LIGHT
        reply_true = 290e-6
        drift_ppm = 2.0
        reply_measured = reply_true * (1 + drift_ppm * 1e-6)
        corrected = twr_distance_compensated(
            0.0,
            2 * tof + reply_true,
            1.0,
            1.0 + reply_measured,
            relative_drift_ppm=drift_ppm,
        )
        assert corrected == pytest.approx(d, abs=1e-6)

    def test_compensation_magnitude(self):
        """At 290 us reply and 2 ppm drift, the bias is ~9 cm — worth
        compensating, per the DW1000 application notes."""
        d = 5.0
        tof = d / SPEED_OF_LIGHT
        reply = 290e-6
        biased = twr_distance(
            0.0, 2 * tof + reply, 1.0, 1.0 + reply * (1 + 2e-6)
        )
        assert abs(biased - d) == pytest.approx(
            reply * 2e-6 / 2 * SPEED_OF_LIGHT, rel=1e-6
        )


class TestSortResponses:
    def test_orders_by_delay(self):
        responses = [response(30e-9), response(10e-9), response(20e-9)]
        ordered = sort_responses(responses)
        assert [r.delay_s for r in ordered] == [10e-9, 20e-9, 30e-9]

    def test_amplitude_ignored(self):
        responses = [response(30e-9, 10.0), response(10e-9, 0.1)]
        ordered = sort_responses(responses)
        assert ordered[0].delay_s == 10e-9


class TestConcurrentDistances:
    def test_anchor_gets_twr_distance(self):
        distances = concurrent_distances(3.0, [response(100e-9)])
        assert distances == [pytest.approx(3.0)]

    def test_paper_example(self):
        """The Sect. III worked example: responders at 3/6/10 m produce
        CIR delays of 0 / 2*(tau2-tau1) / 2*(tau3-tau1)."""
        d_twr = 3.0
        tau1 = 3.0 / SPEED_OF_LIGHT
        tau2 = 6.0 / SPEED_OF_LIGHT
        tau3 = 10.0 / SPEED_OF_LIGHT
        base = 100e-9
        responses = [
            response(base),
            response(base + 2 * (tau2 - tau1)),
            response(base + 2 * (tau3 - tau1)),
        ]
        distances = concurrent_distances(d_twr, responses)
        assert distances[0] == pytest.approx(3.0)
        assert distances[1] == pytest.approx(6.0, rel=1e-9)
        assert distances[2] == pytest.approx(10.0, rel=1e-9)

    def test_input_order_irrelevant(self):
        d_twr = 3.0
        delta = 2 * 3.0 / SPEED_OF_LIGHT  # +3 m
        a = concurrent_distances(d_twr, [response(0.0), response(delta)])
        b = concurrent_distances(d_twr, [response(delta), response(0.0)])
        assert a == b

    def test_empty(self):
        assert concurrent_distances(3.0, []) == []

    def test_negative_anchor_rejected(self):
        with pytest.raises(ValueError):
            concurrent_distances(-1.0, [response(0.0)])


class TestRangingResult:
    def test_distance_lookup(self):
        result = RangingResult(
            d_twr_m=3.0,
            responses=(response(0.0), response(10e-9)),
            distances_m=(3.0, 4.5),
            responder_ids=(0, 1),
        )
        assert result.distance_of(1) == 4.5
        assert len(result) == 2

    def test_missing_id_raises(self):
        result = RangingResult(
            d_twr_m=3.0, responses=(), distances_m=(), responder_ids=()
        )
        with pytest.raises(KeyError):
            result.distance_of(5)
