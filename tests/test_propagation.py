"""Unit tests for repro.channel.propagation."""

import numpy as np
import pytest

from repro.channel.propagation import (
    PathLossModel,
    friis_path_gain,
    log_distance_path_gain,
    propagation_delay_s,
)
from repro.constants import SPEED_OF_LIGHT

CARRIER = 6.4896e9


class TestDelay:
    def test_basic(self):
        assert propagation_delay_s(SPEED_OF_LIGHT) == pytest.approx(1.0)

    def test_zero(self):
        assert propagation_delay_s(0.0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            propagation_delay_s(-1.0)


class TestFriis:
    def test_inverse_distance(self):
        assert friis_path_gain(10.0, CARRIER) == pytest.approx(
            friis_path_gain(5.0, CARRIER) / 2.0
        )

    def test_inverse_frequency(self):
        assert friis_path_gain(5.0, 2 * CARRIER) == pytest.approx(
            friis_path_gain(5.0, CARRIER) / 2.0
        )

    def test_magnitude_at_10m_channel7(self):
        # lambda/(4 pi d) ~ 3.7e-4 at 6.49 GHz / 10 m.
        gain = friis_path_gain(10.0, CARRIER)
        assert 3e-4 < gain < 4.5e-4

    def test_near_field_clamped(self):
        assert friis_path_gain(0.0, CARRIER) == friis_path_gain(0.005, CARRIER)

    def test_invalid_frequency(self):
        with pytest.raises(ValueError):
            friis_path_gain(1.0, 0.0)


class TestLogDistance:
    def test_anchored_to_friis_at_reference(self):
        assert log_distance_path_gain(1.0, CARRIER) == pytest.approx(
            friis_path_gain(1.0, CARRIER)
        )

    def test_exponent_controls_decay(self):
        mild = log_distance_path_gain(10.0, CARRIER, exponent=1.6)
        steep = log_distance_path_gain(10.0, CARRIER, exponent=3.0)
        assert mild > steep

    def test_shadowing_scales_in_db(self):
        base = log_distance_path_gain(5.0, CARRIER)
        up = log_distance_path_gain(5.0, CARRIER, shadowing_db=6.0)
        assert up / base == pytest.approx(10 ** (6.0 / 20.0))


class TestPathLossModel:
    def test_friis_factory(self):
        model = PathLossModel.friis(CARRIER)
        assert model.amplitude_gain(10.0) == pytest.approx(
            friis_path_gain(10.0, CARRIER)
        )

    def test_log_distance_factory_deterministic_gain(self):
        model = PathLossModel.log_distance(CARRIER)
        assert model.amplitude_gain(10.0) == pytest.approx(
            log_distance_path_gain(10.0, CARRIER, exponent=model.exponent)
        )

    def test_sampled_gain_varies(self, rng):
        model = PathLossModel.log_distance(CARRIER, shadowing_sigma_db=3.0)
        samples = [model.sample_amplitude_gain(5.0, rng) for _ in range(50)]
        assert np.std(samples) > 0

    def test_sampled_gain_centred_on_median(self, rng):
        model = PathLossModel.log_distance(CARRIER, shadowing_sigma_db=2.0)
        samples = np.array(
            [model.sample_amplitude_gain(5.0, rng) for _ in range(2000)]
        )
        median = np.median(samples)
        assert median == pytest.approx(model.amplitude_gain(5.0), rel=0.1)

    def test_friis_sampling_is_deterministic(self, rng):
        model = PathLossModel.friis(CARRIER)
        a = model.sample_amplitude_gain(5.0, rng)
        b = model.sample_amplitude_gain(5.0, rng)
        assert a == b

    def test_gain_decreases_with_distance(self):
        model = PathLossModel.log_distance(CARRIER)
        gains = [model.amplitude_gain(d) for d in (1, 3, 10, 30)]
        assert all(a > b for a, b in zip(gains, gains[1:]))
