"""Unit tests for repro.radio.frame — incl. the paper's 178.5 us check."""

import pytest

from repro.constants import DELTA_RESP_S
from repro.protocol.messages import INIT_PAYLOAD_BYTES
from repro.radio.frame import (
    DataRate,
    Prf,
    RadioConfig,
    frame_duration,
    min_response_delay_s,
    preamble_symbol_duration_s,
)


class TestRadioConfig:
    def test_paper_defaults(self):
        config = RadioConfig()
        assert config.channel == 7
        assert config.data_rate is DataRate.DR_6800KBPS
        assert config.prf is Prf.PRF_64MHZ
        assert config.psr == 128

    def test_invalid_channel(self):
        with pytest.raises(ValueError):
            RadioConfig(channel=6)

    def test_invalid_psr(self):
        with pytest.raises(ValueError):
            RadioConfig(psr=100)

    def test_with_pulse_register(self):
        config = RadioConfig().with_pulse_register(0xC8)
        assert config.tc_pgdelay == 0xC8
        assert config.psr == 128


class TestPreambleSymbol:
    def test_prf64_duration(self):
        # 127 * 4 chips at 499.2 MHz ~= 1017.6 ns.
        assert preamble_symbol_duration_s(Prf.PRF_64MHZ) == pytest.approx(
            1017.63e-9, rel=1e-4
        )

    def test_prf16_duration(self):
        # 31 * 16 chips ~= 993.6 ns.
        assert preamble_symbol_duration_s(Prf.PRF_16MHZ) == pytest.approx(
            993.59e-9, rel=1e-4
        )


class TestFrameDuration:
    def test_preamble_scales_with_psr(self):
        short = frame_duration(RadioConfig(psr=64), 10)
        long = frame_duration(RadioConfig(psr=128), 10)
        assert long.preamble_s == pytest.approx(2 * short.preamble_s)

    def test_payload_grows_with_size(self):
        config = RadioConfig()
        small = frame_duration(config, 10)
        large = frame_duration(config, 100)
        assert large.payload_s > small.payload_s

    def test_zero_payload(self):
        timings = frame_duration(RadioConfig(), 0)
        assert timings.payload_s == 0.0
        assert timings.total_s > 0.0

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            frame_duration(RadioConfig(), -1)

    def test_slower_rate_longer_payload(self):
        fast = frame_duration(RadioConfig(data_rate=DataRate.DR_6800KBPS), 20)
        slow = frame_duration(RadioConfig(data_rate=DataRate.DR_110KBPS), 20)
        assert slow.payload_s > 10 * fast.payload_s

    def test_total_is_sum(self):
        t = frame_duration(RadioConfig(), 20)
        assert t.total_s == pytest.approx(
            t.preamble_s + t.sfd_s + t.phr_s + t.payload_s
        )

    def test_after_rmarker(self):
        t = frame_duration(RadioConfig(), 20)
        assert t.after_rmarker_s == pytest.approx(t.phr_s + t.payload_s)
        assert t.shr_s == pytest.approx(t.preamble_s + t.sfd_s)


class TestPaperTiming:
    def test_minimum_delay_matches_paper_178_5us(self):
        """The paper's headline number: 178.5 us at DR = 6.8 Mbps,
        PRF = 64 MHz, PSR = 128."""
        config = RadioConfig()
        init = frame_duration(config, INIT_PAYLOAD_BYTES)
        resp = frame_duration(config, 0)
        minimum = init.after_rmarker_s + resp.shr_s
        assert minimum == pytest.approx(178.5e-6, abs=0.5e-6)

    def test_delta_resp_covers_minimum_plus_turnaround(self):
        config = RadioConfig()
        assert DELTA_RESP_S > min_response_delay_s(config, INIT_PAYLOAD_BYTES)

    def test_min_delay_includes_turnaround(self):
        config = RadioConfig()
        without = min_response_delay_s(config, INIT_PAYLOAD_BYTES, turnaround_s=0.0)
        with_turnaround = min_response_delay_s(config, INIT_PAYLOAD_BYTES)
        assert with_turnaround == pytest.approx(without + 100e-6)
