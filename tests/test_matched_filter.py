"""Unit tests for repro.core.matched_filter."""

import numpy as np
import pytest

from repro.core.matched_filter import filter_bank_outputs, matched_filter
from repro.signal.sampling import place_pulse


class TestAlignment:
    def test_peak_lands_on_pulse_position(self, default_pulse):
        cir = np.zeros(512, dtype=complex)
        place_pulse(cir, default_pulse.samples.astype(complex), 237.0, 1.0)
        y = matched_filter(cir, default_pulse)
        assert np.argmax(np.abs(y)) == 237

    def test_output_length_matches_input(self, default_pulse, rng):
        cir = rng.standard_normal(300) + 0j
        assert len(matched_filter(cir, default_pulse)) == 300

    def test_amplitude_recovered_with_unit_energy_template(self, default_pulse):
        """y at the peak equals the pulse's complex amplitude (the basis
        of the paper's step 4)."""
        cir = np.zeros(512, dtype=complex)
        amp = 0.7 * np.exp(1j * 0.9)
        place_pulse(cir, default_pulse.samples.astype(complex), 100.0, amp)
        y = matched_filter(cir, default_pulse)
        assert y[100] == pytest.approx(amp, rel=1e-6)

    def test_pulse_near_edges(self, default_pulse):
        cir = np.zeros(128, dtype=complex)
        place_pulse(cir, default_pulse.samples.astype(complex), 5.0, 1.0)
        y = matched_filter(cir, default_pulse)
        assert np.argmax(np.abs(y)) == 5

    def test_raw_array_template(self, default_pulse):
        cir = np.zeros(256, dtype=complex)
        place_pulse(cir, default_pulse.samples.astype(complex), 80.0, 1.0)
        y = matched_filter(cir, default_pulse.samples)
        assert np.argmax(np.abs(y)) == 80


class TestSnrGain:
    def test_filter_improves_snr(self, default_pulse, rng):
        """The paper's observation on Fig. 4b: matched filtering
        increases the CIR's SNR."""
        fine = default_pulse.resampled(default_pulse.sampling_period_s / 8)
        n = 2048
        cir = np.zeros(n, dtype=complex)
        place_pulse(cir, fine.samples.astype(complex), 1000.0, 0.05)
        noise = (rng.standard_normal(n) + 1j * rng.standard_normal(n)) / np.sqrt(2)
        noisy = cir + 0.01 * noise
        y = matched_filter(noisy, fine)
        snr_before = np.abs(noisy[1000]) / 0.01
        noise_out = np.std(np.abs(y[:500]))
        snr_after = np.abs(y[1000]) / noise_out
        assert snr_after > snr_before


class TestValidation:
    def test_rejects_2d_cir(self, default_pulse, rng):
        with pytest.raises(ValueError):
            matched_filter(rng.standard_normal((10, 10)), default_pulse)

    def test_rejects_2d_template(self, rng):
        with pytest.raises(ValueError):
            matched_filter(rng.standard_normal(32), rng.standard_normal((2, 2)))

    def test_rejects_bad_peak_index(self, default_pulse, rng):
        with pytest.raises(ValueError):
            matched_filter(
                rng.standard_normal(64), default_pulse.samples, peak_index=999
            )


class TestFilterBank:
    def test_stacked_shape(self, paper_bank, rng):
        cir = rng.standard_normal(256) + 0j
        outputs = filter_bank_outputs(cir, paper_bank)
        assert outputs.shape == (3, 256)

    def test_matching_template_wins(self, paper_bank):
        cir = np.zeros(512, dtype=complex)
        place_pulse(cir, paper_bank[1].samples.astype(complex), 200.0, 1.0)
        outputs = filter_bank_outputs(cir, paper_bank)
        peaks = np.abs(outputs[:, 200])
        assert np.argmax(peaks) == 1
