"""Integration tests for event-driven ranging campaigns."""

import numpy as np
import pytest

from repro.protocol.campaign import RangingCampaign
from repro.protocol.concurrent import ConcurrentRangingSession


@pytest.fixture
def session():
    return ConcurrentRangingSession.build(
        responder_distances_m=[3.0, 7.0],
        n_shapes=2,
        seed=77,
        compensate_tx_quantization=True,
    )


class TestCampaign:
    def test_round_count(self, session):
        result = RangingCampaign(session, round_interval_s=0.05).run(5)
        assert result.n_rounds == 5
        assert result.round_times_s == pytest.approx(
            [0.0, 0.05, 0.10, 0.15, 0.20]
        )

    def test_identification_rate(self, session):
        result = RangingCampaign(session).run(10)
        assert result.identification_rate() > 0.8

    def test_distance_errors_centimetre_scale(self, session):
        result = RangingCampaign(session).run(15)
        errors = result.distance_errors_m()
        assert len(errors) > 0
        assert np.median(np.abs(errors)) < 0.25

    def test_rounds_see_fresh_channels(self, session):
        """Channel refresh between rounds: CIRs differ across rounds."""
        result = RangingCampaign(session).run(2)
        a = result.rounds[0].capture.samples
        b = result.rounds[1].capture.samples
        assert not np.allclose(a, b)

    def test_merged_trace_counts(self, session):
        result = RangingCampaign(session).run(4)
        trace = result.merged_trace()
        # Per round: 1 INIT + 2 RESP transmissions.
        assert trace.message_count == 4 * 3

    def test_energy_accumulates(self, session):
        campaign = RangingCampaign(session)
        campaign.run(3)
        energy_3 = campaign.session.initiator.radio.energy.energy_j
        campaign.run(3)
        energy_6 = campaign.session.initiator.radio.energy.energy_j
        assert energy_6 > energy_3

    def test_validation(self, session):
        with pytest.raises(ValueError):
            RangingCampaign(session, round_interval_s=0.0)
        with pytest.raises(ValueError):
            RangingCampaign(session).run(0)

    def test_empty_campaign_rates_rejected(self):
        from repro.protocol.campaign import CampaignResult

        with pytest.raises(ValueError):
            CampaignResult().identification_rate()
