"""Property-based tests (hypothesis) for the core algorithms."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.constants import CIR_SAMPLING_PERIOD_S as TS
from repro.constants import SPEED_OF_LIGHT
from repro.core.detection import (
    DetectedResponse,
    SearchAndSubtract,
    SearchAndSubtractConfig,
)
from repro.core.ranging import concurrent_distances, twr_distance_compensated
from repro.core.rpm import SlotPlan
from repro.core.scheme import CombinedScheme
from repro.signal.pulses import dw1000_pulse
from repro.signal.sampling import place_pulse
from repro.signal.templates import TemplateBank

_PULSE = dw1000_pulse()
_DETECTOR = SearchAndSubtract(
    _PULSE, SearchAndSubtractConfig(max_responses=1, upsample_factor=8)
)


class TestDetectionProperties:
    @given(
        position=st.floats(min_value=100.0, max_value=900.0),
        amp_db=st.floats(min_value=-30.0, max_value=0.0),
        phase=st.floats(min_value=0.0, max_value=2 * np.pi),
    )
    @settings(max_examples=30, deadline=None)
    def test_single_pulse_always_found(self, position, amp_db, phase):
        """Detection is amplitude-agnostic over a 30 dB range (the
        paper's challenge-IV requirement)."""
        amplitude = 10 ** (amp_db / 20.0) * np.exp(1j * phase)
        cir = np.zeros(1016, dtype=complex)
        place_pulse(cir, _PULSE.samples.astype(complex), position, amplitude)
        response = _DETECTOR.detect(cir, TS)[0]
        assert response.index == pytest.approx(position, abs=0.15)
        assert abs(response.amplitude) == pytest.approx(abs(amplitude), rel=0.05)

    @given(
        p1=st.floats(min_value=100.0, max_value=400.0),
        gap=st.floats(min_value=30.0, max_value=400.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_two_separated_pulses_ordered(self, p1, gap):
        detector = SearchAndSubtract(
            _PULSE, SearchAndSubtractConfig(max_responses=2)
        )
        cir = np.zeros(1016, dtype=complex)
        place_pulse(cir, _PULSE.samples.astype(complex), p1, 1.0)
        place_pulse(cir, _PULSE.samples.astype(complex), p1 + gap, 0.5)
        responses = detector.detect(cir, TS)
        assert responses[0].delay_s <= responses[1].delay_s
        assert responses[0].index == pytest.approx(p1, abs=0.2)


class TestRangingProperties:
    @given(
        distance=st.floats(min_value=0.1, max_value=100.0),
        drift_ppm=st.floats(min_value=-5.0, max_value=5.0),
        reply_us=st.floats(min_value=100.0, max_value=1000.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_compensated_twr_exact_for_known_drift(
        self, distance, drift_ppm, reply_us
    ):
        tof = distance / SPEED_OF_LIGHT
        reply_true = reply_us * 1e-6
        reply_measured = reply_true * (1 + drift_ppm * 1e-6)
        estimate = twr_distance_compensated(
            0.0, 2 * tof + reply_true, 1.0, 1.0 + reply_measured, drift_ppm
        )
        assert estimate == pytest.approx(distance, abs=1e-4)

    @given(
        d_twr=st.floats(min_value=0.5, max_value=50.0),
        extras=st.lists(
            st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=8
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_concurrent_distances_monotone(self, d_twr, extras):
        """Later responses always decode to larger-or-equal distances."""
        base = 100e-9
        responses = [
            DetectedResponse(index=0.0, delay_s=base + extra * 1e-9, amplitude=1.0)
            for extra in extras
        ]
        distances = concurrent_distances(d_twr, responses)
        assert distances == sorted(distances)
        assert distances[0] == pytest.approx(d_twr)

    @given(
        d_twr=st.floats(min_value=0.5, max_value=50.0),
        extra_ns=st.floats(min_value=0.0, max_value=500.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_eq4_half_rate(self, d_twr, extra_ns):
        """1 ns of CIR delay difference = c/2 of distance (Eq. 4)."""
        responses = [
            DetectedResponse(index=0.0, delay_s=0.0, amplitude=1.0),
            DetectedResponse(index=0.0, delay_s=extra_ns * 1e-9, amplitude=1.0),
        ]
        distances = concurrent_distances(d_twr, responses)
        assert distances[1] - distances[0] == pytest.approx(
            extra_ns * 1e-9 * SPEED_OF_LIGHT / 2.0, rel=1e-9
        )


class TestSchemeProperties:
    @given(
        n_slots=st.integers(min_value=1, max_value=8),
        n_shapes=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=30, deadline=None)
    def test_assignment_roundtrip(self, n_slots, n_shapes):
        """decode(assign(id)) == id over the whole capacity."""
        scheme = CombinedScheme(
            SlotPlan(n_slots=n_slots, slot_duration_s=100e-9),
            TemplateBank.paper_bank(n_shapes) if n_shapes <= 4
            else TemplateBank.spread(n_shapes),
        )
        for responder_id in range(scheme.capacity):
            a = scheme.assignment(responder_id)
            assert scheme.decode_id(a.slot, a.shape_index) == responder_id

    @given(
        n_slots=st.integers(min_value=1, max_value=10),
        offset_ns=st.floats(min_value=-40.0, max_value=1000.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_slot_residual_consistency(self, n_slots, offset_ns):
        """slot * duration + residual always reconstructs the offset."""
        plan = SlotPlan(n_slots=n_slots, slot_duration_s=100e-9)
        offset = offset_ns * 1e-9
        slot = plan.slot_of_offset(offset)
        residual = plan.offset_within_slot(offset)
        assert slot * plan.slot_duration_s + residual == pytest.approx(
            offset, abs=1e-15
        )
        assert 0 <= slot < n_slots
