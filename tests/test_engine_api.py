"""The shared engine API: structural conformance + uniform behaviour.

Every CIR-consuming engine must satisfy :class:`repro.core.Engine`
(``detect``/``detect_batch``); classifiers additionally satisfy
:class:`repro.core.ClassifierEngine` (``classify``/``classify_batch``).
These tests pin the contract the rest of the codebase (experiments,
trial runtime, benchmarks) relies on: runtime-checkable protocol
membership, uniform ``(cirs, sampling_period_s, noise_std)`` signatures,
``B == 0 -> []``, delay-ascending ordering, and the batch entry points
being exported from ``repro.core``.
"""

import inspect

import numpy as np
import pytest

from repro import core
from repro.constants import CIR_SAMPLING_PERIOD_S as TS
from repro.core import ClassifierEngine, Engine
from repro.core.detection import SearchAndSubtract, SearchAndSubtractConfig
from repro.core.pulse_id import PulseShapeClassifier
from repro.core.threshold import ThresholdConfig, ThresholdDetector
from repro.signal.pulses import dw1000_pulse
from repro.signal.sampling import place_pulse
from repro.signal.templates import TemplateBank

_PULSE = dw1000_pulse()
_BANK = TemplateBank.paper_bank(2)


def _engines():
    return [
        SearchAndSubtract(_BANK, SearchAndSubtractConfig(max_responses=2)),
        ThresholdDetector(_PULSE, ThresholdConfig(max_responses=2)),
        PulseShapeClassifier(_BANK, SearchAndSubtractConfig(max_responses=2)),
    ]


def _two_pulse_cir(rng, length=509):
    cir = np.zeros(length, dtype=complex)
    for position in (120.0, 320.0):
        place_pulse(
            cir,
            _PULSE.samples.astype(complex),
            position,
            0.5 * np.exp(1j * rng.uniform(0, 2 * np.pi)),
        )
    cir += 0.01 * (
        rng.standard_normal(length) + 1j * rng.standard_normal(length)
    ) / np.sqrt(2.0)
    return cir


class TestProtocolConformance:
    @pytest.mark.parametrize("engine", _engines(), ids=lambda e: type(e).__name__)
    def test_every_engine_is_an_engine(self, engine):
        assert isinstance(engine, Engine)

    def test_classifier_is_a_classifier_engine(self):
        classifier = PulseShapeClassifier(_BANK)
        assert isinstance(classifier, ClassifierEngine)
        assert isinstance(classifier, Engine)  # refinement, not a fork

    @pytest.mark.parametrize(
        "engine",
        [
            SearchAndSubtract(_PULSE),
            ThresholdDetector(_PULSE),
        ],
        ids=lambda e: type(e).__name__,
    )
    def test_pure_detectors_are_not_classifier_engines(self, engine):
        assert not isinstance(engine, ClassifierEngine)

    def test_non_engine_rejected(self):
        assert not isinstance(object(), Engine)

    @pytest.mark.parametrize("engine", _engines(), ids=lambda e: type(e).__name__)
    def test_uniform_signatures(self, engine):
        """Beyond method presence: the parameter *names* line up, so
        keyword call sites can swap engines freely."""
        for method_name in ("detect", "detect_batch"):
            parameters = list(
                inspect.signature(getattr(engine, method_name)).parameters
            )
            assert parameters[0] in ("cir", "cirs")
            assert parameters[1] == "sampling_period_s"
            assert "noise_std" in parameters


class TestUniformBehaviour:
    @pytest.mark.parametrize("engine", _engines(), ids=lambda e: type(e).__name__)
    def test_empty_batch_returns_empty(self, engine):
        assert engine.detect_batch(np.zeros((0, 256)), TS) == []

    @pytest.mark.parametrize("engine", _engines(), ids=lambda e: type(e).__name__)
    def test_batch_entries_match_serial(self, engine):
        rng = np.random.default_rng(5)
        cirs = np.stack([_two_pulse_cir(rng) for _ in range(3)])
        serial = [
            engine.detect(cirs[b], TS, noise_std=0.01) for b in range(3)
        ]
        batched = engine.detect_batch(cirs, TS, noise_std=0.01)
        assert len(batched) == 3
        for got, want in zip(batched, serial):
            assert [r.template_index for r in got] == [
                r.template_index for r in want
            ]
            assert [r.index for r in got] == pytest.approx(
                [r.index for r in want], rel=1e-9
            )

    @pytest.mark.parametrize("engine", _engines(), ids=lambda e: type(e).__name__)
    def test_responses_sorted_by_delay(self, engine):
        rng = np.random.default_rng(9)
        responses = engine.detect(_two_pulse_cir(rng), TS, noise_std=0.01)
        delays = [r.delay_s for r in responses]
        assert delays == sorted(delays)
        assert len(responses) == 2

    def test_classifier_batch_matches_serial_classify(self):
        classifier = PulseShapeClassifier(
            _BANK, SearchAndSubtractConfig(max_responses=2)
        )
        rng = np.random.default_rng(17)
        cirs = np.stack([_two_pulse_cir(rng) for _ in range(2)])
        serial = [
            classifier.classify(cirs[b], TS, noise_std=0.01) for b in range(2)
        ]
        batched = classifier.classify_batch(cirs, TS, noise_std=0.01)
        for got, want in zip(batched, serial):
            assert [c.shape_index for c in got] == [
                c.shape_index for c in want
            ]
            assert [c.confidence for c in got] == pytest.approx(
                [c.confidence for c in want], rel=1e-9
            )


class TestCoreExports:
    """The batch entry points and protocols ship from ``repro.core``."""

    @pytest.mark.parametrize(
        "name",
        [
            "Engine",
            "ClassifierEngine",
            "BatchClassifierPlan",
            "ClassifyBatchTrial",
            "batch_classifier_plan",
            "classify_batch",
            "classify_responses",
            "detect_batch",
            "detect_threshold_batch",
        ],
    )
    def test_exported(self, name):
        assert name in core.__all__
        assert getattr(core, name) is not None
