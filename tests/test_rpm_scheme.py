"""Unit tests for response position modulation and the combined scheme
(paper Sect. VII and VIII)."""

import pytest

from repro.constants import RPM_MAX_OFFSET_M, RPM_MAX_OFFSET_S, SPEED_OF_LIGHT
from repro.core.pulse_id import ClassifiedResponse
from repro.core.detection import DetectedResponse
from repro.core.rpm import SlotPlan, paper_slot_count, safe_slot_count
from repro.core.scheme import CombinedScheme
from repro.signal.templates import TemplateBank


class TestSlotCounts:
    def test_paper_value_75m(self):
        """Sect. VIII: ~4 responders at r_max = 75 m."""
        assert paper_slot_count(75.0) == 4

    def test_paper_value_20m(self):
        """Sect. VIII: >15 slots at 20 m -> >1500 users with 100 shapes."""
        assert paper_slot_count(20.0) >= 15

    def test_max_offset_matches_paper(self):
        # 1016 taps x 1.0016 ns x c ~= 305 m (paper rounds to 307 m).
        assert RPM_MAX_OFFSET_M == pytest.approx(305.0, abs=3.0)

    def test_safe_count_smaller_than_paper(self):
        for r_max in (10.0, 20.0, 75.0):
            assert safe_slot_count(r_max) <= paper_slot_count(r_max)

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            paper_slot_count(0.0)
        with pytest.raises(ValueError):
            safe_slot_count(-5.0)

    def test_safe_guard_reduces_count(self):
        assert safe_slot_count(20.0, guard_s=200e-9) <= safe_slot_count(
            20.0, guard_s=0.0
        )


class TestSlotPlan:
    def test_for_range_paper_mode(self):
        plan = SlotPlan.for_range(75.0, mode="paper")
        assert plan.n_slots == 4
        assert plan.n_slots * plan.slot_duration_s == pytest.approx(
            RPM_MAX_OFFSET_S
        )

    def test_explicit_slot_count(self):
        plan = SlotPlan.for_range(20.0, n_slots=4)
        assert plan.n_slots == 4

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            SlotPlan.for_range(20.0, mode="bogus")

    def test_delays(self):
        plan = SlotPlan(n_slots=4, slot_duration_s=100e-9)
        assert plan.delay_for_slot(0) == 0.0
        assert plan.delay_for_slot(3) == pytest.approx(300e-9)

    def test_delay_out_of_range(self):
        plan = SlotPlan(n_slots=4, slot_duration_s=100e-9)
        with pytest.raises(ValueError):
            plan.delay_for_slot(4)
        with pytest.raises(ValueError):
            plan.delay_for_slot(-1)

    def test_slot_of_offset_rounds(self):
        plan = SlotPlan(n_slots=4, slot_duration_s=100e-9)
        assert plan.slot_of_offset(0.0) == 0
        assert plan.slot_of_offset(40e-9) == 0
        assert plan.slot_of_offset(60e-9) == 1
        assert plan.slot_of_offset(-30e-9) == 0  # closer-than-anchor
        assert plan.slot_of_offset(310e-9) == 3

    def test_slot_clamped(self):
        plan = SlotPlan(n_slots=2, slot_duration_s=100e-9)
        assert plan.slot_of_offset(1e-6) == 1

    def test_offset_within_slot_signed(self):
        plan = SlotPlan(n_slots=4, slot_duration_s=100e-9)
        assert plan.offset_within_slot(130e-9) == pytest.approx(30e-9)
        assert plan.offset_within_slot(-20e-9) == pytest.approx(-20e-9)

    def test_plan_exceeding_cir_rejected(self):
        with pytest.raises(ValueError):
            SlotPlan(n_slots=10, slot_duration_s=200e-9)

    def test_invalid_plan_values(self):
        with pytest.raises(ValueError):
            SlotPlan(n_slots=0, slot_duration_s=100e-9)
        with pytest.raises(ValueError):
            SlotPlan(n_slots=2, slot_duration_s=0.0)


class TestCombinedScheme:
    @pytest.fixture
    def scheme(self):
        return CombinedScheme(
            SlotPlan(n_slots=4, slot_duration_s=200e-9),
            TemplateBank.paper_bank(3),
        )

    def test_capacity(self, scheme):
        """The paper's Fig. 8: N_max = N_RPM * N_PS = 12."""
        assert scheme.capacity == 12

    def test_assignment_mapping(self, scheme):
        """slot = ID % N_RPM, shape = ID // N_RPM (normalised paper rule)."""
        a5 = scheme.assignment(5)
        assert a5.slot == 1
        assert a5.shape_index == 1
        a0 = scheme.assignment(0)
        assert (a0.slot, a0.shape_index) == (0, 0)
        a11 = scheme.assignment(11)
        assert (a11.slot, a11.shape_index) == (3, 2)

    def test_assignment_bijective(self, scheme):
        seen = set()
        for responder_id in range(scheme.capacity):
            a = scheme.assignment(responder_id)
            seen.add((a.slot, a.shape_index))
            assert scheme.decode_id(a.slot, a.shape_index) == responder_id
        assert len(seen) == scheme.capacity

    def test_extra_delay_follows_slot(self, scheme):
        assert scheme.assignment(6).extra_delay_s == pytest.approx(
            2 * 200e-9
        )

    def test_register_follows_shape(self, scheme):
        assert scheme.assignment(4).register == scheme.bank.registers[1]

    def test_out_of_capacity_rejected(self, scheme):
        with pytest.raises(ValueError):
            scheme.assignment(12)
        with pytest.raises(ValueError):
            scheme.assignment(-1)

    def test_decode_id_validation(self, scheme):
        with pytest.raises(ValueError):
            scheme.decode_id(4, 0)
        with pytest.raises(ValueError):
            scheme.decode_id(0, 3)

    def test_shape_name(self, scheme):
        assert scheme.assignment(8).shape_name == "s3"


class TestDecodeResponses:
    @pytest.fixture
    def scheme(self):
        return CombinedScheme(
            SlotPlan(n_slots=4, slot_duration_s=200e-9),
            TemplateBank.paper_bank(3),
        )

    def _classified(self, delay_s, shape):
        return ClassifiedResponse(
            response=DetectedResponse(index=0.0, delay_s=delay_s, amplitude=1.0),
            shape_index=shape,
            confidence=2.0,
        )

    def test_single_anchor(self, scheme):
        result = scheme.decode_responses([self._classified(100e-9, 0)], 3.0)
        assert result.responder_ids == (0,)
        assert result.distances_m[0] == pytest.approx(3.0)

    def test_full_fig8_decode(self, scheme):
        """Nine responders across slots and shapes decode to unique IDs
        and correct distances."""
        d_twr = 3.0
        anchor_delay = 100e-9
        classified = []
        expected = {}
        for responder_id, distance in zip(range(9), (3, 4, 5, 6, 7, 8, 9, 4.5, 6.5)):
            a = scheme.assignment(responder_id)
            extra = 2 * (distance - d_twr) / SPEED_OF_LIGHT
            classified.append(
                self._classified(
                    anchor_delay + a.extra_delay_s + extra, a.shape_index
                )
            )
            expected[responder_id] = distance
        result = scheme.decode_responses(classified, d_twr)
        assert sorted(result.responder_ids) == list(range(9))
        for rid, dist in zip(result.responder_ids, result.distances_m):
            assert dist == pytest.approx(expected[rid], rel=1e-9)

    def test_closer_than_anchor_same_slot(self, scheme):
        """A same-slot responder *closer* than the anchor decodes with a
        distance below d_TWR (negative residual)."""
        d_twr = 5.0
        anchor_delay = 100e-9
        closer_extra = 2 * (3.0 - 5.0) / SPEED_OF_LIGHT  # negative
        classified = [
            self._classified(anchor_delay, 0),
            self._classified(anchor_delay + scheme.slot_plan.slot_duration_s
                             + closer_extra, 1),
        ]
        result = scheme.decode_responses(classified, d_twr)
        assert result.responder_ids == (0, 5)
        assert result.distances_m[1] == pytest.approx(3.0, rel=1e-9)

    def test_empty(self, scheme):
        result = scheme.decode_responses([], 3.0)
        assert len(result) == 0
