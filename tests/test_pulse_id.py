"""Unit tests for pulse-shape classification (paper Sect. V)."""

import numpy as np
import pytest

from repro.constants import CIR_SAMPLING_PERIOD_S as TS
from repro.core.detection import SearchAndSubtractConfig
from repro.core.pulse_id import ClassifiedResponse, PulseShapeClassifier
from repro.signal.sampling import place_pulse
from repro.signal.templates import TemplateBank


def make_cir(pulses, n=1016, noise_std=0.0, rng=None):
    cir = np.zeros(n, dtype=complex)
    for position, amplitude, template in pulses:
        place_pulse(cir, template.samples.astype(complex), position, amplitude)
    if noise_std > 0:
        cir += noise_std * (
            rng.standard_normal(n) + 1j * rng.standard_normal(n)
        ) / np.sqrt(2)
    return cir


class TestClassification:
    def test_each_shape_classified_correctly(self, paper_bank, rng):
        classifier = PulseShapeClassifier(
            paper_bank, SearchAndSubtractConfig(max_responses=1)
        )
        for shape in range(3):
            cir = make_cir(
                [(350.0, 1e-3, paper_bank[shape])], noise_std=1e-5, rng=rng
            )
            result = classifier.classify(cir, TS, noise_std=1e-5)
            assert result[0].shape_index == shape

    def test_two_responders_two_shapes(self, paper_bank, rng):
        """The Fig. 6 scenario: s1 at one delay, s3 at another."""
        cir = make_cir(
            [(150.0, 1e-3, paper_bank[0]), (450.0, 0.6e-3, paper_bank[2])],
            noise_std=1e-5,
            rng=rng,
        )
        classifier = PulseShapeClassifier(
            paper_bank, SearchAndSubtractConfig(max_responses=2)
        )
        results = classifier.classify(cir, TS, noise_std=1e-5)
        assert [r.shape_index for r in results] == [0, 2]

    def test_output_sorted_by_delay(self, paper_bank, rng):
        cir = make_cir(
            [(500.0, 1e-3, paper_bank[1]), (100.0, 0.5e-3, paper_bank[0])],
            noise_std=1e-5,
            rng=rng,
        )
        classifier = PulseShapeClassifier(
            paper_bank, SearchAndSubtractConfig(max_responses=2)
        )
        results = classifier.classify(cir, TS, noise_std=1e-5)
        assert results[0].delay_s < results[1].delay_s

    def test_confidence_above_one(self, paper_bank, rng):
        cir = make_cir([(300.0, 1e-3, paper_bank[0])], noise_std=1e-5, rng=rng)
        classifier = PulseShapeClassifier(
            paper_bank, SearchAndSubtractConfig(max_responses=1)
        )
        result = classifier.classify(cir, TS, noise_std=1e-5)[0]
        assert result.confidence > 1.0

    def test_shape_name(self, paper_bank, rng):
        cir = make_cir([(300.0, 1e-3, paper_bank[2])], noise_std=1e-5, rng=rng)
        classifier = PulseShapeClassifier(
            paper_bank, SearchAndSubtractConfig(max_responses=1)
        )
        assert classifier.classify(cir, TS, noise_std=1e-5)[0].shape_name == "s3"

    def test_single_template_bank_confidence_infinite(self, rng):
        bank = TemplateBank((0x93,))
        cir = make_cir([(300.0, 1e-3, bank[0])], noise_std=1e-5, rng=rng)
        classifier = PulseShapeClassifier(
            bank, SearchAndSubtractConfig(max_responses=1)
        )
        result = classifier.classify(cir, TS, noise_std=1e-5)[0]
        assert result.confidence == float("inf")

    def test_amplitude_independence(self, paper_bank, rng):
        """Classification works across a 20 dB amplitude range — the
        amplitude-agnostic requirement of challenge IV."""
        classifier = PulseShapeClassifier(
            paper_bank, SearchAndSubtractConfig(max_responses=1)
        )
        for amplitude in (1e-2, 1e-3, 2e-4):
            cir = make_cir(
                [(300.0, amplitude, paper_bank[1])], noise_std=1e-5, rng=rng
            )
            result = classifier.classify(cir, TS, noise_std=1e-5)
            assert result[0].shape_index == 1


class TestFilterBankOutputs:
    def test_shape(self, paper_bank, rng):
        cir = make_cir([(300.0, 1e-3, paper_bank[0])], n=512, noise_std=1e-5,
                       rng=rng)
        classifier = PulseShapeClassifier(
            paper_bank, SearchAndSubtractConfig(max_responses=1, upsample_factor=4)
        )
        outputs = classifier.filter_bank_outputs(cir, TS)
        assert outputs.shape == (3, 512 * 4)


class TestAccessors:
    def test_classified_response_properties(self, paper_bank, rng):
        cir = make_cir([(222.0, 1e-3, paper_bank[0])], noise_std=1e-5, rng=rng)
        classifier = PulseShapeClassifier(
            paper_bank, SearchAndSubtractConfig(max_responses=1)
        )
        result = classifier.classify(cir, TS, noise_std=1e-5)[0]
        assert isinstance(result, ClassifiedResponse)
        assert result.index == pytest.approx(222.0, abs=0.2)
        assert result.delay_s == pytest.approx(222.0 * TS, rel=1e-3)
        assert abs(result.amplitude) == pytest.approx(1e-3, rel=0.1)

    def test_index_proxy_is_float(self, paper_bank, rng):
        """Regression: ``ClassifiedResponse.index`` is annotated
        ``-> float`` but used to hand back whatever the wrapped
        :class:`DetectedResponse` stored (an ``np.float64``), leaking
        NumPy scalars into e.g. JSON serialisation.  The proxy must
        coerce to a builtin float."""
        from repro.core.detection import DetectedResponse
        from repro.core.pulse_id import classify_responses

        response = DetectedResponse(
            index=np.float64(123.25),
            delay_s=123.25 * TS,
            amplitude=1.0 + 0j,
            template_index=0,
            scores=(1.0,),
        )
        [classified] = classify_responses([response])
        assert type(classified.index) is float
        assert classified.index == 123.25
        # The end-to-end path returns builtin floats too.
        cir = make_cir([(222.0, 1e-3, paper_bank[0])], noise_std=1e-5, rng=rng)
        classifier = PulseShapeClassifier(
            paper_bank, SearchAndSubtractConfig(max_responses=1)
        )
        result = classifier.classify(cir, TS, noise_std=1e-5)[0]
        assert type(result.index) is float
