"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.constants import CIR_SAMPLING_PERIOD_S
from repro.signal.pulses import dw1000_pulse
from repro.signal.templates import TemplateBank


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help=(
            "Regenerate tests/golden/*.json from the current code instead "
            "of comparing against it (see tests/test_golden_metrics.py); "
            "review the resulting diff like any other code change."
        ),
    )


@pytest.fixture
def rng():
    """A deterministic random generator, fresh per test."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def default_pulse():
    """The default (0x93) pulse at the CIR tap rate."""
    return dw1000_pulse()


@pytest.fixture(scope="session")
def paper_bank():
    """The paper's three-shape template bank (s1, s2, s3)."""
    return TemplateBank.paper_bank(3)


@pytest.fixture
def clean_cir(default_pulse):
    """A noiseless CIR containing one unit pulse at index 200."""
    from repro.signal.sampling import place_pulse

    cir = np.zeros(1016, dtype=complex)
    place_pulse(cir, default_pulse.samples.astype(complex), 200.0, amplitude=1.0)
    return cir


@pytest.fixture
def ts():
    """CIR sampling period shorthand."""
    return CIR_SAMPLING_PERIOD_S
