"""Unit tests for repro.analysis (metrics, CIR features, tables)."""

import numpy as np
import pytest

from repro.analysis.cir_features import (
    estimate_noise_std,
    peak_to_noise_ratio,
    rise_time_s,
    significant_peaks,
)
from repro.analysis.metrics import (
    bias,
    detection_rate,
    mae,
    percentile_error,
    rmse,
    std,
    summarize_errors,
)
from repro.analysis.tables import Table
from repro.signal.sampling import place_pulse


class TestMetrics:
    def test_rmse_scalar_truth(self):
        assert rmse([1.0, 3.0], 2.0) == pytest.approx(1.0)

    def test_rmse_vector_truth(self):
        assert rmse([1.0, 2.0], [1.0, 2.0]) == 0.0

    def test_bias_signed(self):
        assert bias([2.0, 4.0], 2.0) == pytest.approx(1.0)
        assert bias([0.0, 2.0], 2.0) == pytest.approx(-1.0)

    def test_std_ignores_bias(self):
        assert std([1.1, 1.1, 1.1], 0.0) == 0.0

    def test_mae(self):
        assert mae([1.0, 3.0], 2.0) == pytest.approx(1.0)

    def test_percentile(self):
        errors = list(range(101))  # |err| = 0..100
        assert percentile_error(errors, 0.0, q=95) == pytest.approx(95.0)

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            percentile_error([1.0], 0.0, q=150)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            rmse([1.0, 2.0], [1.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            rmse([], 0.0)

    def test_detection_rate(self):
        assert detection_rate([True, True, False, False]) == 0.5

    def test_detection_rate_empty(self):
        with pytest.raises(ValueError):
            detection_rate([])

    def test_summary_keys(self):
        summary = summarize_errors([1.0, 2.0, 3.0], 2.0)
        assert set(summary) == {"n", "bias_m", "std_m", "rmse_m", "mae_m", "p95_m"}
        assert summary["n"] == 3.0


class TestCirFeatures:
    def test_noise_std_estimate(self, rng):
        noise = 0.1
        cir = noise * (
            rng.standard_normal(1016) + 1j * rng.standard_normal(1016)
        ) / np.sqrt(2)
        assert estimate_noise_std(cir) == pytest.approx(noise, rel=0.4)

    def test_noise_std_validation(self, rng):
        with pytest.raises(ValueError):
            estimate_noise_std(rng.standard_normal(100), leading_samples=200)
        with pytest.raises(ValueError):
            estimate_noise_std(rng.standard_normal((4, 4)))

    def test_peak_to_noise(self, default_pulse, rng):
        cir = 1e-4 * (
            rng.standard_normal(1016) + 1j * rng.standard_normal(1016)
        ) / np.sqrt(2)
        place_pulse(cir, default_pulse.samples.astype(complex), 500.0, 1e-2)
        assert peak_to_noise_ratio(cir) > 30

    def test_rise_time_narrow_vs_wide(self, default_pulse):
        from repro.signal.pulses import narrowband_pulse

        fine = 0.25e-9
        wide_pulse = default_pulse.resampled(fine)
        narrow_pulse = narrowband_pulse(50e6, sampling_period_s=fine)
        cir_wide = np.zeros(2000, dtype=complex)
        cir_narrow = np.zeros(2000, dtype=complex)
        place_pulse(cir_wide, wide_pulse.samples.astype(complex), 1000.0, 1.0)
        place_pulse(cir_narrow, narrow_pulse.samples.astype(complex), 1000.0, 1.0)
        assert rise_time_s(cir_narrow, fine) > 5 * rise_time_s(cir_wide, fine)

    def test_rise_time_validation(self, rng):
        with pytest.raises(ValueError):
            rise_time_s(rng.standard_normal(100), 1e-9, low=0.9, high=0.1)

    def test_significant_peaks_counts_separated(self, default_pulse):
        cir = np.zeros(1016, dtype=complex)
        for position in (100, 300, 500):
            place_pulse(cir, default_pulse.samples.astype(complex), float(position), 1.0)
        peaks = significant_peaks(cir, threshold_fraction=0.5)
        assert len(peaks) == 3

    def test_significant_peaks_threshold(self, default_pulse):
        cir = np.zeros(1016, dtype=complex)
        place_pulse(cir, default_pulse.samples.astype(complex), 100.0, 1.0)
        place_pulse(cir, default_pulse.samples.astype(complex), 300.0, 0.1)
        peaks = significant_peaks(cir, threshold_fraction=0.5)
        assert len(peaks) == 1

    def test_significant_peaks_validation(self, rng):
        with pytest.raises(ValueError):
            significant_peaks(rng.standard_normal(100), threshold_fraction=0.0)


class TestTable:
    def test_render_contains_data(self):
        table = Table(["a", "b"], title="demo")
        table.add_row([1, 2.5])
        text = table.render()
        assert "demo" in text
        assert "2.5" in text

    def test_row_width_validation(self):
        table = Table(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row([1])

    def test_empty_headers_rejected(self):
        with pytest.raises(ValueError):
            Table([])

    def test_float_formatting(self):
        table = Table(["x"])
        table.add_row([float("nan")])
        table.add_row([1234.5678])
        table.add_row([0.00001234])
        text = table.render()
        assert "-" in text
        assert "1.23e+03" in text

    def test_alignment(self):
        table = Table(["col"])
        table.add_row(["short"])
        table.add_row(["a-much-longer-cell"])
        lines = table.render().splitlines()
        assert len(set(len(line) for line in lines[0:1] + lines[2:])) >= 1
        assert table.n_rows == 2
