"""Unit tests for the constant-velocity Kalman tracker."""

import numpy as np
import pytest

from repro.channel.geometry import Point
from repro.localization.tracking import ConstantVelocityTracker


def straight_walk(n, speed=1.0, interval=0.1):
    """True positions of a tag walking along x at constant speed."""
    return [Point(i * speed * interval, 2.0) for i in range(n)]


class TestTracker:
    def test_first_update_initialises_at_measurement(self):
        tracker = ConstantVelocityTracker()
        state = tracker.update(Point(3.0, 4.0), 0.0)
        assert state.position.distance_to(Point(3.0, 4.0)) < 1e-12
        assert state.speed_mps == 0.0
        assert tracker.initialized

    def test_smoothing_beats_raw_fixes(self, rng):
        """Filtered RMSE < raw measurement RMSE on a noisy walk."""
        truth = straight_walk(60)
        noise = 0.08
        measurements = [
            Point(p.x + rng.normal(0, noise), p.y + rng.normal(0, noise))
            for p in truth
        ]
        tracker = ConstantVelocityTracker(measurement_std=noise)
        states = tracker.track(measurements)
        # Judge the second half, after convergence.
        raw_err = np.sqrt(
            np.mean(
                [m.distance_to(t) ** 2 for m, t in zip(measurements, truth)][30:]
            )
        )
        filtered_err = np.sqrt(
            np.mean(
                [s.position.distance_to(t) ** 2 for s, t in zip(states, truth)][30:]
            )
        )
        assert filtered_err < raw_err

    def test_velocity_estimated(self, rng):
        truth = straight_walk(80, speed=1.5)
        measurements = [
            Point(p.x + rng.normal(0, 0.05), p.y + rng.normal(0, 0.05))
            for p in truth
        ]
        tracker = ConstantVelocityTracker(measurement_std=0.05)
        states = tracker.track(measurements)
        assert states[-1].speed_mps == pytest.approx(1.5, abs=0.4)

    def test_outlier_gated(self):
        tracker = ConstantVelocityTracker(measurement_std=0.05, gate_sigma=4.0)
        for i in range(20):
            tracker.update(Point(i * 0.1, 2.0), i * 0.1)
        # A 10 m jump — a mis-identified anchor fix.
        state = tracker.update(Point(12.0, 2.0), 2.0)
        assert not state.accepted
        assert state.position.x < 3.0  # prediction held, jump ignored

    def test_out_of_order_rejected(self):
        tracker = ConstantVelocityTracker()
        tracker.update(Point(0, 0), 1.0)
        with pytest.raises(ValueError):
            tracker.update(Point(0, 0), 0.5)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ConstantVelocityTracker(accel_std=0.0)
        with pytest.raises(ValueError):
            ConstantVelocityTracker(measurement_std=-1.0)
        with pytest.raises(ValueError):
            ConstantVelocityTracker(gate_sigma=0.0)

    def test_track_interval_validation(self):
        with pytest.raises(ValueError):
            ConstantVelocityTracker().track([Point(0, 0)], interval_s=0.0)

    def test_end_to_end_with_anchor_network(self):
        """Tracker over real concurrent-ranging fixes improves on the
        raw per-round estimates."""
        from repro.localization.anchors import AnchorNetwork

        anchors = (
            Point(0.5, 0.5), Point(9.5, 0.5), Point(9.5, 7.5), Point(0.5, 7.5),
        )
        network = AnchorNetwork(anchors, seed=13, n_slots=4, n_shapes=1)
        truth = [Point(2.0 + 0.2 * i, 3.0) for i in range(25)]
        fixes = network.track(truth)
        tracker = ConstantVelocityTracker(measurement_std=0.08)
        states = tracker.track([f.estimate for f in fixes], interval_s=0.2)
        raw = np.median([f.error_m for f in fixes][10:])
        filtered = np.median(
            [s.position.distance_to(t) for s, t in zip(states, truth)][10:]
        )
        assert filtered <= raw * 1.2  # at least comparable, usually better
