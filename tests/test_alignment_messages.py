"""Unit tests for CIR alignment (Sect. IV step 1) and messages."""

import pytest

from repro.constants import SPEED_OF_LIGHT
from repro.core.alignment import align_responses_to_distance, distance_axis
from repro.core.detection import DetectedResponse
from repro.protocol.messages import (
    INIT_PAYLOAD_BYTES,
    RESP_PAYLOAD_BYTES,
    InitMessage,
    RespMessage,
)


class TestDistanceAxis:
    def test_anchor_maps_to_dtwr(self):
        axis = distance_axis(100, 1e-9, first_peak_index=40.0, d_twr_m=3.0)
        assert axis[40] == pytest.approx(3.0)

    def test_half_rate_slope(self):
        """1 ns per tap -> c/2 per tap of distance (Eq. 4)."""
        axis = distance_axis(100, 1e-9, 0.0, 0.0)
        assert axis[1] - axis[0] == pytest.approx(1e-9 * SPEED_OF_LIGHT / 2)

    def test_length(self):
        assert len(distance_axis(256, 1e-9, 0.0, 0.0)) == 256

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            distance_axis(0, 1e-9, 0.0, 0.0)

    def test_fractional_anchor(self):
        axis = distance_axis(10, 1e-9, 4.5, 5.0)
        mid = (axis[4] + axis[5]) / 2
        assert mid == pytest.approx(5.0)


class TestAlignResponses:
    def test_matches_concurrent_distances(self):
        from repro.core.ranging import concurrent_distances

        responses = [
            DetectedResponse(index=0, delay_s=100e-9, amplitude=1.0),
            DetectedResponse(index=0, delay_s=140e-9, amplitude=0.5),
        ]
        assert align_responses_to_distance(responses, 3.0) == pytest.approx(
            concurrent_distances(3.0, responses)
        )

    def test_empty(self):
        assert align_responses_to_distance([], 3.0) == []


class TestMessages:
    def test_init_size(self):
        assert InitMessage(initiator_id=1).size_bytes == INIT_PAYLOAD_BYTES

    def test_resp_size(self):
        message = RespMessage(responder_id=2, t_rx_local_s=1.0, t_tx_local_s=1.0003)
        assert message.size_bytes == RESP_PAYLOAD_BYTES

    def test_reply_time(self):
        message = RespMessage(responder_id=2, t_rx_local_s=1.0, t_tx_local_s=1.00029)
        assert message.reply_time_s == pytest.approx(290e-6)

    def test_resp_larger_than_init(self):
        """RESP carries two 40-bit timestamps, so it is strictly larger."""
        assert RESP_PAYLOAD_BYTES > INIT_PAYLOAD_BYTES
