"""Unit tests for CIR capture serialisation."""

import numpy as np
import pytest

from repro.channel.stochastic import IndoorEnvironment
from repro.radio.capture_io import (
    FORMAT_KEY,
    FORMAT_VERSION,
    load_capture,
    load_dataset,
    save_capture,
    save_dataset,
)
from repro.radio.dw1000 import DW1000Radio, SignalArrival
from repro.signal.pulses import dw1000_pulse


@pytest.fixture
def captures(rng):
    radio = DW1000Radio()
    environment = IndoorEnvironment.office()
    result = []
    for distance in (3.0, 6.0, 9.0):
        channel = environment.realize(distance, rng)
        arrival = SignalArrival(channel, dw1000_pulse(), 0.0, source_id=0)
        result.append(radio.capture_cir([arrival], rng))
    return result


class TestRoundtrip:
    def test_single_capture(self, tmp_path, captures):
        path = tmp_path / "capture.npz"
        save_capture(path, captures[0])
        loaded = load_capture(path)
        assert np.allclose(loaded.samples, captures[0].samples)
        assert loaded.sampling_period_s == captures[0].sampling_period_s
        assert loaded.rx_timestamp_s == captures[0].rx_timestamp_s
        assert loaded.noise_std == captures[0].noise_std

    def test_dataset(self, tmp_path, captures):
        path = tmp_path / "dataset.npz"
        save_dataset(path, captures)
        loaded = load_dataset(path)
        assert len(loaded) == 3
        for original, restored in zip(captures, loaded):
            assert np.allclose(restored.samples, original.samples)

    def test_ground_truth_not_serialised(self, tmp_path, captures):
        """Stored captures contain only what real logs would."""
        path = tmp_path / "capture.npz"
        save_capture(path, captures[0])
        loaded = load_capture(path)
        assert loaded.arrivals == ()

    def test_detection_works_on_loaded_capture(self, tmp_path, captures):
        from repro.core.detection import SearchAndSubtract, SearchAndSubtractConfig

        path = tmp_path / "capture.npz"
        save_capture(path, captures[0])
        loaded = load_capture(path)
        detector = SearchAndSubtract(
            dw1000_pulse(), SearchAndSubtractConfig(max_responses=1)
        )
        responses = detector.detect(
            loaded.samples, loaded.sampling_period_s, noise_std=loaded.noise_std
        )
        assert len(responses) == 1


class TestValidation:
    def test_empty_dataset_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_dataset(tmp_path / "x.npz", [])

    def test_mixed_lengths_rejected(self, tmp_path, captures, rng):
        short = DW1000Radio(cir_length=512)
        channel = IndoorEnvironment.office().realize(4.0, rng)
        odd = short.capture_cir(
            [SignalArrival(channel, dw1000_pulse(), 0.0)], rng
        )
        with pytest.raises(ValueError):
            save_dataset(tmp_path / "x.npz", [captures[0], odd])

    def test_non_archive_rejected(self, tmp_path):
        path = tmp_path / "random.npz"
        np.savez(path, whatever=np.zeros(3))
        with pytest.raises(ValueError):
            load_dataset(path)

    def test_missing_marker_error_names_file(self, tmp_path):
        path = tmp_path / "not_a_capture.npz"
        np.savez(path, whatever=np.zeros(3))
        with pytest.raises(ValueError) as excinfo:
            load_dataset(path)
        message = str(excinfo.value)
        assert "not_a_capture.npz" in message
        assert FORMAT_KEY in message

    def test_version_mismatch_names_file_and_versions(
        self, tmp_path, captures
    ):
        """A deliberately corrupted archive reports found vs expected."""
        path = tmp_path / "corrupted.npz"
        save_capture(path, captures[0])
        with np.load(path) as archive:
            contents = {key: archive[key] for key in archive.files}
        contents[FORMAT_KEY] = np.array(FORMAT_VERSION + 41)
        np.savez(tmp_path / "corrupted.npz", **contents)
        with pytest.raises(ValueError) as excinfo:
            load_capture(path)
        message = str(excinfo.value)
        assert "corrupted.npz" in message
        assert str(FORMAT_VERSION + 41) in message  # found version
        assert str(FORMAT_VERSION) in message  # expected version
