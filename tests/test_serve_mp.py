"""Multi-process serving tests: the redesigned config/client API, the
supervised worker fleet, and the live swarm-ingest path.

The acceptance claims pinned here:

* **Streaming == offline across processes** — the same CIRs pushed
  through a 2-worker :class:`RangingServer` produce responses equal
  field-for-field to the in-process service *and* to a direct
  :func:`classify_batch` call (the in-process==offline leg is already
  pinned in ``tests/test_serve.py``; here the comparison is direct).
* **Exactly-once under worker death** — SIGKILLing a worker mid-stream
  loses zero accepted requests: supervision restarts the worker,
  re-homes its unanswered requests, and
  ``sent == ok + shed + error + cancelled`` still balances.
* **Admission split** — per-session rate limiting raises
  :class:`RateLimitedError`, queue/in-flight pressure raises
  :class:`ServiceOverloadedError`, and each bumps its own counter.
* **Annotations over the wire** — request annotations and
  annotate-only defense flags survive end to end without perturbing
  the responses.
* **Live swarm ingest** — a :class:`SwarmScenario` round-tripped
  through a multi-process :class:`RangingClient` yields a result digest
  byte-identical to the offline replayed-pool path.

Coroutines are driven with ``asyncio.run`` from sync tests (no
pytest-asyncio dependency); multi-process cases fork real workers, so
this module is a touch slower than the in-process suite.
"""

import asyncio

import numpy as np
import pytest

from repro.constants import CIR_SAMPLING_PERIOD_S
from repro.core.batch_id import classify_batch
from repro.core.detection import SearchAndSubtractConfig
from repro.netsim.swarm import SwarmConfig, SwarmScenario
from repro.protocol.defense import AnomalyDetectorConfig, DefensePlan
from repro.serve import (
    AsyncRangingClient,
    EngineConfig,
    RangingClient,
    RangingRequest,
    RangingServer,
    RangingService,
    RateLimitConfig,
    RateLimitedError,
    ServeConfig,
    ServiceOverloadedError,
    ServiceRejectedError,
    SessionRateLimiter,
    TERMINAL_STATUSES,
)
from repro.serve.loadgen import synthetic_pool
from repro.signal.templates import TemplateBank

TS = CIR_SAMPLING_PERIOD_S
BANK = TemplateBank.paper_bank(2)
CONFIG = SearchAndSubtractConfig()
POOL = synthetic_pool(BANK, pool_size=24, cir_length=257, seed=11)


def _engine(mode="classify"):
    return EngineConfig(BANK, TS, mode=mode, config=CONFIG, cir_length=257)


def _mp_config(**overrides):
    options = {
        "n_shards": 2,
        "batch_size": 4,
        "max_batch_delay_s": 0.002,
        "queue_depth": 64,
        "default_deadline_s": None,
        "engine": _engine(),
        "workers": 2,
    }
    options.update(overrides)
    return ServeConfig(**options)


def _requests(pool=POOL, sessions=6, annotate=False):
    return [
        RangingRequest(
            session_id=f"s-{k % sessions}",
            sequence=k // sessions,
            cir=cir,
            noise_std=noise_std,
            annotations={"k": k} if annotate else None,
        )
        for k, (cir, noise_std) in enumerate(pool)
    ]


def _counters(registry):
    return registry.snapshot()["counters"]


class TestServeConfigRedesign:
    def test_new_field_validation_is_eager(self):
        with pytest.raises(ValueError, match="workers"):
            ServeConfig(workers=-1)
        with pytest.raises(TypeError, match="workers"):
            ServeConfig(workers=True)
        with pytest.raises(ValueError, match="heartbeat_timeout_s"):
            ServeConfig(
                heartbeat_interval_s=1.0, heartbeat_timeout_s=0.5
            )
        with pytest.raises(ValueError, match="max_frame_bytes"):
            ServeConfig(max_frame_bytes=16)
        with pytest.raises(TypeError, match="rate_limit"):
            ServeConfig(rate_limit=3.0)
        with pytest.raises(TypeError, match="defense"):
            ServeConfig(defense="paranoid")
        with pytest.raises(TypeError, match="engine"):
            ServeConfig(engine="fast")
        with pytest.raises(ValueError):
            ServeConfig(backend="no-such-backend")

    def test_resolved_engine_requires_engine(self):
        with pytest.raises(ValueError, match="engine"):
            ServeConfig().resolved_engine()
        engine = _engine()
        assert ServeConfig(engine=engine).resolved_engine() is engine

    def test_worker_local_strips_parent_concerns(self):
        config = _mp_config(
            workers=4, rate_limit=RateLimitConfig(10.0, burst=2)
        )
        local = config.worker_local()
        assert local.workers == 0
        assert local.rate_limit is None
        assert local.n_shards == config.n_shards
        assert local.engine is config.engine

    def test_deprecated_two_arg_shim(self):
        engine = _engine()
        with pytest.warns(DeprecationWarning, match="ServeConfig"):
            service = RangingService(engine, ServeConfig(n_shards=3))
        assert service.config.engine is engine
        assert service.config.n_shards == 3

    def test_service_refuses_multiprocess_config(self):
        with pytest.raises(ValueError, match="RangingServer"):
            RangingService.build(_mp_config(workers=2))
        with pytest.raises(ValueError, match="workers"):
            RangingServer(_mp_config(workers=0))

    def test_client_requires_exactly_one_source(self):
        with pytest.raises(ValueError, match="exactly one"):
            AsyncRangingClient()
        with pytest.raises(ValueError, match="exactly one"):
            AsyncRangingClient(
                _mp_config(), service=object()  # type: ignore[arg-type]
            )


class TestRateLimiting:
    def test_token_bucket_refill_and_retry_hint(self):
        clock = [0.0]
        limiter = SessionRateLimiter(
            RateLimitConfig(rate_rps=2.0, burst=2.0),
            clock=lambda: clock[0],
        )
        assert limiter.check("a") == 0.0
        assert limiter.check("a") == 0.0
        hint = limiter.check("a")  # bucket empty
        assert hint == pytest.approx(0.5)
        clock[0] += 0.5  # one token refilled
        assert limiter.check("a") == 0.0
        assert limiter.check("b") == 0.0  # sessions are independent

    def test_session_lru_eviction(self):
        limiter = SessionRateLimiter(
            RateLimitConfig(rate_rps=1.0, burst=1.0, max_sessions=2),
            clock=lambda: 0.0,
        )
        for session in ("a", "b", "c"):
            limiter.check(session)
        assert len(limiter) == 2
        # "a" was evicted; its bucket is fresh again.
        assert limiter.check("a") == 0.0

    def test_in_process_rate_limit_vs_backpressure(self):
        async def scenario():
            service = RangingService.build(
                ServeConfig(
                    n_shards=1,
                    batch_size=4,
                    engine=_engine(),
                    rate_limit=RateLimitConfig(rate_rps=5.0, burst=2.0),
                )
            )
            await service.start()
            try:
                futures, rate_limited = [], []
                for request in _requests(POOL[:6], sessions=1):
                    try:
                        futures.append(service.enqueue(request))
                    except RateLimitedError as error:
                        rate_limited.append(error)
                results = await asyncio.gather(*futures)
            finally:
                await service.stop(drain=True)
            return service, results, rate_limited

        service, results, rate_limited = asyncio.run(scenario())
        assert len(rate_limited) == 4  # burst of 2 admitted
        assert all(r.status == "ok" for r in results)
        for error in rate_limited:
            assert isinstance(error, ServiceRejectedError)
            assert not isinstance(error, ServiceOverloadedError)
            assert error.reason == "rate_limit"
            assert error.retry_after_s > 0.0
        counters = _counters(service.metrics)
        assert counters["serve.rate_limited"] == 4
        assert counters.get("serve.rejected", 0) == 0
        assert counters["serve.accepted"] == 2


class TestMultiProcess:
    def test_streaming_equals_offline_across_processes(self):
        requests = _requests(annotate=True)

        async def mp_run():
            async with AsyncRangingClient(_mp_config()) as client:
                health = client.healthz()
                outcomes = await asyncio.gather(
                    *(client.submit_retrying(r) for r in requests)
                )
            # After a drain stop the merged registry includes each
            # worker's *final* heartbeat snapshot, so the serve.*
            # counters are exact rather than one beacon behind.
            counters = _counters(client.metrics)
            return outcomes, health, counters

        async def in_process_run():
            async with AsyncRangingClient(_mp_config(workers=0)) as client:
                return await asyncio.gather(
                    *(client.submit_retrying(r) for r in requests)
                )

        mp_outcomes, health, counters = asyncio.run(mp_run())
        local_outcomes = asyncio.run(in_process_run())

        assert all(o.status == "ok" for o in mp_outcomes)
        assert [o.responses for o in mp_outcomes] == [
            o.responses for o in local_outcomes
        ]
        # Direct offline leg: one classify_batch over the same pool.
        stack = np.stack([cir for cir, _ in POOL])
        stds = [noise_std for _, noise_std in POOL]
        offline = classify_batch(stack, BANK, TS, config=CONFIG, noise_std=stds)
        assert [o.responses for o in mp_outcomes] == list(offline)
        for k, outcome in enumerate(mp_outcomes):
            assert outcome.worker >= 0  # stamped by a real worker
            assert outcome.annotations["k"] == k
        # Health + merged metrics cover both namespaces.
        assert health["workers"] == 2
        assert health["alive_workers"] == 2
        assert health["status"] == "ok"
        assert counters["server.accepted"] == len(requests)
        assert counters["server.completed"] == len(requests)
        assert counters["serve.completed"] == len(requests)

    def test_worker_kill_loses_no_accepted_requests(self):
        config = _mp_config(
            heartbeat_interval_s=0.1, heartbeat_timeout_s=0.5
        )
        pool = synthetic_pool(BANK, pool_size=50, cir_length=257, seed=3)
        requests = _requests(pool, sessions=10)

        async def scenario():
            server = RangingServer(config)
            await server.start()
            try:
                futures = [server.enqueue(r) for r in requests]
                await asyncio.sleep(0.02)  # let the stream get going
                server.worker_processes[0].kill()
                outcomes = await asyncio.gather(*futures)
                restarts = server.restarts
            finally:
                await server.stop(drain=True)
            return outcomes, restarts, _counters(server.metrics)

        outcomes, restarts, counters = asyncio.run(scenario())
        assert restarts >= 1
        assert len(outcomes) == len(requests)
        assert all(o.status in TERMINAL_STATUSES for o in outcomes)
        assert all(o.status == "ok" for o in outcomes)
        # Exactly-once accounting: every accepted request reached one
        # terminal counter, despite the kill and the re-homing.
        terminal = (
            counters.get("server.completed", 0)
            + counters.get("server.shed", 0)
            + counters.get("server.errors", 0)
            + counters.get("server.cancelled", 0)
        )
        assert counters["server.accepted"] == len(requests)
        assert terminal == len(requests)
        assert counters["server.worker_restarts"] == restarts

    def test_parent_rate_limit_and_inflight_cap(self):
        config = _mp_config(
            workers=1,
            n_shards=1,
            queue_depth=4,
            rate_limit=RateLimitConfig(rate_rps=5.0, burst=2.0),
        )
        cir, noise_std = POOL[0]

        async def scenario():
            server = RangingServer(config)
            await server.start()
            try:
                futures, errors = [], []
                for k in range(8):
                    try:
                        futures.append(
                            server.enqueue(
                                RangingRequest("hammer", k, cir, noise_std)
                            )
                        )
                    except ServiceRejectedError as error:
                        errors.append(error)
                await asyncio.gather(*futures)
                counters = _counters(server.metrics)
            finally:
                await server.stop(drain=True)
            return errors, counters

        errors, counters = asyncio.run(scenario())
        assert len(errors) == 6
        assert all(isinstance(e, RateLimitedError) for e in errors)
        assert counters["server.rate_limited"] == 6
        assert counters.get("server.rejected", 0) == 0

        # The in-flight cap is the other admission path: no limiter,
        # one worker, and more submissions than queue_depth * n_shards.
        async def cap_scenario():
            server = RangingServer(
                _mp_config(workers=1, n_shards=1, queue_depth=2)
            )
            await server.start()
            try:
                futures, errors = [], []
                for k in range(8):
                    try:
                        futures.append(
                            server.enqueue(
                                RangingRequest(f"s-{k}", 0, cir, noise_std)
                            )
                        )
                    except ServiceOverloadedError as error:
                        errors.append(error)
                await asyncio.gather(*futures)
                counters = _counters(server.metrics)
            finally:
                await server.stop(drain=True)
            return errors, counters

        cap_errors, cap_counters = asyncio.run(cap_scenario())
        assert cap_errors, "in-flight cap never fired"
        assert all(e.reason == "backpressure" for e in cap_errors)
        assert cap_counters["server.rejected"] == len(cap_errors)

    def test_non_drain_stop_cancels_pending(self):
        async def scenario():
            server = RangingServer(_mp_config(workers=1))
            await server.start()
            futures = [
                server.enqueue(r) for r in _requests(POOL[:8], sessions=2)
            ]
            await server.stop(drain=False)
            outcomes = await asyncio.gather(*futures)
            return outcomes, _counters(server.metrics)

        outcomes, counters = asyncio.run(scenario())
        assert all(o.status in TERMINAL_STATUSES for o in outcomes)
        cancelled = [o for o in outcomes if o.status == "cancelled"]
        assert len(cancelled) == counters.get("server.cancelled", 0)
        terminal = (
            counters.get("server.completed", 0)
            + counters.get("server.shed", 0)
            + counters.get("server.errors", 0)
            + counters.get("server.cancelled", 0)
        )
        assert terminal == counters["server.accepted"]

    def test_sync_client_defense_annotations_survive_the_wire(self):
        defense = DefensePlan(
            anomaly=AnomalyDetectorConfig(min_confidence=1e9)
        )
        requests = _requests(POOL[:8], sessions=2, annotate=True)
        with RangingClient(_mp_config(workers=1)) as client:
            plain = client.submit_many(requests, timeout=60.0)
        with RangingClient(
            _mp_config(workers=1, defense=defense)
        ) as client:
            flagged = client.submit_many(requests, timeout=60.0)
            single = client.range(
                "extra", POOL[0][0], noise_std=POOL[0][1], timeout=60.0
            )
            health = client.healthz()
        assert all(o.status == "ok" for o in plain + flagged)
        # Annotate-only: the defense screen never perturbs responses.
        assert [o.responses for o in flagged] == [
            o.responses for o in plain
        ]
        assert any(
            o.annotations.get("defense", {}).get("flags")
            for o in flagged
            if o.responses
        )
        for k, outcome in enumerate(flagged):
            assert outcome.annotations["k"] == k
        assert single.status == "ok"
        assert single.sequence == 0
        assert health["workers"] == 1

    def test_swarm_live_ingest_matches_replayed_pool(self):
        config = SwarmConfig(
            n_responders=24,
            n_initiators=2,
            n_concurrent=2,
            n_shapes=4,
            window=4,
            max_responses=6,
        )
        offline = SwarmScenario(config, seed=7).run(4)
        live_scenario = SwarmScenario(config, seed=7)
        with RangingClient(live_scenario.serve_config(workers=2)) as client:
            live = live_scenario.run(4, service=client)
        assert live.digest() == offline.digest()
        assert live.rounds == offline.rounds
