"""Unit tests for repro.channel.stochastic."""

import numpy as np
import pytest

from repro.channel.stochastic import IndoorEnvironment, SalehValenzuelaModel
from repro.constants import SPEED_OF_LIGHT


class TestIndoorEnvironment:
    def test_first_tap_is_los_at_geometric_delay(self, rng):
        env = IndoorEnvironment.hallway()
        channel = env.realize(5.0, rng)
        assert channel.first_path.kind == "los"
        assert channel.first_path.delay_s == pytest.approx(5.0 / SPEED_OF_LIGHT)

    def test_reflection_count(self, rng):
        env = IndoorEnvironment(n_reflections=4, diffuse_power_ratio=0.0)
        channel = env.realize(5.0, rng)
        kinds = [tap.kind for tap in channel]
        assert kinds.count("reflection") == 4

    def test_reflections_after_los(self, rng):
        env = IndoorEnvironment.office()
        channel = env.realize(5.0, rng)
        los_delay = channel.first_path.delay_s
        for tap in channel:
            assert tap.delay_s >= los_delay

    def test_high_k_factor_means_dominant_los(self, rng):
        env = IndoorEnvironment(k_factor_db=20.0, diffuse_power_ratio=0.0)
        channel = env.realize(5.0, rng)
        assert channel.strongest_tap.kind == "los"

    def test_nlos_attenuates_los(self, rng):
        clear = IndoorEnvironment(los_attenuation=1.0, diffuse_power_ratio=0.0,
                                  n_reflections=0)
        blocked = IndoorEnvironment(los_attenuation=0.1, diffuse_power_ratio=0.0,
                                    n_reflections=0)
        # Compare expected LOS power over several draws (shadowing varies).
        clear_power = np.mean(
            [clear.realize(5.0, rng).los_tap.power for _ in range(200)]
        )
        blocked_power = np.mean(
            [blocked.realize(5.0, rng).los_tap.power for _ in range(200)]
        )
        assert blocked_power < clear_power * 0.05

    def test_power_decreases_with_distance(self, rng):
        env = IndoorEnvironment.hallway()
        near = np.mean([env.realize(2.0, rng).total_power() for _ in range(100)])
        far = np.mean([env.realize(20.0, rng).total_power() for _ in range(100)])
        assert far < near

    def test_presets_construct(self):
        for preset in (
            IndoorEnvironment.hallway(),
            IndoorEnvironment.office(),
            IndoorEnvironment.multipath_rich(),
            IndoorEnvironment.nlos(),
        ):
            assert preset.n_reflections >= 0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            IndoorEnvironment(n_reflections=-1)
        with pytest.raises(ValueError):
            IndoorEnvironment(los_attenuation=1.5)
        with pytest.raises(ValueError):
            IndoorEnvironment(diffuse_power_ratio=-0.1)

    def test_diffuse_taps_present(self, rng):
        env = IndoorEnvironment(diffuse_power_ratio=0.5)
        channel = env.realize(5.0, rng)
        assert any(tap.kind == "diffuse" for tap in channel)

    def test_no_diffuse_when_ratio_zero(self, rng):
        env = IndoorEnvironment(diffuse_power_ratio=0.0)
        channel = env.realize(5.0, rng)
        assert all(tap.kind != "diffuse" for tap in channel)

    def test_independent_draws_differ(self, rng):
        env = IndoorEnvironment.office()
        a = env.realize(5.0, rng)
        b = env.realize(5.0, rng)
        assert a.taps != b.taps


class TestSalehValenzuela:
    def test_first_tap_at_geometric_delay(self, rng):
        model = SalehValenzuelaModel()
        channel = model.realize(4.0, rng)
        assert channel.first_path.delay_s == pytest.approx(
            4.0 / SPEED_OF_LIGHT
        )
        assert channel.first_path.kind == "los"

    def test_many_taps_generated(self, rng):
        channel = SalehValenzuelaModel().realize(4.0, rng)
        assert len(channel) > 20

    def test_power_matches_path_loss_scale(self, rng):
        from repro.channel.propagation import PathLossModel
        from repro.channel.geometry import CHANNEL7_CARRIER_HZ

        model = SalehValenzuelaModel()
        path_loss = PathLossModel.friis(CHANNEL7_CARRIER_HZ)
        channel = model.realize(4.0, rng, path_loss=path_loss)
        expected = path_loss.amplitude_gain(4.0) ** 2
        assert channel.total_power() == pytest.approx(expected, rel=1e-6)

    def test_max_excess_delay_respected(self, rng):
        model = SalehValenzuelaModel(max_excess_delay_ns=50.0)
        channel = model.realize(4.0, rng)
        assert channel.excess_delay_s <= 50e-9 + 1e-12

    def test_power_profile_decays(self, rng):
        """Average power in the first quarter of the excess-delay window
        exceeds the last quarter."""
        model = SalehValenzuelaModel()
        early_total, late_total = 0.0, 0.0
        for _ in range(20):
            channel = model.realize(4.0, rng)
            base = channel.first_path.delay_s
            window = 120e-9
            for tap in channel:
                excess = tap.delay_s - base
                if excess < window / 4:
                    early_total += tap.power
                elif excess > 3 * window / 4:
                    late_total += tap.power
        assert early_total > late_total
