"""Failure-injection and edge-case tests across the stack."""

import numpy as np
import pytest

from repro.channel.cir import ChannelRealization, ChannelTap
from repro.channel.geometry import Obstacle, Point, Room, image_source_taps
from repro.constants import (
    CIR_LENGTH_PRF16,
    CIR_LENGTH_PRF64,
    CIR_SAMPLING_PERIOD_S,
    SPEED_OF_LIGHT,
)
from repro.core.detection import SearchAndSubtract, SearchAndSubtractConfig
from repro.radio.dw1000 import DW1000Radio, SignalArrival
from repro.radio.frame import Prf, RadioConfig
from repro.signal.pulses import dw1000_pulse
from repro.signal.sampling import place_pulse


class TestPrf16Configuration:
    def test_cir_length_follows_prf(self):
        radio64 = DW1000Radio(config=RadioConfig(prf=Prf.PRF_64MHZ))
        radio16 = DW1000Radio(config=RadioConfig(prf=Prf.PRF_16MHZ, tc_pgdelay=0x93))
        assert radio64.cir_length == CIR_LENGTH_PRF64
        assert radio16.cir_length == CIR_LENGTH_PRF16

    def test_explicit_length_overrides(self):
        radio = DW1000Radio(cir_length=512)
        assert radio.cir_length == 512

    def test_longer_preamble_lowers_noise(self):
        short = DW1000Radio(config=RadioConfig(psr=64))
        long = DW1000Radio(config=RadioConfig(psr=1024))
        assert long.noise_std < short.noise_std
        assert long.noise_std == pytest.approx(
            short.noise_std / 4.0, rel=1e-9
        )


class TestMissingResponder:
    def test_gated_detector_reports_fewer_responses(self, rng):
        """Only 2 of an expected 3 responders replied: with the SNR gate
        the detector reports 2 responses, not 3 phantoms."""
        pulse = dw1000_pulse()
        cir = np.zeros(1016, dtype=complex)
        place_pulse(cir, pulse.samples.astype(complex), 200.0, 1e-3)
        place_pulse(cir, pulse.samples.astype(complex), 500.0, 0.8e-3)
        cir += 1e-5 * (
            rng.standard_normal(1016) + 1j * rng.standard_normal(1016)
        ) / np.sqrt(2)
        detector = SearchAndSubtract(
            pulse,
            SearchAndSubtractConfig(max_responses=3, min_peak_snr=8.0),
        )
        responses = detector.detect(cir, CIR_SAMPLING_PERIOD_S, noise_std=1e-5)
        assert len(responses) == 2

    def test_pure_noise_cir_yields_nothing_with_gate(self, rng):
        pulse = dw1000_pulse()
        cir = 1e-5 * (
            rng.standard_normal(1016) + 1j * rng.standard_normal(1016)
        ) / np.sqrt(2)
        detector = SearchAndSubtract(
            pulse, SearchAndSubtractConfig(max_responses=3, min_peak_snr=8.0)
        )
        assert detector.detect(cir, CIR_SAMPLING_PERIOD_S, noise_std=1e-5) == []


class TestBlockedLinks:
    def test_fully_blocked_room_link_raises(self):
        """A wall of zero transmittance across the whole room kills every
        path (LOS and all four reflections)."""
        room = Room(
            10.0,
            5.0,
            obstacles=[Obstacle(4.0, 0.0, 6.0, 5.0, attenuation=0.0)],
        )
        with pytest.raises(ValueError):
            image_source_taps(room, Point(2, 2.5), Point(8, 2.5))

    def test_partial_block_keeps_reflections(self):
        """An obstacle blocking only the LOS corridor leaves wall
        reflections as the surviving paths — an NLOS link."""
        room = Room(
            10.0,
            5.0,
            obstacles=[Obstacle(4.0, 2.0, 6.0, 3.0, attenuation=0.0)],
        )
        taps = image_source_taps(room, Point(2, 2.5), Point(8, 2.5))
        assert all(tap.kind == "reflection" for tap in taps)
        channel = ChannelRealization(taps)
        # First path is now a reflection: ranging would read long.
        direct = Point(2, 2.5).distance_to(Point(8, 2.5))
        assert channel.first_path.delay_s > direct / SPEED_OF_LIGHT


class TestNlosBias:
    def test_first_path_biased_late_without_los(self, rng):
        """Removing the LOS biases the earliest detectable path late —
        the systematic NLOS error the future-work study quantifies."""
        base_delay = 200 * CIR_SAMPLING_PERIOD_S
        taps = [
            ChannelTap(delay_s=base_delay, amplitude=1e-3, kind="los", order=0),
            ChannelTap(
                delay_s=base_delay + 8e-9,
                amplitude=0.7e-3,
                kind="reflection",
            ),
        ]
        radio = DW1000Radio()
        los_channel = ChannelRealization(taps)
        nlos_channel = los_channel.without_los()

        def first_path(channel):
            capture = radio.capture_cir(
                [SignalArrival(channel, dw1000_pulse(), 0.0)], rng
            )
            return capture.rx_timestamp_s

        los_times = [first_path(los_channel) for _ in range(10)]
        nlos_times = [first_path(nlos_channel) for _ in range(10)]
        bias = np.mean(nlos_times) - np.mean(los_times)
        assert bias == pytest.approx(8e-9, abs=1.5e-9)


class TestDegenerateGeometry:
    def test_collinear_anchors_flagged_by_gdop(self):
        from repro.localization.multilateration import gdop

        line = [Point(0, 5), Point(5, 5), Point(10, 5)]
        square = [Point(0, 0), Point(10, 0), Point(10, 10), Point(0, 10)]
        # Near the anchors' line all bearing vectors are nearly parallel,
        # so the cross-line coordinate is barely constrained.
        assert gdop(line, Point(2.5, 5.05)) > 5 * gdop(square, Point(5, 5))

    def test_multilateration_with_conflicting_ranges_large_residual(self):
        from repro.localization.multilateration import multilaterate

        anchors = [Point(0, 0), Point(10, 0), Point(5, 10)]
        # Ranges inconsistent with any single point.
        fit = multilaterate(anchors, [1.0, 1.0, 1.0])
        assert fit.rms_residual_m > 1.0
