"""Failure-injection and edge-case tests across the stack.

The hand-built scenario classes (``TestMissingResponder``,
``TestBlockedLinks``, ``TestNlosBias``) predate :mod:`repro.faults` and
are kept as regression aliases for the low-level seams; the
``*ViaFaults`` classes re-express the same scenarios end-to-end through
the fault-injection machinery.
"""

import numpy as np
import pytest

from repro.channel.cir import ChannelRealization, ChannelTap
from repro.channel.geometry import Obstacle, Point, Room, image_source_taps
from repro.constants import (
    CIR_LENGTH_PRF16,
    CIR_LENGTH_PRF64,
    CIR_SAMPLING_PERIOD_S,
    SPEED_OF_LIGHT,
)
from repro.core.detection import SearchAndSubtract, SearchAndSubtractConfig
from repro.radio.dw1000 import DW1000Radio, SignalArrival
from repro.radio.frame import Prf, RadioConfig
from repro.signal.pulses import dw1000_pulse
from repro.signal.sampling import place_pulse


class TestPrf16Configuration:
    def test_cir_length_follows_prf(self):
        radio64 = DW1000Radio(config=RadioConfig(prf=Prf.PRF_64MHZ))
        radio16 = DW1000Radio(config=RadioConfig(prf=Prf.PRF_16MHZ, tc_pgdelay=0x93))
        assert radio64.cir_length == CIR_LENGTH_PRF64
        assert radio16.cir_length == CIR_LENGTH_PRF16

    def test_explicit_length_overrides(self):
        radio = DW1000Radio(cir_length=512)
        assert radio.cir_length == 512

    def test_longer_preamble_lowers_noise(self):
        short = DW1000Radio(config=RadioConfig(psr=64))
        long = DW1000Radio(config=RadioConfig(psr=1024))
        assert long.noise_std < short.noise_std
        assert long.noise_std == pytest.approx(
            short.noise_std / 4.0, rel=1e-9
        )


class TestMissingResponder:
    def test_gated_detector_reports_fewer_responses(self, rng):
        """Only 2 of an expected 3 responders replied: with the SNR gate
        the detector reports 2 responses, not 3 phantoms."""
        pulse = dw1000_pulse()
        cir = np.zeros(1016, dtype=complex)
        place_pulse(cir, pulse.samples.astype(complex), 200.0, 1e-3)
        place_pulse(cir, pulse.samples.astype(complex), 500.0, 0.8e-3)
        cir += 1e-5 * (
            rng.standard_normal(1016) + 1j * rng.standard_normal(1016)
        ) / np.sqrt(2)
        detector = SearchAndSubtract(
            pulse,
            SearchAndSubtractConfig(max_responses=3, min_peak_snr=8.0),
        )
        responses = detector.detect(cir, CIR_SAMPLING_PERIOD_S, noise_std=1e-5)
        assert len(responses) == 2

    def test_pure_noise_cir_yields_nothing_with_gate(self, rng):
        pulse = dw1000_pulse()
        cir = 1e-5 * (
            rng.standard_normal(1016) + 1j * rng.standard_normal(1016)
        ) / np.sqrt(2)
        detector = SearchAndSubtract(
            pulse, SearchAndSubtractConfig(max_responses=3, min_peak_snr=8.0)
        )
        assert detector.detect(cir, CIR_SAMPLING_PERIOD_S, noise_std=1e-5) == []


class TestBlockedLinks:
    def test_fully_blocked_room_link_raises(self):
        """A wall of zero transmittance across the whole room kills every
        path (LOS and all four reflections)."""
        room = Room(
            10.0,
            5.0,
            obstacles=[Obstacle(4.0, 0.0, 6.0, 5.0, attenuation=0.0)],
        )
        with pytest.raises(ValueError):
            image_source_taps(room, Point(2, 2.5), Point(8, 2.5))

    def test_partial_block_keeps_reflections(self):
        """An obstacle blocking only the LOS corridor leaves wall
        reflections as the surviving paths — an NLOS link."""
        room = Room(
            10.0,
            5.0,
            obstacles=[Obstacle(4.0, 2.0, 6.0, 3.0, attenuation=0.0)],
        )
        taps = image_source_taps(room, Point(2, 2.5), Point(8, 2.5))
        assert all(tap.kind == "reflection" for tap in taps)
        channel = ChannelRealization(taps)
        # First path is now a reflection: ranging would read long.
        direct = Point(2, 2.5).distance_to(Point(8, 2.5))
        assert channel.first_path.delay_s > direct / SPEED_OF_LIGHT


class TestNlosBias:
    def test_first_path_biased_late_without_los(self, rng):
        """Removing the LOS biases the earliest detectable path late —
        the systematic NLOS error the future-work study quantifies."""
        base_delay = 200 * CIR_SAMPLING_PERIOD_S
        taps = [
            ChannelTap(delay_s=base_delay, amplitude=1e-3, kind="los", order=0),
            ChannelTap(
                delay_s=base_delay + 8e-9,
                amplitude=0.7e-3,
                kind="reflection",
            ),
        ]
        radio = DW1000Radio()
        los_channel = ChannelRealization(taps)
        nlos_channel = los_channel.without_los()

        def first_path(channel):
            capture = radio.capture_cir(
                [SignalArrival(channel, dw1000_pulse(), 0.0)], rng
            )
            return capture.rx_timestamp_s

        los_times = [first_path(los_channel) for _ in range(10)]
        nlos_times = [first_path(nlos_channel) for _ in range(10)]
        bias = np.mean(nlos_times) - np.mean(los_times)
        assert bias == pytest.approx(8e-9, abs=1.5e-9)


def _fault_session(faults=None, seed=3, distances=(3.0, 6.0, 10.0)):
    from repro.protocol.concurrent import ConcurrentRangingSession

    return ConcurrentRangingSession.build(
        distances,
        seed=seed,
        detector_config=SearchAndSubtractConfig(
            max_responses=3, min_peak_snr=8.0
        ),
        faults=faults,
    )


class TestMissingResponderViaFaults:
    """Missing-responder scenario expressed through repro.faults.

    ``TestMissingResponder`` above checks the detector seam with a
    hand-built CIR; here a targeted :class:`ResponderDropout` silences
    one responder inside a full session round and the loss is *reported*
    — annotated on the outcome and in the round's fault log — instead of
    surfacing as a phantom identification.
    """

    def test_targeted_dropout_is_annotated_and_unidentified(self):
        from repro.faults import FaultPlan, ResponderDropout

        plan = FaultPlan([ResponderDropout(1.0, responder_ids=[2])], seed=0)
        result = _fault_session(plan).run_resilient_round(start_time_s=0.25)
        by_id = {o.responder_id: o for o in result.outcomes}
        assert "dropout" in by_id[2].faults
        assert by_id[2].faulted
        assert not by_id[2].identified
        assert (2, "dropout") in result.fault_events
        # The other responders still range and identify normally.
        for rid in set(by_id) - {2}:
            assert by_id[rid].identified
            assert not by_id[rid].faulted

    def test_empty_plan_is_bit_identical_to_no_plan(self):
        from repro.faults import FaultPlan

        clean = _fault_session(None).run_round(start_time_s=0.25)
        empty = _fault_session(FaultPlan([], seed=9)).run_round(
            start_time_s=0.25
        )
        assert clean.d_twr_m == empty.d_twr_m
        assert [o.estimated_distance_m for o in clean.outcomes] == [
            o.estimated_distance_m for o in empty.outcomes
        ]
        assert empty.fault_events == ()


class TestBlockedLinksViaFaults:
    """Blocked-LOS scenario expressed through repro.faults.

    ``TestBlockedLinks``/``TestNlosBias`` above drive the geometry and
    radio seams directly; :class:`NlosOnset` produces the same late-read
    bias end-to-end, switching on at a configurable round.
    """

    def _errors(self, faults, n_rounds=8, seed=11):
        session = _fault_session(faults, seed=seed, distances=(5.0,))
        errors = []
        for index in range(n_rounds):
            outcome = session.run_resilient_round(
                start_time_s=0.1, round_index=index
            ).outcomes[0]
            if outcome.error_m is not None:
                errors.append(outcome.error_m)
        return errors

    def test_nlos_onset_biases_ranges_late(self):
        from repro.faults import FaultPlan, NlosOnset

        clean = self._errors(None)
        faulted = self._errors(FaultPlan([NlosOnset(onset_round=0)], seed=1))
        # Clean rounds land within centimetres; losing the LOS locks the
        # leading edge onto a reflection and every range reads long.
        assert abs(np.mean(clean)) < 0.05
        assert len(faulted) >= 1
        assert np.mean(faulted) > 0.1

    def test_onset_round_gates_the_fault(self):
        from repro.faults import FaultPlan, NlosOnset

        session = _fault_session(
            FaultPlan([NlosOnset(onset_round=2)], seed=1),
            seed=11,
            distances=(5.0,),
        )
        pre = session.run_resilient_round(start_time_s=0.1, round_index=0)
        post = session.run_resilient_round(start_time_s=0.1, round_index=2)
        assert all(kind != "nlos_onset" for _, kind in pre.fault_events)
        assert any(kind == "nlos_onset" for _, kind in post.fault_events)
        # Pre-onset the link ranges cleanly.
        assert abs(pre.outcomes[0].error_m) < 0.05


class TestDegenerateGeometry:
    def test_collinear_anchors_flagged_by_gdop(self):
        from repro.localization.multilateration import gdop

        line = [Point(0, 5), Point(5, 5), Point(10, 5)]
        square = [Point(0, 0), Point(10, 0), Point(10, 10), Point(0, 10)]
        # Near the anchors' line all bearing vectors are nearly parallel,
        # so the cross-line coordinate is barely constrained.
        assert gdop(line, Point(2.5, 5.05)) > 5 * gdop(square, Point(5, 5))

    def test_multilateration_with_conflicting_ranges_large_residual(self):
        from repro.localization.multilateration import multilaterate

        anchors = [Point(0, 0), Point(10, 0), Point(5, 10)]
        # Ranges inconsistent with any single point.
        fit = multilaterate(anchors, [1.0, 1.0, 1.0])
        assert fit.rms_residual_m > 1.0
