"""Unit tests for repro.channel.cir."""

import numpy as np
import pytest

from repro.channel.cir import (
    ChannelRealization,
    ChannelTap,
    diffuse_tail_taps,
)
from repro.constants import SPEED_OF_LIGHT


def los(delay_s=10e-9, amplitude=1.0):
    return ChannelTap(delay_s=delay_s, amplitude=amplitude, kind="los", order=0)


def refl(delay_s, amplitude):
    return ChannelTap(delay_s=delay_s, amplitude=amplitude, kind="reflection")


class TestChannelTap:
    def test_path_length(self):
        tap = los(delay_s=10e-9)
        assert tap.path_length_m == pytest.approx(10e-9 * SPEED_OF_LIGHT)

    def test_power(self):
        tap = refl(1e-9, 0.5j)
        assert tap.power == pytest.approx(0.25)

    def test_delayed(self):
        tap = los(10e-9).delayed(5e-9)
        assert tap.delay_s == pytest.approx(15e-9)
        assert tap.kind == "los"

    def test_scaled(self):
        tap = los(amplitude=2.0).scaled(0.5j)
        assert tap.amplitude == pytest.approx(1.0j)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            ChannelTap(delay_s=-1e-9, amplitude=1.0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            ChannelTap(delay_s=0.0, amplitude=1.0, kind="ghost")


class TestChannelRealization:
    def test_sorted_by_delay(self):
        channel = ChannelRealization([refl(30e-9, 0.2), los(10e-9), refl(20e-9, 0.5)])
        delays = [tap.delay_s for tap in channel]
        assert delays == sorted(delays)

    def test_first_path(self):
        channel = ChannelRealization([refl(30e-9, 0.2), los(10e-9)])
        assert channel.first_path.kind == "los"

    def test_los_tap_lookup(self):
        channel = ChannelRealization([los(10e-9), refl(20e-9, 0.5)])
        assert channel.los_tap is not None
        assert channel.los_tap.order == 0

    def test_nlos_has_no_los_tap(self):
        channel = ChannelRealization([refl(20e-9, 0.5)])
        assert channel.los_tap is None

    def test_strongest_can_be_reflection(self):
        """The paper's challenge IV: an attenuated direct path can be
        weaker than a reflection."""
        channel = ChannelRealization([los(10e-9, 0.1), refl(20e-9, 0.8)])
        assert channel.strongest_tap.kind == "reflection"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ChannelRealization([])

    def test_delay_spread_zero_for_single_tap(self):
        assert ChannelRealization([los()]).delay_spread_s == 0.0

    def test_delay_spread_positive_for_multipath(self):
        channel = ChannelRealization([los(10e-9), refl(40e-9, 1.0)])
        assert channel.delay_spread_s == pytest.approx(15e-9)

    def test_excess_delay(self):
        channel = ChannelRealization([los(10e-9), refl(45e-9, 0.3)])
        assert channel.excess_delay_s == pytest.approx(35e-9)

    def test_total_power(self):
        channel = ChannelRealization([los(amplitude=1.0), refl(20e-9, 0.5)])
        assert channel.total_power() == pytest.approx(1.25)

    def test_delayed_shifts_all(self):
        channel = ChannelRealization([los(10e-9), refl(20e-9, 0.5)]).delayed(5e-9)
        assert channel.first_path.delay_s == pytest.approx(15e-9)

    def test_merged(self):
        a = ChannelRealization([los(10e-9)])
        b = ChannelRealization([refl(20e-9, 0.5)])
        merged = a.merged(b)
        assert len(merged) == 2

    def test_without_los_removes(self):
        channel = ChannelRealization([los(10e-9), refl(20e-9, 0.5)])
        nlos = channel.without_los()
        assert nlos.los_tap is None
        assert len(nlos) == 1

    def test_without_los_attenuates(self):
        channel = ChannelRealization([los(10e-9, 1.0), refl(20e-9, 0.5)])
        attenuated = channel.without_los(attenuation=0.1)
        assert attenuated.los_tap is not None
        assert abs(attenuated.los_tap.amplitude) == pytest.approx(0.1)

    def test_without_los_cannot_empty(self):
        with pytest.raises(ValueError):
            ChannelRealization([los()]).without_los()

    def test_specular_excludes_diffuse(self, rng):
        taps = [los(10e-9)] + diffuse_tail_taps(11e-9, 0.1, rng)
        channel = ChannelRealization(taps)
        assert len(channel.specular_taps()) == 1


class TestRender:
    def test_single_tap_renders_pulse_at_delay(self, default_pulse, ts):
        channel = ChannelRealization([los(delay_s=100 * ts, amplitude=1.0)])
        waveform = channel.render(default_pulse, 512)
        assert np.argmax(np.abs(waveform)) == 100

    def test_time_origin_shifts_window(self, default_pulse, ts):
        channel = ChannelRealization([los(delay_s=100 * ts)])
        waveform = channel.render(default_pulse, 512, time_origin_s=50 * ts)
        assert np.argmax(np.abs(waveform)) == 50

    def test_amplitude_scaling(self, default_pulse, ts):
        weak = ChannelRealization([los(100 * ts, 0.1)]).render(default_pulse, 256)
        strong = ChannelRealization([los(100 * ts, 1.0)]).render(default_pulse, 256)
        assert np.max(np.abs(strong)) == pytest.approx(
            10 * np.max(np.abs(weak)), rel=1e-9
        )

    def test_superposition(self, default_pulse, ts):
        a = ChannelRealization([los(100 * ts)])
        b = ChannelRealization([refl(300 * ts, 0.5)])
        combined = a.merged(b).render(default_pulse, 512)
        separate = a.render(default_pulse, 512) + b.render(default_pulse, 512)
        assert np.allclose(combined, separate)


class TestDiffuseTail:
    def test_power_budget(self, rng):
        taps = diffuse_tail_taps(0.0, total_power=0.5, rng=rng, duration_ns=100)
        # Expected power matches the budget within Monte-Carlo tolerance.
        total = sum(t.power for t in taps)
        assert 0.1 < total < 1.5

    def test_zero_power_gives_no_taps(self, rng):
        assert diffuse_tail_taps(0.0, 0.0, rng) == []

    def test_negative_power_rejected(self, rng):
        with pytest.raises(ValueError):
            diffuse_tail_taps(0.0, -1.0, rng)

    def test_all_marked_diffuse(self, rng):
        for tap in diffuse_tail_taps(10e-9, 0.1, rng):
            assert tap.kind == "diffuse"
            assert tap.delay_s >= 10e-9

    def test_power_decays_with_delay(self, rng):
        taps = diffuse_tail_taps(0.0, 1.0, rng, decay_ns=10.0, duration_ns=80)
        early = sum(t.power for t in taps[: len(taps) // 4])
        late = sum(t.power for t in taps[3 * len(taps) // 4 :])
        assert early > late
