"""Differential property tests: every detection engine path agrees.

The detector ships with deliberately redundant implementations —

* search-and-subtract: the **naive** per-template re-filtering loop
  (``use_fast=False``), the **fast** spectrum-cached serial engine, and
  the **batched** cross-trial engine (:func:`repro.core.batch.detect_batch`);
* threshold baseline: the **naive** sample-by-sample scan
  (``use_fast=False``), the **fast** trigger-hopping scan, and the
  batched-upsampling :meth:`~repro.core.threshold.ThresholdDetector.detect_batch`.

The redundancy only buys confidence if the paths are continuously
proven equivalent, so this module hammers randomly generated CIRs —
odd and even lengths, fractional and edge-clipped pulse placements,
single- and multi-template banks — through every path and requires the
*same decisions* (response count, template choice) with numerics
matching at ``rtol <= 1e-9`` (in practice byte-identical on pocketfft
builds, but the tolerance keeps the suite platform-safe).

``TestPlanCacheBatchKey`` pins the cache-key regression: a batch-shaped
plan (which carries mutable ``(B, n_templates, fft_length)`` scratch)
must never be served where the single-CIR :class:`DetectorPlan` is
expected — not even at B=1.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.constants import CIR_SAMPLING_PERIOD_S
from repro.core.backend import (
    BackendUnavailable,
    available_backends,
    get_backend,
    set_backend,
)
from repro.core.batch import BatchDetectorPlan, batch_detector_plan, detect_batch
from repro.core.detection import SearchAndSubtract, SearchAndSubtractConfig
from repro.core.plan import DetectorPlan, detector_plan, plan_cache_key
from repro.core.threshold import ThresholdConfig, ThresholdDetector
from repro.signal.pulses import dw1000_pulse
from repro.signal.sampling import place_pulse
from repro.signal.templates import TemplateBank

TS = CIR_SAMPLING_PERIOD_S
RTOL = 1e-9

_PULSE = dw1000_pulse()
_BANK = TemplateBank.paper_bank(2)

#: Odd, even, prime, and power-of-two-unfriendly lengths: exercises the
#: ``next_fast_len`` padding and the upsampler's odd/even Nyquist split.
_LENGTHS = (257, 318, 509, 1016)


def _random_cir(
    rng: np.random.Generator,
    length: int,
    n_pulses: int,
    clipped: bool = False,
    noise: float = 0.01,
) -> np.ndarray:
    """A CIR with fractional-position pulses and complex white noise.

    ``clipped=True`` allows placements hanging off either edge of the
    buffer (``place_pulse`` clips the out-of-range part), the case where
    a sloppy window computation in any engine would first diverge.
    """
    cir = np.zeros(length, dtype=complex)
    template = _PULSE.samples.astype(complex)
    for _ in range(n_pulses):
        if clipped:
            position = float(rng.uniform(-20.0, length + 20.0))
        else:
            position = float(rng.uniform(40.0, length - 40.0))
        amplitude = rng.uniform(0.2, 1.0) * np.exp(
            1j * rng.uniform(0, 2 * np.pi)
        )
        place_pulse(cir, template, position, amplitude)
    cir += noise * (
        rng.standard_normal(length) + 1j * rng.standard_normal(length)
    ) / np.sqrt(2.0)
    return cir


def _assert_responses_close(got, want):
    """Same decisions, numerics within RTOL."""
    assert len(got) == len(want)
    for response, reference in zip(got, want):
        assert response.template_index == reference.template_index
        assert response.index == pytest.approx(
            reference.index, rel=RTOL, abs=1e-9
        )
        assert response.delay_s == pytest.approx(
            reference.delay_s, rel=RTOL, abs=1e-18
        )
        assert abs(response.amplitude - reference.amplitude) <= RTOL * max(
            1.0, abs(reference.amplitude)
        )
        assert len(response.scores) == len(reference.scores)
        for score, ref_score in zip(response.scores, reference.scores):
            assert score == pytest.approx(ref_score, rel=RTOL, abs=1e-12)


class TestSearchEnginesAgree:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        length=st.sampled_from(_LENGTHS),
        n_pulses=st.integers(1, 3),
        clipped=st.booleans(),
    )
    def test_fast_matches_naive(self, seed, length, n_pulses, clipped):
        rng = np.random.default_rng(seed)
        cir = _random_cir(rng, length, n_pulses, clipped=clipped)
        fast = SearchAndSubtract(
            _BANK, SearchAndSubtractConfig(max_responses=n_pulses)
        ).detect(cir, TS, noise_std=0.01)
        naive = SearchAndSubtract(
            _BANK,
            SearchAndSubtractConfig(max_responses=n_pulses, use_fast=False),
        ).detect(cir, TS, noise_std=0.01)
        _assert_responses_close(fast, naive)

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        length=st.sampled_from(_LENGTHS),
        batch=st.integers(1, 5),
        clipped=st.booleans(),
    )
    def test_batched_matches_fast(self, seed, length, batch, clipped):
        rng = np.random.default_rng(seed)
        cirs = np.stack(
            [
                _random_cir(rng, length, rng.integers(1, 4), clipped=clipped)
                for _ in range(batch)
            ]
        )
        config = SearchAndSubtractConfig(max_responses=3)
        detector = SearchAndSubtract(_BANK, config)
        serial = [detector.detect(cirs[b], TS, noise_std=0.01) for b in range(batch)]
        batched = detect_batch(cirs, _BANK, TS, config, noise_std=0.01)
        assert len(batched) == batch
        for got, want in zip(batched, serial):
            _assert_responses_close(got, want)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), length=st.sampled_from(_LENGTHS))
    def test_per_trial_noise_vector_matches_scalar_calls(self, seed, length):
        """A length-B noise vector means trial b sees noise_std[b]."""
        rng = np.random.default_rng(seed)
        cirs = np.stack([_random_cir(rng, length, 2) for _ in range(3)])
        stds = [0.005, 0.02, 0.08]
        config = SearchAndSubtractConfig(max_responses=2, min_peak_snr=4.0)
        detector = SearchAndSubtract(_PULSE, config)
        serial = [
            detector.detect(cirs[b], TS, noise_std=stds[b]) for b in range(3)
        ]
        batched = detect_batch(cirs, _PULSE, TS, config, noise_std=stds)
        for got, want in zip(batched, serial):
            _assert_responses_close(got, want)


class TestRaggedEarlyStop:
    """The vectorised extraction loop retires rows independently (the
    active-row mask): a row whose best peak falls under its noise gate
    stops iterating while its neighbours keep extracting.  These tests
    *force* that ragged termination with per-row noise floors spanning
    two orders of magnitude and require the batched results to stay
    differentially equal to B independent serial runs."""

    @staticmethod
    def _ragged_stds(batch: int):
        # gate = min_peak_snr * std * sqrt(upsample_factor); with
        # amplitudes in [0.2, 1.0] these four decades take rows from
        # "extract everything" down to "gated out before iteration 0".
        return [0.002 * (6.0 ** (b % 4)) for b in range(batch)]

    def test_rows_stop_at_different_iterations(self):
        rng = np.random.default_rng(5)
        batch = 4
        cirs = np.stack(
            [_random_cir(rng, 509, 3, noise=0.0) for _ in range(batch)]
        )
        stds = self._ragged_stds(batch)
        config = SearchAndSubtractConfig(max_responses=3, min_peak_snr=5.0)
        detector = SearchAndSubtract(_BANK, config)
        serial = [
            detector.detect(cirs[b], TS, noise_std=stds[b])
            for b in range(batch)
        ]
        # The sweep only exercises the mask if termination is *actually*
        # ragged — guard the fixture, not just the comparison.
        assert len({len(responses) for responses in serial}) > 1
        batched = detect_batch(cirs, _BANK, TS, config, noise_std=stds)
        for got, want in zip(batched, serial):
            _assert_responses_close(got, want)

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        length=st.sampled_from(_LENGTHS),
        batch=st.integers(2, 6),
        clipped=st.booleans(),
    )
    def test_ragged_sweep_matches_serial(self, seed, length, batch, clipped):
        rng = np.random.default_rng(seed)
        cirs = np.stack(
            [
                _random_cir(rng, length, rng.integers(1, 4), clipped=clipped)
                for _ in range(batch)
            ]
        )
        stds = self._ragged_stds(batch)
        config = SearchAndSubtractConfig(max_responses=3, min_peak_snr=5.0)
        detector = SearchAndSubtract(_BANK, config)
        serial = [
            detector.detect(cirs[b], TS, noise_std=stds[b])
            for b in range(batch)
        ]
        batched = detect_batch(cirs, _BANK, TS, config, noise_std=stds)
        for got, want in zip(batched, serial):
            _assert_responses_close(got, want)

    def test_single_row_fully_gated(self):
        """B=1 whose only row gates out before iteration 0: the
        vectorised path must return ``[[]]``, not raise or hang."""
        rng = np.random.default_rng(9)
        cir = _random_cir(rng, 318, 2)
        config = SearchAndSubtractConfig(max_responses=3, min_peak_snr=5.0)
        batched = detect_batch(
            cir[np.newaxis, :], _BANK, TS, config, noise_std=10.0
        )
        assert batched == [[]]

    def test_empty_batch_with_gates(self):
        """B=0 through the gated path stays the trivial empty list."""
        config = SearchAndSubtractConfig(max_responses=3, min_peak_snr=5.0)
        assert detect_batch(
            np.zeros((0, 257)), _BANK, TS, config, noise_std=1.0
        ) == []


class TestBackendSelection:
    """The array-backend seam: selection precedence, validation, cache
    keying, and the invariant that forcing the default backend changes
    nothing about the results."""

    @pytest.fixture(autouse=True)
    def _clean_selection(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        set_backend(None)
        yield
        set_backend(None)

    def test_default_is_numpy(self):
        assert get_backend().name == "numpy"

    def test_env_round_trip(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        assert get_backend().name == "numpy"
        monkeypatch.delenv("REPRO_BACKEND")
        assert get_backend().name == "numpy"

    def test_env_unknown_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "cuda9000")
        with pytest.raises(ValueError, match="cuda9000"):
            get_backend()

    def test_set_backend_unknown_rejected(self):
        with pytest.raises(ValueError, match="not-a-backend"):
            set_backend("not-a-backend")

    def test_set_backend_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "cuda9000")
        set_backend("numpy")  # explicit selection wins over the env var
        assert get_backend().name == "numpy"

    def test_unavailable_accelerators_raise(self):
        availability = available_backends()
        assert availability["numpy"] is True
        for name in ("cupy", "torch"):
            if not availability[name]:
                with pytest.raises(BackendUnavailable):
                    get_backend(name)

    def test_explicit_numpy_matches_default(self):
        """Forcing the default backend is a no-op on results: the
        explicit-numpy batch equals the default-selection batch."""
        rng = np.random.default_rng(23)
        cirs = np.stack([_random_cir(rng, 318, 2) for _ in range(3)])
        config = SearchAndSubtractConfig(max_responses=2)
        default = detect_batch(cirs, _BANK, TS, config, noise_std=0.01)
        set_backend("numpy")
        forced = detect_batch(cirs, _BANK, TS, config, noise_std=0.01)
        assert len(forced) == len(default)
        for got, want in zip(forced, default):
            _assert_responses_close(got, want)

    def test_plan_cache_key_carries_backend(self):
        default = plan_cache_key([_PULSE], 509, 8, TS, batch_size=4)
        explicit = plan_cache_key(
            [_PULSE], 509, 8, TS, batch_size=4, backend="numpy"
        )
        assert default == explicit  # numpy IS the default component
        assert default != plan_cache_key(
            [_PULSE], 509, 8, TS, batch_size=4, backend="cupy"
        )

    def test_batch_plan_records_backend(self):
        plan = batch_detector_plan([_PULSE], 509, 8, TS, batch_size=2)
        assert plan.backend.name == "numpy"


class TestThresholdEnginesAgree:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        length=st.sampled_from(_LENGTHS),
        n_pulses=st.integers(1, 3),
        clipped=st.booleans(),
    )
    def test_fast_scan_matches_naive(self, seed, length, n_pulses, clipped):
        rng = np.random.default_rng(seed)
        cir = _random_cir(rng, length, n_pulses, clipped=clipped)
        fast = ThresholdDetector(
            _PULSE, ThresholdConfig(max_responses=n_pulses)
        ).detect(cir, TS, noise_std=0.01)
        naive = ThresholdDetector(
            _PULSE, ThresholdConfig(max_responses=n_pulses, use_fast=False)
        ).detect(cir, TS, noise_std=0.01)
        # The two scans walk the *same* upsampled magnitude array, so
        # their peaks must agree exactly — no tolerance.
        assert [r.index for r in fast] == [r.index for r in naive]
        assert [r.amplitude for r in fast] == [r.amplitude for r in naive]

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        length=st.sampled_from(_LENGTHS),
        batch=st.integers(1, 5),
    )
    def test_batched_matches_serial(self, seed, length, batch):
        rng = np.random.default_rng(seed)
        cirs = np.stack(
            [_random_cir(rng, length, rng.integers(1, 4)) for _ in range(batch)]
        )
        detector = ThresholdDetector(_PULSE, ThresholdConfig(max_responses=3))
        serial = [detector.detect(cirs[b], TS, noise_std=0.01) for b in range(batch)]
        batched = detector.detect_batch(cirs, TS, noise_std=0.01)
        assert len(batched) == batch
        for got, want in zip(batched, serial):
            _assert_responses_close(got, want)


class TestDegenerateBatches:
    def test_empty_batch_returns_empty(self):
        assert detect_batch(np.zeros((0, 256)), _PULSE, TS) == []
        detector = ThresholdDetector(_PULSE)
        assert detector.detect_batch(np.zeros((0, 256)), TS) == []

    def test_single_trial_batch_equals_serial(self):
        """B=1 is the degenerate batch the cache-key bug used to break:
        a warm single-CIR plan must not be served to the batch path."""
        rng = np.random.default_rng(3)
        cir = _random_cir(rng, 509, 2)
        detector = SearchAndSubtract(
            _BANK, SearchAndSubtractConfig(max_responses=2)
        )
        serial = detector.detect(cir, TS, noise_std=0.01)  # warms the plan
        batched = detect_batch(
            cir[np.newaxis, :], _BANK, TS,
            SearchAndSubtractConfig(max_responses=2), noise_std=0.01,
        )
        assert len(batched) == 1
        _assert_responses_close(batched[0], serial)

    def test_empty_template_bank_rejected(self):
        with pytest.raises(ValueError):
            detect_batch(np.zeros((2, 256)), [], TS)

    def test_1d_input_rejected_with_guidance(self):
        with pytest.raises(ValueError, match="np.newaxis"):
            detect_batch(np.zeros(256, dtype=complex), _PULSE, TS)

    def test_all_zero_batch_detects_nothing(self):
        config = SearchAndSubtractConfig(max_responses=3, min_peak_snr=5.0)
        results = detect_batch(
            np.zeros((3, 257)), _PULSE, TS, config, noise_std=1.0
        )
        assert results == [[], [], []]
        detector = ThresholdDetector(_PULSE, ThresholdConfig(max_responses=3))
        assert detector.detect_batch(np.zeros((3, 257)), TS) == [[], [], []]

    def test_mismatched_noise_vector_rejected(self):
        with pytest.raises(ValueError):
            detect_batch(
                np.zeros((3, 257)), _PULSE, TS, noise_std=[0.1, 0.2]
            )


class TestPlanCacheBatchKey:
    """A batch plan must never be served to the single-CIR path (or to a
    different batch size) — the key includes the batch shape."""

    def test_single_and_batch_keys_differ(self):
        single = plan_cache_key([_PULSE], 509, 8, TS)
        assert single != plan_cache_key([_PULSE], 509, 8, TS, batch_size=1)
        assert single != plan_cache_key([_PULSE], 509, 8, TS, batch_size=64)

    def test_batch_sizes_key_separately(self):
        keys = {
            plan_cache_key([_PULSE], 509, 8, TS, batch_size=b)
            for b in (1, 2, 8, 64)
        }
        assert len(keys) == 4

    def test_same_shape_same_key(self):
        assert plan_cache_key([_PULSE], 509, 8, TS, batch_size=8) == (
            plan_cache_key([dw1000_pulse()], 509, 8, TS, batch_size=8)
        )

    def test_plan_types_never_cross(self):
        """Warm both caches for one shape; each lookup must return its
        own plan type, with the batch plan wrapping the shared base."""
        base = detector_plan([_PULSE], 509, 8, TS)
        batch = batch_detector_plan([_PULSE], 509, 8, TS, batch_size=4)
        assert isinstance(base, DetectorPlan)
        assert isinstance(batch, BatchDetectorPlan)
        assert batch.base is base  # artifacts shared, wrapper distinct
        # Repeat lookups come from the cache and keep their types.
        assert detector_plan([_PULSE], 509, 8, TS) is base
        assert batch_detector_plan([_PULSE], 509, 8, TS, batch_size=4) is batch


class TestClassifierEnginesAgree:
    """Differential sweep for the batched classifier (Sect. V at scale).

    :func:`repro.core.batch_id.classify_batch` must equal B independent
    :meth:`PulseShapeClassifier.classify` calls — same response count
    and order, same winning shape indices, confidences and positions
    within ``rtol <= 1e-9``.
    """

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        length=st.sampled_from(_LENGTHS),
        batch=st.integers(1, 5),
        clipped=st.booleans(),
    )
    def test_batched_matches_serial(self, seed, length, batch, clipped):
        from repro.core.batch_id import classify_batch
        from repro.core.pulse_id import PulseShapeClassifier

        bank = TemplateBank.paper_bank(3)
        rng = np.random.default_rng(seed)
        cirs = np.stack(
            [
                _random_cir(rng, length, rng.integers(1, 4), clipped=clipped)
                for _ in range(batch)
            ]
        )
        config = SearchAndSubtractConfig(max_responses=3)
        classifier = PulseShapeClassifier(bank, config)
        serial = [
            classifier.classify(cirs[b], TS, noise_std=0.01)
            for b in range(batch)
        ]
        batched = classify_batch(cirs, bank, TS, config, noise_std=0.01)
        assert len(batched) == batch
        for got, want in zip(batched, serial):
            self._assert_classified_close(got, want)

    @staticmethod
    def _assert_classified_close(got, want):
        assert len(got) == len(want)
        for classified, reference in zip(got, want):
            assert classified.shape_index == reference.shape_index
            assert classified.shape_name == reference.shape_name
            if np.isinf(reference.confidence):
                assert np.isinf(classified.confidence)
            else:
                assert classified.confidence == pytest.approx(
                    reference.confidence, rel=RTOL
                )
            _assert_responses_close(
                [classified.response], [reference.response]
            )

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), length=st.sampled_from(_LENGTHS))
    def test_per_trial_noise_vector_matches_scalar_calls(self, seed, length):
        from repro.core.batch_id import classify_batch
        from repro.core.pulse_id import PulseShapeClassifier

        bank = TemplateBank.paper_bank(2)
        rng = np.random.default_rng(seed)
        cirs = np.stack([_random_cir(rng, length, 2) for _ in range(3)])
        stds = [0.005, 0.02, 0.08]
        config = SearchAndSubtractConfig(max_responses=2, min_peak_snr=4.0)
        classifier = PulseShapeClassifier(bank, config)
        serial = [
            classifier.classify(cirs[b], TS, noise_std=stds[b])
            for b in range(3)
        ]
        batched = classify_batch(cirs, bank, TS, config, noise_std=stds)
        for got, want in zip(batched, serial):
            self._assert_classified_close(got, want)

    def test_empty_batch_returns_empty(self):
        from repro.core.batch_id import classify_batch

        assert classify_batch(np.zeros((0, 256)), _BANK, TS) == []

    def test_single_trial_batch_equals_serial(self):
        """B=1: the degenerate batch must round-trip the serial result
        (and must not be served a single-CIR or detector-family plan)."""
        from repro.core.batch_id import classify_batch
        from repro.core.pulse_id import PulseShapeClassifier

        rng = np.random.default_rng(7)
        cir = _random_cir(rng, 509, 2)
        config = SearchAndSubtractConfig(max_responses=2)
        serial = PulseShapeClassifier(_BANK, config).classify(
            cir, TS, noise_std=0.01
        )
        batched = classify_batch(
            cir[np.newaxis, :], _BANK, TS, config, noise_std=0.01
        )
        assert len(batched) == 1
        self._assert_classified_close(batched[0], serial)

    def test_single_template_bank_confidence_infinite(self):
        """A 1-template bank has no runner-up: confidence is inf on both
        paths and every response maps to shape 0."""
        from repro.core.batch_id import classify_batch

        bank = TemplateBank.paper_bank(1)
        rng = np.random.default_rng(11)
        cirs = np.stack([_random_cir(rng, 318, 1) for _ in range(2)])
        results = classify_batch(
            cirs, bank, TS, SearchAndSubtractConfig(max_responses=1),
            noise_std=0.01,
        )
        for trial in results:
            assert len(trial) == 1
            assert trial[0].shape_index == 0
            assert np.isinf(trial[0].confidence)

    def test_tied_scores_resolve_deterministically(self):
        """Ties (equal winning and runner-up scores) must resolve to
        ``np.argsort``'s descending-order winner with confidence 1.0 —
        the decision is deterministic, never platform- or path-
        dependent.  Both engines run the same shared decision core
        (:func:`repro.core.pulse_id.classify_responses`), so testing it
        once covers the serial and the batched path by construction."""
        from repro.core.detection import DetectedResponse
        from repro.core.pulse_id import classify_responses

        tied = DetectedResponse(
            index=100.0,
            delay_s=100.0 * TS,
            amplitude=1.0 + 0j,
            template_index=0,
            scores=(0.75, 0.75),
        )
        [classified] = classify_responses([tied])
        # np.argsort is stable ascending; reversed, the tie's winner is
        # the *last* maximal index — pinned here so any future change
        # (e.g. to a first-index rule) must consciously touch this test.
        assert classified.shape_index == 1
        assert classified.confidence == pytest.approx(1.0)

    def test_1d_input_rejected_with_guidance(self):
        from repro.core.batch_id import classify_batch

        with pytest.raises(ValueError, match="np.newaxis"):
            classify_batch(np.zeros(256, dtype=complex), _BANK, TS)

    def test_empty_bank_rejected(self):
        from repro.core.batch_id import classify_batch

        with pytest.raises(ValueError, match="non-empty"):
            classify_batch(np.zeros((2, 256)), [], TS)


class TestPlanFamilyKeys:
    """Classifier plans share the cache with detector plans; the
    ``kind`` discriminator must keep the two families apart at every
    batch shape."""

    def test_detector_and_classifier_keys_differ(self):
        for batch_size in (None, 1, 8):
            assert plan_cache_key(
                [_PULSE], 509, 8, TS, batch_size=batch_size
            ) != plan_cache_key(
                [_PULSE], 509, 8, TS, batch_size=batch_size,
                kind="classifier",
            )

    def test_classifier_plan_wraps_shared_batch_plan(self):
        from repro.core.batch_id import BatchClassifierPlan, batch_classifier_plan

        bank = TemplateBank.paper_bank(2)
        plan = batch_classifier_plan(bank, 509, 8, TS, batch_size=4)
        assert isinstance(plan, BatchClassifierPlan)
        assert plan.batch_size == 4
        assert plan.n_templates == 2
        # The wrapped detector plan is the *same* cached object the
        # batched detection path uses — artifacts shared, not copied.
        assert plan.detector is batch_detector_plan(
            list(bank), 509, 8, TS, 4
        )
        # Repeat lookups hit the classifier-family cache entry.
        assert batch_classifier_plan(bank, 509, 8, TS, batch_size=4) is plan

    def test_bank_size_mismatch_rejected(self):
        from repro.core.batch_id import BatchClassifierPlan

        detector = batch_detector_plan([_PULSE], 509, 8, TS, 2)
        with pytest.raises(ValueError, match="templates"):
            BatchClassifierPlan(detector, TemplateBank.paper_bank(3))
