"""Unit + integration tests for the localization subpackage."""

import pytest

from repro.channel.geometry import Point
from repro.localization.anchors import AnchorNetwork
from repro.localization.multilateration import (
    gdop,
    multilaterate,
    multilaterate_robust,
)

SQUARE = [Point(0, 0), Point(10, 0), Point(10, 10), Point(0, 10)]


def ranges_from(anchors, position, noise=None, rng=None):
    distances = [position.distance_to(a) for a in anchors]
    if noise:
        distances = [d + float(rng.normal(0, noise)) for d in distances]
    return distances


class TestMultilaterate:
    def test_exact_recovery(self):
        truth = Point(3.0, 7.0)
        fit = multilaterate(SQUARE, ranges_from(SQUARE, truth))
        assert fit.position.distance_to(truth) < 1e-6
        assert fit.converged

    def test_noisy_recovery(self, rng):
        truth = Point(6.0, 4.0)
        fit = multilaterate(SQUARE, ranges_from(SQUARE, truth, 0.05, rng))
        assert fit.position.distance_to(truth) < 0.2

    def test_three_anchors_minimum(self):
        truth = Point(4.0, 4.0)
        anchors = SQUARE[:3]
        fit = multilaterate(anchors, ranges_from(anchors, truth))
        assert fit.position.distance_to(truth) < 1e-5

    def test_two_anchors_rejected(self):
        with pytest.raises(ValueError):
            multilaterate(SQUARE[:2], [1.0, 2.0])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            multilaterate(SQUARE, [1.0, 2.0])

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            multilaterate(SQUARE, [1.0, -2.0, 3.0, 4.0])

    def test_initial_guess_honoured(self):
        truth = Point(2.0, 2.0)
        fit = multilaterate(
            SQUARE, ranges_from(SQUARE, truth), initial=Point(2.1, 2.1)
        )
        assert fit.position.distance_to(truth) < 1e-6
        assert fit.iterations <= 10

    def test_residuals_reported(self, rng):
        truth = Point(5.0, 5.0)
        fit = multilaterate(SQUARE, ranges_from(SQUARE, truth, 0.1, rng))
        assert len(fit.residuals_m) == 4
        assert fit.rms_residual_m < 0.5


class TestRobust:
    def test_outlier_tolerated(self):
        """One range off by 3 m barely moves the Huber fix."""
        truth = Point(5.0, 5.0)
        distances = ranges_from(SQUARE, truth)
        distances[0] += 3.0
        plain = multilaterate(SQUARE, distances)
        robust = multilaterate_robust(SQUARE, distances)
        assert robust.position.distance_to(truth) < plain.position.distance_to(
            truth
        )
        assert robust.position.distance_to(truth) < 0.5

    def test_clean_data_unaffected(self):
        truth = Point(3.0, 8.0)
        distances = ranges_from(SQUARE, truth)
        robust = multilaterate_robust(SQUARE, distances)
        assert robust.position.distance_to(truth) < 1e-5

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            multilaterate_robust(SQUARE, [1.0] * 4, huber_delta_m=0.0)


class TestGdop:
    def test_good_geometry_low_gdop(self):
        assert gdop(SQUARE, Point(5.0, 5.0)) < 2.0

    def test_collinear_anchors_high_gdop(self):
        line = [Point(0, 0), Point(5, 0), Point(10, 0)]
        assert gdop(line, Point(5.0, 5.0)) > gdop(SQUARE, Point(5.0, 5.0))

    def test_needs_three_anchors(self):
        with pytest.raises(ValueError):
            gdop(SQUARE[:2], Point(5, 5))

    def test_position_on_anchor_rejected(self):
        with pytest.raises(ValueError):
            gdop(SQUARE, Point(0, 0))


class TestAnchorNetwork:
    def test_locate_accuracy(self):
        network = AnchorNetwork(SQUARE, seed=11)
        fix = network.locate(Point(4.0, 6.0))
        assert fix.error_m < 0.3
        assert fix.anchors_used >= 3

    def test_track_returns_fix_per_waypoint(self):
        network = AnchorNetwork(SQUARE, seed=12)
        fixes = network.track([Point(3, 3), Point(5, 5)])
        assert len(fixes) == 2

    def test_too_few_anchors_rejected(self):
        with pytest.raises(ValueError):
            AnchorNetwork(SQUARE[:2])

    def test_capacity_check(self):
        with pytest.raises(ValueError):
            AnchorNetwork(SQUARE, n_slots=1, n_shapes=2)
