"""Unit tests for repro.radio.dw1000 — the transceiver model."""

import numpy as np
import pytest

from repro.channel.cir import ChannelRealization, ChannelTap
from repro.constants import (
    CIR_LENGTH_PRF64,
    CIR_SAMPLING_PERIOD_S,
    DW1000_DELAYED_TX_RESOLUTION_S,
    SPEED_OF_LIGHT,
)
from repro.radio.dw1000 import (
    DW1000Radio,
    FIRST_PATH_NOMINAL_INDEX,
    SignalArrival,
    leading_edge_index,
)
from repro.radio.timebase import Clock
from repro.signal.pulses import dw1000_pulse
from repro.signal.sampling import place_pulse


def simple_channel(distance_m: float, amplitude: float = 1e-3):
    delay = distance_m / SPEED_OF_LIGHT
    return ChannelRealization(
        [ChannelTap(delay_s=delay, amplitude=amplitude, kind="los", order=0)]
    )


class TestLeadingEdge:
    def test_finds_single_pulse(self, default_pulse):
        cir = np.zeros(512, dtype=complex)
        place_pulse(cir, default_pulse.samples.astype(complex), 100.0, 1.0)
        idx = leading_edge_index(np.abs(cir), noise_std=1e-6)
        assert idx == pytest.approx(100.0, abs=0.5)

    def test_finds_first_of_two(self, default_pulse):
        cir = np.zeros(512, dtype=complex)
        place_pulse(cir, default_pulse.samples.astype(complex), 100.0, 0.5)
        place_pulse(cir, default_pulse.samples.astype(complex), 200.0, 1.0)
        idx = leading_edge_index(np.abs(cir), noise_std=1e-6)
        # First path wins even though the later one is stronger.
        assert idx == pytest.approx(100.0, abs=0.5)

    def test_all_zero_rejected(self):
        with pytest.raises(ValueError):
            leading_edge_index(np.zeros(64), noise_std=1.0)

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            leading_edge_index(np.array([1.0, 2.0]), noise_std=0.1)

    def test_subsample_refinement(self, default_pulse):
        cir = np.zeros(512, dtype=complex)
        place_pulse(cir, default_pulse.samples.astype(complex), 100.4, 1.0)
        idx = leading_edge_index(np.abs(cir), noise_std=1e-6)
        assert idx == pytest.approx(100.4, abs=0.25)


class TestTransmitChain:
    def test_pulse_follows_register(self):
        radio = DW1000Radio()
        radio.set_pulse_register(0xE6)
        assert radio.transmit_pulse().register == 0xE6

    def test_delayed_tx_floors(self):
        radio = DW1000Radio()
        t = 290e-6
        actual = radio.schedule_delayed_tx(t)
        assert actual <= t
        assert t - actual < DW1000_DELAYED_TX_RESOLUTION_S

    def test_delayed_tx_negative_rejected(self):
        with pytest.raises(ValueError):
            DW1000Radio().schedule_delayed_tx(-1.0)


class TestTimestampArrival:
    def test_near_truth(self, rng):
        radio = DW1000Radio()
        t = 1.234567e-3
        stamps = [radio.timestamp_arrival(t, rng) for _ in range(200)]
        errors = np.array(stamps) - t
        assert abs(np.mean(errors)) < 50e-12
        assert np.std(errors) < 200e-12

    def test_wider_pulse_noisier(self, rng):
        radio = DW1000Radio()
        narrow = np.std(
            [radio.timestamp_arrival(1e-3, rng, pulse_register=0x93)
             for _ in range(400)]
        )
        wide = np.std(
            [radio.timestamp_arrival(1e-3, rng, pulse_register=0xF0)
             for _ in range(400)]
        )
        assert wide > narrow

    def test_clock_conversion_applied(self, rng):
        radio = DW1000Radio(clock=Clock(drift_ppm=0.0, offset_s=1.0))
        stamp = radio.timestamp_arrival(0.5, rng)
        assert stamp == pytest.approx(1.5, abs=1e-9)


class TestCaptureCir:
    def test_length_and_type(self, rng):
        radio = DW1000Radio()
        arrival = SignalArrival(simple_channel(5.0), dw1000_pulse(), 0.0)
        capture = radio.capture_cir([arrival], rng)
        assert len(capture) == CIR_LENGTH_PRF64
        assert np.iscomplexobj(capture.samples)

    def test_first_path_near_nominal_index(self, rng):
        radio = DW1000Radio()
        arrival = SignalArrival(simple_channel(5.0), dw1000_pulse(), 0.0)
        capture = radio.capture_cir([arrival], rng)
        assert capture.first_path_index == pytest.approx(
            FIRST_PATH_NOMINAL_INDEX, abs=2.0
        )

    def test_rx_timestamp_accuracy(self, rng):
        radio = DW1000Radio()
        tof = 5.0 / SPEED_OF_LIGHT
        arrival = SignalArrival(simple_channel(5.0), dw1000_pulse(), 1e-3)
        errors = []
        for _ in range(50):
            capture = radio.capture_cir([arrival], rng)
            errors.append(capture.rx_timestamp_s - (1e-3 + tof))
        errors = np.array(errors)
        assert abs(np.mean(errors)) < 0.3e-9
        # LDE parabolic refinement on a noisy tap grid: sub-ns jitter.
        assert np.std(errors) < 1.0e-9

    def test_two_arrivals_two_peaks(self, rng):
        radio = DW1000Radio()
        arrivals = [
            SignalArrival(simple_channel(3.0), dw1000_pulse(), 0.0, source_id=0),
            SignalArrival(simple_channel(9.0), dw1000_pulse(), 0.0, source_id=1),
        ]
        capture = radio.capture_cir(arrivals, rng)
        mag = capture.magnitude
        # Expected separation: (9-3)/c = 20 ns ~ 20 taps.
        first = int(round(capture.first_path_index))
        window = mag[first + 10 : first + 30]
        assert window.max() > 10 * capture.noise_std

    def test_empty_arrivals_rejected(self, rng):
        with pytest.raises(ValueError):
            DW1000Radio().capture_cir([], rng)

    def test_noise_floor_present(self, rng):
        radio = DW1000Radio(noise_std=2e-5)
        arrival = SignalArrival(simple_channel(5.0), dw1000_pulse(), 0.0)
        capture = radio.capture_cir([arrival], rng)
        tail = capture.samples[-200:]
        measured = np.sqrt(np.mean(np.abs(tail) ** 2))
        assert measured == pytest.approx(2e-5, rel=0.3)

    def test_normalized_peak_is_one(self, rng):
        radio = DW1000Radio()
        arrival = SignalArrival(simple_channel(5.0), dw1000_pulse(), 0.0)
        capture = radio.capture_cir([arrival], rng)
        assert capture.normalized().max() == pytest.approx(1.0)

    def test_time_of_index(self, rng):
        radio = DW1000Radio()
        arrival = SignalArrival(simple_channel(5.0), dw1000_pulse(), 0.0)
        capture = radio.capture_cir([arrival], rng)
        t0 = capture.time_of_index(0)
        t10 = capture.time_of_index(10)
        assert t10 - t0 == pytest.approx(10 * CIR_SAMPLING_PERIOD_S)

    def test_ground_truth_arrivals_retained(self, rng):
        radio = DW1000Radio()
        arrival = SignalArrival(simple_channel(5.0), dw1000_pulse(), 0.0, source_id=7)
        capture = radio.capture_cir([arrival], rng)
        assert capture.arrivals[0].source_id == 7


class TestSignalArrival:
    def test_first_path_arrival(self):
        arrival = SignalArrival(simple_channel(3.0), dw1000_pulse(), 1.0)
        assert arrival.first_path_arrival_s == pytest.approx(
            1.0 + 3.0 / SPEED_OF_LIGHT
        )
