"""Integration tests: experiments ported onto the runtime executor.

The headline guarantee: for a fixed master seed the ported experiments
produce *identical* metrics for any worker count — parallelism is a
pure throughput knob, never a statistics knob.
"""

import pytest

from repro.experiments import (
    ablation_amplitude,
    ablation_bank,
    ablation_detectors,
    ablation_upsampling,
    fig2_cir,
    fig4_detection,
    fig6_pulse_id,
    fig7_overlap,
    nlos_study,
    sect5_precision,
    sect8_scalability,
    table1_pulse_id,
)
from repro.runtime import MetricsRegistry

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


class TestSerialParallelEquality:
    def test_table1(self):
        serial = table1_pulse_id.run(trials=5, seed=17, workers=1)
        parallel = table1_pulse_id.run(trials=5, seed=17, workers=2)
        assert serial.as_dict() == parallel.as_dict()

    def test_sect5(self):
        serial = sect5_precision.run(trials=30, seed=29, workers=1)
        parallel = sect5_precision.run(trials=30, seed=29, workers=2)
        assert serial.as_dict() == parallel.as_dict()

    def test_fig7(self):
        serial = fig7_overlap.run(trials=10, seed=23, workers=1)
        parallel = fig7_overlap.run(trials=10, seed=23, workers=2)
        assert serial.as_dict() == parallel.as_dict()

    def test_fig4(self):
        serial = fig4_detection.run(trials=8, seed=11, workers=1)
        parallel = fig4_detection.run(trials=8, seed=11, workers=2)
        assert serial.as_dict() == parallel.as_dict()

    def test_fig6(self):
        serial = fig6_pulse_id.run(trials=10, seed=5, workers=1)
        parallel = fig6_pulse_id.run(trials=10, seed=5, workers=2)
        assert serial.as_dict() == parallel.as_dict()

    def test_fig2(self):
        serial = fig2_cir.run(trials=6, seed=2, workers=1)
        parallel = fig2_cir.run(trials=6, seed=2, workers=2)
        assert serial.as_dict() == parallel.as_dict()

    def test_sect8(self):
        serial = sect8_scalability.run(seed=0, workers=1)
        parallel = sect8_scalability.run(seed=0, workers=2)
        assert serial.as_dict() == parallel.as_dict()

    def test_nlos(self):
        serial = nlos_study.run(trials=6, seed=47, workers=1)
        parallel = nlos_study.run(trials=6, seed=47, workers=2)
        assert serial.as_dict() == parallel.as_dict()

    def test_ablation(self):
        serial = ablation_detectors.run(trials=8, seed=37, workers=1)
        parallel = ablation_detectors.run(trials=8, seed=37, workers=2)
        assert serial.as_dict() == parallel.as_dict()

    def test_fig2_exemplary_capture_unchanged_by_port(self):
        """The headline figure stays bit-stable: the Monte-Carlo layer
        added by the runtime port must not disturb the seed-2 capture."""
        result = fig2_cir.run(trials=2, seed=2)
        assert result.metric("detected_components").measured == 6.0

    def test_sect5_seed_changes_results(self):
        a = sect5_precision.run(trials=15, seed=29)
        b = sect5_precision.run(trials=15, seed=30)
        # Same shape of output either way...
        assert set(a.as_dict()) == set(b.as_dict())
        # ...but the continuous sigmas must move with the seed.
        assert a.as_dict() != b.as_dict()


class TestMetricsWiring:
    def test_table1_reports_throughput_and_cache(self):
        metrics = MetricsRegistry()
        table1_pulse_id.run(trials=3, seed=17, workers=1, metrics=metrics)
        # 10 cells x 3 trials.
        assert metrics.counter("runtime.trials").value == 30
        assert metrics.timer("runtime.wall_clock").count == 10
        text = metrics.render()
        assert "trials/s" in text
        assert "cache.templates hit rate" in text
        assert "total wall-clock" in text

    def test_sect5_accumulates_across_shapes(self):
        metrics = MetricsRegistry()
        sect5_precision.run(trials=10, seed=29, workers=1, metrics=metrics)
        # 3 shapes x 10 exchanges.
        assert metrics.counter("runtime.trials").value == 30
        assert metrics.counter("runtime.trials_failed").value == 0

    def test_fig4_reports_throughput(self):
        metrics = MetricsRegistry()
        fig4_detection.run(trials=4, seed=11, workers=1, metrics=metrics)
        assert metrics.counter("runtime.trials").value == 4
        assert metrics.counter("runtime.trials_failed").value == 0
        assert "cache.templates hit rate" in metrics.render()

    def test_fig6_reports_throughput(self):
        metrics = MetricsRegistry()
        fig6_pulse_id.run(trials=4, seed=5, workers=1, metrics=metrics)
        assert metrics.counter("runtime.trials").value == 4
        assert metrics.counter("runtime.trials_failed").value == 0

    def test_fig2_reports_throughput(self):
        metrics = MetricsRegistry()
        fig2_cir.run(trials=4, seed=2, workers=1, metrics=metrics)
        assert metrics.counter("runtime.trials").value == 4
        assert metrics.counter("runtime.trials_failed").value == 0

    def test_sect8_counts_sweep_rows(self):
        metrics = MetricsRegistry()
        sect8_scalability.run(seed=0, workers=1, metrics=metrics)
        # One trial per network size.
        assert metrics.counter("runtime.trials").value == 6
        assert metrics.counter("runtime.trials_failed").value == 0

    def test_fig7_counts_attempted_rounds(self):
        metrics = MetricsRegistry()
        result = fig7_overlap.run(trials=8, seed=23, workers=1, metrics=metrics)
        # Rejection sampling may attempt more rounds than evaluated trials.
        assert metrics.counter("runtime.trials").value >= 8
        assert result.metric("search_and_subtract_rate").measured >= 0.0


class TestBatchedExecution:
    """``batch_size`` is a throughput knob, never a statistics knob."""

    def test_ablation_batched_equals_serial(self):
        base = ablation_detectors.run(trials=8, seed=37, batch_size=1)
        batched = ablation_detectors.run(trials=8, seed=37, batch_size=4)
        assert base.as_dict() == batched.as_dict()

    def test_ablation_batched_parallel_equals_serial(self):
        base = ablation_detectors.run(trials=8, seed=37, batch_size=1)
        batched = ablation_detectors.run(
            trials=8, seed=37, workers=2, batch_size=4
        )
        assert base.as_dict() == batched.as_dict()

    def test_ablation_batched_counts_batches(self):
        metrics = MetricsRegistry()
        ablation_detectors.run(
            trials=8, seed=37, batch_size=4, metrics=metrics
        )
        # 7 separation cells x (8 trials / batches of 4).
        assert metrics.counter("runtime.batches").value == 14
        assert metrics.counter("runtime.batch_fallbacks").value == 0

    def test_nlos_reports_throughput(self):
        metrics = MetricsRegistry()
        nlos_study.run(trials=3, seed=47, metrics=metrics)
        # 4 environments x 3 rounds.
        assert metrics.counter("runtime.trials").value == 12
        assert metrics.counter("runtime.trials_failed").value == 0


class TestStatisticalSanity:
    """The ports keep the paper's qualitative results intact."""

    def test_table1_accuracy_band(self):
        result = table1_pulse_id.run(trials=20, seed=17, workers=2)
        for comparison in result.comparisons:
            assert comparison.measured > 85.0

    def test_sect5_sigma_band(self):
        result = sect5_precision.run(trials=150, seed=29, workers=2)
        for name in ("sigma_s1_m", "sigma_s2_m", "sigma_s3_m"):
            assert 0.015 < result.metric(name).measured < 0.04

    def test_fig7_search_beats_threshold(self):
        result = fig7_overlap.run(trials=60, seed=23, workers=2)
        search = result.metric("search_and_subtract_rate").measured
        threshold = result.metric("threshold_rate").measured
        assert search > threshold


class TestBatchedClassification:
    """The batched-classifier ports: fig8 and table1 run their rounds
    through :class:`repro.core.batch_id.ClassifyBatchTrial`, so worker
    count AND batch size (including ``"auto"``) are pure throughput
    knobs."""

    def test_table1_batched_equals_serial(self):
        base = table1_pulse_id.run(trials=5, seed=17, batch_size=1)
        batched = table1_pulse_id.run(trials=5, seed=17, batch_size=3)
        auto = table1_pulse_id.run(trials=5, seed=17, batch_size="auto")
        assert base.as_dict() == batched.as_dict() == auto.as_dict()

    def test_table1_batched_parallel_equals_serial(self):
        base = table1_pulse_id.run(trials=5, seed=17)
        batched = table1_pulse_id.run(
            trials=5, seed=17, workers=2, batch_size=2
        )
        assert base.as_dict() == batched.as_dict()

    def test_fig8_serial_parallel_batched_auto(self):
        from repro.experiments import fig8_combined

        base = fig8_combined.run(trials=6, seed=31, batch_size=1)
        batched = fig8_combined.run(trials=6, seed=31, batch_size=3)
        auto = fig8_combined.run(trials=6, seed=31, batch_size="auto")
        parallel = fig8_combined.run(
            trials=6, seed=31, workers=2, batch_size=2
        )
        assert (
            base.as_dict()
            == batched.as_dict()
            == auto.as_dict()
            == parallel.as_dict()
        )

    def test_fig8_build_session_compat(self):
        """Benchmarks/examples keep using the fixed-topology session."""
        from repro.experiments import fig8_combined

        session = fig8_combined.build_session(seed=31)
        outcome = session.run_round()
        assert len(outcome.outcomes) == fig8_combined.N_RESPONDERS

    def test_table1_counts_batched_classifier_passes(self):
        from repro.runtime import global_metrics

        before = global_metrics().counter("classifier.batch_classifies").value
        metrics = MetricsRegistry()
        table1_pulse_id.run(trials=4, seed=17, batch_size=4, metrics=metrics)
        after = global_metrics().counter("classifier.batch_classifies").value
        # 2 shapes x 5 distances x (4 trials / batches of 4).
        assert after - before >= 10
        assert metrics.counter("runtime.batches").value == 10
        assert metrics.counter("runtime.batch_fallbacks").value == 0

    def test_auto_resolves_to_real_batches(self):
        """``batch_size="auto"`` on the fig8 workload must pick B > 1
        (the acceptance criterion for workload-shaped batching)."""
        from repro.experiments import fig8_combined

        metrics = MetricsRegistry()
        fig8_combined.run(
            trials=8, seed=31, batch_size="auto", metrics=metrics
        )
        resolved = metrics.gauge("runtime.batch_size").value
        assert resolved > 1
        assert metrics.counter("runtime.batches").value < 8


class TestPortedAblations:
    """The three straggler ablations, newly on the standard run API."""

    def test_ablation_bank_serial_parallel(self):
        serial = ablation_bank.run(trials=10, seed=41, workers=1)
        parallel = ablation_bank.run(trials=10, seed=41, workers=2)
        assert serial.as_dict() == parallel.as_dict()

    def test_ablation_amplitude_serial_parallel(self):
        serial = ablation_amplitude.run(trials=4, seed=53, workers=1)
        parallel = ablation_amplitude.run(trials=4, seed=53, workers=2)
        assert serial.as_dict() == parallel.as_dict()

    def test_ablation_upsampling_serial_parallel(self):
        serial = ablation_upsampling.run(trials=6, seed=61, workers=1)
        parallel = ablation_upsampling.run(trials=6, seed=61, workers=2)
        assert serial.as_dict() == parallel.as_dict()

    def test_metric_names_preserved(self):
        """The ports keep every historical comparison name."""
        bank = ablation_bank.run(trials=5, seed=41)
        assert {"accuracy_3_shapes", "accuracy_64_shapes"} <= set(
            bank.as_dict()
        )
        amp = ablation_amplitude.run(trials=3, seed=53)
        assert {
            "plain_rmse_overlapping",
            "ls_rmse_overlapping",
            "plain_rmse_separated",
        } <= set(amp.as_dict())
        ups = ablation_upsampling.run(trials=5, seed=61)
        assert {
            "toa_std_1x_ps", "toa_std_8x_ps", "improvement_1x_to_8x"
        } <= set(ups.as_dict())

    def test_legacy_positional_calls_warn_and_work(self):
        for module, args in (
            (ablation_bank, (5, 41)),
            (ablation_amplitude, (3, 53)),
            (ablation_upsampling, (5, 61)),
        ):
            with pytest.warns(DeprecationWarning):
                legacy = module.run(*args)
            modern = module.run(trials=args[0], seed=args[1])
            assert legacy.as_dict() == modern.as_dict()
