"""Unit tests for repro.radio.registers and repro.radio.energy."""

import pytest

from repro.constants import TC_PGDELAY_DEFAULT
from repro.radio.energy import EnergyMeter, RadioState, STATE_CURRENT_A
from repro.radio.registers import REGISTER_SPECS, RegisterFile


class TestRegisterFile:
    def test_reset_values(self):
        regs = RegisterFile()
        assert regs.read("TC_PGDELAY") == TC_PGDELAY_DEFAULT
        assert regs.read("DX_TIME") == 0

    def test_write_read(self):
        regs = RegisterFile()
        regs.write("TC_PGDELAY", 0xC8)
        assert regs.read("TC_PGDELAY") == 0xC8

    def test_width_enforced(self):
        regs = RegisterFile()
        with pytest.raises(ValueError):
            regs.write("TC_PGDELAY", 0x100)
        with pytest.raises(ValueError):
            regs.write("TC_PGDELAY", -1)

    def test_40bit_register_accepts_large_values(self):
        regs = RegisterFile()
        regs.write("DX_TIME", (1 << 40) - 1)
        with pytest.raises(ValueError):
            regs.write("DX_TIME", 1 << 40)

    def test_unknown_register(self):
        regs = RegisterFile()
        with pytest.raises(KeyError):
            regs.read("BOGUS")
        with pytest.raises(KeyError):
            regs.write("BOGUS", 1)

    def test_reset_restores(self):
        regs = RegisterFile()
        regs.write("TC_PGDELAY", 0xF0)
        regs.reset()
        assert regs.read("TC_PGDELAY") == TC_PGDELAY_DEFAULT

    def test_describe(self):
        regs = RegisterFile()
        assert "pulse" in regs.describe("TC_PGDELAY").lower()
        with pytest.raises(KeyError):
            regs.describe("BOGUS")

    def test_all_specs_have_valid_resets(self):
        for spec in REGISTER_SPECS.values():
            assert 0 <= spec.reset <= spec.max_value


class TestEnergyMeter:
    def test_starts_empty(self):
        meter = EnergyMeter()
        assert meter.charge_c == 0.0
        assert meter.energy_j == 0.0

    def test_rx_more_expensive_than_tx(self):
        """The paper's point: RX at 155 mA dominates TX at 90 mA."""
        rx = EnergyMeter()
        rx.account(RadioState.RX, 1.0)
        tx = EnergyMeter()
        tx.account(RadioState.TX, 1.0)
        assert rx.energy_j > tx.energy_j
        assert rx.energy_j / tx.energy_j == pytest.approx(155 / 90, rel=1e-6)

    def test_energy_is_charge_times_voltage(self):
        meter = EnergyMeter(supply_voltage_v=3.3)
        meter.account(RadioState.TX, 2.0)
        assert meter.energy_j == pytest.approx(2.0 * 0.090 * 3.3)

    def test_accumulates(self):
        meter = EnergyMeter()
        meter.account(RadioState.TX, 1.0)
        meter.account(RadioState.TX, 1.0)
        assert meter.duration_s(RadioState.TX) == pytest.approx(2.0)

    def test_negative_duration_rejected(self):
        meter = EnergyMeter()
        with pytest.raises(ValueError):
            meter.account(RadioState.RX, -1.0)

    def test_merged(self):
        a = EnergyMeter()
        a.account(RadioState.TX, 1.0)
        b = EnergyMeter()
        b.account(RadioState.RX, 2.0)
        merged = a.merged(b)
        assert merged.duration_s(RadioState.TX) == 1.0
        assert merged.duration_s(RadioState.RX) == 2.0
        # Originals untouched.
        assert a.duration_s(RadioState.RX) == 0.0

    def test_reset(self):
        meter = EnergyMeter()
        meter.account(RadioState.SLEEP, 100.0)
        meter.reset()
        assert meter.total_time_s == 0.0

    def test_sleep_current_negligible(self):
        assert STATE_CURRENT_A[RadioState.SLEEP] < 1e-4 * STATE_CURRENT_A[RadioState.RX]
