"""Tests for antenna-delay modelling and calibration."""

import pytest

from repro.channel.stochastic import IndoorEnvironment
from repro.constants import SPEED_OF_LIGHT
from repro.netsim.medium import Medium
from repro.netsim.node import Node
from repro.protocol.twr import SsTwr
from repro.radio.calibration import calibrate_pair, measure_bias_m
from repro.radio.dw1000 import DW1000Radio
from repro.radio.timebase import Clock


def make_link(rng, delay_error_ns=(0.0, 0.0), distance_m=4.0):
    """An SS-TWR link whose radios carry antenna-delay errors [ns]."""
    medium = Medium(environment=IndoorEnvironment.office(), rng=rng)
    nodes = []
    for i, error_ns in enumerate(delay_error_ns):
        radio = DW1000Radio(clock=Clock.random(rng))
        radio.true_antenna_delay_s = (
            radio.programmed_antenna_delay_s + error_ns * 1e-9
        )
        from repro.channel.geometry import Point

        nodes.append(
            Node(node_id=i, position=Point(i * distance_m, 0.0), radio=radio)
        )
    medium.add_nodes(nodes)
    return SsTwr(medium, nodes[0], nodes[1])


class TestAntennaDelayModel:
    def test_factory_device_has_zero_error(self):
        radio = DW1000Radio()
        assert radio.antenna_delay_error_s == pytest.approx(0.0)

    def test_default_programmed_delay_matches_reset(self):
        radio = DW1000Radio()
        # Reset value 0x4015 ticks ~= 256.7 ns.
        assert radio.programmed_antenna_delay_s == pytest.approx(
            0x4015 * 15.65e-12, rel=1e-3
        )

    def test_program_antenna_delay_roundtrip(self):
        radio = DW1000Radio()
        radio.program_antenna_delay(260e-9)
        assert radio.programmed_antenna_delay_s == pytest.approx(
            260e-9, abs=20e-12
        )

    def test_uncompensated_delay_biases_ranging(self, rng):
        """1 ns of uncompensated delay per radio -> ~30 cm of bias."""
        twr = make_link(rng, delay_error_ns=(1.0, 1.0))
        bias = measure_bias_m(twr, 4.0, 150, rng)
        expected = SPEED_OF_LIGHT * 2e-9 / 2.0  # ~0.3 m
        assert bias == pytest.approx(expected, abs=0.05)


class TestCalibration:
    def test_removes_bias(self, rng):
        twr = make_link(rng, delay_error_ns=(1.5, 0.7))
        report = calibrate_pair(twr, 4.0, trials=200, rng=rng)
        assert abs(report.bias_before_m) > 0.25
        assert abs(report.bias_after_m) < 0.02
        assert report.improvement_factor > 10

    def test_calibrated_pair_unchanged(self, rng):
        twr = make_link(rng, delay_error_ns=(0.0, 0.0))
        report = calibrate_pair(twr, 4.0, trials=200, rng=rng)
        assert abs(report.bias_before_m) < 0.02
        assert abs(report.bias_after_m) < 0.02

    def test_correction_sign(self, rng):
        """Positive delay error (late timestamps) reads long, so the
        correction increases the programmed delay."""
        twr = make_link(rng, delay_error_ns=(2.0, 2.0))
        before = twr.initiator.radio.programmed_antenna_delay_s
        report = calibrate_pair(twr, 4.0, trials=150, rng=rng)
        after = twr.initiator.radio.programmed_antenna_delay_s
        assert report.applied_correction_s > 0
        assert after > before

    def test_validation(self, rng):
        twr = make_link(rng)
        with pytest.raises(ValueError):
            calibrate_pair(twr, -1.0, trials=10, rng=rng)
        with pytest.raises(ValueError):
            measure_bias_m(twr, 4.0, 0, rng)
