"""Wire-protocol tests: framing, the tagged-JSON codec, and fuzzing.

The multi-process serving path stands on two properties pinned here:

* **Reassembly** — the incremental :class:`FrameDecoder` reconstructs
  exactly the encoded frame sequence from *any* chunking of the byte
  stream (property-tested with hypothesis-driven splits).
* **Value-exactness** — requests and outcomes round-trip through the
  codec with bit-equal CIRs, exact floats (including the ``inf``
  confidence of single-template classification), tuple-typed scores,
  and annotations intact; this is what lets the acceptance suite demand
  byte-equal streaming results across process boundaries.

Malformed input — truncation, oversize, wrong version, bad magic,
unknown kinds, undecodable payloads — must be rejected loudly, never
silently skipped.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.detection import DetectedResponse
from repro.core.pulse_id import ClassifiedResponse
from repro.serve.request import RangingOutcome, RangingRequest
from repro.serve.wire import (
    DEFAULT_MAX_FRAME_BYTES,
    HEADER_BYTES,
    KIND_CONTROL,
    KIND_HEARTBEAT,
    KIND_REQUEST,
    KIND_RESPONSE,
    MAGIC,
    WIRE_VERSION,
    Frame,
    FrameDecoder,
    FrameTooLargeError,
    WireError,
    WireVersionError,
    decode_frame,
    encode_frame,
    outcome_from_payload,
    outcome_to_payload,
    request_from_payload,
    request_to_payload,
)


def _detected(seed: int = 0) -> DetectedResponse:
    rng = np.random.default_rng(seed)
    return DetectedResponse(
        index=float(rng.uniform(0, 500)),
        delay_s=float(rng.uniform(0, 1e-6)),
        amplitude=complex(rng.normal(), rng.normal()),
        template_index=int(rng.integers(0, 4)),
        scores=tuple(float(value) for value in rng.uniform(0, 1, 3)),
    )


def _cir(length: int = 64, seed: int = 1) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return (
        rng.normal(size=length) + 1j * rng.normal(size=length)
    ).astype(complex)


class TestFraming:
    def test_round_trip_single_frame(self):
        payload = {"op": "stop", "drain": True}
        buffer = encode_frame(KIND_CONTROL, payload)
        frame, consumed = decode_frame(buffer)
        assert consumed == len(buffer)
        assert frame == Frame(KIND_CONTROL, payload)
        assert frame.kind_name == "control"

    def test_truncated_frame_waits_for_more(self):
        buffer = encode_frame(KIND_HEARTBEAT, {"worker": 0})
        for cut in range(len(buffer)):
            frame, consumed = decode_frame(buffer[:cut])
            assert frame is None and consumed == 0

    def test_bad_magic_rejected(self):
        buffer = bytearray(encode_frame(KIND_CONTROL, {}))
        buffer[0] ^= 0xFF
        with pytest.raises(WireError, match="magic"):
            decode_frame(bytes(buffer))

    def test_wrong_version_rejected(self):
        buffer = bytearray(encode_frame(KIND_CONTROL, {}))
        buffer[2] = WIRE_VERSION + 1
        with pytest.raises(WireVersionError):
            decode_frame(bytes(buffer))

    def test_unknown_kind_rejected(self):
        buffer = bytearray(encode_frame(KIND_CONTROL, {}))
        buffer[3] = 200
        with pytest.raises(WireError, match="kind"):
            decode_frame(bytes(buffer))
        with pytest.raises(WireError, match="kind"):
            encode_frame(200, {})

    def test_oversized_declared_length_rejected_before_buffering(self):
        import struct

        header = struct.pack(
            ">2sBBI", MAGIC, WIRE_VERSION, KIND_CONTROL, 1 << 30
        )
        with pytest.raises(FrameTooLargeError):
            decode_frame(header)

    def test_oversized_payload_rejected_at_encode(self):
        with pytest.raises(FrameTooLargeError):
            encode_frame(
                KIND_CONTROL, {"blob": "x" * 4096}, max_frame_bytes=1024
            )

    def test_non_object_payload_rejected(self):
        import struct

        body = b"[1,2,3]"
        buffer = (
            struct.pack(
                ">2sBBI", MAGIC, WIRE_VERSION, KIND_CONTROL, len(body)
            )
            + body
        )
        with pytest.raises(WireError, match="JSON object"):
            decode_frame(buffer)

    def test_undecodable_payload_rejected(self):
        import struct

        body = b"{not json"
        buffer = (
            struct.pack(
                ">2sBBI", MAGIC, WIRE_VERSION, KIND_CONTROL, len(body)
            )
            + body
        )
        with pytest.raises(WireError, match="undecodable"):
            decode_frame(buffer)


class TestFrameDecoder:
    def test_interleaved_chunks_reassemble(self):
        frames = [
            encode_frame(KIND_HEARTBEAT, {"worker": i, "pending": i * 3})
            for i in range(5)
        ]
        stream = b"".join(frames)
        decoder = FrameDecoder()
        seen = []
        # Pathological chunking: one byte at a time.
        for i in range(len(stream)):
            seen.extend(decoder.feed(stream[i : i + 1]))
        assert [frame.payload["worker"] for frame in seen] == list(range(5))
        assert decoder.buffered == 0

    def test_decoder_poisoned_after_error(self):
        good = encode_frame(KIND_CONTROL, {})
        decoder = FrameDecoder()
        with pytest.raises(WireError):
            decoder.feed(b"\x00" * HEADER_BYTES)
        with pytest.raises(WireError, match="poisoned"):
            decoder.feed(good)

    def test_decoder_frame_size_bound(self):
        decoder = FrameDecoder(max_frame_bytes=64)
        with pytest.raises(FrameTooLargeError):
            decoder.feed(
                encode_frame(KIND_CONTROL, {"blob": "y" * 256})
            )

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_any_chunking_reassembles_exactly(self, data):
        n_frames = data.draw(st.integers(1, 6))
        frames = []
        stream = b""
        for i in range(n_frames):
            payload = {
                "k": i,
                "values": data.draw(
                    st.lists(
                        st.floats(allow_nan=False, allow_infinity=True),
                        max_size=8,
                    )
                ),
            }
            frames.append(payload)
            stream += encode_frame(KIND_HEARTBEAT, payload)
        # Draw arbitrary split points, including empty feeds.
        cuts = sorted(
            data.draw(
                st.lists(
                    st.integers(0, len(stream)), min_size=0, max_size=12
                )
            )
        )
        decoder = FrameDecoder()
        seen = []
        last = 0
        for cut in cuts + [len(stream)]:
            seen.extend(decoder.feed(stream[last:cut]))
            last = cut
        assert [frame.payload for frame in seen] == frames
        assert decoder.buffered == 0


class TestPayloadCodec:
    def test_request_round_trip_bit_exact(self):
        cir = _cir(257)
        request = RangingRequest(
            session_id="session-0042",
            sequence=17,
            cir=cir,
            noise_std=0.017,
            deadline_s=0.25,
            annotations={"epoch": 3, "faults": ["dropout"]},
        )
        buffer = encode_frame(
            KIND_REQUEST, request_to_payload(request, 99)
        )
        frame, _ = decode_frame(buffer)
        decoded, request_id = request_from_payload(frame.payload)
        assert request_id == 99
        assert decoded.session_id == request.session_id
        assert decoded.sequence == request.sequence
        assert decoded.cir.dtype == cir.dtype
        assert decoded.cir.tobytes() == cir.tobytes()  # bit-exact
        assert decoded.noise_std == request.noise_std
        assert decoded.deadline_s == request.deadline_s
        assert dict(decoded.annotations) == dict(request.annotations)

    def test_request_without_optionals(self):
        request = RangingRequest("s", 0, _cir(16))
        decoded, _ = request_from_payload(request_to_payload(request, 0))
        assert decoded.deadline_s is None
        assert decoded.annotations is None

    def test_outcome_round_trip_with_responses(self):
        detected = [_detected(seed) for seed in range(3)]
        classified = [
            ClassifiedResponse(
                response=_detected(9), shape_index=2, confidence=1.75
            ),
            # Single-template classification reports inf confidence;
            # JSON's repr round-trip must carry it.
            ClassifiedResponse(
                response=_detected(10),
                shape_index=0,
                confidence=float("inf"),
            ),
        ]
        for responses in (detected, classified):
            outcome = RangingOutcome(
                session_id="s",
                sequence=4,
                status="ok",
                responses=list(responses),
                latency_s=0.0123,
                shard=1,
                batch_size=7,
                flush_cause="deadline",
                worker=3,
                annotations={"defense": {"flags": []}},
            )
            buffer = encode_frame(
                KIND_RESPONSE, outcome_to_payload(outcome, 5)
            )
            frame, _ = decode_frame(buffer)
            decoded, request_id = outcome_from_payload(frame.payload)
            assert request_id == 5
            # Dataclass equality covers every field value-exactly;
            # scores must come back as tuples for this to hold.
            assert decoded == outcome
            for original, copied in zip(responses, decoded.responses):
                assert type(copied) is type(original)
                inner = getattr(copied, "response", copied)
                assert isinstance(inner.scores, tuple)
                assert isinstance(inner.amplitude, complex)

    def test_error_outcome_round_trip(self):
        outcome = RangingOutcome(
            session_id="s",
            sequence=1,
            status="error",
            error="bad CIR payload: ValueError('boom')",
        )
        decoded, _ = outcome_from_payload(outcome_to_payload(outcome, 1))
        assert decoded == outcome

    def test_unknown_tag_rejected(self):
        import struct

        body = b'{"x": {"__wire__": "mystery"}}'
        buffer = (
            struct.pack(
                ">2sBBI", MAGIC, WIRE_VERSION, KIND_CONTROL, len(body)
            )
            + body
        )
        with pytest.raises(WireError, match="unknown wire tag"):
            decode_frame(buffer)

    def test_default_bound_fits_large_cirs(self):
        request = RangingRequest("s", 0, _cir(4096))
        buffer = encode_frame(
            KIND_REQUEST, request_to_payload(request, 0)
        )
        assert len(buffer) < DEFAULT_MAX_FRAME_BYTES

    @settings(max_examples=30, deadline=None)
    @given(
        st.floats(allow_nan=False, allow_infinity=True),
        st.integers(2, 48),
        st.integers(0, 2**31),
    )
    def test_floats_and_arrays_value_exact(self, value, length, seed):
        rng = np.random.default_rng(seed)
        cir = (
            rng.normal(size=length) + 1j * rng.normal(size=length)
        ).astype(complex)
        request = RangingRequest("s", 0, cir, noise_std=0.0)
        payload = request_to_payload(request, 0)
        payload["probe"] = value
        frame, _ = decode_frame(encode_frame(KIND_REQUEST, payload))
        assert frame.payload["probe"] == value or (
            np.isnan(value) and np.isnan(frame.payload["probe"])
        )
        decoded, _ = request_from_payload(frame.payload)
        assert decoded.cir.tobytes() == cir.tobytes()
