"""Property-based tests (hypothesis) for clocks and quantisation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.constants import (
    DW1000_DELAYED_TX_RESOLUTION_S,
    DW1000_TIMESTAMP_RESOLUTION_S,
)
from repro.radio.timebase import (
    Clock,
    quantize_delayed_tx_s,
    quantize_timestamp_s,
)

times = st.floats(min_value=0.0, max_value=16.0)


class TestQuantizationProperties:
    @given(t=times)
    @settings(max_examples=100, deadline=None)
    def test_timestamp_error_bounded(self, t):
        assert abs(quantize_timestamp_s(t) - t) <= DW1000_TIMESTAMP_RESOLUTION_S

    @given(t=times)
    @settings(max_examples=100, deadline=None)
    def test_delayed_tx_floors(self, t):
        q = quantize_delayed_tx_s(t)
        assert q <= t + 1e-12
        assert t - q < DW1000_DELAYED_TX_RESOLUTION_S

    @given(t=times)
    @settings(max_examples=100, deadline=None)
    def test_quantizers_idempotent(self, t):
        ts = quantize_timestamp_s(t)
        tx = quantize_delayed_tx_s(t)
        assert quantize_timestamp_s(ts) == pytest.approx(ts, abs=1e-15)
        assert quantize_delayed_tx_s(tx) == pytest.approx(tx, abs=1e-15)

    @given(a=times, b=times)
    @settings(max_examples=100, deadline=None)
    def test_delayed_tx_monotone(self, a, b):
        if a <= b:
            assert quantize_delayed_tx_s(a) <= quantize_delayed_tx_s(b)


class TestClockProperties:
    drifts = st.floats(min_value=-20.0, max_value=20.0)
    offsets = st.floats(min_value=-100.0, max_value=100.0)

    @given(drift=drifts, offset=offsets, t=times)
    @settings(max_examples=100, deadline=None)
    def test_conversion_roundtrip(self, drift, offset, t):
        clock = Clock(drift_ppm=drift, offset_s=offset)
        roundtrip = clock.global_from_local(clock.local_from_global(t))
        assert roundtrip == pytest.approx(t, abs=1e-9)

    @given(drift=drifts, duration=st.floats(min_value=0.0, max_value=10.0))
    @settings(max_examples=100, deadline=None)
    def test_duration_roundtrip(self, drift, duration):
        clock = Clock(drift_ppm=drift)
        assert clock.global_duration(
            clock.local_duration(duration)
        ) == pytest.approx(duration, abs=1e-12)

    @given(a=drifts, b=drifts)
    @settings(max_examples=100, deadline=None)
    def test_relative_drift_antisymmetric(self, a, b):
        clock_a, clock_b = Clock(drift_ppm=a), Clock(drift_ppm=b)
        forward = clock_a.relative_drift_ppm(clock_b)
        backward = clock_b.relative_drift_ppm(clock_a)
        # Antisymmetric to first order in ppm; the second-order term is
        # ~(a - b) * b * 1e-6, i.e. up to ~1e-3 ppm at 20 ppm drifts.
        assert forward == pytest.approx(-backward, abs=5e-3)
