"""Integration tests for the streaming ranging service.

The load-bearing claims:

* **Streaming == offline** — the same CIRs pushed through
  :class:`RangingService` produce exactly the results of the offline
  paths: the serial engine, a direct :func:`detect_batch` call, and
  ``run_trials(batch_size=B)`` over the same pool.
* **Backpressure** — a full ingress queue rejects with
  :class:`ServiceOverloadedError` (retry-after attached) instead of
  buffering or crashing.
* **Deadline shedding** — an expired request is shed, never served.
* **Graceful degradation** — a failing batched pass falls back to the
  serial engine per item; a malformed payload errors alone.
* **Exactly-once accounting** — under drain stop, non-drain stop, and
  caller cancellation, every accepted request reaches exactly one
  terminal status.
* **Observability** — ``/metrics`` exposes queue depth, flush causes,
  and latency quantiles; ``/healthz`` answers.

Coroutines are driven with ``asyncio.run`` from sync tests (no
pytest-asyncio dependency).
"""

import asyncio
import json
from functools import partial

import numpy as np
import pytest

from repro.constants import CIR_SAMPLING_PERIOD_S
from repro.core.batch import detect_batch
from repro.core.batch_id import classify_batch
from repro.core.detection import SearchAndSubtract, SearchAndSubtractConfig
from repro.core.pulse_id import PulseShapeClassifier
from repro.runtime import BatchTrial, run_trials
from repro.serve import (
    EngineConfig,
    MetricsServer,
    RangingRequest,
    RangingService,
    ServeConfig,
    ServiceOverloadedError,
)
from repro.serve.loadgen import LoadgenConfig, run_load, synthetic_pool
from repro.signal.templates import TemplateBank

TS = CIR_SAMPLING_PERIOD_S
BANK = TemplateBank.paper_bank(2)
CONFIG = SearchAndSubtractConfig()
POOL = synthetic_pool(BANK, pool_size=12, cir_length=257, seed=7)


def _engine(mode="detect", cir_length=257):
    return EngineConfig(
        BANK, TS, mode=mode, config=CONFIG, cir_length=cir_length
    )


def _requests(pool=POOL, session="s-0", deadline_s=None):
    return [
        RangingRequest(
            session_id=session,
            sequence=k,
            cir=cir,
            noise_std=noise_std,
            deadline_s=deadline_s,
        )
        for k, (cir, noise_std) in enumerate(pool)
    ]


async def _serve_all(requests, serve_config, engine=None):
    """Start a service, submit everything concurrently, drain, stop."""
    service = RangingService(engine or _engine(), serve_config)
    await service.start()
    try:
        results = await asyncio.gather(
            *[service.submit(request) for request in requests]
        )
    finally:
        await service.stop(drain=True)
    return results, service


# -- offline reference trial (module-level for run_trials) -------------------


def _pool_detect_single(rng, index, *, pool):
    cir, noise_std = pool[index]
    return SearchAndSubtract(BANK, CONFIG).detect(
        cir, TS, noise_std=noise_std
    )


def _pool_detect_batch(rngs, indices, *, pool):
    stack = np.stack([pool[i][0] for i in indices])
    stds = [pool[i][1] for i in indices]
    return detect_batch(stack, list(BANK), TS, config=CONFIG, noise_std=stds)


class TestStreamingEqualsOffline:
    def test_matches_serial_engine_and_run_trials(self):
        results, _ = asyncio.run(
            _serve_all(
                _requests(),
                ServeConfig(
                    n_shards=1, batch_size=4, max_batch_delay_s=0.005
                ),
            )
        )
        assert all(r.status == "ok" for r in results)
        streaming = [r.responses for r in results]

        serial = [
            _pool_detect_single(None, k, pool=POOL)
            for k in range(len(POOL))
        ]
        assert streaming == serial

        report = run_trials(
            BatchTrial(
                single=partial(_pool_detect_single, pool=POOL),
                batch=partial(_pool_detect_batch, pool=POOL),
            ),
            len(POOL),
            seed=0,
            batch_size=4,
        )
        assert streaming == list(report.values)

    def test_matches_offline_classify_batch(self):
        results, _ = asyncio.run(
            _serve_all(
                _requests(),
                ServeConfig(
                    n_shards=1, batch_size=len(POOL), max_batch_delay_s=0.05
                ),
                engine=_engine(mode="classify"),
            )
        )
        assert all(r.status == "ok" for r in results)
        stack = np.stack([cir for cir, _ in POOL])
        stds = [noise_std for _, noise_std in POOL]
        offline = classify_batch(
            stack, BANK, TS, config=CONFIG, noise_std=stds
        )
        assert [r.responses for r in results] == list(offline)
        serial = PulseShapeClassifier(BANK, CONFIG)
        assert results[0].responses == serial.classify(
            POOL[0][0], TS, noise_std=POOL[0][1]
        )

    def test_sharded_run_equals_single_shard(self):
        requests = [
            RangingRequest(f"s-{k % 5}", k, cir, noise_std)
            for k, (cir, noise_std) in enumerate(POOL)
        ]
        many, _ = asyncio.run(
            _serve_all(
                requests, ServeConfig(n_shards=4, batch_size=3)
            )
        )
        one, _ = asyncio.run(
            _serve_all(
                requests, ServeConfig(n_shards=1, batch_size=5)
            )
        )
        assert [r.responses for r in many] == [r.responses for r in one]

    def test_mixed_cir_lengths_in_one_flush(self):
        short_pool = synthetic_pool(
            BANK, pool_size=3, cir_length=128, seed=9
        )
        requests = _requests(list(POOL[:3]) + list(short_pool))
        results, _ = asyncio.run(
            _serve_all(
                requests,
                ServeConfig(
                    n_shards=1, batch_size=6, max_batch_delay_s=0.05
                ),
            )
        )
        assert all(r.status == "ok" for r in results)
        for k, (cir, noise_std) in enumerate(list(POOL[:3]) + list(short_pool)):
            assert results[k].responses == _pool_detect_single(
                None, 0, pool=[(cir, noise_std)]
            )


class TestOrderingAndBatching:
    def test_per_session_fifo_completion(self):
        async def scenario():
            service = RangingService(
                _engine(),
                ServeConfig(
                    n_shards=2, batch_size=3, max_batch_delay_s=0.002
                ),
            )
            await service.start()
            completed = []
            futures = []
            for request in _requests(session="one-session"):
                future = service.enqueue(request)
                future.add_done_callback(
                    lambda f: completed.append(f.result().sequence)
                )
                futures.append(future)
            await asyncio.gather(*futures)
            await service.stop()
            return completed

        completed = asyncio.run(scenario())
        assert completed == sorted(completed)

    def test_flush_causes_accounted(self):
        async def scenario():
            service = RangingService(
                _engine(),
                ServeConfig(
                    n_shards=1, batch_size=4, max_batch_delay_s=0.002
                ),
            )
            await service.start()
            # A full batch...
            await asyncio.gather(
                *[
                    service.submit(request)
                    for request in _requests(POOL[:4])
                ]
            )
            # ...then a lonely request that must flush on deadline.
            await service.submit(
                RangingRequest("s-0", 99, POOL[0][0], POOL[0][1])
            )
            await service.stop()
            metrics = service.metrics
            return (
                metrics.counter("serve.flush_full").value,
                metrics.counter("serve.flush_deadline").value,
            )

        full, deadline = asyncio.run(scenario())
        assert full >= 1
        assert deadline >= 1

    def test_auto_batch_size_resolution(self):
        service = RangingService(
            _engine(), ServeConfig(batch_size="auto")
        )
        assert isinstance(service.batch_size, int)
        assert 1 <= service.batch_size <= 64

    def test_result_carries_batch_metadata(self):
        results, _ = asyncio.run(
            _serve_all(
                _requests(POOL[:4]),
                ServeConfig(n_shards=1, batch_size=4),
            )
        )
        for result in results:
            assert result.batch_size == 4
            assert result.flush_cause == "full"
            assert result.shard == 0
            assert result.latency_s > 0


class TestBackpressure:
    def test_full_queue_rejects_with_retry_after(self):
        async def scenario():
            service = RangingService(
                _engine(),
                ServeConfig(
                    n_shards=1,
                    batch_size=64,
                    max_batch_delay_s=5.0,
                    queue_depth=2,
                    retry_after_s=0.125,
                ),
            )
            await service.start()
            futures = []
            error = None
            try:
                # Synchronous enqueues never yield to the event loop, so
                # the shard cannot drain between them: the third must
                # bounce off the high-watermark.
                for request in _requests(POOL[:3]):
                    futures.append(service.enqueue(request))
            except ServiceOverloadedError as exc:
                error = exc
            rejected = service.metrics.counter("serve.rejected").value
            await asyncio.gather(*futures)
            await service.stop()
            return error, rejected, len(futures)

        error, rejected, accepted = asyncio.run(scenario())
        assert isinstance(error, ServiceOverloadedError)
        assert error.retry_after_s == 0.125
        assert error.shard == 0
        assert rejected == 1
        assert accepted == 2

    def test_enqueue_requires_running_service(self):
        service = RangingService(_engine())
        with pytest.raises(RuntimeError):
            service.enqueue(_requests(POOL[:1])[0])


class TestDeadlines:
    def test_expired_request_is_shed_not_served(self):
        async def scenario():
            service = RangingService(
                _engine(),
                ServeConfig(
                    n_shards=1, batch_size=8, max_batch_delay_s=0.05
                ),
            )
            await service.start()
            # The batch deadline (50 ms) far exceeds the request budget
            # (1 ms): the request expires while waiting for company.
            result = await service.submit(
                RangingRequest(
                    "s-0", 0, POOL[0][0], POOL[0][1], deadline_s=0.001
                )
            )
            shed = service.metrics.counter("serve.shed").value
            await service.stop()
            return result, shed

        result, shed = asyncio.run(scenario())
        assert result.status == "shed"
        assert result.responses == []
        assert shed == 1

    def test_generous_deadline_is_served(self):
        results, service = asyncio.run(
            _serve_all(
                _requests(POOL[:4], deadline_s=30.0),
                ServeConfig(n_shards=1, batch_size=4),
            )
        )
        assert all(r.status == "ok" for r in results)
        assert service.metrics.counter("serve.shed").value == 0


class TestDegradation:
    def test_batch_failure_falls_back_to_serial(self, monkeypatch):
        import repro.serve.engine as serve_engine

        def explode(*args, **kwargs):
            raise RuntimeError("batched pass unavailable")

        monkeypatch.setattr(serve_engine, "detect_batch", explode)
        results, service = asyncio.run(
            _serve_all(
                _requests(POOL[:4]),
                ServeConfig(n_shards=1, batch_size=4),
            )
        )
        assert all(r.status == "ok" for r in results)
        assert service.metrics.counter("serve.batch_fallbacks").value >= 1
        # The fallback serves through the serial engine — identically.
        assert [r.responses for r in results] == [
            _pool_detect_single(None, k, pool=POOL) for k in range(4)
        ]

    def test_bad_payload_errors_alone(self):
        good = _requests(POOL[:2])
        bad = RangingRequest(
            "s-0", 99, np.zeros((4, 4), dtype=complex), 0.0
        )
        results, _ = asyncio.run(
            _serve_all(
                good + [bad],
                ServeConfig(n_shards=1, batch_size=3),
            )
        )
        assert [r.status for r in results] == ["ok", "ok", "error"]
        assert "bad CIR payload" in results[2].error


class TestAccounting:
    def test_non_drain_stop_cancels_pending_exactly_once(self):
        async def scenario():
            service = RangingService(
                _engine(),
                ServeConfig(
                    n_shards=2,
                    batch_size=64,
                    max_batch_delay_s=5.0,
                    queue_depth=64,
                ),
            )
            await service.start()
            futures = [
                service.enqueue(request)
                for request in _requests(session="a")
            ] + [
                service.enqueue(request)
                for request in _requests(session="b")
            ]
            await service.stop(drain=False)
            results = await asyncio.gather(*futures)
            return results, service

        results, service = asyncio.run(scenario())
        statuses = [r.status for r in results]
        assert all(s in ("cancelled", "ok") for s in statuses)
        assert statuses.count("cancelled") >= 1
        assert service.pending == 0
        metrics = service.metrics
        accepted = metrics.counter("serve.accepted").value
        terminal = sum(
            metrics.counter(f"serve.{status}").value
            for status in ("completed", "shed", "cancelled", "errors")
        )
        assert terminal == accepted

    def test_caller_cancellation_is_accounted(self):
        async def scenario():
            service = RangingService(
                _engine(),
                ServeConfig(
                    n_shards=1, batch_size=4, max_batch_delay_s=0.05
                ),
            )
            await service.start()
            victim = service.enqueue(_requests(POOL[:1])[0])
            victim.cancel()
            survivors = await asyncio.gather(
                *[
                    service.submit(request)
                    for request in _requests(POOL[1:4])
                ]
            )
            await service.stop()
            return victim, survivors, service

        victim, survivors, service = asyncio.run(scenario())
        assert victim.cancelled()
        assert all(r.status == "ok" for r in survivors)
        assert service.metrics.counter("serve.cancelled").value == 1
        assert service.pending == 0

    def test_loadgen_accounting_under_pressure(self):
        async def scenario():
            service = RangingService(
                _engine(),
                ServeConfig(
                    n_shards=2,
                    batch_size=4,
                    max_batch_delay_s=0.002,
                    queue_depth=4,
                    default_deadline_s=0.25,
                ),
            )
            await service.start()
            try:
                report = await run_load(
                    service,
                    POOL,
                    LoadgenConfig(
                        sessions=32, rate=400.0, duration_s=1.5, seed=3
                    ),
                )
            finally:
                await service.stop()
            return report, service

        report, service = asyncio.run(scenario())
        assert report.sent > 0
        assert report.accounting_ok, report.as_dict()
        assert service.pending == 0


class TestEndpoints:
    @staticmethod
    async def _get(port, path):
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        writer.write(
            f"GET {path} HTTP/1.1\r\nHost: t\r\n\r\n".encode()
        )
        await writer.drain()
        raw = (await reader.read()).decode()
        writer.close()
        head, _, body = raw.partition("\r\n\r\n")
        return head.splitlines()[0], body

    def test_metrics_and_healthz(self):
        async def scenario():
            service = RangingService(
                _engine(), ServeConfig(n_shards=2, batch_size=4)
            )
            await service.start()
            server = await MetricsServer(service).start()
            await asyncio.gather(
                *[service.submit(r) for r in _requests()]
            )
            metrics_status, metrics_body = await self._get(
                server.port, "/metrics"
            )
            health_status, health_body = await self._get(
                server.port, "/healthz"
            )
            missing_status, _ = await self._get(server.port, "/nope")
            await server.stop()
            await service.stop()
            return (
                metrics_status,
                metrics_body,
                health_status,
                health_body,
                missing_status,
            )

        (
            metrics_status,
            metrics_body,
            health_status,
            health_body,
            missing_status,
        ) = asyncio.run(scenario())
        assert "200" in metrics_status
        assert "# TYPE serve_latency_s summary" in metrics_body
        assert 'serve_latency_s{quantile="0.99"}' in metrics_body
        assert "serve_queue_depth" in metrics_body
        assert "serve_flush_full" in metrics_body
        assert "200" in health_status
        health = json.loads(health_body)
        assert health["status"] == "ok"
        assert health["shards"] == 2
        assert "404" in missing_status
