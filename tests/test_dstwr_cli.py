"""Tests for DS-TWR, the Eq.-behind-it, and the CLI."""

import numpy as np
import pytest

from repro.channel.stochastic import IndoorEnvironment
from repro.cli import EXPERIMENTS, main
from repro.constants import SPEED_OF_LIGHT
from repro.core.ranging import ds_twr_distance
from repro.netsim.medium import Medium
from repro.netsim.node import Node
from repro.protocol.twr import DsTwr


def make_dstwr(rng, distance_m=5.0):
    medium = Medium(environment=IndoorEnvironment.office(), rng=rng)
    initiator = Node.at(0, 0.0, 0.0, rng=rng)
    responder = Node.at(1, distance_m, 0.0, rng=rng)
    medium.add_nodes([initiator, responder])
    return DsTwr(medium, initiator, responder)


class TestDsTwrFormula:
    def test_ideal_symmetric_exchange(self):
        d = 8.0
        tof = d / SPEED_OF_LIGHT
        reply = 290e-6
        estimate = ds_twr_distance(
            t_round1_s=2 * tof + reply,
            t_reply1_s=reply,
            t_round2_s=2 * tof + reply,
            t_reply2_s=reply,
        )
        assert estimate == pytest.approx(d, abs=1e-6)

    def test_asymmetric_replies_still_exact(self):
        d = 8.0
        tof = d / SPEED_OF_LIGHT
        r1, r2 = 290e-6, 410e-6
        estimate = ds_twr_distance(2 * tof + r1, r1, 2 * tof + r2, r2)
        assert estimate == pytest.approx(d, abs=1e-6)

    def test_drift_immunity_first_order(self):
        """Scale one side's measurements by (1 + 3 ppm): the error stays
        sub-millimetre, unlike SS-TWR's ~dm bias."""
        d = 8.0
        tof = d / SPEED_OF_LIGHT
        reply = 290e-6
        drift = 1 + 3e-6
        estimate = ds_twr_distance(
            t_round1_s=2 * tof + reply,          # initiator clock
            t_reply1_s=reply * drift,            # responder clock
            t_round2_s=(2 * tof + reply) * drift,
            t_reply2_s=reply,
        )
        assert abs(estimate - d) < 1e-3

    def test_validation(self):
        with pytest.raises(ValueError):
            ds_twr_distance(-1.0, 1.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            ds_twr_distance(0.0, 0.0, 0.0, 0.0)


class TestDsTwrProtocol:
    def test_accuracy(self, rng):
        ds = make_dstwr(rng)
        estimates = ds.run_many(200, rng)
        assert np.mean(estimates) == pytest.approx(5.0, abs=0.02)
        assert np.std(estimates) < 0.04

    def test_no_cfo_needed(self, rng):
        """DS-TWR reaches cm precision with drifting clocks and no
        drift estimate at all."""
        ds = make_dstwr(rng)
        estimates = ds.run_many(150, rng)
        assert abs(np.mean(estimates) - 5.0) < 0.05

    def test_same_node_rejected(self, rng):
        medium = Medium(environment=IndoorEnvironment.office(), rng=rng)
        node = Node.at(0, 0.0, 0.0, rng=rng)
        medium.add_node(node)
        with pytest.raises(ValueError):
            DsTwr(medium, node, node)

    def test_run_many_validation(self, rng):
        with pytest.raises(ValueError):
            make_dstwr(rng).run_many(0, rng)


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_run_one(self, capsys):
        assert main(["run", "fig3"]) == 0
        out = capsys.readouterr().out
        assert "178" in out

    def test_run_with_trials(self, capsys):
        assert main(["run", "sect5", "--trials", "30"]) == 0
        out = capsys.readouterr().out
        assert "30 SS-TWR exchanges" in out

    def test_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_registry_covers_all_experiment_modules(self):
        """Every experiments/ module with a run() is reachable by CLI."""
        import pkgutil

        import repro.experiments as package

        modules = {
            name
            for _, name, _ in pkgutil.iter_modules(package.__path__)
            if name != "common"
        }
        registered = {module.__name__.rsplit(".", 1)[-1]
                      for module, _ in EXPERIMENTS.values()}
        assert modules == registered
