"""Unit tests for the trial executors: determinism, failures, fallback."""

from functools import partial

import numpy as np
import pytest

from repro.runtime import (
    ExecutionPolicy,
    MetricsRegistry,
    ParallelExecutor,
    SerialExecutor,
    TrialError,
    run_trials,
    spawn_trial_seeds,
)


def draw_normal(rng, index):
    """A trial whose value depends only on its seed child."""
    return float(rng.normal())


def scaled_draw(rng, index, *, scale):
    return scale * float(rng.normal()) + index


def fail_on_three(rng, index):
    if index == 3:
        raise ValueError("boom at three")
    return index


def return_none_on_even(rng, index):
    """None is a legitimate trial value (fig7-style rejection sampling)."""
    return None if index % 2 == 0 else index


class TestSeeding:
    def test_children_are_stable(self):
        a = spawn_trial_seeds(42, 5)
        b = spawn_trial_seeds(42, 5)
        for left, right in zip(a, b):
            assert (
                np.random.default_rng(left).normal()
                == np.random.default_rng(right).normal()
            )

    def test_accepts_seed_sequence_and_entropy_lists(self):
        root = np.random.SeedSequence(7)
        assert len(spawn_trial_seeds(root, 3)) == 3
        assert len(spawn_trial_seeds([7, 1], 3)) == 3

    def test_prefix_property(self):
        """The first k children of n trials equal the children of k trials,
        so growing --trials extends — not reshuffles — the sample."""
        small = spawn_trial_seeds(9, 3)
        large = spawn_trial_seeds(9, 10)
        for left, right in zip(small, large):
            assert (
                np.random.default_rng(left).integers(1 << 30)
                == np.random.default_rng(right).integers(1 << 30)
            )


class TestSerialExecutor:
    def test_values_in_index_order(self):
        run = SerialExecutor().run(scaled_draw_zero, 10, seed=1)
        assert [int(v) for v in run.values] == list(range(10))

    def test_reproducible(self):
        first = SerialExecutor().run(draw_normal, 8, seed=5)
        second = SerialExecutor().run(draw_normal, 8, seed=5)
        assert first.values == second.values

    def test_different_seeds_differ(self):
        first = SerialExecutor().run(draw_normal, 8, seed=5)
        second = SerialExecutor().run(draw_normal, 8, seed=6)
        assert first.values != second.values

    def test_fail_fast_raises_trial_error(self):
        with pytest.raises(TrialError) as excinfo:
            SerialExecutor().run(fail_on_three, 6, seed=0)
        assert excinfo.value.failure.index == 3
        assert "boom at three" in str(excinfo.value)

    def test_collect_policy_captures_failures(self):
        policy = ExecutionPolicy(fail_fast=False)
        run = SerialExecutor(policy).run(fail_on_three, 6, seed=0)
        assert run.values == [0, 1, 2, 4, 5]
        assert run.n_failed == 1
        failure = run.failures[0]
        assert failure.index == 3
        assert "ValueError" in failure.error
        assert "boom at three" in failure.traceback

    def test_none_values_survive(self):
        run = SerialExecutor().run(return_none_on_even, 6, seed=0)
        assert run.values == [None, 1, None, 3, None, 5]

    def test_metrics_recorded(self):
        metrics = MetricsRegistry()
        SerialExecutor().run(draw_normal, 7, seed=0, metrics=metrics)
        assert metrics.counter("runtime.trials").value == 7
        assert metrics.counter("runtime.trials_ok").value == 7
        assert metrics.timer("runtime.wall_clock").count == 1


class TestParallelExecutor:
    def test_matches_serial_exactly(self):
        serial = SerialExecutor().run(draw_normal, 24, seed=11)
        parallel = ParallelExecutor(workers=2).run(draw_normal, 24, seed=11)
        assert serial.values == parallel.values

    def test_matches_serial_with_partial(self):
        fn = partial(scaled_draw, scale=3.0)
        serial = SerialExecutor().run(fn, 15, seed=2)
        parallel = ParallelExecutor(workers=3).run(fn, 15, seed=2)
        assert serial.values == parallel.values

    def test_explicit_chunk_size_preserves_order(self):
        policy = ExecutionPolicy(chunk_size=2)
        run = ParallelExecutor(workers=2, policy=policy).run(
            scaled_draw_zero, 9, seed=4
        )
        assert [int(v) for v in run.values] == list(range(9))

    def test_chunk_size_validation(self):
        policy = ExecutionPolicy(chunk_size=0)
        with pytest.raises(ValueError):
            ParallelExecutor(workers=2, policy=policy).run(
                draw_normal, 4, seed=0
            )

    def test_workers_validation(self):
        with pytest.raises(ValueError):
            ParallelExecutor(workers=0)

    def test_zero_trials(self):
        run = ParallelExecutor(workers=2).run(draw_normal, 0, seed=0)
        assert run.values == []
        assert run.n_trials == 0

    def test_collect_policy_across_chunks(self):
        policy = ExecutionPolicy(fail_fast=False, chunk_size=2)
        run = ParallelExecutor(workers=2, policy=policy).run(
            fail_on_three, 6, seed=0
        )
        assert run.values == [0, 1, 2, 4, 5]
        assert run.failures[0].index == 3

    def test_fail_fast_propagates_from_worker(self):
        with pytest.raises(TrialError) as excinfo:
            ParallelExecutor(workers=2).run(fail_on_three, 6, seed=0)
        assert excinfo.value.failure.index == 3

    def test_unpicklable_fn_falls_back_to_serial(self):
        metrics = MetricsRegistry()
        run = ParallelExecutor(workers=2).run(
            lambda rng, i: i, 5, seed=0, metrics=metrics
        )
        assert run.values == [0, 1, 2, 3, 4]
        assert run.fallback_reason is not None
        assert metrics.counter("runtime.serial_fallbacks").value == 1
        # No double count of trials through the fallback path.
        assert metrics.counter("runtime.trials").value == 5

    def test_unpicklable_fn_raises_without_fallback(self):
        policy = ExecutionPolicy(fallback_to_serial=False)
        with pytest.raises(Exception):
            ParallelExecutor(workers=2, policy=policy).run(
                lambda rng, i: i, 5, seed=0
            )

    def test_parallel_metrics_report_chunks(self):
        metrics = MetricsRegistry()
        policy = ExecutionPolicy(chunk_size=5)
        ParallelExecutor(workers=2, policy=policy).run(
            draw_normal, 20, seed=0, metrics=metrics
        )
        assert metrics.counter("runtime.chunks").value == 4
        assert metrics.gauge("runtime.workers").value == 2
        assert metrics.histogram("runtime.chunk_seconds").count == 4


class TestRunTrials:
    def test_serial_parallel_equality_via_api(self):
        serial = run_trials(draw_normal, 20, seed=3, workers=1)
        parallel = run_trials(draw_normal, 20, seed=3, workers=2)
        assert serial.values == parallel.values

    def test_report_throughput_fields(self):
        report = run_trials(draw_normal, 10, seed=0)
        assert report.n_trials == 10
        assert report.elapsed_s > 0
        assert report.trials_per_s > 0

    def test_shared_registry_accumulates(self):
        metrics = MetricsRegistry()
        run_trials(draw_normal, 4, seed=0, metrics=metrics)
        run_trials(draw_normal, 6, seed=1, metrics=metrics)
        assert metrics.counter("runtime.trials").value == 10
        assert metrics.timer("runtime.wall_clock").count == 2

    def test_negative_trials_rejected(self):
        with pytest.raises(ValueError):
            run_trials(draw_normal, -1, seed=0)

    def test_fail_fast_flag(self):
        report = run_trials(fail_on_three, 6, seed=0, fail_fast=False)
        assert len(report.failures) == 1
        with pytest.raises(TrialError):
            run_trials(fail_on_three, 6, seed=0)


def scaled_draw_zero(rng, index):
    """Index plus a zero-width random draw — order-sensitive payload."""
    return index + 0.0 * float(rng.normal())
