"""Unit tests for the trial executors: determinism, failures, fallback."""

import os
import time
from functools import partial

import numpy as np
import pytest

from repro.runtime import (
    ExecutionPolicy,
    MetricsRegistry,
    ParallelExecutor,
    SerialExecutor,
    TrialError,
    WorkerTimeoutError,
    run_trials,
    spawn_trial_seeds,
)


def draw_normal(rng, index):
    """A trial whose value depends only on its seed child."""
    return float(rng.normal())


def scaled_draw(rng, index, *, scale):
    return scale * float(rng.normal()) + index


def fail_on_three(rng, index):
    if index == 3:
        raise ValueError("boom at three")
    return index


def return_none_on_even(rng, index):
    """None is a legitimate trial value (fig7-style rejection sampling)."""
    return None if index % 2 == 0 else index


class TestSeeding:
    def test_children_are_stable(self):
        a = spawn_trial_seeds(42, 5)
        b = spawn_trial_seeds(42, 5)
        for left, right in zip(a, b):
            assert (
                np.random.default_rng(left).normal()
                == np.random.default_rng(right).normal()
            )

    def test_accepts_seed_sequence_and_entropy_lists(self):
        root = np.random.SeedSequence(7)
        assert len(spawn_trial_seeds(root, 3)) == 3
        assert len(spawn_trial_seeds([7, 1], 3)) == 3

    def test_prefix_property(self):
        """The first k children of n trials equal the children of k trials,
        so growing --trials extends — not reshuffles — the sample."""
        small = spawn_trial_seeds(9, 3)
        large = spawn_trial_seeds(9, 10)
        for left, right in zip(small, large):
            assert (
                np.random.default_rng(left).integers(1 << 30)
                == np.random.default_rng(right).integers(1 << 30)
            )


class TestSerialExecutor:
    def test_values_in_index_order(self):
        run = SerialExecutor().run(scaled_draw_zero, 10, seed=1)
        assert [int(v) for v in run.values] == list(range(10))

    def test_reproducible(self):
        first = SerialExecutor().run(draw_normal, 8, seed=5)
        second = SerialExecutor().run(draw_normal, 8, seed=5)
        assert first.values == second.values

    def test_different_seeds_differ(self):
        first = SerialExecutor().run(draw_normal, 8, seed=5)
        second = SerialExecutor().run(draw_normal, 8, seed=6)
        assert first.values != second.values

    def test_fail_fast_raises_trial_error(self):
        with pytest.raises(TrialError) as excinfo:
            SerialExecutor().run(fail_on_three, 6, seed=0)
        assert excinfo.value.failure.index == 3
        assert "boom at three" in str(excinfo.value)

    def test_collect_policy_captures_failures(self):
        policy = ExecutionPolicy(fail_fast=False)
        run = SerialExecutor(policy).run(fail_on_three, 6, seed=0)
        assert run.values == [0, 1, 2, 4, 5]
        assert run.n_failed == 1
        failure = run.failures[0]
        assert failure.index == 3
        assert "ValueError" in failure.error
        assert "boom at three" in failure.traceback

    def test_none_values_survive(self):
        run = SerialExecutor().run(return_none_on_even, 6, seed=0)
        assert run.values == [None, 1, None, 3, None, 5]

    def test_metrics_recorded(self):
        metrics = MetricsRegistry()
        SerialExecutor().run(draw_normal, 7, seed=0, metrics=metrics)
        assert metrics.counter("runtime.trials").value == 7
        assert metrics.counter("runtime.trials_ok").value == 7
        assert metrics.timer("runtime.wall_clock").count == 1


class TestParallelExecutor:
    def test_matches_serial_exactly(self):
        serial = SerialExecutor().run(draw_normal, 24, seed=11)
        parallel = ParallelExecutor(workers=2).run(draw_normal, 24, seed=11)
        assert serial.values == parallel.values

    def test_matches_serial_with_partial(self):
        fn = partial(scaled_draw, scale=3.0)
        serial = SerialExecutor().run(fn, 15, seed=2)
        parallel = ParallelExecutor(workers=3).run(fn, 15, seed=2)
        assert serial.values == parallel.values

    def test_explicit_chunk_size_preserves_order(self):
        policy = ExecutionPolicy(chunk_size=2)
        run = ParallelExecutor(workers=2, policy=policy).run(
            scaled_draw_zero, 9, seed=4
        )
        assert [int(v) for v in run.values] == list(range(9))

    def test_chunk_size_validation(self):
        # Validation moved to construction time: the policy itself rejects
        # a degenerate chunk size before any executor touches it.
        with pytest.raises(ValueError):
            ExecutionPolicy(chunk_size=0)

    def test_workers_validation(self):
        with pytest.raises(ValueError):
            ParallelExecutor(workers=0)

    def test_zero_trials(self):
        run = ParallelExecutor(workers=2).run(draw_normal, 0, seed=0)
        assert run.values == []
        assert run.n_trials == 0

    def test_collect_policy_across_chunks(self):
        policy = ExecutionPolicy(fail_fast=False, chunk_size=2)
        run = ParallelExecutor(workers=2, policy=policy).run(
            fail_on_three, 6, seed=0
        )
        assert run.values == [0, 1, 2, 4, 5]
        assert run.failures[0].index == 3

    def test_fail_fast_propagates_from_worker(self):
        with pytest.raises(TrialError) as excinfo:
            ParallelExecutor(workers=2).run(fail_on_three, 6, seed=0)
        assert excinfo.value.failure.index == 3

    def test_unpicklable_fn_falls_back_to_serial(self):
        metrics = MetricsRegistry()
        run = ParallelExecutor(workers=2).run(
            lambda rng, i: i, 5, seed=0, metrics=metrics
        )
        assert run.values == [0, 1, 2, 3, 4]
        assert run.fallback_reason is not None
        assert metrics.counter("runtime.serial_fallbacks").value == 1
        # No double count of trials through the fallback path.
        assert metrics.counter("runtime.trials").value == 5

    def test_unpicklable_fn_raises_without_fallback(self):
        policy = ExecutionPolicy(fallback_to_serial=False)
        with pytest.raises(Exception):
            ParallelExecutor(workers=2, policy=policy).run(
                lambda rng, i: i, 5, seed=0
            )

    def test_parallel_metrics_report_chunks(self):
        metrics = MetricsRegistry()
        policy = ExecutionPolicy(chunk_size=5)
        ParallelExecutor(workers=2, policy=policy).run(
            draw_normal, 20, seed=0, metrics=metrics
        )
        assert metrics.counter("runtime.chunks").value == 4
        assert metrics.gauge("runtime.workers").value == 2
        assert metrics.histogram("runtime.chunk_seconds").count == 4


class TestRunTrials:
    def test_serial_parallel_equality_via_api(self):
        serial = run_trials(draw_normal, 20, seed=3, workers=1)
        parallel = run_trials(draw_normal, 20, seed=3, workers=2)
        assert serial.values == parallel.values

    def test_report_throughput_fields(self):
        report = run_trials(draw_normal, 10, seed=0)
        assert report.n_trials == 10
        assert report.elapsed_s > 0
        assert report.trials_per_s > 0

    def test_shared_registry_accumulates(self):
        metrics = MetricsRegistry()
        run_trials(draw_normal, 4, seed=0, metrics=metrics)
        run_trials(draw_normal, 6, seed=1, metrics=metrics)
        assert metrics.counter("runtime.trials").value == 10
        assert metrics.timer("runtime.wall_clock").count == 2

    def test_negative_trials_rejected(self):
        with pytest.raises(ValueError):
            run_trials(draw_normal, -1, seed=0)

    def test_fail_fast_flag(self):
        report = run_trials(fail_on_three, 6, seed=0, fail_fast=False)
        assert len(report.failures) == 1
        with pytest.raises(TrialError):
            run_trials(fail_on_three, 6, seed=0)


def scaled_draw_zero(rng, index):
    """Index plus a zero-width random draw — order-sensitive payload."""
    return index + 0.0 * float(rng.normal())


#: Pid of the process that imported this module.  Fork-based pool workers
#: inherit this value while ``os.getpid()`` differs, which lets a trial
#: function hang *only* inside a worker and stay instant when the parent
#: re-dispatches the chunk in-process.
_PARENT_PID = os.getpid()


def hang_in_worker(rng, index):
    """Trial 0 hangs inside pool workers; every trial is instant in the
    parent process — simulates a wedged worker the parent must recover."""
    if index == 0 and os.getpid() != _PARENT_PID:
        time.sleep(30.0)
    return index + 0.0 * float(rng.normal())


#: Per-process attempt ledger for :func:`flaky_once`.
_ATTEMPTS = {}


def flaky_once(rng, index):
    """Fails each index's first attempt in the current process, then
    returns the same draw a never-failing trial would (the retry restarts
    the generator from the same seed child)."""
    count = _ATTEMPTS.get(index, 0)
    _ATTEMPTS[index] = count + 1
    if count == 0:
        raise RuntimeError(f"transient failure at trial {index}")
    return float(rng.normal())


class TestExecutionPolicyValidation:
    def test_defaults_are_valid(self):
        ExecutionPolicy()  # must not raise

    @pytest.mark.parametrize("timeout", [0.0, -1.0])
    def test_non_positive_worker_timeout_rejected(self, timeout):
        with pytest.raises(ValueError, match="worker_timeout_s"):
            ExecutionPolicy(worker_timeout_s=timeout)

    @pytest.mark.parametrize("chunk_size", [0, -3])
    def test_non_positive_chunk_size_rejected(self, chunk_size):
        with pytest.raises(ValueError, match="chunk_size"):
            ExecutionPolicy(chunk_size=chunk_size)

    def test_chunk_size_none_is_valid(self):
        assert ExecutionPolicy(chunk_size=None).chunk_size is None

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError, match="max_trial_retries"):
            ExecutionPolicy(max_trial_retries=-1)

    def test_negative_backoff_rejected(self):
        with pytest.raises(ValueError, match="retry_backoff_s"):
            ExecutionPolicy(retry_backoff_s=-0.1)

    def test_sub_unit_backoff_factor_rejected(self):
        with pytest.raises(ValueError, match="retry_backoff_factor"):
            ExecutionPolicy(retry_backoff_factor=0.5)


class TestTrialRetries:
    def setup_method(self):
        _ATTEMPTS.clear()

    def test_transient_failures_recover_byte_identically(self):
        policy = ExecutionPolicy(max_trial_retries=2)
        metrics = MetricsRegistry()
        run = SerialExecutor(policy).run(
            flaky_once, 6, seed=9, metrics=metrics
        )
        clean = SerialExecutor().run(draw_normal, 6, seed=9)
        # Recovered trials restart from the same seed child, so results
        # match a run that never failed.
        assert run.values == clean.values
        assert run.n_failed == 0
        assert metrics.counter("runtime.trial_retries").value == 6

    def test_deterministic_failure_exhausts_budget(self):
        policy = ExecutionPolicy(max_trial_retries=2, fail_fast=False)
        run = SerialExecutor(policy).run(fail_on_three, 6, seed=0)
        assert run.values == [0, 1, 2, 4, 5]
        assert run.failures[0].index == 3

    def test_parallel_retries_recover(self):
        policy = ExecutionPolicy(max_trial_retries=1)
        metrics = MetricsRegistry()
        run = ParallelExecutor(workers=2, policy=policy).run(
            flaky_once, 8, seed=9, metrics=metrics
        )
        clean = SerialExecutor().run(draw_normal, 8, seed=9)
        assert run.values == clean.values
        assert metrics.counter("runtime.trial_retries").value == 8


class TestWorkerTimeoutRecovery:
    def test_redispatch_recovers_hung_chunk(self):
        policy = ExecutionPolicy(chunk_size=2, worker_timeout_s=1.0)
        metrics = MetricsRegistry()
        run = ParallelExecutor(workers=2, policy=policy).run(
            hang_in_worker, 6, seed=0, metrics=metrics
        )
        serial = SerialExecutor().run(hang_in_worker, 6, seed=0)
        # Only the lost chunk re-runs in-process; results stay identical.
        assert run.values == serial.values
        assert metrics.counter("runtime.chunk_redispatches").value == 1
        assert "re-dispatched" in run.fallback_reason
        # No double count of trials through the recovery path.
        assert metrics.counter("runtime.trials").value == 6

    def test_timeout_raises_without_fallback(self):
        policy = ExecutionPolicy(
            chunk_size=2, worker_timeout_s=0.5, fallback_to_serial=False
        )
        metrics = MetricsRegistry()
        with pytest.raises(WorkerTimeoutError):
            ParallelExecutor(workers=2, policy=policy).run(
                hang_in_worker, 6, seed=0, metrics=metrics
            )


class TestPoolStartFailure:
    class _BrokenContext:
        def Pool(self, *args, **kwargs):
            raise OSError("pool start refused (simulated)")

    def test_pool_start_failure_falls_back_to_serial(self, monkeypatch):
        import multiprocessing

        monkeypatch.setattr(
            multiprocessing,
            "get_context",
            lambda *a, **k: TestPoolStartFailure._BrokenContext(),
        )
        metrics = MetricsRegistry()
        run = ParallelExecutor(workers=2).run(
            draw_normal, 6, seed=3, metrics=metrics
        )
        serial = SerialExecutor().run(draw_normal, 6, seed=3)
        assert run.values == serial.values
        assert "pool start failed" in run.fallback_reason
        assert metrics.counter("runtime.serial_fallbacks").value == 1
        assert metrics.counter("runtime.trials").value == 6

    def test_pool_start_failure_raises_without_fallback(self, monkeypatch):
        import multiprocessing

        monkeypatch.setattr(
            multiprocessing,
            "get_context",
            lambda *a, **k: TestPoolStartFailure._BrokenContext(),
        )
        policy = ExecutionPolicy(fallback_to_serial=False)
        with pytest.raises(OSError):
            ParallelExecutor(workers=2, policy=policy).run(
                draw_normal, 6, seed=3
            )
