"""Property tests for the micro-batcher: ordering, deadlines, no loss.

The batcher is item-agnostic, so these tests hammer it with plain
integers and pin down the three contracts the service builds on:

1. **Exactly-once, in order** — concatenating the flushed batches
   reproduces the enqueued sequence exactly (no loss, no duplication,
   no reordering), for any (item count, batch size) combination.
2. **Deadline monotonicity** — a flush happens no later than
   ``max_delay_s`` (plus scheduling slack) after its first item, and
   only short batches may flush for cause ``"deadline"``.
3. **Cancellation safety** — a ``fill`` cancelled mid-gather leaves
   every consumed item reachable via the ``into`` out-parameter: items
   in ``into`` plus items still queued equal items enqueued.
"""

import asyncio

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.batcher import STOP, MicroBatcher


def _drive(coro):
    return asyncio.run(coro)


async def _collect_all(batcher, items):
    """Enqueue everything up front, then fill until the stream stops."""
    queue = asyncio.Queue()
    for item in items:
        queue.put_nowait(item)
    queue.put_nowait(STOP)
    flushed = []
    while True:
        batch, cause, stopped = await batcher.fill(queue)
        flushed.append((list(batch), cause))
        if stopped:
            return flushed


class TestExactlyOnceInOrder:
    @given(
        n_items=st.integers(min_value=0, max_value=64),
        batch_size=st.integers(min_value=1, max_value=9),
    )
    @settings(max_examples=40, deadline=None)
    def test_concatenation_reproduces_stream(self, n_items, batch_size):
        items = list(range(n_items))
        batcher = MicroBatcher(batch_size, max_delay_s=0.05)
        flushed = _drive(_collect_all(batcher, items))
        recombined = [item for batch, _ in flushed for item in batch]
        assert recombined == items

    @given(
        n_items=st.integers(min_value=1, max_value=64),
        batch_size=st.integers(min_value=1, max_value=9),
    )
    @settings(max_examples=40, deadline=None)
    def test_batch_sizes_and_causes(self, n_items, batch_size):
        items = list(range(n_items))
        batcher = MicroBatcher(batch_size, max_delay_s=0.05)
        flushed = _drive(_collect_all(batcher, items))
        for batch, cause in flushed:
            assert len(batch) <= batch_size
            if cause == "full":
                assert len(batch) == batch_size
        # Everything was queued ahead of time, so no deadline ever fires:
        # full batches plus one final short drain batch.
        causes = [cause for _, cause in flushed]
        assert "deadline" not in causes
        assert causes[-1] == "drain"

    def test_stop_only_stream(self):
        flushed = _drive(_collect_all(MicroBatcher(4, 0.01), []))
        assert flushed == [([], "drain")]


class TestDeadline:
    def test_lonely_item_flushes_on_deadline(self):
        async def scenario():
            queue = asyncio.Queue()
            batcher = MicroBatcher(8, max_delay_s=0.02)
            loop = asyncio.get_running_loop()
            queue.put_nowait("only")
            started = loop.time()
            batch, cause, stopped = await batcher.fill(queue)
            elapsed = loop.time() - started
            return batch, cause, stopped, elapsed

        batch, cause, stopped, elapsed = _drive(scenario())
        assert batch == ["only"]
        assert cause == "deadline"
        assert not stopped
        assert elapsed >= 0.02
        assert elapsed < 0.5  # scheduling slack, not unbounded waiting

    def test_deadline_counts_from_first_item(self):
        async def scenario():
            queue = asyncio.Queue()
            batcher = MicroBatcher(8, max_delay_s=0.05)
            loop = asyncio.get_running_loop()

            async def trickle():
                for item in range(3):
                    await asyncio.sleep(0.012)
                    queue.put_nowait(item)

            feeder = asyncio.ensure_future(trickle())
            first_seen = loop.time()
            batch, cause, _ = await batcher.fill(queue)
            await feeder
            return batch, cause, loop.time() - first_seen

        batch, cause, elapsed = _drive(scenario())
        assert cause == "deadline"
        assert 1 <= len(batch) <= 3
        # The budget runs from the first item, not from each arrival —
        # three trickled items never extend the window beyond one budget.
        assert elapsed < 0.05 + 0.012 + 0.2

    def test_zero_delay_flushes_immediately_when_starved(self):
        async def scenario():
            queue = asyncio.Queue()
            queue.put_nowait(1)
            return await MicroBatcher(4, max_delay_s=0.0).fill(queue)

        batch, cause, stopped = _drive(scenario())
        assert batch == [1]
        assert cause == "deadline"
        assert not stopped

    def test_full_beats_deadline_for_queued_burst(self):
        async def scenario():
            queue = asyncio.Queue()
            for item in range(4):
                queue.put_nowait(item)
            return await MicroBatcher(4, max_delay_s=0.0).fill(queue)

        batch, cause, _ = _drive(scenario())
        assert batch == [0, 1, 2, 3]
        assert cause == "full"


class TestCancellationSafety:
    @given(
        n_ready=st.integers(min_value=1, max_value=6),
        n_late=st.integers(min_value=0, max_value=6),
    )
    @settings(max_examples=25, deadline=None)
    def test_cancelled_fill_loses_nothing(self, n_ready, n_late):
        """items(into) + items(queue) == items(enqueued), no duplicates."""

        async def scenario():
            queue = asyncio.Queue()
            # More than a batch can hold is irrelevant here; keep the
            # batch open so the fill is waiting when we cancel it.
            batcher = MicroBatcher(n_ready + n_late + 1, max_delay_s=5.0)
            for item in range(n_ready):
                queue.put_nowait(item)
            held = []
            task = asyncio.ensure_future(batcher.fill(queue, into=held))
            await asyncio.sleep(0.01)  # let it consume the ready items
            for item in range(n_ready, n_ready + n_late):
                queue.put_nowait(item)
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
            left = []
            while not queue.empty():
                left.append(queue.get_nowait())
            return held, left

        held, left = _drive(scenario())
        assert sorted(held + left) == list(range(n_ready + n_late))
        assert held == sorted(held)  # consumed prefix stays ordered

    def test_into_must_start_empty(self):
        async def scenario():
            queue = asyncio.Queue()
            queue.put_nowait(1)
            try:
                await MicroBatcher(2, 0.01).fill(queue, into=[0])
            except ValueError as error:
                return str(error)
            return None

        assert "empty" in _drive(scenario())
