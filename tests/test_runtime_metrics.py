"""Unit tests for the metrics registry: primitives, merging, rendering."""

import time

import pytest

from repro.runtime import MetricsRegistry


class TestPrimitives:
    def test_counter(self):
        metrics = MetricsRegistry()
        metrics.counter("c").inc()
        metrics.counter("c").inc(4)
        assert metrics.counter("c").value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_gauge_last_write_wins(self):
        metrics = MetricsRegistry()
        metrics.gauge("g").set(3)
        metrics.gauge("g").set(7)
        assert metrics.gauge("g").value == 7

    def test_timer_context_manager(self):
        metrics = MetricsRegistry()
        with metrics.timer("t").time():
            time.sleep(0.01)
        timer = metrics.timer("t")
        assert timer.count == 1
        assert timer.total_s >= 0.01

    def test_timer_records_on_exception(self):
        metrics = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with metrics.timer("t").time():
                raise RuntimeError("boom")
        assert metrics.timer("t").count == 1

    def test_timer_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().timer("t").record(-1.0)

    def test_histogram_summary(self):
        metrics = MetricsRegistry()
        for value in (1.0, 2.0, 3.0):
            metrics.histogram("h").observe(value)
        histogram = metrics.histogram("h")
        assert histogram.count == 3
        assert histogram.mean == 2.0
        assert histogram.min == 1.0
        assert histogram.max == 3.0

    def test_create_or_get_identity(self):
        metrics = MetricsRegistry()
        assert metrics.counter("x") is metrics.counter("x")
        assert metrics.is_empty() is False
        assert MetricsRegistry().is_empty() is True


class TestMerging:
    def test_snapshot_roundtrip(self):
        source = MetricsRegistry()
        source.counter("c").inc(3)
        source.gauge("g").set(2)
        source.timer("t").record(0.5)
        source.histogram("h").observe(4.0)

        target = MetricsRegistry()
        target.counter("c").inc(1)
        target.merge_snapshot(source.snapshot())

        assert target.counter("c").value == 4
        assert target.gauge("g").value == 2
        assert target.timer("t").total_s == 0.5
        assert target.histogram("h").count == 1

    def test_snapshot_is_plain_and_picklable(self):
        import pickle

        metrics = MetricsRegistry()
        metrics.counter("c").inc()
        snapshot = metrics.snapshot()
        assert pickle.loads(pickle.dumps(snapshot)) == snapshot


class TestRender:
    def test_render_lists_all_sections(self):
        metrics = MetricsRegistry()
        metrics.counter("runtime.trials").inc(100)
        metrics.gauge("runtime.workers").set(4)
        metrics.timer("runtime.wall_clock").record(2.0)
        metrics.histogram("runtime.chunk_seconds").observe(0.5)
        text = metrics.render()
        assert "runtime metrics" in text
        assert "runtime.trials" in text
        assert "runtime.workers" in text
        assert "runtime.wall_clock" in text
        assert "runtime.chunk_seconds" in text

    def test_render_derives_throughput(self):
        metrics = MetricsRegistry()
        metrics.counter("runtime.trials").inc(100)
        metrics.timer("runtime.wall_clock").record(2.0)
        text = metrics.render()
        assert "trials/s" in text
        assert "50.0" in text
        assert "total wall-clock" in text
        assert "2.000 s" in text

    def test_render_derives_cache_hit_rate(self):
        metrics = MetricsRegistry()
        metrics.counter("cache.templates.hits").inc(9)
        metrics.counter("cache.templates.misses").inc(1)
        text = metrics.render()
        assert "cache.templates hit rate" in text
        assert "90.0 %" in text

    def test_render_custom_title(self):
        text = MetricsRegistry().render(title="after table1")
        assert "after table1" in text
