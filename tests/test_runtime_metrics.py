"""Unit tests for the metrics registry: primitives, merging, rendering."""

import time

import pytest

from repro.runtime import MetricsRegistry


class TestPrimitives:
    def test_counter(self):
        metrics = MetricsRegistry()
        metrics.counter("c").inc()
        metrics.counter("c").inc(4)
        assert metrics.counter("c").value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_gauge_last_write_wins(self):
        metrics = MetricsRegistry()
        metrics.gauge("g").set(3)
        metrics.gauge("g").set(7)
        assert metrics.gauge("g").value == 7

    def test_timer_context_manager(self):
        metrics = MetricsRegistry()
        with metrics.timer("t").time():
            time.sleep(0.01)
        timer = metrics.timer("t")
        assert timer.count == 1
        assert timer.total_s >= 0.01

    def test_timer_records_on_exception(self):
        metrics = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with metrics.timer("t").time():
                raise RuntimeError("boom")
        assert metrics.timer("t").count == 1

    def test_timer_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().timer("t").record(-1.0)

    def test_histogram_summary(self):
        metrics = MetricsRegistry()
        for value in (1.0, 2.0, 3.0):
            metrics.histogram("h").observe(value)
        histogram = metrics.histogram("h")
        assert histogram.count == 3
        assert histogram.mean == 2.0
        assert histogram.min == 1.0
        assert histogram.max == 3.0

    def test_create_or_get_identity(self):
        metrics = MetricsRegistry()
        assert metrics.counter("x") is metrics.counter("x")
        assert metrics.is_empty() is False
        assert MetricsRegistry().is_empty() is True


class TestMerging:
    def test_snapshot_roundtrip(self):
        source = MetricsRegistry()
        source.counter("c").inc(3)
        source.gauge("g").set(2)
        source.timer("t").record(0.5)
        source.histogram("h").observe(4.0)

        target = MetricsRegistry()
        target.counter("c").inc(1)
        target.merge_snapshot(source.snapshot())

        assert target.counter("c").value == 4
        assert target.gauge("g").value == 2
        assert target.timer("t").total_s == 0.5
        assert target.histogram("h").count == 1

    def test_snapshot_is_plain_and_picklable(self):
        import pickle

        metrics = MetricsRegistry()
        metrics.counter("c").inc()
        snapshot = metrics.snapshot()
        assert pickle.loads(pickle.dumps(snapshot)) == snapshot


class TestRender:
    def test_render_lists_all_sections(self):
        metrics = MetricsRegistry()
        metrics.counter("runtime.trials").inc(100)
        metrics.gauge("runtime.workers").set(4)
        metrics.timer("runtime.wall_clock").record(2.0)
        metrics.histogram("runtime.chunk_seconds").observe(0.5)
        text = metrics.render()
        assert "runtime metrics" in text
        assert "runtime.trials" in text
        assert "runtime.workers" in text
        assert "runtime.wall_clock" in text
        assert "runtime.chunk_seconds" in text

    def test_render_derives_throughput(self):
        metrics = MetricsRegistry()
        metrics.counter("runtime.trials").inc(100)
        metrics.timer("runtime.wall_clock").record(2.0)
        text = metrics.render()
        assert "trials/s" in text
        assert "50.0" in text
        assert "total wall-clock" in text
        assert "2.000 s" in text

    def test_render_derives_cache_hit_rate(self):
        metrics = MetricsRegistry()
        metrics.counter("cache.templates.hits").inc(9)
        metrics.counter("cache.templates.misses").inc(1)
        text = metrics.render()
        assert "cache.templates hit rate" in text
        assert "90.0 %" in text

    def test_render_custom_title(self):
        text = MetricsRegistry().render(title="after table1")
        assert "after table1" in text


class TestQuantiles:
    def test_nearest_rank_quantiles(self):
        histogram = MetricsRegistry().histogram("h")
        for value in range(1, 101):
            histogram.observe(float(value))
        assert histogram.quantile(0.5) == 50.0
        assert histogram.quantile(0.95) == 95.0
        assert histogram.quantile(0.99) == 99.0
        assert histogram.quantile(0.0) == 1.0
        assert histogram.quantile(1.0) == 100.0

    def test_quantile_empty_is_nan(self):
        import math

        histogram = MetricsRegistry().histogram("h")
        assert math.isnan(histogram.quantile(0.5))
        assert all(math.isnan(v) for v in histogram.quantiles().values())

    def test_quantile_rejects_out_of_range(self):
        histogram = MetricsRegistry().histogram("h")
        histogram.observe(1.0)
        with pytest.raises(ValueError):
            histogram.quantile(1.5)
        with pytest.raises(ValueError):
            histogram.quantiles([0.5, -0.1])

    def test_reservoir_is_bounded_and_sliding(self):
        from repro.runtime.metrics import Histogram

        histogram = Histogram(max_samples=8)
        for value in range(100):
            histogram.observe(float(value))
        # Exact summary stats survive the bounded reservoir...
        assert histogram.count == 100
        assert histogram.min == 0.0 and histogram.max == 99.0
        # ...while quantiles reflect the most recent window only.
        assert len(histogram._samples) == 8
        assert histogram.quantile(0.0) >= 92.0

    def test_quantiles_single_sort_matches_quantile(self):
        rng_values = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        histogram = MetricsRegistry().histogram("h")
        for value in rng_values:
            histogram.observe(value)
        batch = histogram.quantiles((0.5, 0.95, 0.99))
        for q, value in batch.items():
            assert value == histogram.quantile(q)

    def test_registry_quantiles_configurable(self):
        metrics = MetricsRegistry(quantiles=(0.25, 0.75))
        for value in range(1, 5):
            metrics.histogram("h").observe(float(value))
        text = metrics.render()
        assert "p25=1" in text and "p75=3" in text

    def test_merge_snapshot_merges_reservoir(self):
        source = MetricsRegistry()
        for value in (1.0, 2.0, 3.0):
            source.histogram("h").observe(value)
        target = MetricsRegistry()
        target.merge_snapshot(source.snapshot())
        assert target.histogram("h").quantile(0.5) == 2.0

    def test_merge_snapshot_accepts_legacy_4_tuple(self):
        import math

        target = MetricsRegistry()
        target.merge_snapshot(
            {"histograms": {"h": (3, 6.0, 1.0, 3.0)}}
        )
        histogram = target.histogram("h")
        assert histogram.count == 3
        assert histogram.total == 6.0
        assert histogram.min == 1.0 and histogram.max == 3.0
        # No reservoir travelled, so quantiles are honestly unknown.
        assert math.isnan(histogram.quantile(0.5))


class TestPrometheus:
    def _loaded(self):
        metrics = MetricsRegistry()
        metrics.counter("serve.requests").inc(10)
        metrics.gauge("serve.queue_depth").set(3)
        metrics.timer("serve.engine").record(0.25)
        for value in range(1, 101):
            metrics.histogram("serve.latency_s").observe(value / 1000.0)
        return metrics

    def test_exposition_shape(self):
        text = self._loaded().render_prometheus()
        assert text.endswith("\n")
        assert "# TYPE serve_requests counter" in text
        assert "serve_requests 10" in text
        assert "# TYPE serve_queue_depth gauge" in text
        assert "serve_queue_depth 3" in text
        assert "# TYPE serve_engine_seconds summary" in text
        assert "serve_engine_seconds_sum 0.25" in text
        assert "serve_engine_seconds_count 1" in text

    def test_exposition_histogram_quantiles(self):
        text = self._loaded().render_prometheus()
        assert "# TYPE serve_latency_s summary" in text
        assert 'serve_latency_s{quantile="0.5"} 0.05' in text
        assert 'serve_latency_s{quantile="0.99"} 0.099' in text
        assert "serve_latency_s_count 100" in text

    def test_exposition_skips_nan_quantiles(self):
        metrics = MetricsRegistry()
        metrics.histogram("empty")  # registered, never observed
        text = metrics.render_prometheus()
        assert "quantile" not in text
        assert "empty_count 0" in text

    def test_name_sanitisation(self):
        from repro.runtime.metrics import _prometheus_name

        assert _prometheus_name("serve.latency_s") == "serve_latency_s"
        assert _prometheus_name("cache.plans.hits") == "cache_plans_hits"
        assert _prometheus_name("9lives") == "_9lives"
        assert _prometheus_name("a-b c") == "a_b_c"

    def test_parseable_lines(self):
        # Every non-comment line is "<name>[{labels}] <float>".
        for line in self._loaded().render_prometheus().strip().splitlines():
            if line.startswith("#"):
                continue
            name, value = line.rsplit(" ", 1)
            assert name
            float(value)  # must parse
