"""Unit tests for the least-squares amplitude refinement (ablation A3)."""

import numpy as np
import pytest

from repro.constants import CIR_SAMPLING_PERIOD_S as TS
from repro.core.detection import (
    SearchAndSubtract,
    SearchAndSubtractConfig,
    refine_amplitudes_least_squares,
)
from repro.signal.pulses import dw1000_pulse
from repro.signal.sampling import place_pulse


@pytest.fixture(scope="module")
def detector():
    return SearchAndSubtract(
        dw1000_pulse(), SearchAndSubtractConfig(max_responses=2)
    )


def overlapping_cir(separation_samples, amp2=0.8j):
    pulse = dw1000_pulse()
    cir = np.zeros(1016, dtype=complex)
    place_pulse(cir, pulse.samples.astype(complex), 300.0, 1.0)
    place_pulse(
        cir, pulse.samples.astype(complex), 300.0 + separation_samples, amp2
    )
    return cir


class TestLsRefinement:
    def test_positions_unchanged(self, detector):
        cir = overlapping_cir(1.3)
        plain = detector.detect(cir, TS)
        refined = detector.detect_with_ls_refinement(cir, TS)
        for a, b in zip(plain, refined):
            assert a.index == b.index
            assert a.template_index == b.template_index

    def test_amplitudes_improve_for_overlap(self, detector):
        cir = overlapping_cir(1.3)
        plain = detector.detect(cir, TS)
        refined = detector.detect_with_ls_refinement(cir, TS)
        truth = {0: 1.0, 1: 0.8}  # by delay order
        plain_err = sum(
            abs(abs(r.amplitude) - truth[i]) for i, r in enumerate(plain)
        )
        ls_err = sum(
            abs(abs(r.amplitude) - truth[i]) for i, r in enumerate(refined)
        )
        assert ls_err <= plain_err + 1e-9

    def test_separated_pulses_equal_estimates(self, detector):
        cir = overlapping_cir(200.0)
        plain = detector.detect(cir, TS)
        refined = detector.detect_with_ls_refinement(cir, TS)
        for a, b in zip(plain, refined):
            assert abs(a.amplitude) == pytest.approx(abs(b.amplitude), rel=0.01)

    def test_single_response_passthrough(self, detector):
        pulse = dw1000_pulse()
        cir = np.zeros(512, dtype=complex)
        place_pulse(cir, pulse.samples.astype(complex), 200.0, 1.0)
        single = SearchAndSubtract(
            pulse, SearchAndSubtractConfig(max_responses=1)
        )
        refined = single.detect_with_ls_refinement(cir, TS)
        assert len(refined) == 1

    def test_refine_empty_list(self):
        assert refine_amplitudes_least_squares(
            np.zeros(64, dtype=complex), [], [dw1000_pulse()], TS
        ) == []

    def test_complex_amplitude_recovered(self, detector):
        cir = overlapping_cir(1.5, amp2=0.6 * np.exp(1j * 2.1))
        refined = detector.detect_with_ls_refinement(cir, TS)
        later = max(refined, key=lambda r: r.delay_s)
        assert abs(later.amplitude) == pytest.approx(0.6, abs=0.08)
        assert np.angle(later.amplitude) == pytest.approx(2.1, abs=0.3)
