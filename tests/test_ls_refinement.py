"""Unit tests for the least-squares amplitude refinement (ablation A3)."""

import numpy as np
import pytest

from repro.constants import CIR_SAMPLING_PERIOD_S as TS
from repro.core.detection import (
    SearchAndSubtract,
    SearchAndSubtractConfig,
    refine_amplitudes_least_squares,
)
from repro.signal.pulses import dw1000_pulse
from repro.signal.sampling import place_pulse


@pytest.fixture(scope="module")
def detector():
    return SearchAndSubtract(
        dw1000_pulse(), SearchAndSubtractConfig(max_responses=2)
    )


def overlapping_cir(separation_samples, amp2=0.8j):
    pulse = dw1000_pulse()
    cir = np.zeros(1016, dtype=complex)
    place_pulse(cir, pulse.samples.astype(complex), 300.0, 1.0)
    place_pulse(
        cir, pulse.samples.astype(complex), 300.0 + separation_samples, amp2
    )
    return cir


class TestLsRefinement:
    def test_positions_unchanged(self, detector):
        cir = overlapping_cir(1.3)
        plain = detector.detect(cir, TS)
        refined = detector.detect_with_ls_refinement(cir, TS)
        for a, b in zip(plain, refined):
            assert a.index == b.index
            assert a.template_index == b.template_index

    def test_amplitudes_improve_for_overlap(self, detector):
        cir = overlapping_cir(1.3)
        plain = detector.detect(cir, TS)
        refined = detector.detect_with_ls_refinement(cir, TS)
        truth = {0: 1.0, 1: 0.8}  # by delay order
        plain_err = sum(
            abs(abs(r.amplitude) - truth[i]) for i, r in enumerate(plain)
        )
        ls_err = sum(
            abs(abs(r.amplitude) - truth[i]) for i, r in enumerate(refined)
        )
        assert ls_err <= plain_err + 1e-9

    def test_separated_pulses_equal_estimates(self, detector):
        cir = overlapping_cir(200.0)
        plain = detector.detect(cir, TS)
        refined = detector.detect_with_ls_refinement(cir, TS)
        for a, b in zip(plain, refined):
            assert abs(a.amplitude) == pytest.approx(abs(b.amplitude), rel=0.01)

    def test_single_response_passthrough(self, detector):
        pulse = dw1000_pulse()
        cir = np.zeros(512, dtype=complex)
        place_pulse(cir, pulse.samples.astype(complex), 200.0, 1.0)
        single = SearchAndSubtract(
            pulse, SearchAndSubtractConfig(max_responses=1)
        )
        refined = single.detect_with_ls_refinement(cir, TS)
        assert len(refined) == 1

    def test_refine_empty_list(self):
        assert refine_amplitudes_least_squares(
            np.zeros(64, dtype=complex), [], [dw1000_pulse()], TS
        ) == []

    def test_complex_amplitude_recovered(self, detector):
        cir = overlapping_cir(1.5, amp2=0.6 * np.exp(1j * 2.1))
        refined = detector.detect_with_ls_refinement(cir, TS)
        later = max(refined, key=lambda r: r.delay_s)
        assert abs(later.amplitude) == pytest.approx(0.6, abs=0.08)
        assert np.angle(later.amplitude) == pytest.approx(2.1, abs=0.3)

    @pytest.mark.parametrize("separation", (0.9, 1.3, 2.4, 3.8))
    def test_overlap_sweep_recovers_both_amplitudes(self, detector, separation):
        """Across a sweep of pulse overlaps the joint solve keeps both
        amplitude estimates close to the ground truth (quadrature
        amplitudes, so the overlapping mains don't merge coherently)."""
        cir = overlapping_cir(separation, amp2=0.8j)
        refined = detector.detect_with_ls_refinement(cir, TS)
        assert len(refined) == 2
        by_delay = sorted(refined, key=lambda r: r.delay_s)
        assert abs(by_delay[0].amplitude) == pytest.approx(1.0, abs=0.1)
        assert abs(by_delay[1].amplitude) == pytest.approx(0.8, abs=0.1)

    def test_refinement_engine_independent(self, detector):
        """LS refinement on top of the fast engine equals refinement on
        top of the naive engine."""
        from repro.core.detection import (
            SearchAndSubtract,
            SearchAndSubtractConfig,
        )
        from repro.signal.pulses import dw1000_pulse

        cir = overlapping_cir(1.7, amp2=0.7j)
        fast = detector.detect_with_ls_refinement(cir, TS)
        naive_detector = SearchAndSubtract(
            dw1000_pulse(),
            SearchAndSubtractConfig(max_responses=2, use_fast=False),
        )
        naive = naive_detector.detect_with_ls_refinement(cir, TS)
        assert len(fast) == len(naive)
        for a, b in zip(fast, naive):
            assert np.isclose(a.index, b.index, rtol=1e-9, atol=1e-9)
            assert np.isclose(a.amplitude, b.amplitude, rtol=1e-9, atol=1e-12)

    def test_noisy_overlap_not_worse_than_plain(self, detector, rng):
        """With noise present the joint solve still does at least as well
        as the single-peak reads for overlapping responses."""
        cir = overlapping_cir(1.3)
        cir += 1e-3 * (
            rng.standard_normal(len(cir)) + 1j * rng.standard_normal(len(cir))
        )
        plain = detector.detect(cir, TS)
        refined = detector.detect_with_ls_refinement(cir, TS)
        truth = {0: 1.0, 1: 0.8}
        plain_err = sum(
            abs(abs(r.amplitude) - truth[i]) for i, r in enumerate(plain)
        )
        ls_err = sum(
            abs(abs(r.amplitude) - truth[i]) for i, r in enumerate(refined)
        )
        assert ls_err <= plain_err + 1e-3
