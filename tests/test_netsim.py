"""Unit tests for the discrete-event engine, nodes, medium, and traces."""

import pytest

from repro.channel.stochastic import IndoorEnvironment
from repro.channel.geometry import Point, Room
from repro.netsim.engine import EventQueue
from repro.netsim.medium import FrameTransmission, Medium
from repro.netsim.node import Node
from repro.netsim.trace import TraceEvent, TraceRecorder
from repro.radio.energy import RadioState
from repro.signal.pulses import dw1000_pulse


class TestEventQueue:
    def test_runs_in_time_order(self):
        queue = EventQueue()
        order = []
        queue.schedule(2.0, lambda q, p: order.append(p), "b")
        queue.schedule(1.0, lambda q, p: order.append(p), "a")
        queue.schedule(3.0, lambda q, p: order.append(p), "c")
        queue.run()
        assert order == ["a", "b", "c"]

    def test_ties_run_in_schedule_order(self):
        queue = EventQueue()
        order = []
        for label in "abc":
            queue.schedule(1.0, lambda q, p: order.append(p), label)
        queue.run()
        assert order == ["a", "b", "c"]

    def test_now_advances(self):
        queue = EventQueue()
        times = []
        queue.schedule(5.0, lambda q, p: times.append(q.now_s))
        queue.run()
        assert times == [5.0]

    def test_events_can_schedule_events(self):
        queue = EventQueue()
        seen = []

        def first(q, _):
            q.schedule_after(1.0, lambda q2, __: seen.append(q2.now_s))

        queue.schedule(1.0, first)
        queue.run()
        assert seen == [2.0]

    def test_cannot_schedule_in_past(self):
        queue = EventQueue()
        queue.schedule(5.0, lambda q, p: q.schedule(1.0, lambda *_: None))
        with pytest.raises(ValueError):
            queue.run()

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().schedule_after(-1.0, lambda *_: None)

    def test_run_until(self):
        queue = EventQueue()
        seen = []
        for t in (1.0, 2.0, 3.0):
            queue.schedule(t, lambda q, p: seen.append(p), t)
        queue.run(until_s=2.5)
        assert seen == [1.0, 2.0]
        assert queue.pending == 1

    def test_run_until_advances_clock_to_horizon(self):
        """The clock ends at until_s even when events stop earlier."""
        queue = EventQueue()
        queue.schedule(1.0, lambda q, p: None)
        queue.run(until_s=2.5)
        assert queue.now_s == 2.5

    def test_run_until_on_empty_queue_advances_clock(self):
        queue = EventQueue()
        assert queue.run(until_s=5.0) == 0
        assert queue.now_s == 5.0
        # Consecutive windows tile time without gaps.
        assert queue.run(until_s=7.0) == 0
        assert queue.now_s == 7.0

    def test_run_until_never_moves_clock_backwards(self):
        queue = EventQueue()
        queue.schedule(4.0, lambda q, p: None)
        queue.run()
        assert queue.now_s == 4.0
        queue.run(until_s=2.0)  # horizon already passed: clock untouched
        assert queue.now_s == 4.0

    def test_run_until_executes_event_at_horizon(self):
        queue = EventQueue()
        seen = []
        queue.schedule(2.0, lambda q, p: seen.append(q.now_s))
        queue.run(until_s=2.0)
        assert seen == [2.0]
        assert queue.now_s == 2.0

    def test_schedule_after_relative_to_horizon(self):
        """After run(until_s=T), schedule_after is relative to T."""
        queue = EventQueue()
        queue.run(until_s=10.0)
        event = queue.schedule_after(1.0, lambda q, p: None)
        assert event.time_s == 11.0

    def test_run_without_until_leaves_clock_at_last_event(self):
        queue = EventQueue()
        queue.schedule(3.0, lambda q, p: None)
        queue.run()
        assert queue.now_s == 3.0

    def test_event_budget_guards_loops(self):
        queue = EventQueue()

        def forever(q, _):
            q.schedule_after(0.0, forever)

        queue.schedule(0.0, forever)
        with pytest.raises(RuntimeError):
            queue.run(max_events=100)

    def test_step_returns_none_when_empty(self):
        assert EventQueue().step() is None

    def test_processed_counter(self):
        queue = EventQueue()
        queue.schedule(1.0, lambda *_: None)
        queue.run()
        assert queue.processed == 1


class TestNode:
    def test_at_builds_radio(self, rng):
        node = Node.at(3, 1.0, 2.0, rng=rng)
        assert node.node_id == 3
        assert node.position == Point(1.0, 2.0)
        assert node.radio is not None

    def test_distance(self, rng):
        a = Node.at(0, 0.0, 0.0, rng=rng)
        b = Node.at(1, 3.0, 4.0, rng=rng)
        assert a.distance_to(b) == pytest.approx(5.0)

    def test_ideal_clock_without_rng(self):
        node = Node.at(0, 0.0, 0.0)
        assert node.radio.clock.drift_ppm == 0.0

    def test_energy_accounting(self, rng):
        node = Node.at(0, 0.0, 0.0, rng=rng)
        node.account_tx(1e-3)
        node.account_rx(2e-3)
        assert node.radio.energy.duration_s(RadioState.TX) == pytest.approx(1e-3)
        assert node.radio.energy.duration_s(RadioState.RX) == pytest.approx(2e-3)


class TestMedium:
    def _medium(self, rng):
        medium = Medium(environment=IndoorEnvironment.hallway(), rng=rng)
        medium.add_nodes(
            [Node.at(0, 0.0, 0.0, rng=rng), Node.at(1, 5.0, 0.0, rng=rng)]
        )
        return medium

    def test_duplicate_node_rejected(self, rng):
        medium = self._medium(rng)
        with pytest.raises(ValueError):
            medium.add_node(Node.at(0, 1.0, 1.0, rng=rng))

    def test_channel_reciprocal_within_coherence(self, rng):
        medium = self._medium(rng)
        assert medium.channel_between(0, 1) is medium.channel_between(1, 0)

    def test_channel_refreshes_after_coherence(self, rng):
        medium = self._medium(rng)
        first = medium.channel_between(0, 1)
        medium.new_coherence_interval()
        second = medium.channel_between(0, 1)
        assert first is not second

    def test_self_channel_rejected(self, rng):
        medium = self._medium(rng)
        with pytest.raises(ValueError):
            medium.channel_between(0, 0)

    def test_arrival_carries_source(self, rng):
        medium = self._medium(rng)
        tx = FrameTransmission(
            tx_node_id=0, tx_time_s=1.0, pulse=dw1000_pulse()
        )
        arrival = medium.arrival_at(tx, 1)
        assert arrival.source_id == 0
        assert arrival.tx_time_s == 1.0

    def test_own_transmission_not_received(self, rng):
        medium = self._medium(rng)
        tx = FrameTransmission(tx_node_id=0, tx_time_s=0.0, pulse=dw1000_pulse())
        with pytest.raises(ValueError):
            medium.arrival_at(tx, 0)

    def test_first_arrival_time_matches_distance(self, rng):
        from repro.constants import SPEED_OF_LIGHT

        medium = self._medium(rng)
        tx = FrameTransmission(tx_node_id=0, tx_time_s=2.0, pulse=dw1000_pulse())
        assert medium.first_arrival_time(tx, 1) == pytest.approx(
            2.0 + 5.0 / SPEED_OF_LIGHT
        )

    def test_room_medium_uses_geometry(self, rng):
        room = Room(10.0, 5.0)
        medium = Medium(room=room, rng=rng)
        medium.add_nodes(
            [Node.at(0, 2.0, 3.0, rng=rng), Node.at(1, 7.0, 2.0, rng=rng)]
        )
        channel = medium.channel_between(0, 1)
        kinds = {tap.kind for tap in channel}
        assert "los" in kinds and "reflection" in kinds

    def test_arrivals_at_superposition(self, rng):
        medium = Medium(environment=IndoorEnvironment.hallway(), rng=rng)
        medium.add_nodes(
            [
                Node.at(0, 0.0, 0.0, rng=rng),
                Node.at(1, 5.0, 0.0, rng=rng),
                Node.at(2, 0.0, 7.0, rng=rng),
            ]
        )
        txs = [
            FrameTransmission(tx_node_id=1, tx_time_s=0.0, pulse=dw1000_pulse()),
            FrameTransmission(tx_node_id=2, tx_time_s=0.0, pulse=dw1000_pulse()),
        ]
        arrivals = medium.arrivals_at(txs, 0)
        assert [a.source_id for a in arrivals] == [1, 2]


class TestTrace:
    def test_counts(self):
        trace = TraceRecorder()
        trace.record(0.0, 0, "tx", 1e-4)
        trace.record(0.1, 1, "rx", 1e-4)
        trace.record(0.2, 0, "tx", 1e-4)
        assert trace.message_count == 2
        assert trace.count("rx") == 1
        assert trace.count_for_node(0, "tx") == 2

    def test_airtime(self):
        trace = TraceRecorder()
        trace.record(0.0, 0, "tx", 2e-4)
        trace.record(1.0, 1, "tx", 3e-4)
        assert trace.airtime_s() == pytest.approx(5e-4)

    def test_span(self):
        trace = TraceRecorder()
        trace.record(1.0, 0, "tx", 0.5)
        trace.record(2.0, 1, "tx", 0.5)
        assert trace.span_s() == pytest.approx(1.5)

    def test_utilization_merges_overlaps(self):
        """Concurrent responses share airtime — the utilization win."""
        trace = TraceRecorder()
        trace.record(0.0, 1, "tx", 1.0)
        trace.record(0.0, 2, "tx", 1.0)  # fully overlapping
        trace.record(3.0, 3, "tx", 1.0)
        # busy = 2 s of 4 s span.
        assert trace.channel_utilization() == pytest.approx(0.5)

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            TraceEvent(0.0, 0, "beam", 1.0)

    def test_negative_duration(self):
        with pytest.raises(ValueError):
            TraceEvent(0.0, 0, "tx", -1.0)

    def test_empty_summary(self):
        trace = TraceRecorder()
        summary = trace.summary()
        assert summary["messages"] == 0.0
        assert summary["utilization"] == 0.0
