"""Unit tests for SS-TWR (protocol level)."""

import numpy as np
import pytest

from repro.channel.stochastic import IndoorEnvironment
from repro.netsim.medium import Medium
from repro.netsim.node import Node
from repro.protocol.messages import RespMessage
from repro.protocol.twr import SsTwr


def make_twr(rng, distance_m=3.0, **kwargs):
    medium = Medium(environment=IndoorEnvironment.office(), rng=rng)
    initiator = Node.at(0, 0.0, 0.0, rng=rng)
    responder = Node.at(1, distance_m, 0.0, rng=rng)
    medium.add_nodes([initiator, responder])
    return SsTwr(medium, initiator, responder, **kwargs)


class TestSsTwr:
    def test_accuracy_at_3m(self, rng):
        twr = make_twr(rng, 3.0)
        distances = twr.run_many(300, rng)
        assert np.mean(distances) == pytest.approx(3.0, abs=0.03)

    def test_precision_band_matches_paper(self, rng):
        """Sect. V: sigma in the 2-3 cm band for the default shape."""
        twr = make_twr(rng, 3.0)
        distances = twr.run_many(500, rng)
        assert 0.01 < np.std(distances) < 0.04

    def test_compensated_beats_uncompensated(self, rng):
        """Drift compensation removes the reply-delay bias."""
        twr = make_twr(rng, 5.0)
        outcomes = [twr.run(rng) for _ in range(100)]
        comp_err = np.mean([abs(o.distance_m - 5.0) for o in outcomes])
        uncomp_err = np.mean(
            [abs(o.uncompensated_distance_m - 5.0) for o in outcomes]
        )
        assert comp_err < uncomp_err

    def test_outcome_fields(self, rng):
        twr = make_twr(rng, 4.0)
        outcome = twr.run(rng)
        assert outcome.true_distance_m == pytest.approx(4.0)
        assert isinstance(outcome.resp_message, RespMessage)
        assert outcome.resp_message.reply_time_s > 0
        assert outcome.error_m == pytest.approx(outcome.distance_m - 4.0)

    def test_reply_time_close_to_delta_resp(self, rng):
        from repro.constants import DELTA_RESP_S, DW1000_DELAYED_TX_RESOLUTION_S

        twr = make_twr(rng, 3.0)
        outcome = twr.run(rng)
        reply = outcome.resp_message.reply_time_s
        assert DELTA_RESP_S - DW1000_DELAYED_TX_RESOLUTION_S <= reply <= DELTA_RESP_S

    def test_same_node_rejected(self, rng):
        medium = Medium(environment=IndoorEnvironment.office(), rng=rng)
        node = Node.at(0, 0.0, 0.0, rng=rng)
        medium.add_node(node)
        with pytest.raises(ValueError):
            SsTwr(medium, node, node)

    def test_distance_sweep_unbiased(self, rng):
        for distance in (1.0, 5.0, 15.0):
            twr = make_twr(rng, distance)
            distances = twr.run_many(150, rng)
            assert np.mean(distances) == pytest.approx(distance, abs=0.05)

    def test_run_many_validates_trials(self, rng):
        twr = make_twr(rng)
        with pytest.raises(ValueError):
            twr.run_many(0, rng)

    def test_large_cfo_error_degrades(self, rng):
        """A bad drift estimate brings back the bias — the knob works."""
        good = make_twr(rng, 5.0, cfo_error_ppm=0.05)
        bad = make_twr(rng, 5.0, cfo_error_ppm=5.0)
        good_std = np.std(good.run_many(200, rng))
        bad_std = np.std(bad.run_many(200, rng))
        assert bad_std > 2 * good_std
