"""Regression tests: the spectrum-cached FFT engine vs the naive loop.

The contract of :mod:`repro.core.plan`: the fast path (batched filter
bank + incremental subtraction) is *numerically equivalent* to the naive
per-template re-filtering transcription of the paper's algorithm.  These
tests enforce agreement to ``rtol=1e-9`` (observed agreement is at
roundoff, ~1e-14) across bank sizes, CIR lengths (even and odd),
noise levels, fractional positions, and edge-clipped peaks.
"""

import numpy as np
import pytest

from repro.constants import CIR_SAMPLING_PERIOD_S as TS
from repro.core.detection import SearchAndSubtract, SearchAndSubtractConfig
from repro.core.matched_filter import filter_bank_outputs, matched_filter
from repro.core.plan import DetectorPlan, detector_plan
from repro.runtime.cache import clear_all_caches, get_cache
from repro.signal.sampling import fft_upsample, place_pulse
from repro.signal.templates import TemplateBank

RTOL = 1e-9

#: >= 3 bank sizes, >= 3 CIR lengths (incl. an odd one), >= 3 noise levels.
BANK_SIZES = (1, 2, 3)
CIR_LENGTHS = (257, 512, 1016)
NOISE_STDS = (0.0, 1e-3, 3e-2)


def synth_cir(rng, n, bank, noise_std, positions_amplitudes):
    """A CIR with pulses from ``bank`` placed at fractional positions."""
    cir = np.zeros(n, dtype=complex)
    for shape_idx, position, amplitude in positions_amplitudes:
        template = bank[shape_idx % len(bank)]
        place_pulse(
            cir,
            template.samples.astype(complex),
            position,
            amplitude=amplitude,
            peak_index=template.peak_index,
        )
    if noise_std > 0.0:
        cir += noise_std * (
            rng.standard_normal(n) + 1j * rng.standard_normal(n)
        ) / np.sqrt(2.0)
    return cir


def detect_both(bank, cir, noise_std=0.0, **config_kwargs):
    """Run fast and naive engines on the same CIR."""
    config_kwargs.setdefault("max_responses", 3)
    fast = SearchAndSubtract(
        bank, SearchAndSubtractConfig(use_fast=True, **config_kwargs)
    ).detect(cir, TS, noise_std=noise_std)
    naive = SearchAndSubtract(
        bank, SearchAndSubtractConfig(use_fast=False, **config_kwargs)
    ).detect(cir, TS, noise_std=noise_std)
    return fast, naive


def assert_equivalent(fast, naive):
    """Delays, amplitudes, template choices, and scores all agree."""
    assert len(fast) == len(naive)
    for f, n in zip(fast, naive):
        assert f.template_index == n.template_index
        assert np.isclose(f.index, n.index, rtol=RTOL, atol=1e-9)
        assert np.isclose(f.delay_s, n.delay_s, rtol=RTOL, atol=1e-21)
        assert np.isclose(f.amplitude, n.amplitude, rtol=RTOL, atol=1e-12)
        assert len(f.scores) == len(n.scores)
        assert np.allclose(f.scores, n.scores, rtol=RTOL, atol=1e-12)


class TestFastNaiveEquivalence:
    """The acceptance grid: bank sizes x CIR lengths x noise levels."""

    @pytest.mark.parametrize("n_templates", BANK_SIZES)
    @pytest.mark.parametrize("cir_length", CIR_LENGTHS)
    @pytest.mark.parametrize("noise_std", NOISE_STDS)
    def test_grid(self, n_templates, cir_length, noise_std):
        rng = np.random.default_rng(
            1000 * n_templates + cir_length + int(noise_std * 1e6)
        )
        bank = TemplateBank.paper_bank(n_templates)
        placements = [
            (0, 0.22 * cir_length + rng.uniform(-1, 1), 1.0),
            (1, 0.45 * cir_length + rng.uniform(-1, 1), 0.7 * np.exp(1.1j)),
            (2, 0.74 * cir_length + rng.uniform(-1, 1), 0.45 * np.exp(-0.6j)),
        ]
        cir = synth_cir(rng, cir_length, bank, noise_std, placements)
        fast, naive = detect_both(bank, cir, noise_std=noise_std)
        assert len(fast) == 3
        assert_equivalent(fast, naive)

    @pytest.mark.parametrize("upsample_factor", (1, 4, 8))
    def test_upsample_factors(self, upsample_factor):
        rng = np.random.default_rng(77)
        bank = TemplateBank.paper_bank(2)
        cir = synth_cir(
            rng, 512, bank, 1e-3,
            [(0, 120.4, 1.0), (1, 300.0, 0.6j)],
        )
        fast, naive = detect_both(
            bank, cir, noise_std=1e-3,
            max_responses=2, upsample_factor=upsample_factor,
        )
        assert_equivalent(fast, naive)

    def test_overlapping_responses(self):
        """Close pulses exercise the incremental window update."""
        rng = np.random.default_rng(5)
        bank = TemplateBank.paper_bank(3)
        cir = synth_cir(
            rng, 512, bank, 1e-4,
            [(0, 200.0, 1.0), (2, 203.7, 0.8), (1, 209.3, 0.5j)],
        )
        fast, naive = detect_both(bank, cir, noise_std=1e-4)
        assert_equivalent(fast, naive)

    @pytest.mark.parametrize("position", (3.0, 3.4, 1013.0, 1012.6))
    def test_edge_clipped_peaks(self, position):
        """Peaks near the buffer edges clip the subtracted segment."""
        rng = np.random.default_rng(int(position * 10))
        bank = TemplateBank.paper_bank(2)
        cir = synth_cir(
            rng, 1016, bank, 1e-4,
            [(0, position, 1.0), (1, 500.0, 0.6)],
        )
        fast, naive = detect_both(bank, cir, noise_std=1e-4, max_responses=2)
        assert_equivalent(fast, naive)

    def test_no_subsample_refinement(self):
        """Integer positions hit the precomputed cross-correlation table."""
        rng = np.random.default_rng(9)
        bank = TemplateBank.paper_bank(3)
        cir = synth_cir(
            rng, 512, bank, 1e-4,
            [(0, 100.0, 1.0), (1, 250.0, 0.7), (2, 400.0, 0.5)],
        )
        fast, naive = detect_both(
            bank, cir, noise_std=1e-4, refine_subsample=False
        )
        assert_equivalent(fast, naive)

    def test_pure_noise(self):
        """Both engines extract the same peaks from noise-only CIRs."""
        rng = np.random.default_rng(3)
        cir = 1e-3 * (
            rng.standard_normal(400) + 1j * rng.standard_normal(400)
        )
        bank = TemplateBank.paper_bank(2)
        fast, naive = detect_both(bank, cir, noise_std=1e-3, max_responses=2)
        assert_equivalent(fast, naive)

    def test_zero_cir_returns_nothing(self):
        bank = TemplateBank.paper_bank(2)
        fast, naive = detect_both(
            bank, np.zeros(256, dtype=complex), max_responses=2
        )
        assert fast == [] and naive == []


class TestEarlyStopGate:
    def test_min_peak_snr_stops_fast_path(self):
        """With one real response and a high gate, the fast path stops
        after one extraction instead of reporting noise peaks."""
        rng = np.random.default_rng(21)
        bank = TemplateBank.paper_bank(2)
        noise_std = 1e-2
        cir = synth_cir(rng, 512, bank, noise_std, [(0, 200.3, 1.0)])
        config = SearchAndSubtractConfig(
            max_responses=4, min_peak_snr=8.0, use_fast=True
        )
        responses = SearchAndSubtract(bank, config).detect(
            cir, TS, noise_std=noise_std
        )
        assert len(responses) == 1
        assert responses[0].index == pytest.approx(200.3, abs=0.2)

    @pytest.mark.parametrize("min_peak_snr", (0.0, 5.0, 8.0))
    def test_gate_equivalence(self, min_peak_snr):
        rng = np.random.default_rng(31)
        bank = TemplateBank.paper_bank(3)
        noise_std = 5e-3
        cir = synth_cir(
            rng, 512, bank, noise_std,
            [(0, 150.2, 1.0), (1, 350.8, 0.08)],
        )
        fast, naive = detect_both(
            bank, cir, noise_std=noise_std,
            max_responses=4, min_peak_snr=min_peak_snr,
        )
        assert_equivalent(fast, naive)


class TestEscapeHatch:
    def test_use_fast_false_runs_naive_engine(self):
        from repro.runtime.metrics import global_metrics

        metrics = global_metrics()
        naive_before = metrics.counter("detector.naive_detects").value
        fast_before = metrics.counter("detector.fast_detects").value
        bank = TemplateBank.paper_bank(1)
        cir = np.zeros(128, dtype=complex)
        SearchAndSubtract(
            bank, SearchAndSubtractConfig(use_fast=False)
        ).detect(cir, TS)
        assert metrics.counter("detector.naive_detects").value == naive_before + 1
        assert metrics.counter("detector.fast_detects").value == fast_before

    def test_fast_is_default(self):
        assert SearchAndSubtractConfig().use_fast is True


class TestBatchedFilterBank:
    def test_filter_bank_outputs_matches_loop(self, paper_bank, clean_cir):
        batched = filter_bank_outputs(clean_cir, paper_bank, use_fast=True)
        looped = filter_bank_outputs(clean_cir, paper_bank, use_fast=False)
        assert batched.shape == looped.shape
        assert np.allclose(batched, looped, rtol=RTOL, atol=1e-12)

    def test_real_cir_keeps_real_dtype(self, paper_bank):
        rng = np.random.default_rng(8)
        cir = rng.standard_normal(256)
        batched = filter_bank_outputs(cir, paper_bank, use_fast=True)
        looped = filter_bank_outputs(cir, paper_bank, use_fast=False)
        assert np.isrealobj(batched) == np.isrealobj(looped)
        assert np.allclose(batched, looped, rtol=RTOL, atol=1e-12)

    def test_raw_array_templates_fall_back(self, default_pulse):
        rng = np.random.default_rng(8)
        cir = rng.standard_normal(128) + 1j * rng.standard_normal(128)
        raw = [default_pulse.samples]
        out = filter_bank_outputs(cir, raw, use_fast=True)
        assert np.allclose(out[0], matched_filter(cir, raw[0]), rtol=RTOL)

    def test_matched_filter_output_equivalence(self, paper_bank, clean_cir):
        fast = SearchAndSubtract(
            paper_bank, SearchAndSubtractConfig(use_fast=True)
        ).matched_filter_output(clean_cir, TS, template_index=1)
        naive = SearchAndSubtract(
            paper_bank, SearchAndSubtractConfig(use_fast=False)
        ).matched_filter_output(clean_cir, TS, template_index=1)
        assert np.allclose(fast, naive, rtol=RTOL, atol=1e-12)


class TestPlanCache:
    def test_plan_is_memoised(self, paper_bank):
        clear_all_caches()
        templates = list(paper_bank)
        first = detector_plan(templates, 512, 8, TS)
        second = detector_plan(templates, 512, 8, TS)
        assert first is second
        hits, misses = get_cache("detector_plans").snapshot()
        assert (hits, misses) == (1, 1)

    def test_distinct_shapes_get_distinct_plans(self, paper_bank):
        templates = list(paper_bank)
        a = detector_plan(templates, 512, 8, TS)
        b = detector_plan(templates, 256, 8, TS)
        c = detector_plan(templates, 512, 4, TS)
        d = detector_plan(templates[:1], 512, 8, TS)
        assert len({id(a), id(b), id(c), id(d)}) == 4

    def test_repeated_detects_hit_cache(self, paper_bank):
        clear_all_caches()
        rng = np.random.default_rng(4)
        detector = SearchAndSubtract(
            paper_bank, SearchAndSubtractConfig(max_responses=2)
        )
        for _ in range(20):
            cir = 1e-3 * (
                rng.standard_normal(256) + 1j * rng.standard_normal(256)
            )
            detector.detect(cir, TS)
        hits, misses = get_cache("detector_plans").snapshot()
        assert misses == 1
        assert hits == 19
        assert hits / (hits + misses) > 0.9


class TestPlanInternals:
    def test_filter_bank_matches_matched_filter(self, paper_bank):
        rng = np.random.default_rng(2)
        factor = 4
        cir = rng.standard_normal(200) + 1j * rng.standard_normal(200)
        working = fft_upsample(cir, factor)
        plan = DetectorPlan.build(list(paper_bank), 200, factor, TS)
        outputs = plan.filter_bank(working)
        for row, template in zip(outputs, plan.templates):
            assert np.allclose(
                row, matched_filter(working, template), rtol=RTOL, atol=1e-12
            )

    def test_subtract_response_matches_refilter(self, paper_bank):
        """The incremental update equals subtract-then-refilter."""
        rng = np.random.default_rng(6)
        factor = 2
        cir = rng.standard_normal(128) + 1j * rng.standard_normal(128)
        working = fft_upsample(cir, factor)
        plan = DetectorPlan.build(list(paper_bank), 128, factor, TS)
        for position, amplitude in ((50.0, 1.2), (81.37, 0.5 - 0.2j)):
            outputs = plan.filter_bank(working)
            template = plan.templates[1]
            place_pulse(
                working,
                template.samples.astype(complex),
                position,
                amplitude=-amplitude,
                peak_index=template.peak_index,
            )
            expected = plan.filter_bank(working)
            a, b = plan.subtract_response(outputs, 1, position, amplitude)
            assert a < b
            assert np.allclose(outputs, expected, rtol=RTOL, atol=1e-12)
            # Nothing outside the reported window changed beyond roundoff.

    def test_subtract_response_outside_signal_is_noop(self, paper_bank):
        plan = DetectorPlan.build(list(paper_bank), 64, 1, TS)
        outputs = np.ones((3, 64), dtype=complex)
        a, b = plan.subtract_response(outputs, 0, 5000.0, 1.0)
        assert (a, b) == (0, 0)
        assert np.all(outputs == 1.0)

    def test_build_validates_inputs(self, paper_bank):
        with pytest.raises(ValueError):
            DetectorPlan.build([], 64, 1, TS)
        with pytest.raises(ValueError):
            DetectorPlan.build(list(paper_bank), 0, 1, TS)
        with pytest.raises(ValueError):
            DetectorPlan.build(list(paper_bank), 64, 0, TS)

    def test_filter_bank_validates_length(self, paper_bank):
        plan = DetectorPlan.build(list(paper_bank), 64, 2, TS)
        with pytest.raises(ValueError):
            plan.filter_bank(np.zeros(64, dtype=complex))  # needs 128
        with pytest.raises(ValueError):
            plan.filter_bank(np.zeros((2, 128), dtype=complex))

    def test_window_correlations_rejects_long_segments(self, paper_bank):
        plan = DetectorPlan.build(list(paper_bank), 64, 1, TS)
        too_long = np.zeros(plan.max_template_length + 2, dtype=complex)
        with pytest.raises(ValueError):
            plan.window_correlations(too_long)
