"""Property-based tests (hypothesis) for the channel layer."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.channel.cir import ChannelRealization, ChannelTap
from repro.channel.geometry import Point, Room
from repro.constants import SPEED_OF_LIGHT
from repro.signal.pulses import dw1000_pulse

_PULSE = dw1000_pulse()

tap_delays = st.floats(min_value=1e-9, max_value=800e-9)
amplitudes = st.complex_numbers(
    min_magnitude=1e-4, max_magnitude=1.0, allow_nan=False, allow_infinity=False
)


class TestRenderProperties:
    @given(
        delays=st.lists(tap_delays, min_size=1, max_size=6, unique=True),
        scale=st.floats(min_value=0.1, max_value=10.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_render_linear_in_amplitude(self, delays, scale):
        taps = [
            ChannelTap(delay_s=d, amplitude=0.5, kind="reflection")
            for d in delays
        ]
        channel = ChannelRealization(taps)
        base = channel.render(_PULSE, 1016)
        scaled = channel.scaled(scale).render(_PULSE, 1016)
        assert np.allclose(scaled, scale * base, atol=1e-12)

    @given(
        delay=tap_delays,
        shift_ns=st.floats(min_value=1.0, max_value=100.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_delay_shifts_render(self, delay, shift_ns):
        """Delaying the channel moves the waveform by the same time."""
        channel = ChannelRealization(
            [ChannelTap(delay_s=delay, amplitude=1.0, kind="los", order=0)]
        )
        shift_s = shift_ns * 1e-9
        direct = channel.delayed(shift_s).render(_PULSE, 1016)
        windowed = channel.render(_PULSE, 1016, time_origin_s=-shift_s)
        assert np.allclose(direct, windowed, atol=1e-9)

    @given(delays=st.lists(tap_delays, min_size=2, max_size=6, unique=True))
    @settings(max_examples=25, deadline=None)
    def test_merge_is_superposition(self, delays):
        taps = [
            ChannelTap(delay_s=d, amplitude=0.3 + 0.1j, kind="reflection")
            for d in delays
        ]
        half = len(taps) // 2
        a = ChannelRealization(taps[: max(half, 1)])
        b = ChannelRealization(taps[max(half, 1) :] or taps[:1])
        merged = a.merged(b).render(_PULSE, 1016)
        assert np.allclose(
            merged,
            a.render(_PULSE, 1016) + b.render(_PULSE, 1016),
            atol=1e-12,
        )


class TestGeometryProperties:
    positions = st.tuples(
        st.floats(min_value=0.3, max_value=9.7),
        st.floats(min_value=0.3, max_value=4.7),
    )

    @given(tx=positions, rx=positions)
    @settings(max_examples=40, deadline=None)
    def test_reflections_never_shorter_than_los(self, tx, rx):
        from repro.channel.geometry import image_source_taps

        room = Room(10.0, 5.0)
        tx_p, rx_p = Point(*tx), Point(*rx)
        if tx_p.distance_to(rx_p) < 0.1:
            return  # degenerate co-located pair
        taps = image_source_taps(room, tx_p, rx_p)
        channel = ChannelRealization(taps)
        los_delay = channel.los_tap.delay_s
        for tap in channel:
            assert tap.delay_s >= los_delay - 1e-15

    @given(point=positions, wall=st.sampled_from(["left", "right", "top", "bottom"]))
    @settings(max_examples=40, deadline=None)
    def test_mirror_involution(self, point, wall):
        room = Room(10.0, 5.0)
        p = Point(*point)
        twice = room.mirror(room.mirror(p, wall), wall)
        assert twice.distance_to(p) < 1e-12

    @given(tx=positions, rx=positions)
    @settings(max_examples=40, deadline=None)
    def test_los_delay_is_distance_over_c(self, tx, rx):
        from repro.channel.geometry import image_source_taps

        room = Room(10.0, 5.0)
        tx_p, rx_p = Point(*tx), Point(*rx)
        if tx_p.distance_to(rx_p) < 0.1:
            return
        taps = image_source_taps(room, tx_p, rx_p)
        los = next(t for t in taps if t.kind == "los")
        assert los.delay_s == pytest.approx(
            tx_p.distance_to(rx_p) / SPEED_OF_LIGHT, rel=1e-12
        )
