"""Unit tests for the threshold-based baseline detector (Sect. VI)."""

import numpy as np
import pytest

from repro.constants import CIR_SAMPLING_PERIOD_S as TS
from repro.core.threshold import ThresholdConfig, ThresholdDetector
from repro.signal.sampling import place_pulse


def make_cir(pulses, template, n=1016, noise_std=0.0, rng=None):
    cir = np.zeros(n, dtype=complex)
    for position, amplitude in pulses:
        place_pulse(cir, template.samples.astype(complex), position, amplitude)
    if noise_std > 0:
        cir += noise_std * (
            rng.standard_normal(n) + 1j * rng.standard_normal(n)
        ) / np.sqrt(2)
    return cir


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ThresholdConfig(max_responses=0)
        with pytest.raises(ValueError):
            ThresholdConfig(upsample_factor=0)


class TestBasicDetection:
    def test_single_pulse(self, default_pulse, rng):
        cir = make_cir([(300.0, 1e-3)], default_pulse, noise_std=1e-5, rng=rng)
        detector = ThresholdDetector(default_pulse, ThresholdConfig(max_responses=1))
        responses = detector.detect(cir, TS, noise_std=1e-5)
        assert len(responses) == 1
        assert responses[0].index == pytest.approx(300.0, abs=0.3)

    def test_two_separated_pulses(self, default_pulse, rng):
        cir = make_cir(
            [(200.0, 1e-3), (500.0, 0.5e-3)], default_pulse, noise_std=1e-5, rng=rng
        )
        detector = ThresholdDetector(default_pulse, ThresholdConfig(max_responses=2))
        responses = detector.detect(cir, TS, noise_std=1e-5)
        assert len(responses) == 2
        assert responses[0].index == pytest.approx(200.0, abs=0.3)
        assert responses[1].index == pytest.approx(500.0, abs=0.3)

    def test_sorted_output(self, default_pulse, rng):
        cir = make_cir(
            [(500.0, 1e-3), (200.0, 0.9e-3)], default_pulse, noise_std=1e-5, rng=rng
        )
        detector = ThresholdDetector(default_pulse, ThresholdConfig(max_responses=2))
        responses = detector.detect(cir, TS, noise_std=1e-5)
        assert responses[0].index < responses[1].index

    def test_empty_cir_returns_nothing(self, default_pulse):
        detector = ThresholdDetector(default_pulse)
        assert detector.detect(np.zeros(256, dtype=complex), TS) == []

    def test_rejects_2d(self, default_pulse, rng):
        detector = ThresholdDetector(default_pulse)
        with pytest.raises(ValueError):
            detector.detect(rng.standard_normal((4, 4)), TS)


class TestStructuralWeakness:
    def test_overlapping_pulses_merge_into_one(self, default_pulse, rng):
        """The failure mode the paper exploits in Sect. VI: two pulses
        within one pulse duration yield a single threshold detection."""
        cir = make_cir(
            [(400.0, 1e-3), (401.0, 1e-3)], default_pulse, noise_std=1e-5, rng=rng
        )
        detector = ThresholdDetector(default_pulse, ThresholdConfig(max_responses=2))
        responses = detector.detect(cir, TS, noise_std=1e-5)
        in_overlap = [r for r in responses if 395 <= r.index <= 406]
        assert len(in_overlap) == 1

    def test_resolves_beyond_pulse_duration(self, default_pulse, rng):
        window_ns = 3.0  # the s1 pulse-duration window
        cir = make_cir(
            [(400.0, 1e-3), (400.0 + 2 * window_ns, 1e-3)],
            default_pulse,
            noise_std=1e-5,
            rng=rng,
        )
        detector = ThresholdDetector(default_pulse, ThresholdConfig(max_responses=2))
        responses = detector.detect(cir, TS, noise_std=1e-5)
        assert len(responses) == 2


class TestThresholdLevel:
    def test_weak_pulse_below_threshold_ignored(self, default_pulse, rng):
        cir = make_cir(
            [(300.0, 1e-3), (600.0, 5e-5)],  # second at 5% of first
            default_pulse,
            noise_std=1e-6,
            rng=rng,
        )
        detector = ThresholdDetector(
            default_pulse,
            ThresholdConfig(max_responses=2, min_peak_fraction=0.12),
        )
        responses = detector.detect(cir, TS, noise_std=1e-6)
        assert all(abs(r.index - 600.0) > 2 for r in responses)

    def test_noise_multiplier_gates(self, default_pulse, rng):
        noise = 1e-4
        cir = make_cir([(300.0, 1e-3)], default_pulse, noise_std=noise, rng=rng)
        detector = ThresholdDetector(
            default_pulse,
            ThresholdConfig(max_responses=5, noise_multiplier=6.0),
        )
        responses = detector.detect(cir, TS, noise_std=noise)
        # Only the true pulse region fires, not the noise floor.
        assert all(295 <= r.index <= 305 for r in responses)
