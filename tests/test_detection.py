"""Unit tests for the search-and-subtract detector (paper Sect. IV)."""

import numpy as np
import pytest

from repro.constants import CIR_SAMPLING_PERIOD_S as TS
from repro.core.detection import SearchAndSubtract, SearchAndSubtractConfig
from repro.signal.sampling import place_pulse


def make_cir(pulses, n=1016, noise_std=0.0, rng=None):
    """pulses: iterable of (position, complex amplitude, template)."""
    cir = np.zeros(n, dtype=complex)
    for position, amplitude, template in pulses:
        place_pulse(cir, template.samples.astype(complex), position, amplitude)
    if noise_std > 0:
        cir += noise_std * (
            rng.standard_normal(n) + 1j * rng.standard_normal(n)
        ) / np.sqrt(2)
    return cir


class TestConfig:
    def test_defaults(self):
        config = SearchAndSubtractConfig()
        assert config.max_responses == 1
        assert config.upsample_factor == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            SearchAndSubtractConfig(max_responses=0)
        with pytest.raises(ValueError):
            SearchAndSubtractConfig(upsample_factor=0)
        with pytest.raises(ValueError):
            SearchAndSubtractConfig(min_peak_snr=-1.0)

    def test_empty_template_list_rejected(self):
        with pytest.raises(ValueError):
            SearchAndSubtract([])


class TestSingleResponse:
    def test_position_and_amplitude(self, default_pulse, rng):
        cir = make_cir(
            [(300.4, 1e-3 * np.exp(1j * 0.5), default_pulse)],
            noise_std=1e-5,
            rng=rng,
        )
        detector = SearchAndSubtract(
            default_pulse, SearchAndSubtractConfig(max_responses=1)
        )
        responses = detector.detect(cir, TS, noise_std=1e-5)
        assert len(responses) == 1
        assert responses[0].index == pytest.approx(300.4, abs=0.1)
        assert abs(responses[0].amplitude) == pytest.approx(1e-3, rel=0.05)

    def test_delay_is_index_times_period(self, default_pulse):
        cir = make_cir([(200.0, 1.0, default_pulse)])
        detector = SearchAndSubtract(default_pulse)
        response = detector.detect(cir, TS)[0]
        assert response.delay_s == pytest.approx(response.index * TS, rel=1e-9)

    def test_subsample_refinement_beats_integer(self, default_pulse):
        cir = make_cir([(150.37, 1.0, default_pulse)])
        refined = SearchAndSubtract(
            default_pulse,
            SearchAndSubtractConfig(max_responses=1, refine_subsample=True),
        ).detect(cir, TS)[0]
        assert refined.index == pytest.approx(150.37, abs=0.06)


class TestMultipleResponses:
    def test_three_well_separated(self, default_pulse, rng):
        positions = (100.0, 300.5, 700.2)
        amplitudes = (1e-3, 0.6e-3, 0.3e-3)
        cir = make_cir(
            [(p, a, default_pulse) for p, a in zip(positions, amplitudes)],
            noise_std=1e-5,
            rng=rng,
        )
        detector = SearchAndSubtract(
            default_pulse, SearchAndSubtractConfig(max_responses=3)
        )
        responses = detector.detect(cir, TS, noise_std=1e-5)
        assert len(responses) == 3
        for response, expected in zip(responses, positions):
            assert response.index == pytest.approx(expected, abs=0.2)

    def test_sorted_by_delay_not_amplitude(self, default_pulse, rng):
        """Step 7: responses come out in delay order regardless of
        amplitude — the amplitude-agnostic property."""
        cir = make_cir(
            [(500.0, 1e-3, default_pulse), (100.0, 0.2e-3, default_pulse)],
            noise_std=1e-5,
            rng=rng,
        )
        detector = SearchAndSubtract(
            default_pulse, SearchAndSubtractConfig(max_responses=2)
        )
        responses = detector.detect(cir, TS, noise_std=1e-5)
        assert responses[0].index == pytest.approx(100.0, abs=0.2)
        assert abs(responses[0].amplitude) < abs(responses[1].amplitude)

    def test_weak_next_to_strong(self, default_pulse, rng):
        """Subtraction exposes a 10x weaker response 6 samples away."""
        cir = make_cir(
            [(400.0, 1e-3, default_pulse), (406.0, 1e-4, default_pulse)],
            noise_std=2e-6,
            rng=rng,
        )
        detector = SearchAndSubtract(
            default_pulse, SearchAndSubtractConfig(max_responses=2)
        )
        responses = detector.detect(cir, TS, noise_std=2e-6)
        assert len(responses) == 2
        assert responses[1].index == pytest.approx(406.0, abs=0.3)

    def test_overlapping_half_pulse_apart(self, default_pulse, rng):
        """The Sect. VI capability: two responses ~1 ns apart resolve."""
        cir = make_cir(
            [(400.0, 1e-3, default_pulse), (401.0, 0.9e-3 * 1j, default_pulse)],
            noise_std=1e-5,
            rng=rng,
        )
        detector = SearchAndSubtract(
            default_pulse, SearchAndSubtractConfig(max_responses=2)
        )
        responses = detector.detect(cir, TS, noise_std=1e-5)
        assert len(responses) == 2
        indices = sorted(r.index for r in responses)
        assert indices[0] == pytest.approx(400.0, abs=0.5)
        assert indices[1] == pytest.approx(401.0, abs=0.5)


class TestEarlyStop:
    def test_noise_gate_stops_iteration(self, default_pulse, rng):
        cir = make_cir(
            [(300.0, 1e-3, default_pulse)], noise_std=1e-5, rng=rng
        )
        detector = SearchAndSubtract(
            default_pulse,
            SearchAndSubtractConfig(max_responses=5, min_peak_snr=8.0),
        )
        responses = detector.detect(cir, TS, noise_std=1e-5)
        assert len(responses) == 1

    def test_no_gate_extracts_exactly_n(self, default_pulse, rng):
        cir = make_cir(
            [(300.0, 1e-3, default_pulse)], noise_std=1e-5, rng=rng
        )
        detector = SearchAndSubtract(
            default_pulse, SearchAndSubtractConfig(max_responses=3, min_peak_snr=0.0)
        )
        responses = detector.detect(cir, TS, noise_std=1e-5)
        assert len(responses) == 3  # paper behaviour: N-1 strongest, period


class TestMultiTemplate:
    def test_correct_template_recorded(self, paper_bank, rng):
        cir = make_cir(
            [(200.0, 1e-3, paper_bank[0]), (600.0, 0.7e-3, paper_bank[2])],
            noise_std=1e-5,
            rng=rng,
        )
        detector = SearchAndSubtract(
            paper_bank, SearchAndSubtractConfig(max_responses=2)
        )
        responses = detector.detect(cir, TS, noise_std=1e-5)
        assert responses[0].template_index == 0
        assert responses[1].template_index == 2

    def test_scores_per_template(self, paper_bank, rng):
        cir = make_cir([(200.0, 1e-3, paper_bank[1])], noise_std=1e-5, rng=rng)
        detector = SearchAndSubtract(
            paper_bank, SearchAndSubtractConfig(max_responses=1)
        )
        response = detector.detect(cir, TS, noise_std=1e-5)[0]
        assert len(response.scores) == 3
        assert int(np.argmax(response.scores)) == 1


class TestResidual:
    def test_subtraction_removes_energy(self, default_pulse):
        """After subtracting the only response, the residual filter
        output drops by an order of magnitude (paper Fig. 4c)."""
        cir = make_cir([(300.0, 1.0, default_pulse)])
        detector = SearchAndSubtract(
            default_pulse, SearchAndSubtractConfig(max_responses=2)
        )
        responses = detector.detect(cir, TS)
        # The weaker "response" is the residual left after subtracting
        # the real one (output is delay-sorted, so compare by magnitude).
        magnitudes = sorted(abs(r.amplitude) for r in responses)
        assert magnitudes[0] < 0.12 * magnitudes[1]


class TestInputValidation:
    def test_rejects_2d(self, default_pulse, rng):
        detector = SearchAndSubtract(default_pulse)
        with pytest.raises(ValueError):
            detector.detect(rng.standard_normal((2, 8)), TS)

    def test_matched_filter_output_accessor(self, default_pulse):
        cir = make_cir([(100.0, 1.0, default_pulse)])
        detector = SearchAndSubtract(default_pulse)
        y = detector.matched_filter_output(cir, TS)
        assert len(y) == len(cir) * detector.config.upsample_factor
        assert np.argmax(np.abs(y)) == pytest.approx(800, abs=4)
