"""Unit and differential tests for the distance-attack injectors.

The load-bearing properties:

* **Inertness** — an attacker at probability/intensity zero (or an
  empty plan) leaves the session byte-identical to a clean one.
* **Determinism** — attack decisions derive only from the plan seed,
  never from the simulation's generators or the execution schedule.
* **Effectiveness** — each undefended attack actually manipulates what
  it claims to (ghost/spoof inject early CIR energy, the early reply
  shortens the TWR distance, the tamper reshapes the energy profile).
* **Eager validation** — malformed parameters raise at construction,
  not mid-round.
"""

import numpy as np
import pytest

from repro.faults import (
    ATTACK_KINDS,
    EarlyReplyAttacker,
    FaultContext,
    FaultPlan,
    GhostPeakInjector,
    PulseShapeSpoofer,
    ReciprocityTamper,
)
from repro.protocol.concurrent import ConcurrentRangingSession

DISTANCES_M = [3.0, 6.0]


def _session(seed=7, faults=None, **kwargs):
    return ConcurrentRangingSession.build(
        DISTANCES_M, n_shapes=2, seed=seed, faults=faults, **kwargs
    )


def _round_fingerprint(result):
    """Everything a round produced, as a comparable value."""
    samples = (
        result.capture.samples.tobytes()
        if result.capture is not None
        else b""
    )
    outcomes = tuple(
        (
            outcome.responder_id,
            outcome.detected,
            outcome.identified,
            outcome.estimated_distance_m,
        )
        for outcome in result.outcomes
    )
    return (samples, float(result.d_twr_m), outcomes)


class TestAttackKinds:
    def test_registry_contents(self):
        assert ATTACK_KINDS == {
            "ghost_peak",
            "early_reply",
            "shape_spoof",
            "reciprocity_tamper",
        }

    def test_attacks_report_their_kind(self):
        session = _session(
            faults=FaultPlan([EarlyReplyAttacker(advance_s=40e-9)], seed=3)
        )
        result = session.run_round(round_index=0)
        kinds = {kind for _, kind in result.fault_events}
        assert kinds == {"early_reply"}


class TestInertness:
    """Zero-intensity attackers must be bit-exact no-ops."""

    @pytest.mark.parametrize(
        "injector",
        [
            GhostPeakInjector(probability=0.0),
            EarlyReplyAttacker(advance_s=40e-9, probability=0.0),
            PulseShapeSpoofer(register=0x93, probability=0.0),
            ReciprocityTamper(probability=0.0),
            # Probability one but a zero-effect configuration.
            EarlyReplyAttacker(advance_s=0.0),
        ],
    )
    def test_inert_attacker_matches_clean_session(self, injector):
        clean = _session(seed=11)
        attacked = _session(seed=11, faults=FaultPlan([injector], seed=5))
        for round_index in range(3):
            reference = clean.run_round(round_index=round_index)
            result = attacked.run_round(round_index=round_index)
            assert _round_fingerprint(result) == _round_fingerprint(
                reference
            )

    def test_empty_plan_matches_clean_session(self):
        clean = _session(seed=11)
        attacked = _session(seed=11, faults=FaultPlan([], seed=5))
        reference = clean.run_round(round_index=0)
        result = attacked.run_round(round_index=0)
        assert _round_fingerprint(result) == _round_fingerprint(reference)

    def test_zero_advance_early_reply_emits_no_event(self):
        session = _session(
            faults=FaultPlan(
                [EarlyReplyAttacker(advance_s=0.0)], seed=5
            )
        )
        result = session.run_round(round_index=0)
        assert result.fault_events == ()


class TestDeterminism:
    """Attack streams depend only on the plan seed."""

    def _events(self, plan_seed, session_seed=13, rounds=4):
        session = _session(
            seed=session_seed,
            faults=FaultPlan(
                [
                    GhostPeakInjector(probability=0.5, advance_taps=40),
                    EarlyReplyAttacker(
                        advance_s=30e-9, probability=0.5
                    ),
                ],
                seed=plan_seed,
            ),
        )
        events = []
        for round_index in range(rounds):
            result = session.run_round(round_index=round_index)
            events.append(result.fault_events)
        return events

    def test_same_seed_same_attack_stream(self):
        assert self._events(21) == self._events(21)

    def test_different_seed_different_attack_stream(self):
        assert self._events(21) != self._events(22)

    def test_override_hook_is_seed_deterministic(self):
        attacker = EarlyReplyAttacker(advance_s=25e-9, probability=0.7)
        ctx = FaultContext()

        def stream(seed):
            active = FaultPlan([attacker], seed=seed).activate()
            return [
                active.reply_time_override_s(ctx, rid, 1e-3, 0.0)
                for rid in range(32)
            ]

        assert stream(9) == stream(9)
        assert stream(9) != stream(10)


class TestEffectiveness:
    def test_early_reply_shortens_twr_distance(self):
        clean = _session(seed=17)
        attacked = _session(
            seed=17,
            faults=FaultPlan(
                # Hijack the anchor responder's radio only.
                [EarlyReplyAttacker(advance_s=40e-9, responder_ids=(0,))],
                seed=5,
            ),
        )
        reference = clean.run_round(round_index=0)
        result = attacked.run_round(round_index=0)
        # 40 ns advance => ~6 m reduction of the anchor TWR distance.
        assert result.d_twr_m == pytest.approx(
            reference.d_twr_m - 6.0, abs=0.5
        )

    def test_early_reply_payload_reports_scheduled_time(self):
        """Cicada semantics: the hijacked radio transmits early but the
        MAC payload still carries the *programmed* reply instant, so the
        initiator cannot spot the attack from the payload alone."""
        attacked = _session(
            seed=17,
            faults=FaultPlan(
                [EarlyReplyAttacker(advance_s=40e-9)], seed=5
            ),
        )
        result = attacked.run_round(round_index=0)
        assert any(
            kind == "early_reply" for _, kind in result.fault_events
        )

    @pytest.mark.parametrize(
        "injector",
        [
            GhostPeakInjector(advance_taps=60),
            PulseShapeSpoofer(register=0x93, advance_taps=60),
        ],
    )
    def test_injection_adds_early_cir_energy(self, injector):
        clean = _session(seed=19)
        attacked = _session(seed=19, faults=FaultPlan([injector], seed=5))
        reference = clean.run_round(round_index=0)
        result = attacked.run_round(round_index=0)
        ref_samples = np.abs(reference.capture.samples)
        atk_samples = np.abs(result.capture.samples)
        first = int(reference.capture.first_path_index)
        # Energy appears strictly before the legitimate first path.
        lead_in = slice(max(0, first - 70), first)
        assert atk_samples[lead_in].sum() > ref_samples[lead_in].sum()

    def test_tamper_reshapes_energy_profile(self):
        clean = _session(seed=23)
        attacked = _session(
            seed=23,
            faults=FaultPlan(
                [ReciprocityTamper(tail_gain=5.0, edge_attenuation=0.6)],
                seed=5,
            ),
        )
        reference = clean.run_round(round_index=0)
        result = attacked.run_round(round_index=0)
        ref_samples = np.abs(reference.capture.samples)
        atk_samples = np.abs(result.capture.samples)
        assert not np.array_equal(atk_samples, ref_samples)
        # The diffuse tail gained energy relative to the clean capture.
        assert atk_samples.sum() > ref_samples.sum()


class TestEagerValidation:
    def test_ghost_rejects_zero_advance(self):
        with pytest.raises(ValueError):
            GhostPeakInjector(advance_taps=0)

    def test_ghost_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            GhostPeakInjector(probability=1.5)

    def test_early_reply_rejects_negative_advance(self):
        with pytest.raises(ValueError):
            EarlyReplyAttacker(advance_s=-1e-9)

    def test_spoofer_rejects_invalid_register(self):
        with pytest.raises(Exception):
            PulseShapeSpoofer(register=-1)

    def test_spoofer_rejects_zero_advance(self):
        with pytest.raises(ValueError):
            PulseShapeSpoofer(register=0x93, advance_taps=0)

    def test_tamper_rejects_bad_attenuation(self):
        with pytest.raises(ValueError):
            ReciprocityTamper(edge_attenuation=1.5)

    def test_tamper_rejects_negative_gain(self):
        with pytest.raises(ValueError):
            ReciprocityTamper(tail_gain=-0.5)

    def test_plan_rejects_unseedable_seed(self):
        with pytest.raises(ValueError):
            FaultPlan([GhostPeakInjector()], seed="not-a-seed")
