"""Unit tests for repro.signal.sampling."""

import numpy as np
import pytest

from repro.signal.sampling import (
    fft_upsample,
    fractional_delay,
    place_pulse,
    placed_segment,
)


class TestFftUpsample:
    def test_factor_one_is_copy(self, rng):
        signal = rng.standard_normal(64)
        out = fft_upsample(signal, 1)
        assert np.array_equal(out, signal)
        assert out is not signal

    def test_length_scales(self, rng):
        signal = rng.standard_normal(100)
        assert len(fft_upsample(signal, 4)) == 400

    def test_original_samples_preserved(self, rng):
        """Band-limited interpolation passes through the input samples."""
        # Use a band-limited signal (low-pass noise) to avoid edge leakage.
        spectrum = np.zeros(128, dtype=complex)
        spectrum[:20] = rng.standard_normal(20) + 1j * rng.standard_normal(20)
        spectrum[-19:] = np.conj(spectrum[1:20][::-1])
        signal = np.fft.ifft(spectrum).real
        up = fft_upsample(signal, 8)
        assert np.allclose(up[::8], signal, atol=1e-9)

    def test_real_stays_real(self, rng):
        out = fft_upsample(rng.standard_normal(64), 4)
        assert np.isrealobj(out)

    def test_complex_stays_complex(self, rng):
        signal = rng.standard_normal(64) + 1j * rng.standard_normal(64)
        out = fft_upsample(signal, 4)
        assert np.iscomplexobj(out)
        assert np.allclose(out[::4], signal, atol=1e-9)

    def test_energy_preserved_for_bandlimited(self):
        n = 128
        t = np.arange(n)
        signal = np.sin(2 * np.pi * 5 * t / n)
        up = fft_upsample(signal, 4)
        assert np.mean(up**2) == pytest.approx(np.mean(signal**2), rel=1e-6)

    def test_odd_length(self, rng):
        signal = rng.standard_normal(63)
        assert len(fft_upsample(signal, 2)) == 126

    @pytest.mark.parametrize("n", (64, 63, 127, 128, 255, 256))
    @pytest.mark.parametrize("factor", (2, 3, 8))
    def test_matches_analytic_sinusoid(self, n, factor):
        """Even *and* odd lengths interpolate a sampled sinusoid onto the
        analytic curve.

        This is the regression test for the odd-length spectrum split:
        with ``half = n // 2`` the positive-frequency bin ``(n - 1) / 2``
        of an odd-length signal was misfiled into the negative block,
        corrupting every interpolated (non-original) sample.
        """
        k = 5  # cycles over the window; below Nyquist for every n here
        t = np.arange(n)
        phase = 0.7
        signal = np.cos(2 * np.pi * k * t / n + phase)
        up = fft_upsample(signal, factor)
        t_fine = np.arange(n * factor) / factor
        expected = np.cos(2 * np.pi * k * t_fine / n + phase)
        assert np.allclose(up, expected, atol=1e-9)

    @pytest.mark.parametrize("factor", (2, 4))
    def test_odd_length_highest_bin(self, factor):
        """The bin at (n-1)/2 — the one the old split misfiled — must
        interpolate exactly for odd n."""
        n = 65
        k = (n - 1) // 2  # highest positive-frequency bin of odd n
        t = np.arange(n)
        signal = np.cos(2 * np.pi * k * t / n + 0.3)
        up = fft_upsample(signal, factor)
        t_fine = np.arange(n * factor) / factor
        expected = np.cos(2 * np.pi * k * t_fine / n + 0.3)
        assert np.allclose(up, expected, atol=1e-9)

    def test_length_one_is_constant(self):
        up = fft_upsample(np.array([3.5]), 4)
        assert np.allclose(up, 3.5)

    def test_complex_exponential_even_and_odd(self):
        for n in (64, 63):
            t = np.arange(n)
            signal = np.exp(2j * np.pi * 7 * t / n)
            up = fft_upsample(signal, 4)
            t_fine = np.arange(n * 4) / 4
            expected = np.exp(2j * np.pi * 7 * t_fine / n)
            assert np.allclose(up, expected, atol=1e-9)

    def test_rejects_bad_inputs(self, rng):
        with pytest.raises(ValueError):
            fft_upsample(rng.standard_normal((4, 4)), 2)
        with pytest.raises(ValueError):
            fft_upsample(rng.standard_normal(8), 0)


class TestFractionalDelay:
    def test_integer_delay_is_roll(self, rng):
        spectrum = np.zeros(64, dtype=complex)
        spectrum[:10] = rng.standard_normal(10)
        signal = np.fft.ifft(spectrum).real
        delayed = fractional_delay(signal, 3.0)
        assert np.allclose(delayed, np.roll(signal, 3), atol=1e-9)

    def test_zero_delay_identity(self, rng):
        signal = rng.standard_normal(32)
        assert np.allclose(fractional_delay(signal, 0.0), signal, atol=1e-12)

    def test_energy_preserved_for_bandlimited(self, rng):
        # Energy preservation holds for signals without Nyquist-bin
        # content (all our pulses are band-limited by construction).
        spectrum = np.zeros(64, dtype=complex)
        spectrum[1:12] = rng.standard_normal(11) + 1j * rng.standard_normal(11)
        spectrum[-11:] = np.conj(spectrum[1:12][::-1])
        signal = np.fft.ifft(spectrum).real
        delayed = fractional_delay(signal, 0.37)
        assert np.sum(delayed**2) == pytest.approx(np.sum(signal**2), rel=1e-9)

    def test_half_then_half_equals_one(self, rng):
        spectrum = np.zeros(64, dtype=complex)
        spectrum[:8] = rng.standard_normal(8)
        signal = np.fft.ifft(spectrum).real
        twice = fractional_delay(fractional_delay(signal, 0.5), 0.5)
        assert np.allclose(twice, fractional_delay(signal, 1.0), atol=1e-9)

    def test_rejects_2d(self, rng):
        with pytest.raises(ValueError):
            fractional_delay(rng.standard_normal((2, 2)), 0.5)


class TestPlacePulse:
    def test_integer_placement(self, default_pulse):
        buffer = np.zeros(100, dtype=complex)
        place_pulse(buffer, default_pulse.samples, 50.0, amplitude=2.0)
        assert np.argmax(np.abs(buffer)) == 50
        peak_value = default_pulse.samples[default_pulse.peak_index]
        assert buffer[50] == pytest.approx(2.0 * peak_value)

    def test_fractional_placement_preserves_energy(self, default_pulse):
        buffer = np.zeros(200, dtype=complex)
        place_pulse(buffer, default_pulse.samples, 100.3, amplitude=1.0)
        assert np.sum(np.abs(buffer) ** 2) == pytest.approx(1.0, rel=1e-3)

    def test_complex_amplitude(self, default_pulse):
        buffer = np.zeros(100, dtype=complex)
        amp = 0.5 * np.exp(1j * 1.2)
        place_pulse(buffer, default_pulse.samples, 40.0, amplitude=amp)
        peak_value = default_pulse.samples[default_pulse.peak_index]
        assert buffer[40] == pytest.approx(amp * peak_value)

    def test_additive(self, default_pulse):
        buffer = np.zeros(100, dtype=complex)
        place_pulse(buffer, default_pulse.samples, 30.0)
        place_pulse(buffer, default_pulse.samples, 30.0)
        peak_value = default_pulse.samples[default_pulse.peak_index]
        assert buffer[30] == pytest.approx(2.0 * peak_value)

    def test_clipping_at_start(self, default_pulse):
        buffer = np.zeros(100, dtype=complex)
        place_pulse(buffer, default_pulse.samples, 2.0)
        # No exception; partial energy landed.
        assert 0 < np.sum(np.abs(buffer) ** 2) < 1.0

    def test_clipping_at_end(self, default_pulse):
        buffer = np.zeros(100, dtype=complex)
        place_pulse(buffer, default_pulse.samples, 98.0)
        assert 0 < np.sum(np.abs(buffer) ** 2) < 1.0

    def test_fully_outside_is_noop(self, default_pulse):
        buffer = np.zeros(100, dtype=complex)
        place_pulse(buffer, default_pulse.samples, 500.0)
        assert np.all(buffer == 0)

    def test_cancellation(self, default_pulse):
        """Subtracting what was placed leaves (near) zero — the core
        operation of search-and-subtract step 5."""
        buffer = np.zeros(200, dtype=complex)
        place_pulse(buffer, default_pulse.samples, 77.4, amplitude=1.5)
        place_pulse(buffer, default_pulse.samples, 77.4, amplitude=-1.5)
        assert np.max(np.abs(buffer)) < 1e-9


class TestPlacedSegment:
    """The shared placement helper the fast detector relies on must
    describe exactly what place_pulse adds into a buffer."""

    @pytest.mark.parametrize("position", (50.0, 50.25, 3.0, 2.7, 97.9))
    def test_matches_place_pulse(self, default_pulse, position):
        samples = default_pulse.samples.astype(complex)
        buffer = np.zeros(100, dtype=complex)
        place_pulse(
            buffer, samples, position, amplitude=1.0,
            peak_index=default_pulse.peak_index,
        )
        start, segment = placed_segment(
            samples, position, default_pulse.peak_index
        )
        rebuilt = np.zeros(100, dtype=complex)
        src_start = max(0, -start)
        src_stop = len(segment) - max(0, start + len(segment) - 100)
        if src_start < src_stop:
            rebuilt[start + src_start : start + src_stop] = segment[
                src_start:src_stop
            ]
        assert np.allclose(rebuilt, buffer, atol=1e-12)

    def test_integer_position_returns_unshifted_samples(self, default_pulse):
        samples = default_pulse.samples.astype(complex)
        start, segment = placed_segment(
            samples, 40.0, default_pulse.peak_index
        )
        assert segment is samples  # no copy, no fractional shift
        assert start == 40 - default_pulse.peak_index

    def test_fractional_position_pads_one_sample(self, default_pulse):
        samples = default_pulse.samples.astype(complex)
        _, segment = placed_segment(samples, 40.5, default_pulse.peak_index)
        assert len(segment) == len(samples) + 1

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            placed_segment(np.zeros((2, 2)), 1.0)
