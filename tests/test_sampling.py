"""Unit tests for repro.signal.sampling."""

import numpy as np
import pytest

from repro.signal.sampling import fft_upsample, fractional_delay, place_pulse


class TestFftUpsample:
    def test_factor_one_is_copy(self, rng):
        signal = rng.standard_normal(64)
        out = fft_upsample(signal, 1)
        assert np.array_equal(out, signal)
        assert out is not signal

    def test_length_scales(self, rng):
        signal = rng.standard_normal(100)
        assert len(fft_upsample(signal, 4)) == 400

    def test_original_samples_preserved(self, rng):
        """Band-limited interpolation passes through the input samples."""
        # Use a band-limited signal (low-pass noise) to avoid edge leakage.
        spectrum = np.zeros(128, dtype=complex)
        spectrum[:20] = rng.standard_normal(20) + 1j * rng.standard_normal(20)
        spectrum[-19:] = np.conj(spectrum[1:20][::-1])
        signal = np.fft.ifft(spectrum).real
        up = fft_upsample(signal, 8)
        assert np.allclose(up[::8], signal, atol=1e-9)

    def test_real_stays_real(self, rng):
        out = fft_upsample(rng.standard_normal(64), 4)
        assert np.isrealobj(out)

    def test_complex_stays_complex(self, rng):
        signal = rng.standard_normal(64) + 1j * rng.standard_normal(64)
        out = fft_upsample(signal, 4)
        assert np.iscomplexobj(out)
        assert np.allclose(out[::4], signal, atol=1e-9)

    def test_energy_preserved_for_bandlimited(self):
        n = 128
        t = np.arange(n)
        signal = np.sin(2 * np.pi * 5 * t / n)
        up = fft_upsample(signal, 4)
        assert np.mean(up**2) == pytest.approx(np.mean(signal**2), rel=1e-6)

    def test_odd_length(self, rng):
        signal = rng.standard_normal(63)
        assert len(fft_upsample(signal, 2)) == 126

    def test_rejects_bad_inputs(self, rng):
        with pytest.raises(ValueError):
            fft_upsample(rng.standard_normal((4, 4)), 2)
        with pytest.raises(ValueError):
            fft_upsample(rng.standard_normal(8), 0)


class TestFractionalDelay:
    def test_integer_delay_is_roll(self, rng):
        spectrum = np.zeros(64, dtype=complex)
        spectrum[:10] = rng.standard_normal(10)
        signal = np.fft.ifft(spectrum).real
        delayed = fractional_delay(signal, 3.0)
        assert np.allclose(delayed, np.roll(signal, 3), atol=1e-9)

    def test_zero_delay_identity(self, rng):
        signal = rng.standard_normal(32)
        assert np.allclose(fractional_delay(signal, 0.0), signal, atol=1e-12)

    def test_energy_preserved_for_bandlimited(self, rng):
        # Energy preservation holds for signals without Nyquist-bin
        # content (all our pulses are band-limited by construction).
        spectrum = np.zeros(64, dtype=complex)
        spectrum[1:12] = rng.standard_normal(11) + 1j * rng.standard_normal(11)
        spectrum[-11:] = np.conj(spectrum[1:12][::-1])
        signal = np.fft.ifft(spectrum).real
        delayed = fractional_delay(signal, 0.37)
        assert np.sum(delayed**2) == pytest.approx(np.sum(signal**2), rel=1e-9)

    def test_half_then_half_equals_one(self, rng):
        spectrum = np.zeros(64, dtype=complex)
        spectrum[:8] = rng.standard_normal(8)
        signal = np.fft.ifft(spectrum).real
        twice = fractional_delay(fractional_delay(signal, 0.5), 0.5)
        assert np.allclose(twice, fractional_delay(signal, 1.0), atol=1e-9)

    def test_rejects_2d(self, rng):
        with pytest.raises(ValueError):
            fractional_delay(rng.standard_normal((2, 2)), 0.5)


class TestPlacePulse:
    def test_integer_placement(self, default_pulse):
        buffer = np.zeros(100, dtype=complex)
        place_pulse(buffer, default_pulse.samples, 50.0, amplitude=2.0)
        assert np.argmax(np.abs(buffer)) == 50
        peak_value = default_pulse.samples[default_pulse.peak_index]
        assert buffer[50] == pytest.approx(2.0 * peak_value)

    def test_fractional_placement_preserves_energy(self, default_pulse):
        buffer = np.zeros(200, dtype=complex)
        place_pulse(buffer, default_pulse.samples, 100.3, amplitude=1.0)
        assert np.sum(np.abs(buffer) ** 2) == pytest.approx(1.0, rel=1e-3)

    def test_complex_amplitude(self, default_pulse):
        buffer = np.zeros(100, dtype=complex)
        amp = 0.5 * np.exp(1j * 1.2)
        place_pulse(buffer, default_pulse.samples, 40.0, amplitude=amp)
        peak_value = default_pulse.samples[default_pulse.peak_index]
        assert buffer[40] == pytest.approx(amp * peak_value)

    def test_additive(self, default_pulse):
        buffer = np.zeros(100, dtype=complex)
        place_pulse(buffer, default_pulse.samples, 30.0)
        place_pulse(buffer, default_pulse.samples, 30.0)
        peak_value = default_pulse.samples[default_pulse.peak_index]
        assert buffer[30] == pytest.approx(2.0 * peak_value)

    def test_clipping_at_start(self, default_pulse):
        buffer = np.zeros(100, dtype=complex)
        place_pulse(buffer, default_pulse.samples, 2.0)
        # No exception; partial energy landed.
        assert 0 < np.sum(np.abs(buffer) ** 2) < 1.0

    def test_clipping_at_end(self, default_pulse):
        buffer = np.zeros(100, dtype=complex)
        place_pulse(buffer, default_pulse.samples, 98.0)
        assert 0 < np.sum(np.abs(buffer) ** 2) < 1.0

    def test_fully_outside_is_noop(self, default_pulse):
        buffer = np.zeros(100, dtype=complex)
        place_pulse(buffer, default_pulse.samples, 500.0)
        assert np.all(buffer == 0)

    def test_cancellation(self, default_pulse):
        """Subtracting what was placed leaves (near) zero — the core
        operation of search-and-subtract step 5."""
        buffer = np.zeros(200, dtype=complex)
        place_pulse(buffer, default_pulse.samples, 77.4, amplitude=1.5)
        place_pulse(buffer, default_pulse.samples, 77.4, amplitude=-1.5)
        assert np.max(np.abs(buffer)) < 1e-9
