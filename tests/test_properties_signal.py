"""Property-based tests (hypothesis) for the signal layer."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.constants import TC_PGDELAY_DEFAULT, TC_PGDELAY_MAX
from repro.signal.pulses import (
    dw1000_pulse,
    pulse_bandwidth_hz,
    pulse_width_factor,
    raised_cosine_pulse,
)
from repro.signal.sampling import fft_upsample, fractional_delay, place_pulse

registers = st.integers(min_value=TC_PGDELAY_DEFAULT, max_value=TC_PGDELAY_MAX)


class TestPulseProperties:
    @given(register=registers)
    @settings(max_examples=30, deadline=None)
    def test_any_register_yields_unit_energy(self, register):
        assert dw1000_pulse(register).energy() == pytest.approx(1.0)

    @given(register=registers)
    @settings(max_examples=30, deadline=None)
    def test_width_factor_at_least_one(self, register):
        assert pulse_width_factor(register) >= 1.0

    @given(a=registers, b=registers)
    @settings(max_examples=30, deadline=None)
    def test_width_order_matches_register_order(self, a, b):
        if a < b:
            assert pulse_width_factor(a) < pulse_width_factor(b)
            assert pulse_bandwidth_hz(a) > pulse_bandwidth_hz(b)

    @given(register=registers)
    @settings(max_examples=20, deadline=None)
    def test_template_symmetric(self, register):
        pulse = dw1000_pulse(register)
        assert np.allclose(pulse.samples, pulse.samples[::-1], atol=1e-12)

    @given(
        bandwidth=st.floats(min_value=50e6, max_value=900e6),
        t_ns=st.floats(min_value=-20.0, max_value=20.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_rc_pulse_bounded_by_one(self, bandwidth, t_ns):
        value = raised_cosine_pulse(np.array([t_ns * 1e-9]), bandwidth)
        assert abs(value[0]) <= 1.0 + 1e-12


class TestResamplingProperties:
    @given(
        factor=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=25, deadline=None)
    def test_upsample_preserves_dc(self, factor, seed):
        rng = np.random.default_rng(seed)
        signal = rng.standard_normal(64)
        up = fft_upsample(signal, factor)
        assert np.mean(up) == pytest.approx(np.mean(signal), abs=1e-9)

    @given(
        delay=st.floats(min_value=-4.0, max_value=4.0),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=25, deadline=None)
    def test_delay_then_undelay_is_identity(self, delay, seed):
        rng = np.random.default_rng(seed)
        # Band-limited test signal.
        spectrum = np.zeros(64, dtype=complex)
        spectrum[:12] = rng.standard_normal(12) + 1j * rng.standard_normal(12)
        signal = np.fft.ifft(spectrum)
        roundtrip = fractional_delay(fractional_delay(signal, delay), -delay)
        assert np.allclose(roundtrip, signal, atol=1e-9)

    @given(
        position=st.floats(min_value=30.0, max_value=480.0),
        amplitude=st.floats(min_value=0.01, max_value=10.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_place_pulse_energy_scales_with_amplitude(self, position, amplitude):
        pulse = dw1000_pulse()
        buffer = np.zeros(512, dtype=complex)
        place_pulse(buffer, pulse.samples.astype(complex), position, amplitude)
        assert np.sum(np.abs(buffer) ** 2) == pytest.approx(
            amplitude**2, rel=1e-2
        )

    @given(position=st.floats(min_value=50.0, max_value=450.0))
    @settings(max_examples=25, deadline=None)
    def test_place_then_cancel_is_zero(self, position):
        pulse = dw1000_pulse()
        buffer = np.zeros(512, dtype=complex)
        place_pulse(buffer, pulse.samples.astype(complex), position, 1.0)
        place_pulse(buffer, pulse.samples.astype(complex), position, -1.0)
        assert np.max(np.abs(buffer)) < 1e-9
