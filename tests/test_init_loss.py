"""Tests for INIT frame-loss modelling in the concurrent session."""

import pytest

from repro.core.detection import SearchAndSubtractConfig
from repro.protocol.concurrent import ConcurrentRangingSession


def build_session(loss, seed=88, gate=6.0):
    return ConcurrentRangingSession.build(
        responder_distances_m=[3.0, 6.0, 9.0],
        n_shapes=3,
        seed=seed,
        init_loss_probability=loss,
        compensate_tx_quantization=True,
        detector_config=SearchAndSubtractConfig(
            max_responses=3, upsample_factor=8, min_peak_snr=gate
        ),
    )


class TestInitLoss:
    def test_zero_loss_all_respond(self):
        session = build_session(0.0)
        result = session.run_round()
        assert len(result.capture.arrivals) == 3

    def test_lossy_rounds_have_missing_responders(self):
        session = build_session(0.4)
        arrival_counts = []
        for _ in range(25):
            try:
                arrival_counts.append(len(session.run_round().capture.arrivals))
            except RuntimeError:
                arrival_counts.append(0)  # everyone missed the INIT
        assert min(arrival_counts) < 3
        assert max(arrival_counts) <= 3

    def test_loss_rate_roughly_matches(self):
        session = build_session(0.3)
        total, present = 0, 0
        for _ in range(40):
            total += 3
            try:
                present += len(session.run_round().capture.arrivals)
            except RuntimeError:
                pass  # all three lost: zero arrivals this round
        observed_loss = 1.0 - present / total
        assert observed_loss == pytest.approx(0.3, abs=0.12)

    def test_silent_responder_rarely_identified(self):
        """A responder that stayed silent is almost never credited with
        a correct identification.  (The detector may still extract a
        present responder's multipath component as an extra peak — the
        paper's challenge IV — but the ID decode then collides with the
        present responder and the silent one stays unidentified.)"""
        session = build_session(0.5)
        missing_total, missing_identified = 0, 0
        for _ in range(40):
            try:
                result = session.run_round()
            except RuntimeError:
                continue
            present = {a.source_id for a in result.capture.arrivals}
            for outcome in result.outcomes:
                if outcome.responder_id not in present:
                    missing_total += 1
                    missing_identified += outcome.identified
        assert missing_total > 0
        assert missing_identified / missing_total < 0.3

    def test_truth_still_covers_all_responders(self):
        session = build_session(0.5)
        for _ in range(20):
            try:
                result = session.run_round()
            except RuntimeError:
                continue
            assert len(result.outcomes) == 3
            return
        pytest.fail("no round with at least one arrival in 20 attempts")

    def test_all_lost_raises(self):
        session = build_session(0.99, seed=3)
        with pytest.raises(RuntimeError):
            for _ in range(200):
                session.run_round()

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            build_session(1.0)
        with pytest.raises(ValueError):
            build_session(-0.1)
