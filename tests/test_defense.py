"""Unit tests for the time-hopping + CIR-anomaly defense layer."""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.constants import SPEED_OF_LIGHT
from repro.core.ranging import RangingResult
from repro.faults import EarlyReplyAttacker, FaultPlan
from repro.protocol.campaign import RangingCampaign, ResiliencePolicy
from repro.protocol.concurrent import ConcurrentRangingSession
from repro.protocol.defense import (
    AnomalyDetectorConfig,
    DefensePlan,
    TimeHoppingConfig,
    screen_round,
)
from repro.runtime import MetricsRegistry


class TestTimeHoppingConfig:
    def test_eager_validation(self):
        with pytest.raises(ValueError):
            TimeHoppingConfig(hop_range_s=-1e-9)
        with pytest.raises(ValueError):
            TimeHoppingConfig(early_tolerance_s=-1e-9)
        with pytest.raises(ValueError):
            TimeHoppingConfig(late_tolerance_s=float("nan"))
        with pytest.raises(ValueError):
            TimeHoppingConfig(max_range_m=0.0)
        with pytest.raises(ValueError):
            TimeHoppingConfig(secret_seed="not-a-seed")

    def test_tuple_secret_accepted(self):
        config = TimeHoppingConfig(secret_seed=(41, 77))
        assert 0.0 <= config.hop_offset_s(0, 0) < config.hop_range_s

    def test_hop_is_deterministic_and_stateless(self):
        config = TimeHoppingConfig(secret_seed=5, hop_range_s=100e-9)
        assert config.hop_offset_s(3, 1) == config.hop_offset_s(3, 1)
        # A second, independently built config derives the same hops.
        twin = TimeHoppingConfig(secret_seed=5, hop_range_s=100e-9)
        assert twin.hop_offset_s(3, 1) == config.hop_offset_s(3, 1)

    def test_hops_vary_per_round_and_responder(self):
        config = TimeHoppingConfig(secret_seed=5, hop_range_s=100e-9)
        hops = {
            config.hop_offset_s(r, rid)
            for r in range(4)
            for rid in range(4)
        }
        assert len(hops) == 16

    def test_hops_vary_with_secret(self):
        a = TimeHoppingConfig(secret_seed=5, hop_range_s=100e-9)
        b = TimeHoppingConfig(secret_seed=6, hop_range_s=100e-9)
        assert a.hop_offset_s(0, 0) != b.hop_offset_s(0, 0)

    def test_zero_range_disables_hopping(self):
        config = TimeHoppingConfig(secret_seed=5, hop_range_s=0.0)
        assert config.hop_offset_s(7, 2) == 0.0

    def test_window(self):
        config = TimeHoppingConfig(
            early_tolerance_s=10e-9, late_tolerance_s=5e-9, max_range_m=30.0
        )
        lo, hi = config.window_s
        assert lo == -10e-9
        assert hi == pytest.approx(2 * 30.0 / SPEED_OF_LIGHT + 5e-9)


class TestAnomalyDetectorConfig:
    def test_eager_validation(self):
        with pytest.raises(ValueError):
            AnomalyDetectorConfig(dup_min_amplitude_ratio=1.5)
        with pytest.raises(ValueError):
            AnomalyDetectorConfig(min_confidence=0.5)
        with pytest.raises(ValueError):
            AnomalyDetectorConfig(max_tail_peak_ratio=0.0)
        with pytest.raises(ValueError):
            AnomalyDetectorConfig(tail_width_taps=0)
        with pytest.raises(ValueError):
            AnomalyDetectorConfig(peak_halfwidth_taps=-1)

    def test_tail_peak_ratio_decaying_channel(self):
        config = AnomalyDetectorConfig(
            tail_start_taps=4, tail_width_taps=16, peak_halfwidth_taps=1
        )
        samples = np.zeros(64)
        samples[10] = 1.0  # a clean impulse: no tail energy
        assert config.tail_peak_ratio(samples, 10) == 0.0

    def test_tail_peak_ratio_inflated_tail(self):
        config = AnomalyDetectorConfig(
            tail_start_taps=4, tail_width_taps=16, peak_halfwidth_taps=1
        )
        samples = np.zeros(64)
        samples[10] = 1.0
        samples[14:30] = 0.8
        assert config.tail_peak_ratio(samples, 10) > 1.0

    def test_tail_peak_ratio_zero_peak(self):
        config = AnomalyDetectorConfig()
        samples = np.zeros(8)
        assert config.tail_peak_ratio(samples, 0) == 0.0


class TestDefensePlan:
    def test_type_validation(self):
        with pytest.raises(TypeError):
            DefensePlan(time_hopping=object())
        with pytest.raises(TypeError):
            DefensePlan(anomaly=object())

    def test_hop_offset_without_hopping(self):
        assert DefensePlan().hop_offset_s(3, 1) == 0.0


# -- screen_round on synthetic rounds ------------------------------------

PERIOD_S = 1e-9
REPLY_DELAY_S = 1e-3
FIRST_PATH = 100


def _assignment_fn(rid):
    if rid > 15:
        raise ValueError(f"identity {rid} beyond capacity")
    return SimpleNamespace(extra_delay_s=0.0)


def _capture(rx_timestamp_s, n=512):
    samples = np.zeros(n)
    samples[FIRST_PATH] = 1.0
    return SimpleNamespace(
        samples=samples,
        sampling_period_s=PERIOD_S,
        rx_timestamp_s=rx_timestamp_s,
        first_path_index=FIRST_PATH,
    )


def _synthetic_round(hopping, tofs_2way_s, ids, amplitudes=None,
                     round_index=0):
    """A decoded round whose arrivals are *exactly* consistent with the
    secret hops: response ``i`` arrives ``tofs_2way_s[i]`` after its
    expected zero-range instant.  Returns ``(ranging, capture)`` with
    distances carrying the raw (hop-uncorrected) relative offsets, as
    the decoder would produce them."""
    amplitudes = amplitudes or [1.0] * len(ids)
    hops = [hopping.hop_offset_s(round_index, rid) for rid in ids]
    # Anchor the capture timestamp on the first response.
    rx_timestamp_s = REPLY_DELAY_S + hops[0] + tofs_2way_s[0]
    responses = []
    for hop, tof in zip(hops, tofs_2way_s):
        arrival_s = REPLY_DELAY_S + hop + tof
        index = FIRST_PATH + (arrival_s - rx_timestamp_s) / PERIOD_S
        responses.append(SimpleNamespace(index=index, amplitude=1.0))
    for response, amplitude in zip(responses, amplitudes):
        response.amplitude = amplitude
    true_m = [tof * SPEED_OF_LIGHT / 2.0 for tof in tofs_2way_s]
    # The decoder sees each non-anchor response offset by its relative
    # hop; the screen is expected to remove that again.
    distances = tuple(
        d + (hop - hops[0]) * SPEED_OF_LIGHT / 2.0
        for d, hop in zip(true_m, hops)
    )
    ranging = RangingResult(
        d_twr_m=true_m[0],
        responses=tuple(responses),
        distances_m=distances,
        responder_ids=tuple(ids),
    )
    return ranging, _capture(rx_timestamp_s)


def _screen(plan, ranging, capture, round_index=0):
    return screen_round(
        plan,
        ranging=ranging,
        capture=capture,
        t_tx_init_local_s=0.0,
        reply_delay_s=REPLY_DELAY_S,
        assignment_fn=_assignment_fn,
        round_index=round_index,
        expected_responders=len(ranging.responses),
    )


HOPPING = TimeHoppingConfig(secret_seed=5, hop_range_s=100e-9)


class TestScreenRoundHopVerification:
    def test_legitimate_round_passes(self):
        plan = DefensePlan(time_hopping=HOPPING)
        ranging, capture = _synthetic_round(
            HOPPING, [20e-9, 60e-9], ids=[0, 1]
        )
        screened, report = _screen(plan, ranging, capture)
        assert not report.triggered
        assert report.checked == 2
        assert report.rejected_responses == 0
        assert len(screened.responses) == 2

    def test_dehop_restores_true_distances(self):
        plan = DefensePlan(time_hopping=HOPPING)
        tofs = [20e-9, 60e-9]
        ranging, capture = _synthetic_round(HOPPING, tofs, ids=[0, 1])
        screened, _ = _screen(plan, ranging, capture)
        for distance, tof in zip(screened.distances_m, tofs):
            assert distance == pytest.approx(
                tof * SPEED_OF_LIGHT / 2.0, abs=1e-9
            )

    def test_early_arrival_is_rejected(self):
        plan = DefensePlan(time_hopping=HOPPING)
        # Response 1 arrives 40 ns before its expected zero-range
        # instant — impossible without knowing the secret hop.
        ranging, capture = _synthetic_round(
            HOPPING, [20e-9, -40e-9], ids=[0, 1]
        )
        screened, report = _screen(plan, ranging, capture)
        assert report.triggered
        assert [f.reason for f in report.flags] == ["hop_window"]
        assert report.rejected_ids == (1,)
        assert len(screened.responses) == 1
        assert screened.responder_ids == (0,)

    def test_late_arrival_is_rejected(self):
        plan = DefensePlan(time_hopping=HOPPING)
        late = 2 * HOPPING.max_range_m / SPEED_OF_LIGHT + 50e-9
        ranging, capture = _synthetic_round(
            HOPPING, [20e-9, late], ids=[0, 1]
        )
        _, report = _screen(plan, ranging, capture)
        assert report.rejected_ids == (1,)

    def test_unknown_identity_is_skipped(self):
        plan = DefensePlan(time_hopping=HOPPING)
        ranging, capture = _synthetic_round(
            HOPPING, [20e-9, 60e-9], ids=[0, 99]
        )
        _, report = _screen(plan, ranging, capture)
        # Identity 99 has no slot assignment: not verifiable, not
        # rejected (it already failed identification upstream).
        assert report.checked == 1
        assert not report.triggered

    def test_weak_duplicate_skips_hop_check(self):
        plan = DefensePlan(
            time_hopping=HOPPING,
            anomaly=AnomalyDetectorConfig(dup_min_amplitude_ratio=0.6),
        )
        # The weak second copy of identity 0 is a misread multipath
        # echo: its arrival cannot match identity 0's hop, but it must
        # not raise a hop alarm (amplitude 0.1 of the strong copy).
        ranging, capture = _synthetic_round(
            HOPPING,
            [20e-9, -400e-9],
            ids=[0, 0],
            amplitudes=[1.0, 0.1],
        )
        _, report = _screen(plan, ranging, capture)
        assert report.checked == 1
        assert not report.triggered


class TestScreenRoundAnomalies:
    def test_strong_duplicate_pair_rejected(self):
        plan = DefensePlan(
            anomaly=AnomalyDetectorConfig(dup_min_amplitude_ratio=0.6)
        )
        ranging, capture = _synthetic_round(
            HOPPING, [20e-9, 25e-9], ids=[0, 0], amplitudes=[1.0, 0.9]
        )
        screened, report = _screen(plan, ranging, capture)
        assert {f.reason for f in report.flags} == {"duplicate_id"}
        assert report.rejected_ids == (0,)
        assert len(screened.responses) == 0

    def test_weak_duplicate_group_does_not_fire(self):
        plan = DefensePlan(
            anomaly=AnomalyDetectorConfig(dup_min_amplitude_ratio=0.6)
        )
        ranging, capture = _synthetic_round(
            HOPPING, [20e-9, 25e-9], ids=[0, 0], amplitudes=[1.0, 0.1]
        )
        _, report = _screen(plan, ranging, capture)
        assert not report.triggered

    def test_low_confidence_flagged(self):
        plan = DefensePlan(
            anomaly=AnomalyDetectorConfig(min_confidence=1.2)
        )
        ranging, capture = _synthetic_round(HOPPING, [20e-9], ids=[0])
        ranging.responses[0].confidence = 1.05
        _, report = _screen(plan, ranging, capture)
        assert [f.reason for f in report.flags] == ["low_confidence"]

    def test_inflated_tail_flagged_at_peak_response(self):
        plan = DefensePlan(
            anomaly=AnomalyDetectorConfig(max_tail_peak_ratio=1.5)
        )
        ranging, capture = _synthetic_round(HOPPING, [20e-9], ids=[0])
        # Pump the diffuse tail behind the (single) response peak.
        capture.samples[FIRST_PATH + 4 : FIRST_PATH + 36] = 0.9
        _, report = _screen(plan, ranging, capture)
        assert [f.reason for f in report.flags] == ["tail_energy"]

    def test_physical_profile_passes_tail_check(self):
        plan = DefensePlan(
            anomaly=AnomalyDetectorConfig(max_tail_peak_ratio=1.5)
        )
        ranging, capture = _synthetic_round(HOPPING, [20e-9], ids=[0])
        capture.samples[FIRST_PATH + 4 : FIRST_PATH + 36] = 0.05
        _, report = _screen(plan, ranging, capture)
        assert not report.triggered


# -- session and campaign integration ------------------------------------

DEFENSE = DefensePlan(
    time_hopping=TimeHoppingConfig(secret_seed=(41, 77), hop_range_s=500e-9),
    anomaly=AnomalyDetectorConfig(
        dup_min_amplitude_ratio=0.6, max_tail_peak_ratio=1.5
    ),
)


def _session(seed=7, faults=None, defense=None):
    return ConcurrentRangingSession.build(
        [3.0, 6.0], n_shapes=2, seed=seed, faults=faults, defense=defense
    )


class TestSessionIntegration:
    def test_defense_off_reports_none(self):
        result = _session().run_round(round_index=0)
        assert result.defense is None

    def test_rejects_wrong_defense_type(self):
        with pytest.raises(TypeError):
            _session(defense=object())

    def test_defended_clean_round_reports(self):
        result = _session(defense=DEFENSE).run_round(round_index=0)
        assert result.defense is not None
        assert result.defense.checked >= 1

    def test_hopless_defense_is_transparent(self):
        """hop_range 0 + no anomaly checks: the defended session must be
        byte-identical to an undefended one (the hop adds 0.0 to every
        reply and the screen rejects nothing)."""
        transparent = DefensePlan(
            time_hopping=TimeHoppingConfig(secret_seed=1, hop_range_s=0.0)
        )
        reference = _session(seed=29).run_round(round_index=0)
        result = _session(seed=29, defense=transparent).run_round(
            round_index=0
        )
        assert np.array_equal(
            result.capture.samples, reference.capture.samples
        )
        assert result.d_twr_m == reference.d_twr_m
        assert [o.estimated_distance_m for o in result.outcomes] == [
            o.estimated_distance_m for o in reference.outcomes
        ]
        assert result.defense is not None
        assert not result.defense.triggered

    def test_early_reply_detected(self):
        faults = FaultPlan([EarlyReplyAttacker(advance_s=40e-9)], seed=5)
        session = _session(seed=31, faults=faults, defense=DEFENSE)
        detected = 0
        for round_index in range(5):
            result = session.run_round(round_index=round_index)
            detected += result.defense.triggered
        assert detected >= 4


class TestCampaignCounters:
    def _campaign(self, session, metrics=None):
        return RangingCampaign(
            session,
            round_interval_s=0.05,
            resilience=ResiliencePolicy(
                quorum_fraction=0.0,
                max_round_retries=0,
                quarantine_after=3,
                seed=(1, 7),
            ),
            metrics=metrics,
        )

    def test_attacked_defended_campaign_counts_detections(self):
        metrics = MetricsRegistry()
        faults = FaultPlan([EarlyReplyAttacker(advance_s=40e-9)], seed=5)
        session = _session(seed=37, faults=faults, defense=DEFENSE)
        result = self._campaign(session, metrics).run(6)
        assert result.attacked_rounds == 6
        assert result.detected_rounds >= 5
        assert result.false_positive_rounds == 0
        assert metrics.counter("faults.attacks_injected").value > 0
        assert (
            metrics.counter("defense.detected").value
            == result.detected_rounds
        )

    def test_clean_defended_campaign_counts_false_positives(self):
        metrics = MetricsRegistry()
        session = _session(seed=37, defense=DEFENSE)
        result = self._campaign(session, metrics).run(6)
        assert result.attacked_rounds == 0
        assert result.detected_rounds == 0
        triggered = sum(
            1
            for round_result in result.rounds
            if round_result.defense.triggered
        )
        assert result.false_positive_rounds == triggered
        assert (
            metrics.counter("defense.false_positives").value == triggered
        )

    def test_undefended_campaign_counts_attacks_only(self):
        faults = FaultPlan([EarlyReplyAttacker(advance_s=40e-9)], seed=5)
        session = _session(seed=37, faults=faults)
        result = self._campaign(session).run(4)
        assert result.attacked_rounds == 4
        assert result.detected_rounds == 0
        assert result.false_positive_rounds == 0

    def test_rejected_attacker_gets_quarantined(self):
        """A persistently rejected responder reads as missing and flows
        into the existing quarantine machinery."""
        faults = FaultPlan(
            [EarlyReplyAttacker(advance_s=40e-9, responder_ids=(0,))],
            seed=5,
        )
        session = _session(seed=43, faults=faults, defense=DEFENSE)
        result = self._campaign(session).run(8)
        assert 0 in result.quarantined_responders
