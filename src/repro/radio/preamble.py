"""Preamble code sequences and the correlate-and-accumulate CIR estimator.

The paper (Sect. III) stresses that "the channel impulse response is
estimated solely from the preamble": the transmitter sends a known
symbol sequence of single pulses, and the receiver correlates the
received chip stream against the code and accumulates over the preamble
symbols.  Because 802.15.4 preamble codes have *perfect periodic
autocorrelation* (Ipatov ternary sequences), the accumulated correlation
equals the channel impulse response (scaled), and concurrent responders
using the same code superpose linearly — which is the entire physical
basis for concurrent ranging.

The true Ipatov codes are tabulated in the standard; we construct
maximal-length (m-)sequences instead, whose periodic autocorrelation is
two-valued (N, -1) — the same near-ideal property, with the -1 floor
acting as a tiny deterministic sidelobe.  The module demonstrates, and
the tests verify, that the correlate-and-accumulate estimate converges
to the tapped-delay channel our :class:`~repro.radio.dw1000.DW1000Radio`
model produces directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Taps (exponents) of primitive LFSR polynomials per register length.
_PRIMITIVE_TAPS = {
    5: (5, 3),      # x^5 + x^3 + 1      -> length-31 code (PRF 16 MHz)
    7: (7, 6),      # x^7 + x^6 + 1      -> length-127 code (PRF 64 MHz)
}

#: Code lengths used by the 802.15.4 UWB preamble.
CODE_LENGTH_PRF16 = 31
CODE_LENGTH_PRF64 = 127


def m_sequence(register_bits: int, seed: int = 1) -> np.ndarray:
    """A +-1 maximal-length sequence of length ``2**bits - 1``.

    Generated with a Fibonacci LFSR over a primitive polynomial; any
    non-zero seed produces a cyclic shift of the same sequence.
    """
    taps = _PRIMITIVE_TAPS.get(register_bits)
    if taps is None:
        raise ValueError(
            f"no primitive polynomial tabulated for {register_bits} bits; "
            f"available: {sorted(_PRIMITIVE_TAPS)}"
        )
    if not 0 < seed < (1 << register_bits):
        raise ValueError(f"seed must be a non-zero {register_bits}-bit value")
    length = (1 << register_bits) - 1
    mask = length  # all-ones register mask
    state = seed
    chips = np.empty(length, dtype=float)
    for i in range(length):
        # Output the register MSB, then left-shift in the feedback bit
        # (Fibonacci form): feedback = XOR of the polynomial tap bits.
        chips[i] = 1.0 if (state >> (register_bits - 1)) & 1 else -1.0
        feedback = 0
        for tap in taps:
            feedback ^= (state >> (tap - 1)) & 1
        state = ((state << 1) | feedback) & mask
    return chips


def preamble_code(length: int, seed: int = 1) -> np.ndarray:
    """A preamble code of one of the two standard lengths (31 or 127)."""
    if length == CODE_LENGTH_PRF16:
        return m_sequence(5, seed)
    if length == CODE_LENGTH_PRF64:
        return m_sequence(7, seed)
    raise ValueError(
        f"802.15.4 preamble codes are length 31 or 127, got {length}"
    )


def periodic_autocorrelation(code: np.ndarray) -> np.ndarray:
    """Circular autocorrelation of a code (lag 0..N-1)."""
    code = np.asarray(code, dtype=float)
    spectrum = np.fft.fft(code)
    return np.real(np.fft.ifft(spectrum * np.conj(spectrum)))


@dataclass(frozen=True)
class AccumulatorResult:
    """Output of the correlate-and-accumulate estimator."""

    cir: np.ndarray
    symbols_accumulated: int
    code_length: int


def estimate_cir_from_preamble(
    channel_taps: np.ndarray,
    code: np.ndarray,
    n_symbols: int,
    noise_std: float,
    rng: np.random.Generator,
) -> AccumulatorResult:
    """Simulate the DW1000's CIR estimation from first principles.

    The transmitter repeats the code ``n_symbols`` times (one pulse per
    chip, signs per the code); the chip stream circularly convolves with
    the channel (taps on the chip grid, length <= code length); the
    receiver correlates each received symbol against the code and
    averages.  With an ideal two-valued-autocorrelation code the output
    is ``N * h + bias`` plus averaged noise — i.e. the channel estimate
    whose noise floor drops as ``sqrt(n_symbols)``, the accumulation
    gain modelled in :mod:`repro.radio.dw1000`.

    Parameters
    ----------
    channel_taps:
        Complex channel impulse response on the chip grid, length at most
        ``len(code)``.
    code:
        +-1 preamble code.
    n_symbols:
        Number of preamble symbols accumulated (the PSR).
    noise_std:
        Complex noise std per received chip.
    """
    code = np.asarray(code, dtype=float)
    n = len(code)
    taps = np.zeros(n, dtype=complex)
    incoming = np.asarray(channel_taps, dtype=complex)
    if len(incoming) > n:
        raise ValueError(
            f"channel ({len(incoming)} taps) longer than the code ({n}); "
            "delays would alias"
        )
    taps[: len(incoming)] = incoming

    # Steady-state periodic reception: received symbol = code (*) h.
    received_clean = np.fft.ifft(np.fft.fft(code) * np.fft.fft(taps))

    accumulated = np.zeros(n, dtype=complex)
    for _ in range(n_symbols):
        noise = noise_std * (
            rng.standard_normal(n) + 1j * rng.standard_normal(n)
        ) / np.sqrt(2.0)
        received = received_clean + noise
        # Circular correlation with the code.
        accumulated += np.fft.ifft(
            np.fft.fft(received) * np.conj(np.fft.fft(code))
        )
    accumulated /= n_symbols

    return AccumulatorResult(
        cir=accumulated, symbols_accumulated=n_symbols, code_length=n
    )
