"""Behavioural model of the DW1000 transceiver.

The model covers everything the paper's concurrent-ranging solution needs
from the chip:

* **CIR accumulator estimation** — when one or more frames arrive with
  preamble overlap, the accumulator integrates the superposition of all
  transmitted preamble pulses through their respective channels into a
  1016-tap complex CIR sampled at 1.0016 ns (paper Sect. II/VII).
* **Leading-edge first-path detection** — the internal LDE algorithm that
  produces the RX timestamp with 15.65 ps resolution.
* **Delayed transmission** — programmed TX times are floored to the
  ~8 ns hardware grid (paper Sect. III).
* **Pulse shaping** — the transmitted template follows the current
  ``TC_PGDELAY`` register value (paper Sect. V).

Amplitudes are physical link gains (Friis-scale, ~1e-3 at a few meters),
and the default receiver noise floor is calibrated to give the 25-35 dB
CIR SNR range typical of DW1000 captures at indoor distances.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.channel.cir import ChannelRealization
from repro.constants import (
    CIR_LENGTH_PRF64,
    CIR_SAMPLING_PERIOD_S,
)
from repro.radio.energy import EnergyMeter
from repro.radio.frame import RadioConfig
from repro.radio.registers import RegisterFile
from repro.radio.timebase import (
    Clock,
    quantize_delayed_tx_s,
    quantize_timestamp_s,
)
from repro.signal.pulses import Pulse, dw1000_pulse, pulse_width_factor

#: Receiver noise floor (per-tap complex noise std) in link-gain units,
#: at the reference preamble length PSR = 128.  Friis gain at 10 m /
#: channel 7 is ~3.7e-4, so this default yields ~25 dB CIR SNR at 10 m
#: and ~35 dB at 3 m — the range seen on real DW1000 captures at the
#: paper's distances.
DEFAULT_NOISE_STD = 2.0e-5

#: Preamble length at which :data:`DEFAULT_NOISE_STD` is calibrated.
#: The CIR is accumulated over the preamble symbols, so the effective
#: noise floor scales as ``sqrt(128 / PSR)`` — longer preambles buy SNR.
NOISE_REFERENCE_PSR = 128

#: Nominal accumulator tap where the LDE places the first path.  Real
#: DW1000 captures put it around tap 750 of 4096 accumulator phases; in
#: the 1016-tap window we leave a short noise-only preroll.
FIRST_PATH_NOMINAL_INDEX = 64

#: Residual RX timestamp jitter [s] (std): antenna, PLL, and LDE noise
#: lumped together.  Calibrated so SS-TWR yields the ~2.3 cm standard
#: deviation the paper measures for the default pulse (Sect. V).
DEFAULT_TIMESTAMP_JITTER_S = 107e-12

#: Relative growth of timestamp jitter per unit of pulse-width factor
#: above 1.0: wider pulses have a shallower leading edge, so their ToA
#: estimate is slightly noisier (paper Sect. V measures s3 worst).
JITTER_WIDTH_SLOPE = 0.10

#: LDE threshold in units of the noise standard deviation.
LDE_NOISE_MULTIPLIER = 6.0


@dataclass(frozen=True)
class SignalArrival:
    """One transmitter's contribution to a received superposition.

    Attributes
    ----------
    channel:
        Channel realization between that transmitter and this receiver
        (tap delays are one-way propagation delays).
    pulse:
        The transmitted pulse template (the transmitter's ``TC_PGDELAY``
        shape), sampled at the CIR rate.
    tx_time_s:
        Global time the transmitter's RMARKER left the antenna.
    source_id:
        Identifier of the transmitting node (ground truth for evaluation;
        the detection algorithms never read it).
    """

    channel: ChannelRealization
    pulse: Pulse
    tx_time_s: float
    source_id: int | None = None

    @property
    def first_path_arrival_s(self) -> float:
        """Global arrival time of this transmitter's first path."""
        return self.tx_time_s + self.channel.first_path.delay_s


@dataclass(frozen=True)
class CirCapture:
    """One estimated CIR plus the receiver's metadata.

    ``time_origin_s`` (global time of tap 0) and ``arrivals`` are ground
    truth kept for evaluation; the paper's algorithms consume only
    ``samples``, ``sampling_period_s``, ``rx_timestamp_s``, and
    ``noise_std``.
    """

    samples: np.ndarray
    sampling_period_s: float
    rx_timestamp_s: float
    first_path_index: float
    noise_std: float
    time_origin_s: float
    arrivals: tuple = ()

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def magnitude(self) -> np.ndarray:
        return np.abs(self.samples)

    def normalized(self) -> np.ndarray:
        """Magnitude scaled to unit peak (as plotted in the paper)."""
        mag = self.magnitude
        peak = float(mag.max())
        return mag / peak if peak > 0 else mag

    def time_of_index(self, index: float) -> float:
        """Global time corresponding to a (fractional) tap index."""
        return self.time_origin_s + index * self.sampling_period_s


def leading_edge_index(
    magnitude: np.ndarray,
    noise_std: float,
    noise_multiplier: float = LDE_NOISE_MULTIPLIER,
) -> float:
    """First-path tap index via leading-edge detection.

    Mimics the DW1000 LDE: find the first sample that exceeds a
    noise-referenced threshold (also bounded below by a fraction of the
    global peak, so an absurdly low noise estimate cannot fire on noise),
    then refine to sub-sample precision with a parabolic fit around the
    local maximum of the leading pulse.
    """
    magnitude = np.asarray(magnitude, dtype=float)
    if magnitude.ndim != 1 or len(magnitude) < 3:
        raise ValueError("magnitude must be a 1-D array of length >= 3")
    peak = float(magnitude.max())
    if peak <= 0.0:
        raise ValueError("cannot detect a first path in an all-zero CIR")
    threshold = max(noise_multiplier * noise_std, 0.12 * peak)
    above = np.nonzero(magnitude >= threshold)[0]
    if len(above) == 0:
        raise ValueError(
            f"no sample exceeds the LDE threshold {threshold:.3g} "
            f"(peak {peak:.3g}, noise {noise_std:.3g})"
        )
    first = int(above[0])
    # Climb to the local maximum of the leading pulse.
    idx = first
    while idx + 1 < len(magnitude) and magnitude[idx + 1] > magnitude[idx]:
        idx += 1
    return _parabolic_refine(magnitude, idx)


def _parabolic_refine(magnitude: np.ndarray, index: int) -> float:
    """Sub-sample peak location via a three-point parabolic fit."""
    if index <= 0 or index >= len(magnitude) - 1:
        return float(index)
    left, mid, right = magnitude[index - 1 : index + 2]
    denom = left - 2.0 * mid + right
    if denom == 0.0:
        return float(index)
    shift = 0.5 * (left - right) / denom
    return float(index + np.clip(shift, -0.5, 0.5))


class DW1000Radio:
    """One DW1000 transceiver instance.

    Holds the PHY configuration, register file, node clock, and energy
    meter, and implements the receive chain (CIR capture + timestamping)
    and transmit chain (pulse shape + delayed-TX quantisation).
    """

    def __init__(
        self,
        config: RadioConfig | None = None,
        clock: Clock | None = None,
        noise_std: float | None = None,
        timestamp_jitter_s: float = DEFAULT_TIMESTAMP_JITTER_S,
        cir_length: int | None = None,
        sampling_period_s: float = CIR_SAMPLING_PERIOD_S,
        true_antenna_delay_s: float | None = None,
    ) -> None:
        self.config = config or RadioConfig()
        self.clock = clock or Clock()
        if cir_length is None:
            # The accumulator holds 1016 taps at PRF 64 MHz, 992 at 16 MHz.
            from repro.constants import CIR_LENGTH_PRF16
            from repro.radio.frame import Prf

            cir_length = (
                CIR_LENGTH_PRF64
                if self.config.prf is Prf.PRF_64MHZ
                else CIR_LENGTH_PRF16
            )
        if noise_std is None:
            # Preamble accumulation gain: the noise floor shrinks with
            # the square root of the number of accumulated symbols.
            noise_std = DEFAULT_NOISE_STD * math.sqrt(
                NOISE_REFERENCE_PSR / self.config.psr
            )
        self.noise_std = float(noise_std)
        self.timestamp_jitter_s = float(timestamp_jitter_s)
        self.cir_length = int(cir_length)
        self.sampling_period_s = float(sampling_period_s)
        self.registers = RegisterFile()
        self.registers.write("TC_PGDELAY", self.config.tc_pgdelay)
        self.energy = EnergyMeter()
        # Physical antenna/RF delay of THIS device.  Defaults to the
        # register reset value, i.e. a factory-calibrated device; pass a
        # different value to model an uncalibrated unit.
        if true_antenna_delay_s is None:
            true_antenna_delay_s = self.programmed_antenna_delay_s
        self.true_antenna_delay_s = float(true_antenna_delay_s)

    # -- antenna delay -----------------------------------------------------

    @property
    def programmed_antenna_delay_s(self) -> float:
        """The RX antenna delay the LDE currently compensates for
        (``LDE_RXANTD`` register, in 15.65 ps ticks)."""
        from repro.radio.timebase import ticks_to_seconds

        return ticks_to_seconds(self.registers.read("LDE_RXANTD"))

    @property
    def antenna_delay_error_s(self) -> float:
        """Uncompensated antenna delay: true minus programmed.

        The physical delay through antenna and RF front end
        (``true_antenna_delay_s``) is a per-device constant; the chip
        subtracts the *programmed* value from every RX timestamp.  Any
        mismatch biases each timestamp — and hence SS-TWR distances —
        which is why real deployments calibrate it
        (:mod:`repro.radio.calibration`).
        """
        return self.true_antenna_delay_s - self.programmed_antenna_delay_s

    def program_antenna_delay(self, delay_s: float) -> None:
        """Write the antenna-delay compensation registers."""
        from repro.radio.timebase import seconds_to_ticks

        ticks = seconds_to_ticks(delay_s)
        self.registers.write("LDE_RXANTD", ticks)
        self.registers.write("TX_ANTD", ticks)

    # -- transmit chain --------------------------------------------------

    def set_pulse_register(self, tc_pgdelay: int) -> None:
        """Program the pulse-shaping register (paper Sect. V)."""
        self.registers.write("TC_PGDELAY", tc_pgdelay)

    @property
    def pulse_register(self) -> int:
        return self.registers.read("TC_PGDELAY")

    def transmit_pulse(self) -> Pulse:
        """The pulse template currently transmitted by this radio."""
        return dw1000_pulse(
            self.pulse_register, sampling_period_s=self.sampling_period_s
        )

    def schedule_delayed_tx(self, local_time_s: float) -> float:
        """Program a delayed transmission; returns the *actual* local
        transmit time after the hardware floors the low 9 bits (~8 ns
        granularity, paper Sect. III)."""
        if local_time_s < 0:
            raise ValueError(f"TX time must be non-negative, got {local_time_s}")
        return quantize_delayed_tx_s(local_time_s)

    # -- receive chain ---------------------------------------------------

    def _effective_jitter_s(self, width_factor: float) -> float:
        """Timestamp jitter grows mildly with the received pulse width."""
        return self.timestamp_jitter_s * (
            1.0 + JITTER_WIDTH_SLOPE * (width_factor - 1.0)
        )

    def timestamp_arrival(
        self,
        true_arrival_global_s: float,
        rng: np.random.Generator,
        pulse_register: int | None = None,
    ) -> float:
        """RX timestamp (node-local) for a frame whose first path arrives
        at a known global time.

        This is the fast, statistics-level receive path used for plain
        SS-TWR simulation: the ToA estimation error is modelled as
        Gaussian jitter (calibrated against the paper's measured ranging
        precision) and then quantised to the 15.65 ps timestamp grid.
        """
        width = (
            pulse_width_factor(pulse_register) if pulse_register is not None else 1.0
        )
        jitter = float(rng.normal(0.0, self._effective_jitter_s(width)))
        local = self.clock.local_from_global(
            true_arrival_global_s + jitter + self.antenna_delay_error_s
        )
        return quantize_timestamp_s(local)

    def capture_cir(
        self,
        arrivals: Sequence[SignalArrival],
        rng: np.random.Generator,
        cir_transform=None,
    ) -> CirCapture:
        """Estimate the CIR of a (possibly superposed) reception.

        All arrivals whose preambles overlap the receive window contribute
        their pulses through their channels; complex AWGN models the
        accumulator noise after preamble integration.  The first path of
        the earliest arrival lands near tap ``FIRST_PATH_NOMINAL_INDEX``,
        offset by a random sub-sample phase — the "unknown time offset"
        the paper corrects with the d_TWR alignment (Sect. IV, step 1).

        ``cir_transform`` is an optional injection seam: a callable
        ``(samples, noise_std) -> samples`` applied to the noisy
        accumulator buffer *before* leading-edge detection.
        :mod:`repro.faults` uses it for impulsive interference and
        saturation; ``None`` (default) leaves the capture untouched.
        The transform must not consume this method's ``rng``.
        """
        if len(arrivals) == 0:
            raise ValueError("capture_cir needs at least one arrival")

        earliest = min(arrival.first_path_arrival_s for arrival in arrivals)
        sub_sample_offset = float(rng.uniform(0.0, self.sampling_period_s))
        time_origin = (
            earliest
            - FIRST_PATH_NOMINAL_INDEX * self.sampling_period_s
            - sub_sample_offset
        )

        buffer = np.zeros(self.cir_length, dtype=complex)
        for arrival in arrivals:
            contribution = arrival.channel.render(
                arrival.pulse,
                self.cir_length,
                sampling_period_s=self.sampling_period_s,
                time_origin_s=time_origin - arrival.tx_time_s,
            )
            buffer += contribution

        noise = self.noise_std * (
            rng.standard_normal(self.cir_length)
            + 1j * rng.standard_normal(self.cir_length)
        ) / math.sqrt(2.0)
        buffer += noise

        if cir_transform is not None:
            buffer = cir_transform(buffer, self.noise_std)

        fp_index = leading_edge_index(np.abs(buffer), self.noise_std)
        jitter = float(rng.normal(0.0, self.timestamp_jitter_s))
        rx_global = time_origin + fp_index * self.sampling_period_s + jitter
        rx_local = quantize_timestamp_s(self.clock.local_from_global(rx_global))

        return CirCapture(
            samples=buffer,
            sampling_period_s=self.sampling_period_s,
            rx_timestamp_s=rx_local,
            first_path_index=fp_index,
            noise_std=self.noise_std,
            time_origin_s=time_origin,
            arrivals=tuple(arrivals),
        )
