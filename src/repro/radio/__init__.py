"""Behavioural model of the Decawave DW1000 UWB transceiver.

The paper's entire evaluation runs on DW1000 radios; this subpackage
models every DW1000 behaviour the paper depends on:

* :mod:`repro.radio.frame` — IEEE 802.15.4 UWB frame structure and
  airtime computation (used to derive the 178.5 µs minimum response
  delay of Sect. III).
* :mod:`repro.radio.timebase` — the 63.8976 GHz timestamp clock, crystal
  drift, 15.65 ps RX timestamp resolution, and the ~8 ns delayed-TX
  quantisation that limits response concurrency (Sect. III).
* :mod:`repro.radio.registers` — a small register file with the
  ``TC_PGDELAY`` pulse-shaping register (Sect. V).
* :mod:`repro.radio.energy` — charge/energy accounting from the paper's
  current figures (155 mA RX / 90 mA TX).
* :mod:`repro.radio.dw1000` — the transceiver itself: CIR accumulator
  estimation from superposed arrivals, first-path detection, RX/TX
  timestamping.
"""

from repro.radio.frame import (
    DataRate,
    Prf,
    RadioConfig,
    FrameTimings,
    frame_duration,
    preamble_symbol_duration_s,
    min_response_delay_s,
)
from repro.radio.timebase import Clock, quantize_delayed_tx_s, quantize_timestamp_s
from repro.radio.registers import RegisterFile
from repro.radio.energy import EnergyMeter, RadioState
from repro.radio.dw1000 import DW1000Radio, SignalArrival, CirCapture
from repro.radio.preamble import (
    m_sequence,
    preamble_code,
    periodic_autocorrelation,
    estimate_cir_from_preamble,
)
from repro.radio.calibration import (
    CalibrationReport,
    calibrate_pair,
    measure_bias_m,
)
from repro.radio.capture_io import (
    save_capture,
    save_dataset,
    load_capture,
    load_dataset,
)

__all__ = [
    "DataRate",
    "Prf",
    "RadioConfig",
    "FrameTimings",
    "frame_duration",
    "preamble_symbol_duration_s",
    "min_response_delay_s",
    "Clock",
    "quantize_delayed_tx_s",
    "quantize_timestamp_s",
    "RegisterFile",
    "EnergyMeter",
    "RadioState",
    "DW1000Radio",
    "SignalArrival",
    "CirCapture",
    "m_sequence",
    "preamble_code",
    "periodic_autocorrelation",
    "estimate_cir_from_preamble",
    "CalibrationReport",
    "calibrate_pair",
    "measure_bias_m",
    "save_capture",
    "save_dataset",
    "load_capture",
    "load_dataset",
]
