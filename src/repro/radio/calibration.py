"""Antenna-delay calibration.

Every DW1000 unit has a physical delay through its antenna and RF front
end (~515 ns across TX+RX) that the chip must be told about via the
``TX_ANTD``/``LDE_RXANTD`` registers; an uncompensated error of 1 ns
biases every SS-TWR distance by ~15 cm.  Real deployments calibrate by
ranging over a known distance — this module implements that procedure on
the simulated radios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.constants import SPEED_OF_LIGHT

if TYPE_CHECKING:  # imported lazily to avoid a radio <-> protocol cycle
    from repro.protocol.twr import SsTwr


@dataclass(frozen=True)
class CalibrationReport:
    """Outcome of one calibration run."""

    bias_before_m: float
    bias_after_m: float
    applied_correction_s: float
    trials: int

    @property
    def improvement_factor(self) -> float:
        if abs(self.bias_after_m) < 1e-12:
            return float("inf")
        return abs(self.bias_before_m) / abs(self.bias_after_m)


def measure_bias_m(
    twr: "SsTwr", true_distance_m: float, trials: int, rng: np.random.Generator
) -> float:
    """Mean SS-TWR error over ``trials`` exchanges at a known distance."""
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    estimates = twr.run_many(trials, rng)
    return float(np.mean(estimates) - true_distance_m)


def calibrate_pair(
    twr: "SsTwr",
    true_distance_m: float,
    trials: int,
    rng: np.random.Generator,
) -> CalibrationReport:
    """Calibrate both radios of a link against a surveyed distance.

    The distance bias of an SS-TWR link equals
    ``c * (E_init + E_resp) / 2`` where ``E_x`` is each radio's
    uncompensated RX antenna-delay error.  Lacking a way to split the
    sum, the standard procedure attributes half to each side — exact
    when the units are identical, and always sufficient to zero the
    *pairwise* bias.

    The correction is applied by re-programming both radios'
    antenna-delay registers; a verification pass measures the residual.
    """
    if true_distance_m <= 0:
        raise ValueError(
            "calibration needs a positive surveyed distance, got "
            f"{true_distance_m}"
        )
    bias_before = measure_bias_m(twr, true_distance_m, trials, rng)

    # bias = c * (E_i + E_r) / 2  ->  total error = 2 * bias / c.
    total_error_s = 2.0 * bias_before / SPEED_OF_LIGHT
    per_radio_s = total_error_s / 2.0
    for radio in (twr.initiator.radio, twr.responder.radio):
        radio.program_antenna_delay(
            radio.programmed_antenna_delay_s + per_radio_s
        )

    bias_after = measure_bias_m(twr, true_distance_m, trials, rng)
    return CalibrationReport(
        bias_before_m=bias_before,
        bias_after_m=bias_after,
        applied_correction_s=per_radio_s,
        trials=trials,
    )
