"""Radio energy accounting.

The paper's efficiency argument (Sect. I/III) is about current draw: the
DW1000 takes up to 155 mA receiving and 90 mA transmitting, so cutting the
message count from N·(N−1) to N is first and foremost an energy win.
:class:`EnergyMeter` turns protocol traces into charge/energy numbers so
the scalability benchmark can quantify that win.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict

from repro.constants import (
    IDLE_CURRENT_A,
    RX_CURRENT_A,
    SLEEP_CURRENT_A,
    SUPPLY_VOLTAGE_V,
    TX_CURRENT_A,
)


class RadioState(Enum):
    """Power states of the radio front end."""

    TX = "tx"
    RX = "rx"
    IDLE = "idle"
    SLEEP = "sleep"


#: Current draw per state [A] (paper Sect. I for TX/RX).
STATE_CURRENT_A: Dict[RadioState, float] = {
    RadioState.TX: TX_CURRENT_A,
    RadioState.RX: RX_CURRENT_A,
    RadioState.IDLE: IDLE_CURRENT_A,
    RadioState.SLEEP: SLEEP_CURRENT_A,
}


@dataclass
class EnergyMeter:
    """Accumulates time spent in each radio state and converts to energy.

    Protocol code calls :meth:`account` with a state and a duration; the
    meter integrates charge (A·s) and reports energy at the configured
    supply voltage.
    """

    supply_voltage_v: float = SUPPLY_VOLTAGE_V
    _durations_s: Dict[RadioState, float] = field(
        default_factory=lambda: {state: 0.0 for state in RadioState}
    )

    def account(self, state: RadioState, duration_s: float) -> None:
        """Add time spent in a state."""
        if duration_s < 0:
            raise ValueError(f"duration must be non-negative, got {duration_s}")
        self._durations_s[state] += duration_s

    def duration_s(self, state: RadioState) -> float:
        """Total time spent in a state."""
        return self._durations_s[state]

    @property
    def total_time_s(self) -> float:
        return sum(self._durations_s.values())

    @property
    def charge_c(self) -> float:
        """Total charge drawn [coulombs = ampere-seconds]."""
        return sum(
            STATE_CURRENT_A[state] * duration
            for state, duration in self._durations_s.items()
        )

    @property
    def energy_j(self) -> float:
        """Total energy drawn [joules]."""
        return self.charge_c * self.supply_voltage_v

    def merged(self, other: "EnergyMeter") -> "EnergyMeter":
        """Combined meter (e.g. summing all nodes of a network)."""
        merged = EnergyMeter(supply_voltage_v=self.supply_voltage_v)
        for state in RadioState:
            merged._durations_s[state] = (
                self._durations_s[state] + other._durations_s[state]
            )
        return merged

    def reset(self) -> None:
        for state in RadioState:
            self._durations_s[state] = 0.0
