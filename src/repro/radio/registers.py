"""A miniature DW1000 register file.

Only the registers the paper's techniques touch are modelled, with their
real widths and reset values.  The point is to keep the public API honest
about *where* each knob lives on the actual hardware: pulse shaping is a
write to ``TC_PGDELAY``, delayed transmission programs ``DX_TIME``, and so
on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.constants import TC_PGDELAY_DEFAULT


@dataclass(frozen=True)
class RegisterSpec:
    """Width and reset value of one register."""

    name: str
    bits: int
    reset: int
    description: str

    @property
    def max_value(self) -> int:
        return (1 << self.bits) - 1


#: The registers the concurrent-ranging stack uses.
REGISTER_SPECS: Dict[str, RegisterSpec] = {
    spec.name: spec
    for spec in (
        RegisterSpec(
            "TC_PGDELAY",
            bits=8,
            reset=TC_PGDELAY_DEFAULT,
            description="Pulse generator delay: controls transmitted pulse "
            "width / output bandwidth (paper Sect. V).",
        ),
        RegisterSpec(
            "DX_TIME",
            bits=40,
            reset=0,
            description="Delayed transmit/receive time, in 15.65 ps ticks; "
            "the low 9 bits are ignored by the transmitter.",
        ),
        RegisterSpec(
            "TX_ANTD",
            bits=16,
            reset=0x4015,
            description="Transmit antenna delay used to adjust the TX "
            "timestamp, in 15.65 ps ticks.",
        ),
        RegisterSpec(
            "LDE_RXANTD",
            bits=16,
            reset=0x4015,
            description="Receive antenna delay used by the leading-edge "
            "detection algorithm, in 15.65 ps ticks.",
        ),
    )
}


class RegisterFile:
    """Holds the current values of the modelled DW1000 registers."""

    def __init__(self) -> None:
        self._values: Dict[str, int] = {
            name: spec.reset for name, spec in REGISTER_SPECS.items()
        }

    def read(self, name: str) -> int:
        """Read a register value; raises ``KeyError`` for unknown names."""
        if name not in self._values:
            raise KeyError(f"unknown register {name!r}")
        return self._values[name]

    def write(self, name: str, value: int) -> None:
        """Write a register, enforcing its bit width."""
        spec = REGISTER_SPECS.get(name)
        if spec is None:
            raise KeyError(f"unknown register {name!r}")
        value = int(value)
        if not 0 <= value <= spec.max_value:
            raise ValueError(
                f"{name} is a {spec.bits}-bit register; value {value:#x} "
                "out of range"
            )
        self._values[name] = value

    def reset(self) -> None:
        """Restore all registers to their reset values."""
        for name, spec in REGISTER_SPECS.items():
            self._values[name] = spec.reset

    def describe(self, name: str) -> str:
        spec = REGISTER_SPECS.get(name)
        if spec is None:
            raise KeyError(f"unknown register {name!r}")
        return spec.description
