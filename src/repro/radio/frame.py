"""IEEE 802.15.4 UWB frame structure and airtime computation.

Reproduces the timing arithmetic of the paper's Sect. III: the frame is
``preamble | SFD | PHR | payload`` (Fig. 3); the RMARKER timestamp sits at
the start of the PHR; and the minimum response delay is the INIT frame's
PHR + payload plus the RESP frame's preamble + SFD — 178.5 µs at
DR = 6.8 Mbps, PRF = 64 MHz, PSR = 128.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum

from repro.constants import (
    DELTA_RESP_S,
    PREAMBLE_SYMBOL_PRF16_S,
    PREAMBLE_SYMBOL_PRF64_S,
    RX_TX_TURNAROUND_S,
    TC_PGDELAY_DEFAULT,
)


class DataRate(Enum):
    """DW1000 payload data rates."""

    DR_110KBPS = "110kbps"
    DR_850KBPS = "850kbps"
    DR_6800KBPS = "6.8Mbps"


class Prf(Enum):
    """Pulse repetition frequency."""

    PRF_16MHZ = 16
    PRF_64MHZ = 64


#: Payload symbol duration per data rate [s] (802.15.4 UWB: 8205.13 ns,
#: 1025.64 ns, and 128.21 ns respectively).
_DATA_SYMBOL_S = {
    DataRate.DR_110KBPS: 8205.13e-9,
    DataRate.DR_850KBPS: 1025.64e-9,
    DataRate.DR_6800KBPS: 128.21e-9,
}

#: PHR symbol duration per data rate [s].  For the 850 kbps and 6.8 Mbps
#: modes the PHR is always sent at the 850 kbps symbol duration; at
#: 110 kbps it uses the 110 kbps duration.
_PHR_SYMBOL_S = {
    DataRate.DR_110KBPS: 8205.13e-9,
    DataRate.DR_850KBPS: 1025.64e-9,
    DataRate.DR_6800KBPS: 1025.64e-9,
}

#: Number of PHR symbols (19 bits, one symbol each: 13 header + 6 SECDED).
PHR_SYMBOLS = 19

#: SFD length in preamble symbols per data rate (DW1000 recommended
#: values: long SFD at 110 kbps, short otherwise).
_SFD_SYMBOLS = {
    DataRate.DR_110KBPS: 64,
    DataRate.DR_850KBPS: 16,
    DataRate.DR_6800KBPS: 8,
}

#: Reed-Solomon RS(63, 55) adds 48 parity bits per 330-bit payload block.
_RS_BLOCK_BITS = 330
_RS_PARITY_BITS = 48

#: Valid preamble symbol repetitions (PSR) on the DW1000.
VALID_PSR = (64, 128, 256, 512, 1024, 1536, 2048, 4096)


def preamble_symbol_duration_s(prf: Prf) -> float:
    """Duration of one preamble symbol for a PRF setting."""
    if prf is Prf.PRF_64MHZ:
        return PREAMBLE_SYMBOL_PRF64_S
    return PREAMBLE_SYMBOL_PRF16_S


@dataclass(frozen=True)
class RadioConfig:
    """PHY configuration of a DW1000 (the paper's setting by default).

    Defaults follow the paper's Sect. III: channel 7, DR = 6.8 Mbps,
    PRF = 64 MHz, PSR = 128.
    """

    channel: int = 7
    data_rate: DataRate = DataRate.DR_6800KBPS
    prf: Prf = Prf.PRF_64MHZ
    psr: int = 128
    tc_pgdelay: int = TC_PGDELAY_DEFAULT

    def __post_init__(self) -> None:
        if self.channel not in (1, 2, 3, 4, 5, 7):
            raise ValueError(f"DW1000 supports channels 1-5 and 7, got {self.channel}")
        if self.psr not in VALID_PSR:
            raise ValueError(f"PSR must be one of {VALID_PSR}, got {self.psr}")

    def with_pulse_register(self, tc_pgdelay: int) -> "RadioConfig":
        """This config with a different pulse-shaping register value."""
        return RadioConfig(
            channel=self.channel,
            data_rate=self.data_rate,
            prf=self.prf,
            psr=self.psr,
            tc_pgdelay=tc_pgdelay,
        )


@dataclass(frozen=True)
class FrameTimings:
    """Durations of each frame section [s]."""

    preamble_s: float
    sfd_s: float
    phr_s: float
    payload_s: float

    @property
    def shr_s(self) -> float:
        """Synchronisation header: preamble + SFD."""
        return self.preamble_s + self.sfd_s

    @property
    def total_s(self) -> float:
        return self.preamble_s + self.sfd_s + self.phr_s + self.payload_s

    @property
    def after_rmarker_s(self) -> float:
        """Duration from the RMARKER (start of PHR) to the end of frame.

        Per 802.15.4, the frame timestamp marks the first PHR symbol, so
        this is the part of the INIT frame that delays the earliest
        possible response.
        """
        return self.phr_s + self.payload_s


def _payload_symbols(payload_bytes: int) -> int:
    """Number of coded payload symbols including Reed-Solomon parity."""
    if payload_bytes < 0:
        raise ValueError(f"payload size must be non-negative, got {payload_bytes}")
    data_bits = 8 * payload_bytes
    blocks = math.ceil(data_bits / _RS_BLOCK_BITS) if data_bits > 0 else 0
    return data_bits + blocks * _RS_PARITY_BITS


def frame_duration(config: RadioConfig, payload_bytes: int) -> FrameTimings:
    """Airtime of a frame under a PHY configuration.

    ``payload_bytes`` is the MAC payload including the 2-byte FCS.
    """
    symbol = preamble_symbol_duration_s(config.prf)
    return FrameTimings(
        preamble_s=config.psr * symbol,
        sfd_s=_SFD_SYMBOLS[config.data_rate] * symbol,
        phr_s=PHR_SYMBOLS * _PHR_SYMBOL_S[config.data_rate],
        payload_s=_payload_symbols(payload_bytes) * _DATA_SYMBOL_S[config.data_rate],
    )


def min_response_delay_s(
    init_config: RadioConfig,
    init_payload_bytes: int,
    resp_config: RadioConfig | None = None,
    turnaround_s: float = RX_TX_TURNAROUND_S,
) -> float:
    """Minimum RMARKER-to-RMARKER response delay (paper Sect. III).

    The delay must cover (i) the PHR + payload of the INIT frame (the
    RMARKER sits *before* them), (ii) the RX-to-TX turnaround of the
    radio, and (iii) the preamble + SFD of the RESP frame (its RMARKER
    sits *after* them).  With the paper's configuration and a 14-byte
    INIT payload, (i) + (iii) evaluates to ~178.5 µs.
    """
    if resp_config is None:
        resp_config = init_config
    init = frame_duration(init_config, init_payload_bytes)
    resp = frame_duration(resp_config, 0)
    return init.after_rmarker_s + resp.shr_s + turnaround_s


def default_response_delay_s() -> float:
    """The paper's chosen response delay including the safety gap."""
    return DELTA_RESP_S
