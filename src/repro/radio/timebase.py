"""DW1000 time base: timestamp clock, crystal drift, and quantisation.

Models the three timing behaviours the paper leans on:

* RX timestamps have 15.65 ps resolution (one tick of the 63.8976 GHz
  clock; paper Sect. II),
* delayed transmissions ignore the low-order 9 bits of the programmed
  time, i.e. have ~8 ns granularity (paper Sect. III) — the reason
  "concurrent" responses still jitter against each other,
* each node's crystal runs at a slightly wrong rate (ppm-scale drift),
  which SS-TWR implementations compensate with carrier-frequency-offset
  measurements, leaving a small residual.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import (
    DW1000_DELAYED_TX_IGNORED_BITS,
    DW1000_TIMESTAMP_CLOCK_HZ,
)

#: DW1000 timestamps are 40-bit counters of 15.65 ps ticks; the counter
#: wraps roughly every 17.2 s.
TIMESTAMP_BITS = 40
TIMESTAMP_WRAP_TICKS = 1 << TIMESTAMP_BITS

#: Typical TCXO frequency tolerance for DW1000 designs [ppm].
DEFAULT_DRIFT_PPM_RANGE = 2.0


def seconds_to_ticks(t_s: float) -> int:
    """Convert seconds to (unwrapped) DW1000 clock ticks."""
    return int(round(t_s * DW1000_TIMESTAMP_CLOCK_HZ))


def ticks_to_seconds(ticks: int) -> float:
    """Convert DW1000 clock ticks to seconds."""
    return ticks / DW1000_TIMESTAMP_CLOCK_HZ


def quantize_timestamp_s(t_s: float) -> float:
    """Quantise a time to the 15.65 ps RX-timestamp grid."""
    return ticks_to_seconds(seconds_to_ticks(t_s))


def quantize_delayed_tx_s(t_s: float) -> float:
    """Quantise a delayed-TX time to the hardware grid the DW1000 honours.

    The chip ignores the low-order 9 bits of the programmed 40-bit value
    (DW1000 User Manual p. 26), so the effective granularity is
    ``2**9 / 63.8976 GHz ~= 8.013 ns``, and the actual transmit instant is
    *floored* to that grid.  This is the hardware artefact the paper
    blames for the ±8 ns offset between "concurrent" responses.
    """
    # Floor to whole ticks first (the register takes an integer tick
    # count), then clear the ignored low bits; both steps only ever move
    # the transmit instant *earlier*.  The 1e-3-tick epsilon (~1.6e-14 s, far below any physical
    # effect) absorbs float64 ulp error at tick counts of ~1e12 and keeps the
    # floor idempotent for values that are already exact grid points but
    # sit a float-rounding hair below their tick.
    ticks = int(t_s * DW1000_TIMESTAMP_CLOCK_HZ + 1e-3)
    mask = ~((1 << DW1000_DELAYED_TX_IGNORED_BITS) - 1)
    return ticks_to_seconds(ticks & mask)


@dataclass
class Clock:
    """A free-running node clock with constant frequency error.

    ``drift_ppm`` is the crystal offset in parts per million; ``offset_s``
    is the (unknown to the node) phase difference from global time.  The
    conversions are exact inverses of each other, so protocol code can
    freely move between the node-local and the global timeline.
    """

    drift_ppm: float = 0.0
    offset_s: float = 0.0

    @classmethod
    def random(
        cls,
        rng: np.random.Generator,
        drift_ppm_range: float = DEFAULT_DRIFT_PPM_RANGE,
        offset_range_s: float = 1.0,
    ) -> "Clock":
        """A clock with uniform random drift and phase."""
        return cls(
            drift_ppm=float(rng.uniform(-drift_ppm_range, drift_ppm_range)),
            offset_s=float(rng.uniform(0.0, offset_range_s)),
        )

    @property
    def rate(self) -> float:
        """Local-seconds per global-second (1 + drift)."""
        return 1.0 + self.drift_ppm * 1e-6

    def local_from_global(self, t_global_s: float) -> float:
        """Node-local time corresponding to a global instant."""
        return (t_global_s + self.offset_s) * self.rate

    def global_from_local(self, t_local_s: float) -> float:
        """Global instant corresponding to a node-local time."""
        return t_local_s / self.rate - self.offset_s

    def local_duration(self, duration_global_s: float) -> float:
        """How long a global duration appears on this clock."""
        return duration_global_s * self.rate

    def global_duration(self, duration_local_s: float) -> float:
        """How long a local duration really is in global time."""
        return duration_local_s / self.rate

    def relative_drift_ppm(self, other: "Clock") -> float:
        """Frequency offset of this clock relative to another [ppm].

        This is what a DW1000 estimates from the carrier frequency offset
        (carrier integrator) and uses for SS-TWR drift compensation.
        """
        return (self.rate / other.rate - 1.0) * 1e6
