"""Persisting and loading CIR captures.

Real concurrent-ranging research workflows (including the paper's own
SMA-cable template campaign) revolve around *recorded* CIR traces that
are post-processed offline.  This module serialises
:class:`~repro.radio.dw1000.CirCapture` objects — singly or as datasets
— to NumPy ``.npz`` archives so detection pipelines can run on stored
traces, and so users can swap in captures logged from real DW1000s
(convert the accumulator's complex int16 taps to the float array and
fill in the metadata).

Ground-truth arrival metadata is intentionally *not* serialised: a
stored capture contains exactly what a real logged capture would
(samples, sampling period, RX timestamp, noise estimate), which keeps
offline experiments honest.
"""

from __future__ import annotations

import os
from typing import List, Sequence

import numpy as np

from repro.radio.dw1000 import CirCapture

#: Format marker stored in every archive.
FORMAT_KEY = "repro_cir_format"
FORMAT_VERSION = 1


def save_capture(path: str | os.PathLike, capture: CirCapture) -> None:
    """Write one capture to an ``.npz`` archive."""
    save_dataset(path, [capture])


def save_dataset(
    path: str | os.PathLike, captures: Sequence[CirCapture]
) -> None:
    """Write a dataset of captures to one ``.npz`` archive.

    All captures must share the CIR length and sampling period (as
    captures from one radio configuration do).
    """
    if len(captures) == 0:
        raise ValueError("cannot save an empty dataset")
    lengths = {len(c) for c in captures}
    periods = {c.sampling_period_s for c in captures}
    if len(lengths) != 1 or len(periods) != 1:
        raise ValueError(
            "all captures in a dataset must share CIR length and "
            "sampling period"
        )
    np.savez_compressed(
        path,
        **{
            FORMAT_KEY: np.array(FORMAT_VERSION),
            "samples": np.stack([c.samples for c in captures]),
            "sampling_period_s": np.array(
                [c.sampling_period_s for c in captures]
            ),
            "rx_timestamp_s": np.array([c.rx_timestamp_s for c in captures]),
            "first_path_index": np.array(
                [c.first_path_index for c in captures]
            ),
            "noise_std": np.array([c.noise_std for c in captures]),
            "time_origin_s": np.array([c.time_origin_s for c in captures]),
        },
    )


def load_dataset(path: str | os.PathLike) -> List[CirCapture]:
    """Load all captures from an ``.npz`` archive."""
    with np.load(path) as archive:
        if FORMAT_KEY not in archive:
            raise ValueError(
                f"{path!s} is not a repro CIR archive: the format marker "
                f"{FORMAT_KEY!r} is missing (found keys: "
                f"{sorted(archive.files)})"
            )
        version = int(archive[FORMAT_KEY])
        if version != FORMAT_VERSION:
            raise ValueError(
                f"{path!s}: unsupported CIR archive format version "
                f"{version}; this build reads version {FORMAT_VERSION} "
                f"(key {FORMAT_KEY!r})"
            )
        samples = archive["samples"]
        return [
            CirCapture(
                samples=samples[i],
                sampling_period_s=float(archive["sampling_period_s"][i]),
                rx_timestamp_s=float(archive["rx_timestamp_s"][i]),
                first_path_index=float(archive["first_path_index"][i]),
                noise_std=float(archive["noise_std"][i]),
                time_origin_s=float(archive["time_origin_s"][i]),
                arrivals=(),
            )
            for i in range(samples.shape[0])
        ]


def load_capture(path: str | os.PathLike) -> CirCapture:
    """Load a single capture (the first entry of the archive)."""
    return load_dataset(path)[0]
