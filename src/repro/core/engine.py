"""The shared detection/classification engine API.

Every CIR-consuming engine in :mod:`repro.core` exposes the same
four-method surface with *uniform* signatures, so experiments, the
trial runtime, and the benchmarks can swap engines freely::

    detect(cir, sampling_period_s, noise_std=0.0)
        -> List[DetectedResponse]
    detect_batch(cirs, sampling_period_s, noise_std=0.0)
        -> List[List[DetectedResponse]]       # one list per stacked CIR

and, for engines that also decode responder identity (paper Sect. V)::

    classify(cir, sampling_period_s, noise_std=0.0)
        -> List[ClassifiedResponse]
    classify_batch(cirs, sampling_period_s, noise_std=0.0)
        -> List[List[ClassifiedResponse]]

Conventions shared by every implementation:

* ``cir`` is a 1-D complex array at the radio's native tap rate;
  ``cirs`` is a ``(B, N)`` stack (or sequence of B equal-length 1-D
  arrays) — ``B == 0`` returns ``[]``.
* ``noise_std`` is a scalar for the single-CIR forms; the batched forms
  also accept a length-B sequence of per-trial values.
* Batched results are *differentially equal* to the serial forms:
  entry ``b`` of ``detect_batch(cirs, ...)`` equals
  ``detect(cirs[b], ...)`` (enforced at ``rtol <= 1e-9`` by
  ``tests/test_properties_detection.py``).
* Responses come back sorted by delay ascending.
* The batched forms run their transforms on the process-selected array
  backend (:mod:`repro.core.backend` — NumPy/SciPy by default,
  optionally CuPy or torch via ``set_backend``/``REPRO_BACKEND``).
  Backend choice never changes results beyond the ``rtol <= 1e-9``
  contract; the plan cache keys plans per backend so engines pick the
  seam up transparently.

The protocols are :func:`typing.runtime_checkable`, so
``isinstance(engine, Engine)`` verifies structural conformance (method
presence — signatures are checked by the API tests).  Conforming
implementations:

===============================================  =========  ============
engine                                            Engine     Classifier
===============================================  =========  ============
:class:`~repro.core.detection.SearchAndSubtract`  yes        no
:class:`~repro.core.threshold.ThresholdDetector`  yes        no
:class:`~repro.core.pulse_id.PulseShapeClassifier` yes       yes
===============================================  =========  ============
"""

from __future__ import annotations

from typing import List, Protocol, runtime_checkable

import numpy as np

from repro.core.detection import DetectedResponse
from repro.core.pulse_id import ClassifiedResponse

__all__ = ["Engine", "ClassifierEngine"]


@runtime_checkable
class Engine(Protocol):
    """Structural type of every detection engine in :mod:`repro.core`."""

    def detect(
        self,
        cir: np.ndarray,
        sampling_period_s: float,
        noise_std: float = 0.0,
    ) -> List[DetectedResponse]:
        """Detect responses in one CIR, sorted by delay ascending."""
        ...

    def detect_batch(
        self,
        cirs,
        sampling_period_s: float,
        noise_std=0.0,
    ) -> List[List[DetectedResponse]]:
        """Detect responses in B stacked CIRs; entry ``b`` equals
        ``detect(cirs[b], ...)``."""
        ...


@runtime_checkable
class ClassifierEngine(Engine, Protocol):
    """An :class:`Engine` that additionally decodes responder identity."""

    def classify(
        self,
        cir: np.ndarray,
        sampling_period_s: float,
        noise_std: float = 0.0,
    ) -> List[ClassifiedResponse]:
        """Detect and identify responses in one CIR."""
        ...

    def classify_batch(
        self,
        cirs,
        sampling_period_s: float,
        noise_std=0.0,
    ) -> List[List[ClassifiedResponse]]:
        """Detect and identify responses in B stacked CIRs; entry ``b``
        equals ``classify(cirs[b], ...)``."""
        ...
