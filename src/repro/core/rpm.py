"""Response position modulation (paper Sect. VII).

Each responder ``i`` adds an individual delay ``delta_i`` on top of the
common response delay, spreading responses (and their multipath tails)
across the CIR.  The CIR fits ``delta_max ~= 1017 ns`` of extra delay
(1016 taps x 1.0016 ns), i.e. ~305 m of equivalent offset, which bounds
how many non-overlapping slots exist for a given communication range.

A note on slot sizing.  The paper computes the slot count as
``N_RPM = delta_max * c / r_max`` (~4 slots at r_max = 75 m, >15 at
20 m).  Strictly, a response's position inside the CIR moves by *twice*
the responder's excess one-way delay (Eq. 4), so a slot that must contain
responders anywhere in ``[0, r_max]`` needs ``2 * r_max / c`` of width
plus a guard for the multipath tail.  We implement both: ``mode="paper"``
reproduces the paper's arithmetic (and its scalability numbers), and
``mode="safe"`` applies the round-trip factor and a delay-spread guard.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constants import (
    RPM_MAX_OFFSET_M,
    RPM_MAX_OFFSET_S,
    SPEED_OF_LIGHT,
)

#: Default guard time for the multipath tail of each slot [s] (matches the
#: diffuse decay observed indoors; see repro.channel.cir.DIFFUSE_DECAY_NS).
DEFAULT_GUARD_S = 60e-9

VALID_MODES = ("paper", "safe")


def paper_slot_count(r_max_m: float) -> int:
    """Slot count per the paper's formula ``delta_max * c / r_max``.

    ~4 at r_max = 75 m and >15 at r_max = 20 m, matching Sect. VIII.
    """
    if r_max_m <= 0:
        raise ValueError(f"communication range must be positive, got {r_max_m}")
    return max(1, int(RPM_MAX_OFFSET_M / r_max_m))


def safe_slot_count(r_max_m: float, guard_s: float = DEFAULT_GUARD_S) -> int:
    """Physically conservative slot count.

    Each slot must hold the round-trip excess delay of the farthest
    responder (``2 r_max / c``) plus a guard for the multipath tail.
    """
    if r_max_m <= 0:
        raise ValueError(f"communication range must be positive, got {r_max_m}")
    if guard_s < 0:
        raise ValueError(f"guard must be non-negative, got {guard_s}")
    slot = 2.0 * r_max_m / SPEED_OF_LIGHT + guard_s
    return max(1, int(RPM_MAX_OFFSET_S / slot))


@dataclass(frozen=True)
class SlotPlan:
    """A concrete division of the CIR into RPM slots.

    ``slot_duration_s`` is the extra TX delay step between adjacent
    slots; responder in slot ``k`` adds ``k * slot_duration_s``.
    """

    n_slots: int
    slot_duration_s: float

    def __post_init__(self) -> None:
        if self.n_slots < 1:
            raise ValueError(f"need at least one slot, got {self.n_slots}")
        if self.slot_duration_s <= 0:
            raise ValueError(
                f"slot duration must be positive, got {self.slot_duration_s}"
            )
        if self.n_slots * self.slot_duration_s > RPM_MAX_OFFSET_S * (1 + 1e-9):
            raise ValueError(
                f"{self.n_slots} slots of {self.slot_duration_s * 1e9:.1f} ns "
                f"exceed the CIR extent ({RPM_MAX_OFFSET_S * 1e9:.0f} ns)"
            )

    @classmethod
    def for_range(
        cls,
        r_max_m: float,
        mode: str = "paper",
        guard_s: float = DEFAULT_GUARD_S,
        n_slots: int | None = None,
    ) -> "SlotPlan":
        """Build a plan for a maximum communication range.

        ``mode="paper"`` uses the paper's slot count and divides the CIR
        evenly; ``mode="safe"`` uses round-trip-sized slots.  An explicit
        ``n_slots`` overrides the derived count (but keeps the division
        of the full CIR extent).
        """
        if mode not in VALID_MODES:
            raise ValueError(f"mode must be one of {VALID_MODES}, got {mode!r}")
        if n_slots is None:
            n_slots = (
                paper_slot_count(r_max_m)
                if mode == "paper"
                else safe_slot_count(r_max_m, guard_s)
            )
        return cls(
            n_slots=n_slots,
            slot_duration_s=RPM_MAX_OFFSET_S / n_slots,
        )

    def delay_for_slot(self, slot: int) -> float:
        """Extra response delay ``delta_i`` for a slot index."""
        if not 0 <= slot < self.n_slots:
            raise ValueError(f"slot {slot} out of range 0..{self.n_slots - 1}")
        return slot * self.slot_duration_s

    def slot_of_offset(self, offset_s: float) -> int:
        """Which slot a CIR offset (relative to the slot-0 anchor
        response) falls into; clamps to the valid slot range.

        Uses *rounding* rather than flooring: the anchor sits at its
        slot's reference position, and same-slot responders deviate to
        both sides (closer responders arrive earlier, farther ones
        later).  Decoding is unambiguous as long as the round-trip excess
        delay stays within half a slot.
        """
        slot = int(round(offset_s / self.slot_duration_s))
        return max(0, min(slot, self.n_slots - 1))

    def offset_within_slot(self, offset_s: float) -> float:
        """Residual offset after removing the slot reference — the part
        that encodes distance (Eq. 4 applies to it directly).  May be
        negative for responders closer than the slot-0 anchor."""
        return offset_s - self.slot_of_offset(offset_s) * self.slot_duration_s
