"""CIR-to-distance alignment (paper Sect. IV, step 1).

The DW1000 CIR has an unknown time offset, so absolute tap indices mean
nothing.  The paper aligns the CIR with the SS-TWR distance of the first
responder: the first detected peak is *defined* to sit at ``d_TWR``, and
every other tap maps to a distance through Eq. 4.  The paper notes this
is not strictly required (only delay differences matter) but that it
enables visualisation and plausibility checks — both of which the
example scripts use.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.constants import SPEED_OF_LIGHT
from repro.core.detection import DetectedResponse
from repro.core.ranging import sort_responses


def distance_axis(
    n_samples: int,
    sampling_period_s: float,
    first_peak_index: float,
    d_twr_m: float,
) -> np.ndarray:
    """Distance value of every CIR tap after d_TWR alignment.

    Tap ``first_peak_index`` maps to ``d_twr_m``; other taps map through
    the half-rate rule of Eq. 4 (1 ns of CIR delay = ~15 cm of distance,
    not 30 cm, because the delay accrues over both legs).
    """
    if n_samples < 1:
        raise ValueError(f"n_samples must be >= 1, got {n_samples}")
    indices = np.arange(n_samples, dtype=float)
    return (
        d_twr_m
        + (indices - first_peak_index) * sampling_period_s * SPEED_OF_LIGHT / 2.0
    )


def align_responses_to_distance(
    responses: Sequence[DetectedResponse],
    d_twr_m: float,
) -> List[float]:
    """Distance of each response after anchoring the earliest to d_TWR.

    Equivalent to :func:`repro.core.ranging.concurrent_distances`; kept
    here as the alignment-centric view used by plotting/diagnostic code.
    """
    ordered = sort_responses(responses)
    if not ordered:
        return []
    tau_1 = ordered[0].delay_s
    return [
        d_twr_m + (response.delay_s - tau_1) * SPEED_OF_LIGHT / 2.0
        for response in ordered
    ]
