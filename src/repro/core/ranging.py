"""Distance computation: SS-TWR (Eq. 2) and concurrent ranging (Eq. 4).

Equation 2 gives the anchor distance from the one decodable response's
timestamps; equation 4 then places every other responder *relative* to
that anchor using the peak-delay differences read out of the CIR, halved
because the extra delay accrues on both the INIT and the RESP leg.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

from repro.constants import SPEED_OF_LIGHT
from repro.core.detection import DetectedResponse


def twr_distance(
    t_tx_init_s: float,
    t_rx_init_s: float,
    t_rx_resp_s: float,
    t_tx_resp_s: float,
) -> float:
    """Single-sided two-way ranging distance (paper Eq. 2).

    Parameters follow Fig. 3: ``t_tx_init``/``t_rx_init`` are the
    initiator's transmit/receive timestamps (its clock), and
    ``t_rx_resp``/``t_tx_resp`` the responder's receive/transmit
    timestamps (its clock).

        d = ((t_rx,init - t_tx,init) - (t_tx,resp - t_rx,resp)) / 2 * c
    """
    t_round = t_rx_init_s - t_tx_init_s
    t_reply = t_tx_resp_s - t_rx_resp_s
    if t_round < 0:
        raise ValueError(f"negative round-trip time {t_round}")
    if t_reply < 0:
        raise ValueError(f"negative reply time {t_reply}")
    return (t_round - t_reply) / 2.0 * SPEED_OF_LIGHT


def twr_distance_compensated(
    t_tx_init_s: float,
    t_rx_init_s: float,
    t_rx_resp_s: float,
    t_tx_resp_s: float,
    relative_drift_ppm: float,
) -> float:
    """SS-TWR with clock-drift compensation.

    ``relative_drift_ppm`` is the responder clock rate relative to the
    initiator's, as estimated from the carrier frequency offset on real
    DW1000s.  The responder-measured reply time is rescaled into
    initiator clock units before applying Eq. 2; without this correction
    a 290 µs reply delay and a few ppm of crystal offset would bias the
    distance by tens of centimetres.
    """
    t_reply = (t_tx_resp_s - t_rx_resp_s) / (1.0 + relative_drift_ppm * 1e-6)
    t_round = t_rx_init_s - t_tx_init_s
    return (t_round - t_reply) / 2.0 * SPEED_OF_LIGHT


def ds_twr_distance(
    t_round1_s: float,
    t_reply1_s: float,
    t_round2_s: float,
    t_reply2_s: float,
) -> float:
    """Asymmetric double-sided two-way ranging distance.

    DS-TWR adds a third message (FINAL) so both sides measure one round
    trip and one reply delay; the asymmetric combination

        tof = (t_round1 * t_round2 - t_reply1 * t_reply2)
              / (t_round1 + t_round2 + t_reply1 + t_reply2)

    cancels clock drift to first order *without* a carrier-frequency-
    offset estimate.  Included as the standard drift-immune baseline the
    UWB community uses when a third message is affordable — concurrent
    ranging's whole point is avoiding exactly that extra traffic.
    """
    for name, value in (
        ("t_round1", t_round1_s),
        ("t_reply1", t_reply1_s),
        ("t_round2", t_round2_s),
        ("t_reply2", t_reply2_s),
    ):
        if value < 0:
            raise ValueError(f"{name} must be non-negative, got {value}")
    denominator = t_round1_s + t_round2_s + t_reply1_s + t_reply2_s
    if denominator <= 0:
        raise ValueError("degenerate DS-TWR exchange (all durations zero)")
    tof = (t_round1_s * t_round2_s - t_reply1_s * t_reply2_s) / denominator
    return tof * SPEED_OF_LIGHT


def sort_responses(
    responses: Iterable[DetectedResponse],
) -> List[DetectedResponse]:
    """Order responses by delay ascending, independent of amplitude —
    the paper's step 7, which makes ranging amplitude-agnostic."""
    return sorted(responses, key=lambda response: response.delay_s)


def concurrent_distances(
    d_twr_m: float,
    responses: Sequence[DetectedResponse],
) -> List[float]:
    """Distances of all responders from one CIR (paper Eq. 4).

    The first (earliest) response belongs to the anchor responder at
    distance ``d_twr_m``; every later response ``i`` lies at

        d_i = d_TWR + c * (tau_i - tau_1) / 2

    because its extra CIR delay accumulates over both the INIT and the
    RESP propagation.

    Returns one distance per response, in response order after sorting
    by delay (the first entry equals ``d_twr_m``).
    """
    if d_twr_m < 0:
        raise ValueError(f"anchor distance must be non-negative, got {d_twr_m}")
    ordered = sort_responses(responses)
    if len(ordered) == 0:
        return []
    tau_1 = ordered[0].delay_s
    return [
        d_twr_m + SPEED_OF_LIGHT * (response.delay_s - tau_1) / 2.0
        for response in ordered
    ]


@dataclass(frozen=True)
class RangingResult:
    """Outcome of one concurrent ranging round.

    ``distances_m[i]`` corresponds to ``responses[i]`` (delay-ascending);
    ``responder_ids[i]`` is ``None`` when identification was not enabled
    (plain Sect. IV operation) or could not be decoded.
    """

    d_twr_m: float
    responses: tuple
    distances_m: tuple
    responder_ids: tuple

    def __len__(self) -> int:
        return len(self.responses)

    def distance_of(self, responder_id: int) -> float:
        """Distance estimate for a responder ID; raises ``KeyError`` when
        that ID was not decoded in this round."""
        for rid, distance in zip(self.responder_ids, self.distances_m):
            if rid == responder_id:
                return distance
        raise KeyError(f"responder {responder_id} not found in this result")
