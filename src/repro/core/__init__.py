"""The paper's primary contribution: practical concurrent ranging.

* :mod:`repro.core.matched_filter` — the matched filter of Sect. IV
  (Eq. 3), aligned so output indices coincide with pulse-peak positions.
* :mod:`repro.core.detection` — the *search-and-subtract* response
  detector (Sect. IV, steps 1-7).
* :mod:`repro.core.plan` — spectrum-cached FFT detection plans: batched
  filter-bank spectra and cross-correlation tables that make the
  detector's fast path possible.
* :mod:`repro.core.batch` — cross-trial batched detection: B CIRs of
  one shape run through a single 2-D FFT engine pass
  (:func:`~repro.core.batch.detect_batch`), per-trial results identical
  to the serial fast path.
* :mod:`repro.core.batch_extract` — the batch-vectorised
  search-and-subtract extraction loop shared by both batched engines.
* :mod:`repro.core.backend` — the pluggable array backend the batched
  plans run their transforms on (NumPy/SciPy default; optional
  CuPy/torch selected via ``set_backend`` or ``REPRO_BACKEND``).
* :mod:`repro.core.threshold` — the threshold-based baseline detector
  (Falsi et al., used as comparison in Sect. VI).
* :mod:`repro.core.pulse_id` — responder identification from pulse shape
  (Sect. V): a template-bank matched-filter classifier.
* :mod:`repro.core.batch_id` — cross-trial batched identification:
  B CIRs classified through one 2-D FFT engine pass
  (:func:`~repro.core.batch_id.classify_batch`), plus the
  :class:`~repro.core.batch_id.ClassifyBatchTrial` runtime bridge.
* :mod:`repro.core.engine` — the shared :class:`~repro.core.engine.Engine`
  / :class:`~repro.core.engine.ClassifierEngine` protocols every
  detector and classifier conforms to (uniform
  ``(cirs, sampling_period_s, noise_std)`` signatures).
* :mod:`repro.core.ranging` — SS-TWR (Eq. 2) and CIR-relative (Eq. 4)
  distance computation.
* :mod:`repro.core.alignment` — CIR-to-distance alignment using d_TWR
  (Sect. IV, step 1).
* :mod:`repro.core.rpm` — response position modulation (Sect. VII).
* :mod:`repro.core.scheme` — RPM x pulse shaping combined scheme
  (Sect. VIII).
"""

from repro.core.matched_filter import matched_filter
from repro.core.backend import (
    ArrayBackend,
    BackendUnavailable,
    available_backends,
    get_backend,
    set_backend,
)
from repro.core.detection import (
    DetectedResponse,
    SearchAndSubtract,
    SearchAndSubtractConfig,
)
from repro.core.plan import DetectorPlan, detector_plan, plan_cache_key
from repro.core.batch import (
    BatchDetectorPlan,
    batch_detector_plan,
    detect_batch,
)
from repro.core.threshold import (
    ThresholdDetector,
    ThresholdConfig,
    detect_threshold_batch,
)
from repro.core.pulse_id import (
    PulseShapeClassifier,
    ClassifiedResponse,
    classify_responses,
)
from repro.core.batch_id import (
    BatchClassifierPlan,
    ClassifyBatchTrial,
    batch_classifier_plan,
    classify_batch,
)
from repro.core.engine import ClassifierEngine, Engine
from repro.core.ranging import (
    twr_distance,
    twr_distance_compensated,
    ds_twr_distance,
    concurrent_distances,
    sort_responses,
)
from repro.core.alignment import distance_axis, align_responses_to_distance
from repro.core.rpm import SlotPlan, paper_slot_count, safe_slot_count
from repro.core.scheme import CombinedScheme, ResponderAssignment

__all__ = [
    "matched_filter",
    "ArrayBackend",
    "BackendUnavailable",
    "available_backends",
    "get_backend",
    "set_backend",
    "BatchClassifierPlan",
    "BatchDetectorPlan",
    "ClassifierEngine",
    "ClassifyBatchTrial",
    "DetectorPlan",
    "Engine",
    "batch_classifier_plan",
    "batch_detector_plan",
    "classify_batch",
    "classify_responses",
    "detect_batch",
    "detect_threshold_batch",
    "detector_plan",
    "plan_cache_key",
    "DetectedResponse",
    "SearchAndSubtract",
    "SearchAndSubtractConfig",
    "ThresholdDetector",
    "ThresholdConfig",
    "PulseShapeClassifier",
    "ClassifiedResponse",
    "twr_distance",
    "twr_distance_compensated",
    "ds_twr_distance",
    "concurrent_distances",
    "sort_responses",
    "distance_axis",
    "align_responses_to_distance",
    "SlotPlan",
    "paper_slot_count",
    "safe_slot_count",
    "CombinedScheme",
    "ResponderAssignment",
]
