"""Cross-trial batched pulse-shape identification (paper Sect. V at scale).

Responder identification is the same workload as detection — matched
filtering against the whole template bank — plus a per-response winner
pick, so it batches across trials exactly like
:mod:`repro.core.batch`: B independent CIRs of the same shape stack
into one ``(B, N)`` array and pay **one** batched upsampling transform,
**one** 2-D forward FFT, and **one** ``(B, n_templates, fft_length)``
batched inverse FFT, instead of B of each.  Extraction then runs
vectorised across the batch
(:func:`repro.core.batch_extract.extract_responses_batch` — argmax
peak-pick over the magnitude tensor, active-row mask for ragged
early-stop, grouped batched subtraction updates), and the winner pick
per response is the shared serial
:func:`repro.core.pulse_id.classify_responses`.

Because the decision arithmetic is shared with the serial
:class:`~repro.core.pulse_id.PulseShapeClassifier` code, batched and
serial classification can only diverge in the transforms — and those
are bounded at ``rtol <= 1e-9`` by the differential sweep in
``tests/test_properties_detection.py`` (observed: bit-identical).

Plans are memoised in the same ``detector_plans`` runtime cache as the
detection plans, under a key that discriminates both the batch shape
(``("batch", B)``) *and* the plan family (``kind="classifier"``), so a
classifier plan can never shadow a detector plan of the same shape (see
:func:`repro.core.plan.plan_cache_key`).

:class:`ClassifyBatchTrial` packages the whole pipeline for the trial
runtime: experiments supply picklable ``prepare``/``finish`` callables
and get a :class:`~repro.runtime.executor.BatchTrial` whose batched
form routes every group of trials through :func:`classify_batch` —
``run_trials(..., batch_size=B)`` (or ``batch_size="auto"`` via the
attached :class:`~repro.runtime.executor.WorkloadShape`) then exercises
the batched classifier end-to-end with unchanged per-trial seeding.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.backend import resolve_backend
from repro.core.batch import BatchDetectorPlan, batch_detector_plan
from repro.core.batch_extract import extract_responses_batch
from repro.core.detection import (
    SearchAndSubtractConfig,
    _per_trial_noise,
)
from repro.core.plan import plan_cache_key
from repro.core.pulse_id import (
    ClassifiedResponse,
    PulseShapeClassifier,
    classify_responses,
)
from repro.runtime.cache import get_cache
from repro.runtime.executor import BatchTrial, WorkloadShape
from repro.runtime.metrics import global_metrics
from repro.signal.templates import TemplateBank

__all__ = [
    "BatchClassifierPlan",
    "ClassifyBatchTrial",
    "batch_classifier_plan",
    "classify_batch",
]

#: ``prepare(rng, index) -> (cir, noise_std, context)``: everything a
#: trial does *before* classification (topology, channels, capture).
PrepareFn = Callable[
    [np.random.Generator, int], Tuple[np.ndarray, float, Any]
]

#: ``finish(classified, context, rng, index) -> value``: everything a
#: trial does *after* classification (decode, scoring).
FinishFn = Callable[
    [List[ClassifiedResponse], Any, np.random.Generator, int], Any
]


class BatchClassifierPlan:
    """A batched classification plan: detector plan + template bank.

    Thin by design — the heavy artifacts (template spectra,
    cross-correlation tables, the ``(B, n_templates, fft_length)``
    scratch buffer) all live on the wrapped
    :class:`~repro.core.batch.BatchDetectorPlan`, which is itself shared
    with the batched *detection* path through the cache.  What the
    classifier plan adds is the binding to a
    :class:`~repro.signal.templates.TemplateBank` (template index ←→
    responder identity, the paper's Sect. V mapping) so one memoised
    object captures the full identification shape.
    """

    def __init__(self, detector: BatchDetectorPlan, bank: TemplateBank) -> None:
        if len(bank) != detector.n_templates:
            raise ValueError(
                f"bank has {len(bank)} templates but the detector plan "
                f"was built for {detector.n_templates}"
            )
        self.detector = detector
        self.bank = bank

    @property
    def batch_size(self) -> int:
        return self.detector.batch_size

    @property
    def n_templates(self) -> int:
        return self.detector.n_templates

    @property
    def backend(self):
        return self.detector.backend

    def filter_bank(self, working: np.ndarray) -> np.ndarray:
        """One batched filter-bank pass (see
        :meth:`BatchDetectorPlan.filter_bank`)."""
        return self.detector.filter_bank(working)

    def filter_pass(self, cirs: np.ndarray) -> np.ndarray:
        """Upsample + filter native-rate CIRs (see
        :meth:`BatchDetectorPlan.filter_pass`)."""
        return self.detector.filter_pass(cirs)

    def magnitudes(self, outputs: np.ndarray) -> np.ndarray:
        """Magnitude tensor in reusable scratch (see
        :meth:`BatchDetectorPlan.magnitudes`)."""
        return self.detector.magnitudes(outputs)


def batch_classifier_plan(
    bank: TemplateBank,
    cir_length: int,
    upsample_factor: int,
    sampling_period_s: float,
    batch_size: int,
    backend: Optional[str] = None,
) -> BatchClassifierPlan:
    """A memoised :class:`BatchClassifierPlan` for one batched shape.

    Three cache levels share work: the base
    :class:`~repro.core.plan.DetectorPlan` (spectra, correlation tables)
    is shared with *every* path of this shape; the
    :class:`~repro.core.batch.BatchDetectorPlan` (batch scratch) is
    shared with batched detection at the same B *and* backend; only the
    classifier binding itself is stored per ``kind="classifier"`` key.
    All lookups count toward the ``detector_plans`` hit rate in the
    metrics report.
    """
    templates = list(bank)
    resolved = resolve_backend(backend)
    key = plan_cache_key(
        templates,
        cir_length,
        upsample_factor,
        sampling_period_s,
        batch_size=batch_size,
        kind="classifier",
        backend=resolved.name,
    )

    def _build() -> BatchClassifierPlan:
        with global_metrics().timer("classifier.batch_plan_build").time():
            detector = batch_detector_plan(
                templates,
                cir_length,
                upsample_factor,
                sampling_period_s,
                batch_size,
                backend=resolved.name,
            )
            return BatchClassifierPlan(detector, bank)

    return get_cache("detector_plans").get_or_create(key, _build)


def classify_batch(
    cirs,
    bank: TemplateBank,
    sampling_period_s: float,
    config: SearchAndSubtractConfig | None = None,
    noise_std=0.0,
    *,
    plan: BatchClassifierPlan | None = None,
) -> List[List[ClassifiedResponse]]:
    """Jointly detect and identify responses in B stacked CIRs.

    Parameters
    ----------
    cirs:
        ``(B, N)`` array (or sequence of B equal-length 1-D arrays) of
        complex CIR samples at the radio's native tap rate.  ``B == 0``
        returns ``[]``.
    bank:
        The pulse-shape :class:`~repro.signal.templates.TemplateBank`
        whose index *is* the (partial) responder identity.
    sampling_period_s:
        Tap spacing of every CIR in the batch.
    config:
        Detector knobs; defaults to ``SearchAndSubtractConfig()``.
        ``use_fast`` is ignored here — this *is* the fast engine; use
        :meth:`PulseShapeClassifier.classify_batch` for the serial
        escape hatch.
    noise_std:
        Scalar shared by all trials, or a length-B sequence of per-trial
        noise standard deviations (for the early-stop gate).
    plan:
        Optional explicit :class:`BatchClassifierPlan`, bypassing the
        plan cache — required when several threads classify
        concurrently, because cached plans share mutable scratch (see
        :func:`repro.core.batch.detect_batch`).  The plan's shape and
        bank must match the call.

    Returns
    -------
    list of list of :class:`ClassifiedResponse`
        Entry ``b`` equals ``PulseShapeClassifier(bank, config)
        .classify(cirs[b], sampling_period_s, noise_std=noise_std[b])``
        — same responses in the same delay-ascending order, same shape
        indices, same confidences.
    """
    if len(bank) < 1:
        raise ValueError("classify_batch needs a non-empty template bank")
    config = config or SearchAndSubtractConfig()

    cirs = np.asarray(cirs, dtype=complex)
    if cirs.ndim == 1:
        raise ValueError(
            "classify_batch expects a (B, N) batch of CIRs; wrap a single "
            "CIR as cirs[np.newaxis, :] or call classify() instead"
        )
    if cirs.ndim != 2:
        raise ValueError(f"expected a (B, N) batch, got shape {cirs.shape}")
    batch_size, cir_length = cirs.shape
    if batch_size == 0:
        return []
    stds = _per_trial_noise(noise_std, batch_size)

    metrics = global_metrics()
    metrics.counter("classifier.batch_classifies").inc()
    metrics.counter("classifier.batch_trials").inc(batch_size)
    if plan is None:
        plan = batch_classifier_plan(
            bank,
            cir_length,
            config.upsample_factor,
            sampling_period_s,
            batch_size,
        )
    else:
        from repro.core.batch import _check_plan_shape

        _check_plan_shape(
            plan.detector, batch_size, cir_length, config.upsample_factor
        )
        if plan.bank is not bank and len(plan.bank) != len(bank):
            raise ValueError(
                f"explicit plan bank has {len(plan.bank)} templates, "
                f"call supplied {len(bank)}"
            )
    with metrics.timer("classifier.batch_filter_pass").time():
        outputs = plan.filter_pass(cirs)
        magnitudes = plan.magnitudes(outputs)
    host_outputs = plan.backend.to_numpy(outputs)
    host_magnitudes = plan.backend.to_numpy(magnitudes)
    with metrics.timer("classifier.batch_extract").time():
        extracted = extract_responses_batch(
            plan.detector.base,
            host_outputs,
            host_magnitudes,
            config,
            sampling_period_s,
            stds,
            metric_prefix="classifier",
        )
    results: List[List[ClassifiedResponse]] = []
    for responses in extracted:
        responses.sort(key=lambda response: response.delay_s)
        results.append(classify_responses(responses))
    return results


# -- runtime bridge ----------------------------------------------------------


def _classify_trial_single(
    rng: np.random.Generator,
    index: int,
    *,
    prepare: PrepareFn,
    finish: FinishFn,
    bank: TemplateBank,
    sampling_period_s: float,
    config: Optional[SearchAndSubtractConfig],
) -> Any:
    """One trial through the serial classifier (the reference path)."""
    cir, noise_std, context = prepare(rng, index)
    classifier = PulseShapeClassifier(bank, config)
    classified = classifier.classify(
        np.asarray(cir), sampling_period_s, noise_std=float(noise_std)
    )
    return finish(classified, context, rng, index)


def _classify_trial_batch(
    rngs: Sequence[np.random.Generator],
    indices: Sequence[int],
    *,
    prepare: PrepareFn,
    finish: FinishFn,
    bank: TemplateBank,
    sampling_period_s: float,
    config: Optional[SearchAndSubtractConfig],
) -> List[Any]:
    """A group of trials through one batched classifier pass.

    Per-trial random streams are untouched relative to the serial path:
    each trial's ``prepare`` consumes its own generator, classification
    consumes none, and ``finish`` resumes the same generator — so entry
    ``k`` equals ``_classify_trial_single(rngs[k], indices[k], ...)``
    exactly (the executor's :class:`BatchTrial` contract).
    """
    prepared = [
        prepare(rng, index) for rng, index in zip(rngs, indices)
    ]
    cirs = np.stack([np.asarray(cir) for cir, _, _ in prepared])
    stds = [float(noise_std) for _, noise_std, _ in prepared]
    batches = classify_batch(
        cirs, bank, sampling_period_s, config=config, noise_std=stds
    )
    return [
        finish(classified, context, rng, index)
        for classified, (_, _, context), rng, index in zip(
            batches, prepared, rngs, indices
        )
    ]


class ClassifyBatchTrial(BatchTrial):
    """A :class:`~repro.runtime.executor.BatchTrial` over the classifier.

    Experiments describe one trial as two picklable halves around the
    classification step::

        prepare(rng, index) -> (cir, noise_std, context)
        finish(classified, context, rng, index) -> value

    and the trial runs either serially (``prepare`` → serial
    :meth:`PulseShapeClassifier.classify` → ``finish``) or in groups
    through :func:`classify_batch` (all ``prepare`` calls, one batched
    engine pass over the stacked CIRs with a per-trial ``noise_std``
    vector, all ``finish`` calls).  Each trial keeps its own seed-child
    generator through both halves, so batched == serial byte-for-byte
    given the engine equivalence.

    ``cir_length`` (when known up front, e.g. the radio's fixed
    ``CIR_LENGTH_PRF64``) attaches a
    :class:`~repro.runtime.executor.WorkloadShape` so
    ``batch_size="auto"`` can size batches from the workload; without
    it, ``"auto"`` degrades to unbatched execution.

    Keep ``prepare``/``finish`` picklable (module-level functions or
    ``functools.partial`` over them) so the parallel executor can ship
    the trial to worker processes.
    """

    def __init__(
        self,
        prepare: PrepareFn,
        finish: FinishFn,
        bank: TemplateBank,
        sampling_period_s: float,
        config: Optional[SearchAndSubtractConfig] = None,
        cir_length: Optional[int] = None,
    ) -> None:
        from functools import partial

        bound = dict(
            prepare=prepare,
            finish=finish,
            bank=bank,
            sampling_period_s=float(sampling_period_s),
            config=config,
        )
        workload = None
        if cir_length is not None:
            factor = (config or SearchAndSubtractConfig()).upsample_factor
            workload = WorkloadShape(
                cir_length=int(cir_length),
                bank_size=len(bank),
                upsample_factor=factor,
            )
        BatchTrial.__init__(
            self,
            single=partial(_classify_trial_single, **bound),
            batch=partial(_classify_trial_batch, **bound),
            workload=workload,
        )
        # Frozen parent: expose the binding read-only for introspection.
        object.__setattr__(self, "bank", bank)
        object.__setattr__(self, "config", config)
        object.__setattr__(
            self, "sampling_period_s", float(sampling_period_s)
        )
