"""Combined RPM x pulse shaping scheme (paper Sect. VIII).

Response position modulation alone supports only ``N_RPM`` responders;
pulse shaping alone cannot separate overlapping responses.  Combining
them yields ``N_max = N_RPM * N_PS`` responders: the responder ID selects
a slot (``ID % N_RPM``) and a pulse shape within the slot.

The paper prints the shape rule as ``n_PS = floor(ID / N_PS)``; for the
mapping to be a bijection onto (slot, shape) pairs the divisor must be
``N_RPM`` (and the result reduced modulo ``N_PS``), which is what we
implement:

    slot  = ID %  N_RPM
    shape = (ID // N_RPM) % N_PS

Decoding inverts it: ``ID = shape * N_RPM + slot``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.constants import SPEED_OF_LIGHT
from repro.core.pulse_id import ClassifiedResponse
from repro.core.ranging import RangingResult
from repro.core.rpm import SlotPlan
from repro.signal.templates import TemplateBank


@dataclass(frozen=True)
class ResponderAssignment:
    """Slot, shape, and TX parameters derived from a responder ID."""

    responder_id: int
    slot: int
    shape_index: int
    extra_delay_s: float
    register: int

    @property
    def shape_name(self) -> str:
        return f"s{self.shape_index + 1}"


class CombinedScheme:
    """ID <-> (slot, pulse shape) mapping plus CIR decoding."""

    def __init__(self, slot_plan: SlotPlan, bank: TemplateBank) -> None:
        self.slot_plan = slot_plan
        self.bank = bank

    @property
    def n_slots(self) -> int:
        return self.slot_plan.n_slots

    @property
    def n_shapes(self) -> int:
        return len(self.bank)

    @property
    def capacity(self) -> int:
        """Maximum concurrent responders: ``N_RPM * N_PS``."""
        return self.n_slots * self.n_shapes

    # -- encoding ---------------------------------------------------------

    def assignment(self, responder_id: int) -> ResponderAssignment:
        """TX parameters for a responder ID (paper Sect. VIII mapping)."""
        if not 0 <= responder_id < self.capacity:
            raise ValueError(
                f"responder ID {responder_id} exceeds scheme capacity "
                f"{self.capacity} ({self.n_slots} slots x {self.n_shapes} shapes)"
            )
        slot = responder_id % self.n_slots
        shape = (responder_id // self.n_slots) % self.n_shapes
        return ResponderAssignment(
            responder_id=responder_id,
            slot=slot,
            shape_index=shape,
            extra_delay_s=self.slot_plan.delay_for_slot(slot),
            register=self.bank.registers[shape],
        )

    def decode_id(self, slot: int, shape_index: int) -> int:
        """Responder ID from an observed (slot, shape) pair."""
        if not 0 <= slot < self.n_slots:
            raise ValueError(f"slot {slot} out of range 0..{self.n_slots - 1}")
        if not 0 <= shape_index < self.n_shapes:
            raise ValueError(
                f"shape {shape_index} out of range 0..{self.n_shapes - 1}"
            )
        return shape_index * self.n_slots + slot

    # -- decoding ---------------------------------------------------------

    def decode_responses(
        self,
        classified: Sequence[ClassifiedResponse],
        d_twr_m: float,
        anchor_slot: int = 0,
    ) -> RangingResult:
        """Turn classified CIR responses into (ID, distance) pairs.

        The earliest response anchors the decode at distance ``d_twr_m``
        (it belongs to the responder whose payload the initiator
        decoded).  Every other response's offset to the anchor splits
        into a slot index and a residual; the residual converts to
        distance through Eq. 4 and the (slot, decoded shape) pair
        converts to the responder ID.

        ``anchor_slot`` is the slot the anchor responder occupies.  The
        paper's single-round experiments always have slot 0 occupied, so
        the default keeps the historical behaviour; a swarm round polls
        an arbitrary window of responders whose lowest occupied slot may
        be any ``k`` — the initiator learns ``k`` from the decoded
        payload of the first-arriving response and shifts every decoded
        slot by it.
        """
        if not 0 <= anchor_slot < self.n_slots:
            raise ValueError(
                f"anchor slot {anchor_slot} out of range "
                f"0..{self.n_slots - 1}"
            )
        ordered = sorted(classified, key=lambda c: c.delay_s)
        if not ordered:
            return RangingResult(
                d_twr_m=d_twr_m, responses=(), distances_m=(), responder_ids=()
            )
        anchor_delay = ordered[0].delay_s
        distances: List[float] = []
        ids: List[int] = []
        for response in ordered:
            offset = response.delay_s - anchor_delay
            # Relative slot (offsets are to the anchor, the lowest
            # occupied slot), clamped so ``anchor_slot + relative``
            # stays a valid absolute slot.  With ``anchor_slot == 0``
            # this is exactly ``SlotPlan.slot_of_offset`` /
            # ``offset_within_slot``.
            relative = int(round(offset / self.slot_plan.slot_duration_s))
            relative = max(0, min(relative, self.n_slots - 1 - anchor_slot))
            residual = offset - relative * self.slot_plan.slot_duration_s
            distances.append(d_twr_m + residual * SPEED_OF_LIGHT / 2.0)
            ids.append(
                self.decode_id(anchor_slot + relative, response.shape_index)
            )
        return RangingResult(
            d_twr_m=d_twr_m,
            responses=tuple(ordered),
            distances_m=tuple(distances),
            responder_ids=tuple(ids),
        )
