"""Matched filtering of the CIR against a pulse template (paper Eq. 3).

The paper defines the matched-filter impulse response as the
time-reversed pulse template and computes the output as the discrete
convolution with the CIR.  We additionally align the output axis so that
a pulse whose *peak* sits at CIR index ``p`` produces its matched-filter
maximum at output index ``p`` — and, because templates are unit-energy,
the output value there equals the pulse's complex amplitude.  That makes
step 4 of the detection algorithm ("amplitude of y at sample l_k") an
unbiased amplitude estimate for an isolated response.
"""

from __future__ import annotations

import numpy as np
from scipy import signal as sp_signal

from repro.signal.pulses import Pulse


def matched_filter(
    cir: np.ndarray,
    template: Pulse | np.ndarray,
    peak_index: int | None = None,
) -> np.ndarray:
    """Correlate a CIR against a pulse template.

    Parameters
    ----------
    cir:
        Complex (or real) CIR samples, length ``N``.
    template:
        A :class:`~repro.signal.pulses.Pulse` or a raw sample array.  Must
        be sampled at the same rate as ``cir``.
    peak_index:
        Index of the template's peak sample; defaults to the argmax of
        the template magnitude (or :attr:`Pulse.peak_index`).

    Returns
    -------
    numpy.ndarray
        Complex output of length ``N``: ``y[n]`` is the correlation of
        the CIR with the template anchored so its peak overlays CIR
        sample ``n``.
    """
    cir = np.asarray(cir)
    if cir.ndim != 1:
        raise ValueError(f"expected a 1-D CIR, got shape {cir.shape}")
    if isinstance(template, Pulse):
        samples = template.samples
        if peak_index is None:
            peak_index = template.peak_index
    else:
        samples = np.asarray(template)
        if samples.ndim != 1:
            raise ValueError("template must be a 1-D array")
        if peak_index is None:
            peak_index = int(np.argmax(np.abs(samples)))
    if len(samples) > 0 and not 0 <= peak_index < len(samples):
        raise ValueError(
            f"peak_index {peak_index} outside template of length {len(samples)}"
        )

    # full correlation: c[k] = sum_j cir[k - (Nt-1) + j] * conj(s[j])
    full = sp_signal.correlate(cir, np.conj(samples), mode="full", method="auto")
    # A pulse peaking at CIR index p maximises c at k = p + (Nt-1) - peak,
    # so shifting by (Nt-1) - peak re-anchors the axis onto CIR indices.
    start = len(samples) - 1 - peak_index
    return full[start : start + len(cir)]


def filter_bank_outputs(
    cir: np.ndarray,
    templates,
    use_fast: bool = True,
) -> np.ndarray:
    """Matched-filter the CIR against every template of a bank.

    Returns an array of shape ``(len(bank), len(cir))`` — the ``y_i(t)``
    curves of the paper's Fig. 6b.

    With ``use_fast=True`` (default) and a bank of
    :class:`~repro.signal.pulses.Pulse` templates, the whole bank is
    evaluated through a spectrum-cached
    :class:`~repro.core.plan.DetectorPlan`: one forward FFT of the CIR
    times the cached 2-D conjugate-spectrum matrix and one batched
    inverse FFT, instead of one ``scipy.signal.correlate`` per template.
    Raw-array templates (or ``use_fast=False``) fall back to the
    per-template loop.
    """
    templates = list(templates)
    if (
        use_fast
        and templates
        and all(isinstance(t, Pulse) for t in templates)
    ):
        # Deferred import: repro.core.plan imports the runtime cache,
        # keeping this module import-light for array-only callers.
        from repro.core.plan import detector_plan

        cir = np.asarray(cir)
        was_real = np.isrealobj(cir) and all(
            np.isrealobj(t.samples) for t in templates
        )
        plan = detector_plan(
            templates, len(cir), 1, templates[0].sampling_period_s
        )
        outputs = plan.filter_bank(cir.astype(complex))
        # A real CIR against real templates has a real correlation; strip
        # the roundoff-level imaginary part the complex FFT introduces so
        # the batched path matches the naive loop's dtype.
        return outputs.real if was_real else outputs
    outputs = [matched_filter(cir, template) for template in templates]
    return np.stack(outputs, axis=0)
