"""Pluggable array backend for the batched CIR engines.

The batched detection/identification plans (:mod:`repro.core.batch`,
:mod:`repro.core.batch_id`) express their hot path as a small set of
array primitives — batched ``fft``/``ifft``, elementwise ``multiply``
into scratch, ``abs`` into scratch, ``argmax``/``take_along_axis``
reductions. This module names that contract
(:class:`ArrayBackend`) and provides implementations:

* :class:`NumpyBackend` — NumPy + ``scipy.fft`` (``workers=-1``), the
  default and the reference for all differential tests.
* :class:`CupyBackend` / :class:`TorchBackend` — optional GPU backends
  that run the *same* plans unchanged on device arrays. They are
  lazily imported and raise :class:`BackendUnavailable` when the
  library is not installed, so the seam is importable (and testable)
  on CPU-only hosts.

Backend selection precedence: :func:`set_backend` (programmatic) >
``REPRO_BACKEND`` environment variable > ``"numpy"``. The resolved
backend name participates in the plan cache key
(:func:`repro.core.plan.plan_cache_key`), so plans built for different
backends never collide.

Extraction (:mod:`repro.core.batch_extract`) currently runs host-side:
non-NumPy backends accelerate the transform stage and hand
:func:`ArrayBackend.to_numpy` views to the extractor. That keeps the
byte-identity contract with the serial path in one place; moving
extraction on-device is a follow-up behind the same seam.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Optional

import numpy as np
from scipy import fft as sp_fft

__all__ = [
    "ArrayBackend",
    "BackendUnavailable",
    "CupyBackend",
    "DEFAULT_HOST_MEMORY_BUDGET",
    "NumpyBackend",
    "TorchBackend",
    "available_backends",
    "get_backend",
    "resolve_backend",
    "set_backend",
]

#: Scratch-memory budget assumed for host (NumPy) execution. The
#: runtime's auto batch sizing divides this by the per-trial scratch
#: footprint; device backends report their own budget from free device
#: memory instead.
DEFAULT_HOST_MEMORY_BUDGET = 256 * 1024 * 1024


class BackendUnavailable(RuntimeError):
    """Raised when a known backend's library is not importable."""


class ArrayBackend:
    """Namespace protocol the batched plans program against.

    Subclasses provide the primitives below over their own array type.
    ``to_numpy`` must return a NumPy view/copy of a backend array;
    NumPy arrays pass through unchanged so the host path stays
    zero-copy.
    """

    name: str = "abstract"

    def asarray(self, values: Any, dtype: Any = None) -> Any:
        raise NotImplementedError

    def empty(self, shape: Any, dtype: Any) -> Any:
        raise NotImplementedError

    def zeros(self, shape: Any, dtype: Any) -> Any:
        raise NotImplementedError

    def fft(self, values: Any, n: Optional[int] = None, axis: int = -1) -> Any:
        raise NotImplementedError

    def ifft(
        self,
        values: Any,
        n: Optional[int] = None,
        axis: int = -1,
        overwrite: bool = False,
    ) -> Any:
        raise NotImplementedError

    def multiply(self, left: Any, right: Any, out: Any) -> Any:
        raise NotImplementedError

    def abs(self, values: Any, out: Any = None) -> Any:
        raise NotImplementedError

    def argmax(self, values: Any, axis: Optional[int] = None) -> Any:
        raise NotImplementedError

    def take_along_axis(self, values: Any, indices: Any, axis: int) -> Any:
        raise NotImplementedError

    def to_numpy(self, values: Any) -> np.ndarray:
        raise NotImplementedError

    def memory_budget_bytes(self) -> int:
        """Scratch budget for auto batch sizing on this backend."""
        raise NotImplementedError

    def synchronize(self) -> None:
        """Barrier for async device execution (no-op on host)."""


class NumpyBackend(ArrayBackend):
    """NumPy + ``scipy.fft`` reference backend (the default)."""

    name = "numpy"

    def asarray(self, values: Any, dtype: Any = None) -> np.ndarray:
        return np.asarray(values, dtype=dtype)

    def empty(self, shape: Any, dtype: Any) -> np.ndarray:
        return np.empty(shape, dtype=dtype)

    def zeros(self, shape: Any, dtype: Any) -> np.ndarray:
        return np.zeros(shape, dtype=dtype)

    def fft(self, values: Any, n: Optional[int] = None, axis: int = -1) -> np.ndarray:
        return sp_fft.fft(values, n, axis=axis, workers=-1)

    def ifft(
        self,
        values: Any,
        n: Optional[int] = None,
        axis: int = -1,
        overwrite: bool = False,
    ) -> np.ndarray:
        return sp_fft.ifft(values, n, axis=axis, workers=-1, overwrite_x=overwrite)

    def multiply(self, left: Any, right: Any, out: Any) -> np.ndarray:
        return np.multiply(left, right, out=out)

    def abs(self, values: Any, out: Any = None) -> np.ndarray:
        return np.abs(values, out=out)

    def argmax(self, values: Any, axis: Optional[int] = None) -> Any:
        return np.argmax(values, axis=axis)

    def take_along_axis(self, values: Any, indices: Any, axis: int) -> np.ndarray:
        return np.take_along_axis(values, indices, axis)

    def to_numpy(self, values: Any) -> np.ndarray:
        return values

    def memory_budget_bytes(self) -> int:
        return DEFAULT_HOST_MEMORY_BUDGET


class CupyBackend(ArrayBackend):
    """CuPy GPU backend. Requires ``cupy``; device arrays throughout."""

    name = "cupy"

    def __init__(self) -> None:
        try:
            import cupy  # noqa: PLC0415 — lazy optional dependency
        except ImportError as exc:
            raise BackendUnavailable(
                "backend 'cupy' requires the cupy package (not installed); "
                "falling back is the caller's choice — the default 'numpy' "
                "backend runs the same plans on host"
            ) from exc
        self._cp = cupy

    def asarray(self, values: Any, dtype: Any = None) -> Any:
        return self._cp.asarray(values, dtype=dtype)

    def empty(self, shape: Any, dtype: Any) -> Any:
        return self._cp.empty(shape, dtype=dtype)

    def zeros(self, shape: Any, dtype: Any) -> Any:
        return self._cp.zeros(shape, dtype=dtype)

    def fft(self, values: Any, n: Optional[int] = None, axis: int = -1) -> Any:
        return self._cp.fft.fft(values, n=n, axis=axis)

    def ifft(
        self,
        values: Any,
        n: Optional[int] = None,
        axis: int = -1,
        overwrite: bool = False,
    ) -> Any:
        del overwrite  # cupy manages its own scratch
        return self._cp.fft.ifft(values, n=n, axis=axis)

    def multiply(self, left: Any, right: Any, out: Any) -> Any:
        return self._cp.multiply(left, right, out=out)

    def abs(self, values: Any, out: Any = None) -> Any:
        if out is None:
            return self._cp.abs(values)
        return self._cp.abs(values, out=out)

    def argmax(self, values: Any, axis: Optional[int] = None) -> Any:
        return self._cp.argmax(values, axis=axis)

    def take_along_axis(self, values: Any, indices: Any, axis: int) -> Any:
        return self._cp.take_along_axis(values, indices, axis)

    def to_numpy(self, values: Any) -> np.ndarray:
        return self._cp.asnumpy(values)

    def memory_budget_bytes(self) -> int:
        free_bytes, _total = self._cp.cuda.Device().mem_info
        return int(free_bytes) // 2

    def synchronize(self) -> None:
        self._cp.cuda.Stream.null.synchronize()


class TorchBackend(ArrayBackend):
    """Torch backend (CUDA when available, CPU tensors otherwise)."""

    name = "torch"

    def __init__(self) -> None:
        try:
            import torch  # noqa: PLC0415 — lazy optional dependency
        except ImportError as exc:
            raise BackendUnavailable(
                "backend 'torch' requires the torch package (not installed); "
                "the default 'numpy' backend runs the same plans on host"
            ) from exc
        self._torch = torch
        self._device = torch.device("cuda" if torch.cuda.is_available() else "cpu")

    def asarray(self, values: Any, dtype: Any = None) -> Any:
        host = np.asarray(values, dtype=dtype)
        return self._torch.as_tensor(host, device=self._device)

    def empty(self, shape: Any, dtype: Any) -> Any:
        return self._torch.empty(tuple(shape), dtype=self._dtype(dtype), device=self._device)

    def zeros(self, shape: Any, dtype: Any) -> Any:
        return self._torch.zeros(tuple(shape), dtype=self._dtype(dtype), device=self._device)

    def _dtype(self, dtype: Any) -> Any:
        if dtype in (complex, np.complex128):
            return self._torch.complex128
        if dtype in (float, np.float64):
            return self._torch.float64
        return dtype

    def fft(self, values: Any, n: Optional[int] = None, axis: int = -1) -> Any:
        return self._torch.fft.fft(values, n=n, dim=axis)

    def ifft(
        self,
        values: Any,
        n: Optional[int] = None,
        axis: int = -1,
        overwrite: bool = False,
    ) -> Any:
        del overwrite
        return self._torch.fft.ifft(values, n=n, dim=axis)

    def multiply(self, left: Any, right: Any, out: Any) -> Any:
        return self._torch.mul(left, right, out=out)

    def abs(self, values: Any, out: Any = None) -> Any:
        if out is None:
            return self._torch.abs(values)
        return self._torch.abs(values, out=out)

    def argmax(self, values: Any, axis: Optional[int] = None) -> Any:
        if axis is None:
            return self._torch.argmax(values)
        return self._torch.argmax(values, dim=axis)

    def take_along_axis(self, values: Any, indices: Any, axis: int) -> Any:
        return self._torch.take_along_dim(values, indices, dim=axis)

    def to_numpy(self, values: Any) -> np.ndarray:
        return values.detach().cpu().numpy()

    def memory_budget_bytes(self) -> int:
        if self._device.type == "cuda":
            free_bytes, _total = self._torch.cuda.mem_get_info()
            return int(free_bytes) // 2
        return DEFAULT_HOST_MEMORY_BUDGET

    def synchronize(self) -> None:
        if self._device.type == "cuda":
            self._torch.cuda.synchronize()


_REGISTRY = {
    "numpy": NumpyBackend,
    "cupy": CupyBackend,
    "torch": TorchBackend,
}
_instances: Dict[str, ArrayBackend] = {}
_forced: Optional[str] = None


def _resolve_name(name: Optional[str] = None) -> str:
    if name is not None:
        return str(name).strip().lower()
    if _forced is not None:
        return _forced
    env = os.environ.get("REPRO_BACKEND", "").strip().lower()
    return env or "numpy"


def get_backend(name: Optional[str] = None) -> ArrayBackend:
    """Return the selected backend instance.

    With ``name=None`` the selection precedence is
    :func:`set_backend` > ``REPRO_BACKEND`` env var > ``"numpy"``.
    The environment variable is re-read on every call so tests can
    monkeypatch it. Raises :class:`ValueError` for unknown names and
    :class:`BackendUnavailable` when the library is missing.
    """
    resolved = _resolve_name(name)
    if resolved not in _REGISTRY:
        raise ValueError(
            f"unknown array backend {resolved!r}; known backends: "
            f"{sorted(_REGISTRY)}"
        )
    instance = _instances.get(resolved)
    if instance is None:
        instance = _REGISTRY[resolved]()
        _instances[resolved] = instance
    return instance


def set_backend(name: Optional[str]) -> None:
    """Force the process-wide backend (``None`` clears the override).

    Validates availability eagerly so a bad selection fails at
    configuration time, not mid-batch.
    """
    global _forced
    if name is None:
        _forced = None
        return
    resolved = str(name).strip().lower()
    if resolved not in _REGISTRY:
        raise ValueError(
            f"unknown array backend {resolved!r}; known backends: "
            f"{sorted(_REGISTRY)}"
        )
    get_backend(resolved)
    _forced = resolved


def resolve_backend(backend: Any = None) -> ArrayBackend:
    """Coerce ``None`` / a name / an instance to an :class:`ArrayBackend`."""
    if backend is None:
        return get_backend()
    if isinstance(backend, str):
        return get_backend(backend)
    return backend


def available_backends() -> Dict[str, bool]:
    """Map of backend name -> importable right now."""
    out: Dict[str, bool] = {}
    for known in sorted(_REGISTRY):
        try:
            get_backend(known)
        except BackendUnavailable:
            out[known] = False
        else:
            out[known] = True
    return out
