"""Responder identification from pulse shape (paper Sect. V).

Each responder transmits with its own ``TC_PGDELAY`` pulse width; the
initiator matched-filters the CIR against the whole template bank and,
for every detected response, picks the template with the largest
amplitude estimate ``alpha_hat_{k,i}`` — that template's index *is* the
responder's (partial) identity.

The classifier reuses :class:`~repro.core.detection.SearchAndSubtract`
with a multi-template bank: at each iteration the strongest peak across
*all* filter outputs wins, its template is recorded, and the correct
template is subtracted, so classification and detection reinforce each
other exactly as in the paper.

Two entry points share one decision core (:func:`classify_responses`):

* :meth:`PulseShapeClassifier.classify` — one CIR through the serial
  (spectrum-cached) detection engine;
* :meth:`PulseShapeClassifier.classify_batch` — B stacked CIRs through
  the cross-trial batched engine of :mod:`repro.core.batch_id` (one 2-D
  forward FFT x multi-template spectrum matrix x batched inverse FFT),
  identical per-trial results by construction.

The classifier also conforms to the :class:`~repro.core.engine.Engine`
protocol: ``detect``/``detect_batch`` expose the underlying joint
detection without the shape decode, with the same uniform
``(cirs, sampling_period_s, noise_std)`` signatures as
:class:`~repro.core.detection.SearchAndSubtract` and
:class:`~repro.core.threshold.ThresholdDetector`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

import numpy as np

from repro.core.detection import (
    DetectedResponse,
    SearchAndSubtract,
    SearchAndSubtractConfig,
)
from repro.signal.templates import TemplateBank

__all__ = [
    "ClassifiedResponse",
    "PulseShapeClassifier",
    "classify_responses",
]


@dataclass(frozen=True)
class ClassifiedResponse:
    """A detected response with its decoded pulse shape.

    ``shape_index`` is the bank index (0 for the paper's ``s1``), and
    ``confidence`` the ratio between the winning and runner-up template
    scores (1.0 means a tie; larger is more certain).
    """

    response: DetectedResponse
    shape_index: int
    confidence: float

    @property
    def shape_name(self) -> str:
        return f"s{self.shape_index + 1}"

    @property
    def delay_s(self) -> float:
        return self.response.delay_s

    @property
    def index(self) -> float:
        """Fractional sample index of the response peak.

        Always a Python ``float``: the proxied
        :attr:`DetectedResponse.index` may carry a NumPy scalar (e.g.
        ``np.float64`` from a user-constructed response), which would
        silently leak through the annotated contract — coerce instead.
        """
        return float(self.response.index)

    @property
    def amplitude(self) -> complex:
        return self.response.amplitude


def classify_responses(
    responses: Iterable[DetectedResponse],
) -> List[ClassifiedResponse]:
    """Decode each detected response's pulse shape from its scores.

    This is the maximum-amplitude decision of Sect. V, factored out so
    the serial path (:meth:`PulseShapeClassifier.classify`) and the
    cross-trial batched path (:func:`repro.core.batch_id.classify_batch`)
    share the *same* winner-pick code — once their filter-bank outputs
    agree, classification agrees by construction.

    Ties (equal winning and runner-up scores) yield ``confidence == 1.0``
    and keep ``np.argsort``'s descending-order winner, identically in
    every path.
    """
    classified: List[ClassifiedResponse] = []
    for response in responses:
        scores = np.asarray(response.scores, dtype=float)
        order = np.argsort(scores)[::-1]
        winner = int(order[0])
        if len(scores) > 1 and scores[order[1]] > 0.0:
            confidence = float(scores[winner] / scores[order[1]])
        else:
            confidence = float("inf")
        classified.append(
            ClassifiedResponse(
                response=response,
                shape_index=winner,
                confidence=confidence,
            )
        )
    return classified


class PulseShapeClassifier:
    """Joint detection + shape classification over a template bank."""

    def __init__(
        self,
        bank: TemplateBank,
        config: SearchAndSubtractConfig | None = None,
    ) -> None:
        if len(bank) < 1:
            raise ValueError("classifier needs a non-empty template bank")
        self.bank = bank
        self._detector = SearchAndSubtract(bank, config)

    @property
    def config(self) -> SearchAndSubtractConfig:
        return self._detector.config

    # -- Engine protocol: raw detection --------------------------------------

    def detect(
        self,
        cir: np.ndarray,
        sampling_period_s: float,
        noise_std: float = 0.0,
    ) -> List[DetectedResponse]:
        """Joint multi-template detection without the shape decode."""
        return self._detector.detect(cir, sampling_period_s, noise_std=noise_std)

    def detect_batch(
        self,
        cirs,
        sampling_period_s: float,
        noise_std=0.0,
    ) -> List[List[DetectedResponse]]:
        """Batched joint detection (see :meth:`SearchAndSubtract.detect_batch`)."""
        return self._detector.detect_batch(
            cirs, sampling_period_s, noise_std=noise_std
        )

    # -- classification -------------------------------------------------------

    def classify(
        self,
        cir: np.ndarray,
        sampling_period_s: float,
        noise_std: float = 0.0,
    ) -> List[ClassifiedResponse]:
        """Detect responses and decode each one's pulse shape.

        Returns classified responses sorted by delay ascending.
        """
        responses = self._detector.detect(
            cir, sampling_period_s, noise_std=noise_std
        )
        return classify_responses(responses)

    def classify_batch(
        self,
        cirs,
        sampling_period_s: float,
        noise_std=0.0,
    ) -> List[List[ClassifiedResponse]]:
        """Classify B stacked equal-length CIRs in one batched engine pass.

        Delegates to :func:`repro.core.batch_id.classify_batch`: one 2-D
        forward FFT x multi-template spectrum matrix x batched inverse
        FFT for the whole batch, then the identical per-trial
        search-and-subtract extraction and winner-pick loops.  Entry
        ``b`` equals ``self.classify(cirs[b], sampling_period_s,
        noise_std=noise_std[b])``.

        ``noise_std`` may be a scalar (shared by all trials) or a
        length-B sequence.  With ``config.use_fast=False`` the serial
        naive engine runs per CIR instead — the escape hatch the batched
        path is differential-tested against.
        """
        from repro.core.batch_id import classify_batch as _classify_batch

        if not self.config.use_fast:
            from repro.core.detection import _per_trial_noise

            stds = _per_trial_noise(noise_std, len(cirs))
            return [
                self.classify(cir, sampling_period_s, noise_std=std)
                for cir, std in zip(cirs, stds)
            ]
        return _classify_batch(
            cirs,
            self.bank,
            sampling_period_s,
            config=self.config,
            noise_std=noise_std,
        )

    def filter_bank_outputs(
        self, cir: np.ndarray, sampling_period_s: float
    ) -> np.ndarray:
        """The per-template matched-filter curves of Fig. 6b, stacked as
        an array of shape ``(len(bank), upsampled CIR length)``."""
        return np.stack(
            [
                self._detector.matched_filter_output(cir, sampling_period_s, i)
                for i in range(len(self.bank))
            ],
            axis=0,
        )
