"""Responder identification from pulse shape (paper Sect. V).

Each responder transmits with its own ``TC_PGDELAY`` pulse width; the
initiator matched-filters the CIR against the whole template bank and,
for every detected response, picks the template with the largest
amplitude estimate ``alpha_hat_{k,i}`` — that template's index *is* the
responder's (partial) identity.

The classifier reuses :class:`~repro.core.detection.SearchAndSubtract`
with a multi-template bank: at each iteration the strongest peak across
*all* filter outputs wins, its template is recorded, and the correct
template is subtracted, so classification and detection reinforce each
other exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.core.detection import (
    DetectedResponse,
    SearchAndSubtract,
    SearchAndSubtractConfig,
)
from repro.signal.templates import TemplateBank


@dataclass(frozen=True)
class ClassifiedResponse:
    """A detected response with its decoded pulse shape.

    ``shape_index`` is the bank index (0 for the paper's ``s1``), and
    ``confidence`` the ratio between the winning and runner-up template
    scores (1.0 means a tie; larger is more certain).
    """

    response: DetectedResponse
    shape_index: int
    confidence: float

    @property
    def shape_name(self) -> str:
        return f"s{self.shape_index + 1}"

    @property
    def delay_s(self) -> float:
        return self.response.delay_s

    @property
    def index(self) -> float:
        return self.response.index

    @property
    def amplitude(self) -> complex:
        return self.response.amplitude


class PulseShapeClassifier:
    """Joint detection + shape classification over a template bank."""

    def __init__(
        self,
        bank: TemplateBank,
        config: SearchAndSubtractConfig | None = None,
    ) -> None:
        if len(bank) < 1:
            raise ValueError("classifier needs a non-empty template bank")
        self.bank = bank
        self._detector = SearchAndSubtract(bank, config)

    @property
    def config(self) -> SearchAndSubtractConfig:
        return self._detector.config

    def classify(
        self,
        cir: np.ndarray,
        sampling_period_s: float,
        noise_std: float = 0.0,
    ) -> List[ClassifiedResponse]:
        """Detect responses and decode each one's pulse shape.

        Returns classified responses sorted by delay ascending.
        """
        responses = self._detector.detect(
            cir, sampling_period_s, noise_std=noise_std
        )
        classified = []
        for response in responses:
            scores = np.asarray(response.scores, dtype=float)
            order = np.argsort(scores)[::-1]
            winner = int(order[0])
            if len(scores) > 1 and scores[order[1]] > 0.0:
                confidence = float(scores[winner] / scores[order[1]])
            else:
                confidence = float("inf")
            classified.append(
                ClassifiedResponse(
                    response=response,
                    shape_index=winner,
                    confidence=confidence,
                )
            )
        return classified

    def filter_bank_outputs(
        self, cir: np.ndarray, sampling_period_s: float
    ) -> np.ndarray:
        """The per-template matched-filter curves of Fig. 6b, stacked as
        an array of shape ``(len(bank), upsampled CIR length)``."""
        return np.stack(
            [
                self._detector.matched_filter_output(cir, sampling_period_s, i)
                for i in range(len(self.bank))
            ],
            axis=0,
        )
