"""Batch-vectorised search-and-subtract extraction.

:func:`repro.core.detection.extract_responses` runs the paper's
step 2–6 loop on *one* filter-bank output. The batched engines used to
call it per trial in a Python loop, which left ~45 % of a B=64 engine
pass in per-trial Python and per-call small FFTs. This module runs the
same loop *across* the batch dimension:

* **peak-pick** — one ``argmax`` over the ``(B, n_templates * n_fine)``
  magnitude view per iteration (C-order, so each row's winner index is
  exactly the serial ``np.unravel_index(np.argmax(...))`` pair);
* **ragged termination** — an active-row mask: the early-stop gate and
  ``max_responses`` fire per row, and a stopped row's result list is
  frozen exactly where the serial loop would have returned;
* **template subtraction** — fractional, unclipped placements (the
  common case under sub-sample refinement) are grouped per template and
  updated with *batched* small FFTs: one fractional-delay ifft over the
  group, one ``(R, m)`` forward FFT, one ``(R, n_templates, m)``
  inverse FFT — instead of R separate 1-D transform chains.  The
  per-group forward FFT of the zero-padded template is computed once
  per call (the serial path recomputes the identical transform on every
  subtraction).  Integer unclipped placements read the plan's
  precomputed cross-correlation table directly; clipped placements fall
  back to :meth:`~repro.core.plan.DetectorPlan.subtract_response` — the
  serial code itself — row by row.

Numerical contract: every elementwise operation mirrors the serial
expression order, batched transforms evaluate rows with the same
pocketfft kernels as the 1-D calls, and the response arithmetic is the
shared :func:`~repro.core.detection.build_response`.  The differential
suite (``tests/test_properties_detection.py``) pins batched == serial
at ``rtol <= 1e-9`` across ragged early-stop patterns.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np
from scipy import fft as sp_fft

from repro.core.detection import (
    DetectedResponse,
    SearchAndSubtractConfig,
    _parabolic_peak,
    build_response,
)
from repro.core.plan import DetectorPlan
from repro.runtime.metrics import global_metrics

__all__ = ["extract_responses_batch"]


def _subtract_fractional_group(
    plan: DetectorPlan,
    outputs: np.ndarray,
    magnitudes: np.ndarray,
    template_index: int,
    group: List[Tuple[int, float, int, complex]],
    template_ffts: Dict[int, Tuple[np.ndarray, np.ndarray]],
) -> None:
    """Batched step-5 update for unclipped fractional placements.

    ``group`` holds ``(row, fraction, start, amplitude)`` for every
    active row that picked ``template_index`` this iteration with a
    fractional, fully-inside placement.  Equivalent to calling
    ``plan.subtract_response`` per row: the fractional delay and the
    window correlation are the same transforms, just stacked — each row
    of a 2-D pocketfft transform runs the same kernel as the 1-D call.
    """
    cached = template_ffts.get(template_index)
    if cached is None:
        template = plan.templates[template_index]
        samples = template.samples.astype(complex)
        padded = np.concatenate([samples, np.zeros(1, dtype=samples.dtype)])
        # Same spectrum fractional_delay computes per call; the phase
        # base folds the serial left-to-right ``-2j*pi*freqs`` product.
        cached = (
            np.fft.fft(padded),
            -2j * np.pi * np.fft.fftfreq(len(padded)),
        )
        template_ffts[template_index] = cached
    padded_fft, ramp_base = cached

    fractions = np.array([entry[1] for entry in group])
    ramps = np.exp(ramp_base[np.newaxis, :] * fractions[:, np.newaxis])
    shifted = np.fft.ifft(padded_fft[np.newaxis, :] * ramps, axis=1)

    m = plan.small_fft_length
    forward = sp_fft.fft(shifted, m, axis=1)
    aligned = sp_fft.ifft(
        forward[:, np.newaxis, :] * plan.small_spectra[np.newaxis, :, :],
        axis=2,
    )
    lead = plan.max_template_length - 1
    tail = plan.max_template_length + shifted.shape[1] - 1
    ordered = np.concatenate(
        [aligned[:, :, m - lead:], aligned[:, :, :tail]], axis=2
    )
    width = ordered.shape[2]
    n_fine = plan.n_fine
    for k, (row, _fraction, start, amplitude) in enumerate(group):
        first = start - lead
        a = max(0, first)
        b = min(n_fine, first + width)
        if a < b:
            outputs[row, :, a:b] -= (
                amplitude * ordered[k, :, a - first:b - first]
            )
            np.abs(outputs[row, :, a:b], out=magnitudes[row, :, a:b])


def extract_responses_batch(
    plan: DetectorPlan,
    outputs: np.ndarray,
    magnitudes: np.ndarray,
    config: SearchAndSubtractConfig,
    sampling_period_s: float,
    stds: Sequence[float],
    *,
    metric_prefix: str = "detector",
) -> List[List[DetectedResponse]]:
    """Search-and-subtract over a ``(B, n_templates, n_fine)`` tensor.

    ``outputs``/``magnitudes`` are consumed destructively (step-5
    updates write into them in place), exactly like the serial
    :func:`~repro.core.detection.extract_responses` consumes one trial's
    matrices.  ``stds`` carries one early-stop noise floor per row, so
    rows terminate independently (ragged).

    Returns one response list per row, in extraction (amplitude) order;
    callers sort by delay (paper step 7).  Entry ``b`` is identical to
    ``extract_responses(plan, outputs[b], magnitudes[b], ...)``.
    """
    metrics = global_metrics()
    n_rows, _n_templates, n_fine = magnitudes.shape
    results: List[List[DetectedResponse]] = [[] for _ in range(n_rows)]
    if n_rows == 0 or config.max_responses <= 0:
        return results

    factor = config.upsample_factor
    period = sampling_period_s / factor
    scale = np.sqrt(factor)
    # Same left-to-right product as the serial per-trial gate.
    gates = config.min_peak_snr * np.asarray(stds, dtype=float) * np.sqrt(factor)

    # C-order view: a row's flat argmax is the serial unravel_index pair.
    flat = magnitudes.reshape(n_rows, -1)
    active = np.ones(n_rows, dtype=bool)
    update_counter = metrics.counter(f"{metric_prefix}.incremental_updates")
    template_ffts: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
    # peak_index is a computed property (an argmax per access) — read
    # each template's placement constants once per call, not per row.
    peak_anchor = tuple(int(t.peak_index) for t in plan.templates)
    template_lengths = tuple(int(t.samples.shape[0]) for t in plan.templates)

    for iteration in range(config.max_responses):
        flat_indices = np.argmax(flat, axis=1)
        best = flat[np.arange(n_rows), flat_indices]
        stopped = (best <= 0.0) | ((gates > 0.0) & (best < gates))
        active = active & ~stopped
        rows = np.flatnonzero(active)
        if rows.size == 0:
            break
        template_indices = flat_indices // n_fine
        peak_indices = flat_indices - template_indices * n_fine

        picked: Dict[int, Tuple[int, int, float, complex]] = {}
        for raw_row in rows:
            row = int(raw_row)
            t = int(template_indices[row])
            p = int(peak_indices[row])
            position = (
                _parabolic_peak(magnitudes[row, t], p)
                if config.refine_subsample
                else float(p)
            )
            amplitude = complex(outputs[row, t, p])
            picked[row] = (t, p, position, amplitude)
            results[row].append(
                build_response(
                    magnitudes[row], t, p, position, amplitude,
                    factor, period, scale,
                )
            )
        if iteration + 1 >= config.max_responses:
            break  # the final subtraction would never be observed

        with metrics.timer(f"{metric_prefix}.incremental_update").time():
            fractional_groups: Dict[int, List[Tuple[int, float, int, complex]]] = {}
            for row, (t, _p, position, amplitude) in picked.items():
                length = template_lengths[t]
                integer = int(np.floor(position))
                fraction = float(position - integer)
                start = integer - peak_anchor[t]
                if fraction != 0.0:
                    if start >= 0 and start + length + 1 <= n_fine:
                        fractional_groups.setdefault(t, []).append(
                            (row, fraction, start, amplitude)
                        )
                        continue
                    a, b = plan.subtract_response(
                        outputs[row], t, position, amplitude
                    )
                elif start >= 0 and start + length <= n_fine:
                    # Integer, unclipped: precomputed table lookup.
                    first = start - (plan.max_template_length - 1)
                    ordered = plan.cross_correlations[t]
                    a = max(0, first)
                    b = min(n_fine, first + ordered.shape[1])
                    if a < b:
                        outputs[row, :, a:b] -= (
                            amplitude * ordered[:, a - first:b - first]
                        )
                else:
                    a, b = plan.subtract_response(
                        outputs[row], t, position, amplitude
                    )
                if a < b:
                    np.abs(outputs[row, :, a:b], out=magnitudes[row, :, a:b])
            for t, group in fractional_groups.items():
                _subtract_fractional_group(
                    plan, outputs, magnitudes, t, group, template_ffts
                )
        update_counter.inc(int(rows.size))
    return results
