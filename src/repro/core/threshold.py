"""Threshold-based response detection — the baseline of Sect. VI.

Implements the comparison algorithm the paper attributes to Falsi et al.:
scan the CIR magnitude; whenever it crosses a threshold, report the
maximum of the following ``N_p`` samples (one pulse duration) as a peak,
then continue scanning after that window; stop after ``N - 1`` peaks.

Its weakness — and the reason the paper's search-and-subtract wins — is
structural: two responses closer together than one pulse duration fall
into a single window and are reported as one peak.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.core.detection import DetectedResponse
from repro.signal.pulses import Pulse
from repro.signal.sampling import fft_upsample


@dataclass(frozen=True)
class ThresholdConfig:
    """Tuning knobs of the threshold detector.

    Attributes
    ----------
    max_responses:
        Number of peaks to extract (the paper's ``N - 1``).
    noise_multiplier:
        Threshold in units of the noise standard deviation.
    min_peak_fraction:
        Lower bound on the threshold as a fraction of the CIR maximum.
        Must sit above the pulse side-lobe level (~20 %) or the side
        lobes of a strong response re-trigger the detector; the price is
        that responses weaker than this fraction of the strongest are
        missed — the amplitude-dependence weakness the paper's
        challenge IV attributes to threshold-based detection.
    upsample_factor:
        FFT upsampling applied before scanning (for a fair comparison
        with the search-and-subtract detector).
    """

    max_responses: int = 1
    noise_multiplier: float = 6.0
    min_peak_fraction: float = 0.25
    upsample_factor: int = 8

    def __post_init__(self) -> None:
        if self.max_responses < 1:
            raise ValueError(f"max_responses must be >= 1, got {self.max_responses}")
        if self.upsample_factor < 1:
            raise ValueError(
                f"upsample_factor must be >= 1, got {self.upsample_factor}"
            )


class ThresholdDetector:
    """Crossing-triggered peak extraction over the CIR magnitude."""

    def __init__(self, pulse: Pulse, config: ThresholdConfig | None = None) -> None:
        self._pulse = pulse
        self.config = config or ThresholdConfig()

    @property
    def pulse(self) -> Pulse:
        return self._pulse

    def _window_samples(self, sampling_period_s: float) -> int:
        """The paper's ``N_p``: one pulse duration in (upsampled) samples.

        Falsi et al. define ``N_p = T_p / T_s`` with ``T_p`` the pulse
        duration.  We measure the template's duration as its span above
        10 % of the peak magnitude — the part of the pulse a human would
        call "the pulse" on a plot (main lobe plus visible side lobes).
        """
        magnitude = np.abs(self._pulse.samples)
        above = np.nonzero(magnitude >= 0.10 * magnitude.max())[0]
        duration_s = (above[-1] - above[0] + 1) * self._pulse.sampling_period_s
        period = sampling_period_s / self.config.upsample_factor
        return max(1, int(round(duration_s / period)))

    def detect(
        self,
        cir: np.ndarray,
        sampling_period_s: float,
        noise_std: float = 0.0,
    ) -> List[DetectedResponse]:
        """Scan the CIR and extract up to ``max_responses`` peaks.

        Returns responses sorted by delay ascending, mirroring the
        search-and-subtract output format so the two detectors are
        drop-in comparable.
        """
        cir = np.asarray(cir, dtype=complex)
        if cir.ndim != 1:
            raise ValueError(f"expected a 1-D CIR, got shape {cir.shape}")

        factor = self.config.upsample_factor
        magnitude = np.abs(fft_upsample(cir, factor))
        period = sampling_period_s / factor
        peak = float(magnitude.max())
        if peak <= 0.0:
            return []
        threshold = max(
            self.config.noise_multiplier * noise_std * np.sqrt(factor),
            self.config.min_peak_fraction * peak,
        )
        window = self._window_samples(sampling_period_s)

        responses: List[DetectedResponse] = []
        position = 0
        n = len(magnitude)
        while position < n and len(responses) < self.config.max_responses:
            if magnitude[position] < threshold:
                position += 1
                continue
            stop = min(position + window, n)
            local_max = position + int(np.argmax(magnitude[position:stop]))
            responses.append(
                DetectedResponse(
                    index=local_max / factor,
                    delay_s=local_max * period,
                    amplitude=complex(magnitude[local_max] / np.sqrt(factor)),
                    template_index=0,
                    scores=(float(magnitude[local_max] / np.sqrt(factor)),),
                )
            )
            position = stop
            # Hysteresis: re-arm only once the signal falls below the
            # threshold, so a pulse's own decaying tail cannot trigger a
            # phantom second detection.
            while position < n and magnitude[position] >= threshold:
                position += 1

        responses.sort(key=lambda response: response.delay_s)
        return responses
