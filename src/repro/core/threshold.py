"""Threshold-based response detection — the baseline of Sect. VI.

Implements the comparison algorithm the paper attributes to Falsi et al.:
scan the CIR magnitude; whenever it crosses a threshold, report the
maximum of the following ``N_p`` samples (one pulse duration) as a peak,
then continue scanning after that window; stop after ``N - 1`` peaks.

Its weakness — and the reason the paper's search-and-subtract wins — is
structural: two responses closer together than one pulse duration fall
into a single window and are reported as one peak.

Two numerically equivalent engines implement the scan, mirroring the
fast/naive split of :mod:`repro.core.detection` so fast-vs-naive and
search-vs-threshold comparisons stay apples-to-apples:

* the **incremental path** (default) pre-extracts the threshold
  crossings once and hops from trigger to trigger with O(log n) sorted
  lookups — the per-iteration cost is one window ``argmax``, incremental
  in the number of *peaks* rather than linear in the number of samples;
* the **naive path** (``ThresholdConfig(use_fast=False)``) is the
  literal sample-by-sample transcription above, kept as the reference
  the fast scan is differential-tested against
  (``tests/test_properties_detection.py``).

Both engines share the upsampling and threshold computation, so their
results are *identical* — not merely close.  The batched entry point
:meth:`ThresholdDetector.detect_batch` additionally shares one 2-D
upsampling FFT across B trials (see :mod:`repro.core.batch` for the
same trick on the search-and-subtract side).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.core.detection import DetectedResponse, _per_trial_noise
from repro.runtime.metrics import global_metrics
from repro.signal.pulses import Pulse
from repro.signal.sampling import fft_upsample, fft_upsample_batch


@dataclass(frozen=True)
class ThresholdConfig:
    """Tuning knobs of the threshold detector.

    Attributes
    ----------
    max_responses:
        Number of peaks to extract (the paper's ``N - 1``).
    noise_multiplier:
        Threshold in units of the noise standard deviation.
    min_peak_fraction:
        Lower bound on the threshold as a fraction of the CIR maximum.
        Must sit above the pulse side-lobe level (~20 %) or the side
        lobes of a strong response re-trigger the detector; the price is
        that responses weaker than this fraction of the strongest are
        missed — the amplitude-dependence weakness the paper's
        challenge IV attributes to threshold-based detection.
    upsample_factor:
        FFT upsampling applied before scanning (for a fair comparison
        with the search-and-subtract detector).
    use_fast:
        Run the incremental trigger-hopping scan (default).  Set to
        ``False`` for the sample-by-sample reference loop the fast scan
        is differential-tested against.
    """

    max_responses: int = 1
    noise_multiplier: float = 6.0
    min_peak_fraction: float = 0.25
    upsample_factor: int = 8
    use_fast: bool = True

    def __post_init__(self) -> None:
        if self.max_responses < 1:
            raise ValueError(f"max_responses must be >= 1, got {self.max_responses}")
        if self.upsample_factor < 1:
            raise ValueError(
                f"upsample_factor must be >= 1, got {self.upsample_factor}"
            )


class ThresholdDetector:
    """Crossing-triggered peak extraction over the CIR magnitude."""

    def __init__(self, pulse: Pulse, config: ThresholdConfig | None = None) -> None:
        self._pulse = pulse
        self.config = config or ThresholdConfig()

    @property
    def pulse(self) -> Pulse:
        return self._pulse

    def _window_samples(self, sampling_period_s: float) -> int:
        """The paper's ``N_p``: one pulse duration in (upsampled) samples.

        Falsi et al. define ``N_p = T_p / T_s`` with ``T_p`` the pulse
        duration.  We measure the template's duration as its span above
        10 % of the peak magnitude — the part of the pulse a human would
        call "the pulse" on a plot (main lobe plus visible side lobes).
        """
        magnitude = np.abs(self._pulse.samples)
        above = np.nonzero(magnitude >= 0.10 * magnitude.max())[0]
        duration_s = (above[-1] - above[0] + 1) * self._pulse.sampling_period_s
        period = sampling_period_s / self.config.upsample_factor
        return max(1, int(round(duration_s / period)))

    # -- scan engines --------------------------------------------------------

    def _scan_naive(
        self, magnitude: np.ndarray, threshold: float, window: int
    ) -> List[int]:
        """Literal sample-by-sample scan; returns upsampled peak indices."""
        global_metrics().counter("threshold.naive_scans").inc()
        peaks: List[int] = []
        position = 0
        n = len(magnitude)
        while position < n and len(peaks) < self.config.max_responses:
            if magnitude[position] < threshold:
                position += 1
                continue
            stop = min(position + window, n)
            peaks.append(position + int(np.argmax(magnitude[position:stop])))
            position = stop
            # Hysteresis: re-arm only once the signal falls below the
            # threshold, so a pulse's own decaying tail cannot trigger a
            # phantom second detection.
            while position < n and magnitude[position] >= threshold:
                position += 1
        return peaks

    def _scan_fast(
        self, magnitude: np.ndarray, threshold: float, window: int
    ) -> List[int]:
        """Incremental trigger-hopping scan — same peaks, O(peaks log n).

        The naive loop's only data dependencies are (i) the next sample
        at-or-after the scan position that is *above* the threshold (the
        trigger) and (ii) the next sample at-or-after the window end
        that is *below* it (the hysteresis re-arm).  Pre-extracting the
        sorted above/below index sets turns both into binary searches,
        so the per-peak cost is one window ``argmax`` plus two
        ``searchsorted`` calls instead of a Python-level walk over every
        sample — the threshold-path analogue of the search-and-subtract
        engine's incremental step-5 update.
        """
        global_metrics().counter("threshold.fast_scans").inc()
        n = len(magnitude)
        above = magnitude >= threshold
        above_idx = np.flatnonzero(above)
        below_idx = np.flatnonzero(~above)
        peaks: List[int] = []
        position = 0
        while position < n and len(peaks) < self.config.max_responses:
            # (i) next trigger at-or-after the scan position.
            j = int(np.searchsorted(above_idx, position))
            if j >= len(above_idx):
                break
            trigger = int(above_idx[j])
            stop = min(trigger + window, n)
            peaks.append(trigger + int(np.argmax(magnitude[trigger:stop])))
            # (ii) hysteresis: re-arm at the first below-threshold
            # sample at-or-after the window end.
            k = int(np.searchsorted(below_idx, stop))
            position = int(below_idx[k]) if k < len(below_idx) else n
        return peaks

    def _extract(
        self,
        magnitude: np.ndarray,
        sampling_period_s: float,
        noise_std: float,
    ) -> List[DetectedResponse]:
        """Threshold + scan + response packaging over one upsampled
        magnitude signal (shared by the serial and batched paths)."""
        factor = self.config.upsample_factor
        period = sampling_period_s / factor
        peak = float(magnitude.max())
        if peak <= 0.0:
            return []
        threshold = max(
            self.config.noise_multiplier * noise_std * np.sqrt(factor),
            self.config.min_peak_fraction * peak,
        )
        window = self._window_samples(sampling_period_s)
        scan = self._scan_fast if self.config.use_fast else self._scan_naive
        responses = [
            DetectedResponse(
                index=local_max / factor,
                delay_s=local_max * period,
                amplitude=complex(magnitude[local_max] / np.sqrt(factor)),
                template_index=0,
                scores=(float(magnitude[local_max] / np.sqrt(factor)),),
            )
            for local_max in scan(magnitude, threshold, window)
        ]
        responses.sort(key=lambda response: response.delay_s)
        return responses

    # -- entry points --------------------------------------------------------

    def detect(
        self,
        cir: np.ndarray,
        sampling_period_s: float,
        noise_std: float = 0.0,
    ) -> List[DetectedResponse]:
        """Scan the CIR and extract up to ``max_responses`` peaks.

        Returns responses sorted by delay ascending, mirroring the
        search-and-subtract output format so the two detectors are
        drop-in comparable.
        """
        cir = np.asarray(cir, dtype=complex)
        if cir.ndim != 1:
            raise ValueError(f"expected a 1-D CIR, got shape {cir.shape}")
        magnitude = np.abs(fft_upsample(cir, self.config.upsample_factor))
        return self._extract(magnitude, sampling_period_s, noise_std)

    def detect_batch(
        self,
        cirs,
        sampling_period_s: float,
        noise_std=0.0,
    ) -> List[List[DetectedResponse]]:
        """Scan B equal-length CIRs with one shared upsampling FFT.

        ``noise_std`` may be a scalar or a length-B sequence.  Entry
        ``b`` of the result equals
        ``self.detect(cirs[b], sampling_period_s, noise_std[b])`` — the
        scan itself is per-trial and identical; only the upsampling
        transform is batched (and agrees with the serial one to
        roundoff; byte-identical on pocketfft builds).
        """
        cirs = np.asarray(cirs, dtype=complex)
        if cirs.ndim != 2:
            raise ValueError(
                f"expected a (B, N) batch of CIRs, got shape {cirs.shape}"
            )
        if cirs.shape[0] == 0:
            return []
        stds = _per_trial_noise(noise_std, cirs.shape[0])
        metrics = global_metrics()
        metrics.counter("threshold.batch_detects").inc()
        metrics.counter("threshold.batch_trials").inc(cirs.shape[0])
        with metrics.timer("threshold.batch_upsample").time():
            magnitudes = np.abs(
                fft_upsample_batch(cirs, self.config.upsample_factor)
            )
        return [
            self._extract(magnitudes[b], sampling_period_s, stds[b])
            for b in range(cirs.shape[0])
        ]


def detect_threshold_batch(
    cirs,
    pulse: Pulse,
    sampling_period_s: float,
    config: ThresholdConfig | None = None,
    noise_std=0.0,
) -> List[List[DetectedResponse]]:
    """Functional alias mirroring :func:`repro.core.batch.detect_batch`."""
    return ThresholdDetector(pulse, config).detect_batch(
        cirs, sampling_period_s, noise_std=noise_std
    )
