"""Cross-trial batched detection: many CIRs through one FFT engine pass.

The spectrum-cached engine of :mod:`repro.core.plan` already collapses
the per-CIR filter bank into one forward FFT x 2-D spectrum matrix x
one batched inverse FFT.  This module batches across the *other* axis —
trials.  A Monte-Carlo experiment evaluating B independent CIRs of the
same shape (same template bank, CIR length, upsampling factor) stacks
them into a ``(B, N)`` array and pays:

* **one** batched upsampling transform
  (:func:`repro.signal.sampling.fft_upsample_batch`) instead of B,
* **one** ``(B, fft_length)`` forward FFT instead of B,
* **one** ``(B, n_templates, fft_length)`` batched inverse FFT instead
  of B,

then runs the search-and-subtract extraction *vectorised across the
batch dimension* (:func:`repro.core.batch_extract.extract_responses_batch`):
one argmax per iteration over the whole ``(B, n_templates * n_fine)``
magnitude view, an active-row mask for ragged early-stop, and grouped
batched small-FFT subtraction updates.  The decision arithmetic is
shared with the serial loop (same helpers, same expression order) and
pocketfft evaluates a row of a 2-D transform with the same kernel as
the 1-D call, so results are byte-identical in practice and bounded at
``rtol <= 1e-9`` by ``tests/test_properties_detection.py`` regardless.

All batch transforms go through a pluggable array backend
(:mod:`repro.core.backend` — NumPy+SciPy default, optional CuPy/torch),
selected per plan; the backend name is part of the plan cache key.

Batch plans are memoised per ``(bank, CIR length, factor, B)`` shape in
the same ``detector_plans`` cache the single-CIR path uses; the key
*includes* the batch size (see :func:`repro.core.plan.plan_cache_key`),
so a B=64 plan — which carries ``(B, n_templates, fft_length)`` scratch
buffers and is not a :class:`~repro.core.plan.DetectorPlan` at all —
can never be served to the single-CIR path.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np
from scipy import fft as sp_fft

from repro.core.backend import ArrayBackend, resolve_backend
from repro.core.batch_extract import extract_responses_batch
from repro.core.detection import (
    DetectedResponse,
    SearchAndSubtractConfig,
    _per_trial_noise,
)
from repro.core.plan import DetectorPlan, plan_cache_key
from repro.runtime.cache import get_cache
from repro.runtime.metrics import global_metrics
from repro.signal.pulses import Pulse

__all__ = ["BatchDetectorPlan", "batch_detector_plan", "detect_batch"]


class BatchDetectorPlan:
    """A :class:`DetectorPlan` extended with batch-shaped artifacts.

    Wraps the (cached, batch-independent) base plan and adds what only
    makes sense for a fixed batch size B: a preallocated
    ``(B, n_templates, fft_length)`` complex scratch buffer for the
    spectrum product, which at B=64 x 4 templates x ~9.4k bins is tens
    of megabytes we do not want to reallocate on every engine pass.

    Because the scratch buffer is mutated on every call, a batch plan is
    *not* shape-interchangeable: serving it where a different B (or the
    single-CIR :class:`DetectorPlan`) is expected would at best raise a
    broadcasting error and at worst silently alias another batch's
    spectra.  For the same reason :meth:`filter_bank`'s return value may
    alias the scratch buffer (the inverse FFT runs in place): it is
    valid — and freely mutable, the extraction loop writes into it —
    only until the next :meth:`filter_bank` call on the same plan, which
    refills the buffer from scratch.  :func:`detect_batch` and
    :func:`repro.core.batch_id.classify_batch` both consume the outputs
    fully before returning, so the contract is internal.  That is why
    :func:`repro.core.plan.plan_cache_key` keys plans by batch size —
    the regression test lives in
    ``tests/test_properties_detection.py::TestPlanCacheBatchKey``.
    """

    def __init__(
        self,
        base: DetectorPlan,
        batch_size: int,
        backend: Union[ArrayBackend, str, None] = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.base = base
        self.batch_size = int(batch_size)
        self.backend = resolve_backend(backend)
        xp = self.backend
        self._product = xp.empty(
            (self.batch_size, len(base.templates), base.fft_length),
            dtype=complex,
        )
        self._magnitudes = xp.empty(
            (self.batch_size, len(base.templates), base.n_fine),
            dtype=float,
        )
        # Upsampling pad scratch.  Only the head/tail spectrum blocks
        # (plus the split Nyquist bin) are ever written; the middle
        # stays zero from construction, so zeroing once here replaces a
        # ~8 MB memset per engine pass at B=64.
        self._padded = xp.zeros(
            (self.batch_size, base.n_fine), dtype=complex
        )
        self._spectra = xp.asarray(base.spectra)

    def magnitudes(self, outputs: np.ndarray) -> np.ndarray:
        """``np.abs(outputs)`` into the plan's reusable float scratch.

        The extraction loop consumes a ``(B, n_templates, n_fine)``
        magnitude tensor alongside the complex outputs; computing it
        into a preallocated buffer avoids another ~16 MB allocation per
        engine pass at B=64.  Same aliasing contract as
        :meth:`filter_bank`: the result is valid (and mutable) until the
        next call on this plan.
        """
        return self.backend.abs(outputs, out=self._magnitudes)

    @property
    def n_templates(self) -> int:
        return len(self.base.templates)

    def filter_pass(self, cirs: np.ndarray) -> np.ndarray:
        """Upsample + matched-filter B native-rate CIRs in one pass.

        ``cirs`` is ``(B, cir_length)`` complex at the radio's tap rate;
        returns the ``(B, n_templates, n_fine)`` complex output tensor
        (same aliasing contract as :meth:`filter_bank`).  Equivalent to
        ``filter_bank(fft_upsample_batch(cirs, U))`` but with the
        spectrum zero-padding done into the plan's preallocated scratch
        and every transform routed through the plan's array backend —
        on the default NumPy backend that is ``scipy.fft`` with
        ``workers=-1`` (each row evaluated with the same pocketfft
        kernel as the 1-D call).
        """
        xp = self.backend
        cirs = xp.asarray(cirs, dtype=complex)
        if cirs.shape != (self.batch_size, self.base.cir_length):
            raise ValueError(
                f"plan built for shape "
                f"{(self.batch_size, self.base.cir_length)}, got "
                f"{tuple(cirs.shape)}"
            )
        factor = self.base.upsample_factor
        if factor == 1:
            working = cirs  # read-only below; extraction mutates outputs only
        else:
            n = self.base.cir_length
            spectrum = xp.fft(cirs, axis=1)
            padded = self._padded
            # Same spectrum split as fft_upsample_batch: positive
            # frequencies at the head, negative at the tail, an even
            # length's Nyquist bin shared half-and-half.
            half = (n + 1) // 2
            padded[:, :half] = spectrum[:, :half]
            if n > half:
                padded[:, -(n - half):] = spectrum[:, half:]
            if n % 2 == 0:
                padded[:, half] = spectrum[:, half] / 2.0
                padded[:, -half] = spectrum[:, half] / 2.0
            working = xp.ifft(padded, axis=1)
            working *= factor
        forward = xp.fft(working, self.base.fft_length, axis=1)
        xp.multiply(
            forward[:, np.newaxis, :],
            self._spectra[np.newaxis, :, :],
            out=self._product,
        )
        outputs = xp.ifft(self._product, axis=2, overwrite=True)
        return outputs[:, :, : self.base.n_fine]

    def filter_bank(self, working: np.ndarray) -> np.ndarray:
        """Matched-filter B upsampled signals against the whole bank.

        ``working`` is ``(B, n_fine)``; returns the
        ``(B, n_templates, n_fine)`` complex output tensor whose slice
        ``[b]`` equals ``self.base.filter_bank(working[b])`` — one
        forward FFT dispatch and one batched inverse FFT dispatch for
        the entire batch.

        Both dispatches pass ``workers=-1``: with B x n_templates
        independent rows the transforms row-parallelise trivially, and
        pocketfft's worker path evaluates each row with the same kernel
        as the serial call, so per-row results stay bit-identical (the
        property suite asserts ``rtol <= 1e-9`` regardless).  This is a
        batched-only win — the serial path has a single row per
        transform and nothing to parallelise over.
        """
        working = np.asarray(working)
        if working.ndim != 2:
            raise ValueError(
                f"expected a (B, n_fine) batch, got shape {working.shape}"
            )
        if working.shape != (self.batch_size, self.base.n_fine):
            raise ValueError(
                f"plan built for shape {(self.batch_size, self.base.n_fine)},"
                f" got {working.shape}"
            )
        forward = sp_fft.fft(
            working, self.base.fft_length, axis=1, workers=-1
        )
        np.multiply(
            forward[:, np.newaxis, :],
            self.base.spectra[np.newaxis, :, :],
            out=self._product,
        )
        # ``overwrite_x`` lets pocketfft transform the scratch buffer in
        # place instead of allocating a second (B, n_templates,
        # fft_length) tensor — at B=64 that is ~33 MB of allocation and
        # write traffic per engine pass, which is exactly what makes
        # large batches memory-bound.  The returned slice is a view
        # whose per-(b, t) rows are contiguous, which is all the
        # extraction loop touches; callers may mutate it freely because
        # the buffer is refilled from scratch on the next call (the
        # class docstring spells out the aliasing contract).
        outputs = sp_fft.ifft(self._product, axis=2, workers=-1,
                              overwrite_x=True)
        return outputs[:, :, : self.base.n_fine]


def _check_plan_shape(
    plan: "BatchDetectorPlan",
    batch_size: int,
    cir_length: int,
    upsample_factor: int,
) -> None:
    """Reject an explicitly supplied plan whose shape mismatches the call."""
    if (
        plan.batch_size != batch_size
        or plan.base.cir_length != cir_length
        or plan.base.upsample_factor != upsample_factor
    ):
        raise ValueError(
            "explicit plan shape (B="
            f"{plan.batch_size}, N={plan.base.cir_length}, "
            f"U={plan.base.upsample_factor}) does not match the call "
            f"(B={batch_size}, N={cir_length}, U={upsample_factor})"
        )


def batch_detector_plan(
    templates: Sequence[Pulse],
    cir_length: int,
    upsample_factor: int,
    sampling_period_s: float,
    batch_size: int,
    backend: Optional[str] = None,
) -> BatchDetectorPlan:
    """A memoised :class:`BatchDetectorPlan` for a batched shape.

    The underlying :class:`DetectorPlan` artifacts (spectra,
    cross-correlation tables) are shared with the single-CIR path via
    its own cache entry; only the thin batch wrapper (plus its scratch
    buffer) is stored per batch size.  Both lookups count toward the
    ``detector_plans`` hit rate shown in the runtime metrics report.

    ``backend`` selects the array backend the plan's transforms run on
    (``None`` follows the process default, see
    :func:`repro.core.backend.get_backend`); the resolved name is part
    of the cache key, so plans for different backends never collide.
    """
    from repro.core.plan import detector_plan

    resolved = resolve_backend(backend)
    key = plan_cache_key(
        templates, cir_length, upsample_factor, sampling_period_s,
        batch_size=batch_size, backend=resolved.name,
    )

    def _build() -> BatchDetectorPlan:
        with global_metrics().timer("detector.batch_plan_build").time():
            base = detector_plan(
                templates, cir_length, upsample_factor, sampling_period_s
            )
            return BatchDetectorPlan(base, batch_size, backend=resolved)

    return get_cache("detector_plans").get_or_create(key, _build)


def detect_batch(
    cirs,
    templates,
    sampling_period_s: float,
    config: SearchAndSubtractConfig | None = None,
    noise_std=0.0,
    *,
    plan: BatchDetectorPlan | None = None,
) -> List[List[DetectedResponse]]:
    """Run search-and-subtract on B stacked CIRs in one batched pass.

    Parameters
    ----------
    cirs:
        ``(B, N)`` array (or sequence of B equal-length 1-D arrays) of
        complex CIR samples at the radio's native tap rate.  ``B == 0``
        returns ``[]``.
    templates:
        Template bank (a :class:`~repro.signal.templates.TemplateBank`,
        a single :class:`~repro.signal.pulses.Pulse`, or a sequence of
        pulses), exactly as accepted by
        :class:`~repro.core.detection.SearchAndSubtract`.
    sampling_period_s:
        Tap spacing of every CIR in the batch.
    config:
        Detector knobs; defaults to ``SearchAndSubtractConfig()``.
        ``use_fast`` is ignored here — this *is* the fast engine; use
        :meth:`SearchAndSubtract.detect_batch` for the escape hatch.
    noise_std:
        Scalar shared by all trials, or a length-B sequence of per-trial
        noise standard deviations (for the early-stop gate).
    plan:
        Optional explicit :class:`BatchDetectorPlan` to run on,
        bypassing the process-local plan cache.  The cache hands every
        same-shape caller the *same* plan object — whose scratch buffers
        are mutated on every pass — so concurrent engine passes from
        multiple threads (e.g. the :mod:`repro.serve` shard pool) must
        each bring a private plan instead.  The plan's shape (batch
        size, CIR length, upsample factor) must match the call.

    Returns
    -------
    list of list of :class:`DetectedResponse`
        Entry ``b`` equals ``SearchAndSubtract(templates, config)
        .detect(cirs[b], sampling_period_s, noise_std=noise_std[b])``
        — same responses, same delay-ascending order.
    """
    if isinstance(templates, Pulse):
        templates = [templates]
    templates = list(templates)
    if len(templates) == 0:
        raise ValueError("detect_batch needs at least one template")
    config = config or SearchAndSubtractConfig()

    cirs = np.asarray(cirs, dtype=complex)
    if cirs.ndim == 1:
        raise ValueError(
            "detect_batch expects a (B, N) batch of CIRs; wrap a single "
            "CIR as cirs[np.newaxis, :] or call detect() instead"
        )
    if cirs.ndim != 2:
        raise ValueError(f"expected a (B, N) batch, got shape {cirs.shape}")
    batch_size, cir_length = cirs.shape
    if batch_size == 0:
        return []
    stds = _per_trial_noise(noise_std, batch_size)

    metrics = global_metrics()
    metrics.counter("detector.batch_detects").inc()
    metrics.counter("detector.batch_trials").inc(batch_size)
    if plan is None:
        plan = batch_detector_plan(
            templates,
            cir_length,
            config.upsample_factor,
            sampling_period_s,
            batch_size,
        )
    else:
        _check_plan_shape(
            plan, batch_size, cir_length, config.upsample_factor
        )
    with metrics.timer("detector.batch_filter_pass").time():
        outputs = plan.filter_pass(cirs)
        magnitudes = plan.magnitudes(outputs)
    # Extraction runs host-side: device backends hand back NumPy views
    # here so the decision loop stays byte-identical to the serial path.
    host_outputs = plan.backend.to_numpy(outputs)
    host_magnitudes = plan.backend.to_numpy(magnitudes)
    with metrics.timer("detector.batch_extract").time():
        results = extract_responses_batch(
            plan.base,
            host_outputs,
            host_magnitudes,
            config,
            sampling_period_s,
            stds,
        )
    for responses in results:
        responses.sort(key=lambda response: response.delay_s)
    return results
