"""Spectrum-cached FFT detection plans (the fast matched-filter engine).

The search-and-subtract detector (paper Sect. IV) is the hot path of
every experiment in this repository.  The naive implementation pays, on
*every* ``detect()`` call and *every* iteration of the subtract loop:

* a full-length ``scipy.signal.correlate`` per template (each of which
  internally runs its own forward + inverse FFTs at its own padded
  size), and
* a fresh resampling of the whole template bank to the upsampled rate.

A :class:`DetectorPlan` precomputes everything that depends only on the
*shape* of the problem — the template bank, the CIR length, and the
upsampling factor — and keys it through :func:`repro.runtime.cache` so
thousands of Monte-Carlo trials share one plan per process:

* the templates resampled to the upsampled rate;
* their conjugate spectra, zero-padded to one shared
  ``scipy.fft.next_fast_len`` size and pre-multiplied with the
  peak-anchoring phase ramp, so the whole bank is evaluated as **one**
  forward FFT of the CIR times a 2-D spectrum matrix and **one** batched
  inverse FFT;
* the template <-> template cross-correlation table (peak-anchored, in a
  window of one template footprint), which turns step 5 of the paper's
  algorithm into an O(L_template) in-place update of all filter outputs
  instead of an O(N log N) re-filtering of the whole CIR;
* small-size conjugate spectra for the fractional-shift variant of the
  same update (sub-sample peak refinement shifts the subtrahend by a
  fraction of a sample, which a static table cannot represent exactly).

Numerical contract: the batched evaluation is the *same* linear
correlation the naive path computes (zero-padded, never circular — the
shared FFT length covers the full linear support), so fast and naive
detections agree to floating-point roundoff.  ``tests/test_detection_fast.py``
enforces this across bank sizes, CIR lengths, and SNRs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np
from scipy import fft as sp_fft

from repro.runtime.cache import get_cache
from repro.runtime.metrics import global_metrics
from repro.signal.pulses import Pulse
from repro.signal.sampling import placed_segment

__all__ = ["DetectorPlan", "detector_plan", "plan_cache_key"]


def _anchored_spectra(
    templates: Sequence[Pulse], fft_length: int
) -> np.ndarray:
    """Conjugate template spectra with the peak-anchoring phase baked in.

    For a circular correlation at length ``L`` computed as
    ``ifft(fft(x, L) * conj(fft(s, L)))`` the output at index ``m`` is
    ``sum_j x[m + j] * conj(s[j])``.  The matched-filter convention of
    this repository anchors the output axis so a pulse peaking at signal
    index ``p`` maximises the output at ``p``; that is a circular delay
    by ``peak_index``, i.e. a multiplication of the spectrum with
    ``exp(-2j pi k peak / L)``.  Baking the ramp into the cached spectra
    makes the batched evaluation a single elementwise product.
    """
    spectra = np.empty((len(templates), fft_length), dtype=complex)
    freqs = np.fft.fftfreq(fft_length)
    for row, template in enumerate(templates):
        ramp = np.exp(-2j * np.pi * freqs * template.peak_index)
        spectra[row] = np.conj(sp_fft.fft(template.samples, fft_length)) * ramp
    return spectra


@dataclass(frozen=True)
class DetectorPlan:
    """Precomputed frequency-domain artifacts for one detection shape.

    A plan is immutable and shareable; build one with
    :func:`detector_plan` (which memoises through the runtime cache).

    Attributes
    ----------
    templates:
        The bank resampled to the fine (upsampled) rate, in bank order.
    cir_length:
        Native CIR length ``N`` the plan was built for.
    upsample_factor:
        FFT upsampling factor ``U`` (1 means "filter at the native rate").
    n_fine:
        ``N * U`` — length of the upsampled working signal and of every
        filter-bank output row.
    fft_length:
        Shared ``next_fast_len`` transform size covering the full linear
        correlation support of the longest template.
    spectra:
        ``(n_templates, fft_length)`` conjugate, peak-anchored template
        spectra — the 2-D spectrum matrix of the batched filter bank.
    small_fft_length:
        Transform size for the short update-window correlations.
    small_spectra:
        ``(n_templates, small_fft_length)`` conjugate, peak-anchored
        spectra used to correlate a placed segment against the bank.
    max_template_length:
        Longest fine-rate template (window-sizing constant).
    cross_correlations:
        Per-template ``(n_templates, window)`` arrays: entry ``t`` holds
        the peak-anchored correlation of template ``t`` with every bank
        template — the precomputed search-and-subtract update for
        integer-sample subtraction positions.
    """

    templates: Tuple[Pulse, ...]
    cir_length: int
    upsample_factor: int
    n_fine: int
    fft_length: int
    spectra: np.ndarray
    small_fft_length: int
    small_spectra: np.ndarray
    max_template_length: int
    cross_correlations: Tuple[np.ndarray, ...]

    # -- construction --------------------------------------------------------

    @classmethod
    def build(
        cls,
        templates: Sequence[Pulse],
        cir_length: int,
        upsample_factor: int,
        sampling_period_s: float,
    ) -> "DetectorPlan":
        """Precompute all artifacts for a (bank, CIR length, factor) shape.

        ``sampling_period_s`` is the *native* CIR tap spacing; templates
        not already sampled at ``sampling_period_s / upsample_factor``
        are resampled (exactly mirroring the naive detector path).
        """
        if cir_length < 1:
            raise ValueError(f"cir_length must be >= 1, got {cir_length}")
        if upsample_factor < 1:
            raise ValueError(
                f"upsample_factor must be >= 1, got {upsample_factor}"
            )
        if len(templates) == 0:
            raise ValueError("a detector plan needs at least one template")
        target = sampling_period_s / upsample_factor
        fine: List[Pulse] = []
        for template in templates:
            # atol=0: default atol (1e-8) would call any two sub-ns
            # periods "close" and silently skip the resampling.
            if np.isclose(
                template.sampling_period_s, target, rtol=1e-9, atol=0.0
            ):
                fine.append(template)
            else:
                fine.append(template.resampled(target))

        n_fine = cir_length * upsample_factor
        max_len = max(len(t.samples) for t in fine)
        # Full linear-correlation support: with this padding the circular
        # product equals the zero-padded linear correlation everywhere,
        # including the negative lags that the peak anchoring folds in.
        fft_length = sp_fft.next_fast_len(n_fine + max_len - 1)
        spectra = _anchored_spectra(fine, fft_length)

        # Short-window transform: must hold a placed segment (longest
        # template plus one padding sample) and one template footprint of
        # lag on either side without circular aliasing.
        seg_max = max_len + 1
        small_fft_length = sp_fft.next_fast_len(2 * max_len + seg_max)
        small_spectra = _anchored_spectra(fine, small_fft_length)

        plan = cls(
            templates=tuple(fine),
            cir_length=int(cir_length),
            upsample_factor=int(upsample_factor),
            n_fine=n_fine,
            fft_length=fft_length,
            spectra=spectra,
            small_fft_length=small_fft_length,
            small_spectra=small_spectra,
            max_template_length=max_len,
            cross_correlations=(),
        )
        # The integer-shift cross-correlation table is just the window
        # correlation of each template against the whole bank.
        table = tuple(
            plan.window_correlations(t.samples.astype(complex))[1]
            for t in fine
        )
        object.__setattr__(plan, "cross_correlations", table)
        return plan

    # -- batched filter bank -------------------------------------------------

    def filter_bank(self, working: np.ndarray) -> np.ndarray:
        """Matched-filter ``working`` against every template at once.

        ``working`` is the (upsampled) signal of length :attr:`n_fine`.
        Returns the ``(n_templates, n_fine)`` complex output matrix —
        identical (to roundoff) to calling
        :func:`repro.core.matched_filter.matched_filter` per template,
        but with one forward FFT and one batched inverse FFT total.
        """
        working = np.asarray(working)
        if working.ndim != 1:
            raise ValueError(
                f"expected a 1-D signal, got shape {working.shape}"
            )
        if len(working) != self.n_fine:
            raise ValueError(
                f"plan built for length {self.n_fine}, got {len(working)}"
            )
        forward = sp_fft.fft(working, self.fft_length)
        outputs = sp_fft.ifft(forward[np.newaxis, :] * self.spectra, axis=1)
        return np.ascontiguousarray(outputs[:, : self.n_fine])

    # -- incremental search-and-subtract updates -----------------------------

    def window_correlations(
        self, segment: np.ndarray
    ) -> Tuple[int, np.ndarray]:
        """Peak-anchored correlation of a short placed segment with the bank.

        For a segment ``e`` added into the working signal at buffer index
        ``d0``, every matched-filter output changes by
        ``amplitude * ordered[i, (n - d0) - offset]`` for output sample
        ``n`` — the *only* samples that change.  Returns
        ``(offset, ordered)`` where ``offset`` (negative) is the first
        affected output index relative to ``d0`` and ``ordered`` is the
        ``(n_templates, window)`` update matrix.

        One small forward FFT plus one small batched inverse FFT — this
        is the O(L_template) per-iteration cost of the incremental
        search-and-subtract.
        """
        segment = np.asarray(segment)
        if segment.ndim != 1:
            raise ValueError("segment must be a 1-D array")
        if len(segment) > self.max_template_length + 1:
            raise ValueError(
                f"segment of length {len(segment)} exceeds the plan's "
                f"window (max {self.max_template_length + 1})"
            )
        m = self.small_fft_length
        forward = sp_fft.fft(segment, m)
        aligned = sp_fft.ifft(forward[np.newaxis, :] * self.small_spectra, axis=1)
        lead = self.max_template_length - 1
        tail = self.max_template_length + len(segment) - 1
        # Negative lags live at the top of the circular buffer; stitching
        # them in front of the positive lags yields the linear window.
        ordered = np.concatenate(
            [aligned[:, m - lead:], aligned[:, :tail]], axis=1
        )
        return -lead, ordered

    def subtract_response(
        self,
        outputs: np.ndarray,
        template_index: int,
        position: float,
        amplitude: complex,
    ) -> Tuple[int, int]:
        """Apply step 5 of the paper's algorithm directly to ``outputs``.

        The naive detector places ``-amplitude * template`` into the
        working signal (via :func:`repro.signal.sampling.place_pulse`)
        and re-filters everything.  Because filtering is linear, the
        filter outputs change only by the correlation of that placed
        segment with each template — a window of one template footprint.
        This method computes exactly the segment ``place_pulse`` would
        place (same fractional shift, same clipping) and subtracts its
        ``amplitude``-scaled window correlations from ``outputs`` in
        place: O(L_template log L_template) per iteration instead of
        O(n_templates * N log N).

        Integer-sample positions with no clipping take the precomputed
        :attr:`cross_correlations` table directly; fractional or clipped
        placements correlate the exact shifted segment through the
        plan's small cached spectra.

        Returns the half-open ``(a, b)`` output range that changed
        (``a == b`` when the segment lies entirely outside the signal).
        """
        template = self.templates[template_index]
        samples = template.samples.astype(complex)
        start, segment = placed_segment(
            samples, position, template.peak_index
        )
        # Clip exactly as place_pulse would.
        src_start = max(0, -start)
        src_stop = len(segment) - max(
            0, start + len(segment) - self.n_fine
        )
        if src_start >= src_stop:
            return 0, 0  # entirely outside the signal: nothing changes
        unshifted = segment is samples  # no fractional part was applied
        if unshifted and src_start == 0 and src_stop == len(segment):
            offset = -(self.max_template_length - 1)
            ordered = self.cross_correlations[template_index]
            first = start + offset
        else:
            offset, ordered = self.window_correlations(
                segment[src_start:src_stop]
            )
            first = start + src_start + offset
        a = max(0, first)
        b = min(self.n_fine, first + ordered.shape[1])
        if a < b:
            outputs[:, a:b] -= amplitude * ordered[:, a - first : b - first]
        return a, b


def _template_key(template: Pulse) -> tuple:
    """A value-identity key for one template.

    ``(register, bandwidth, period)`` uniquely determines the sampled
    waveform for every pulse constructed through
    :mod:`repro.signal.pulses`; the raw sample bytes are included so
    hand-built :class:`Pulse` objects with custom samples can never
    collide with a synthesised one.
    """
    return (
        int(template.register),
        float(template.bandwidth_hz),
        float(template.sampling_period_s),
        template.samples.tobytes(),
    )


def plan_cache_key(
    templates: Sequence[Pulse],
    cir_length: int,
    upsample_factor: int,
    sampling_period_s: float,
    batch_size: int | None = None,
    kind: str = "detector",
    backend: str | None = None,
) -> tuple:
    """The ``detector_plans`` cache key for one detection shape.

    The key *must* include the batch shape: a cross-trial
    :class:`~repro.core.batch.BatchDetectorPlan` carries batch-sized
    scratch buffers (and is a different type altogether), so serving a
    B=64 entry to the single-CIR path — or a single-CIR
    :class:`DetectorPlan` to ``detect_batch`` — would crash at best and
    silently corrupt outputs at worst.  ``batch_size=None`` denotes the
    single-CIR plan; the batched engine passes its B.  Even ``B == 1``
    must *not* collide with the single-CIR entry (the two are different
    types — a collision is exactly the "B plan served to the single-CIR
    path" bug, just in the other direction), hence the explicit
    ``"single"`` / ``("batch", B)`` discriminator rather than a bare
    integer.  ``tests/test_properties_detection.py::TestPlanCacheBatchKey``
    is the regression test that would have caught a key without this
    component.

    ``kind`` separates plan *families* sharing the cache: the default
    ``"detector"`` names the raw detection plans, while the batched
    pulse-id classifier (:mod:`repro.core.batch_id`) keys its
    :class:`~repro.core.batch_id.BatchClassifierPlan` wrappers under
    ``"classifier"`` so they can never shadow — or be shadowed by — a
    :class:`~repro.core.batch.BatchDetectorPlan` of the same shape.

    ``backend`` names the array backend a batched plan's scratch
    buffers live on (:mod:`repro.core.backend`); ``None`` normalises to
    ``"numpy"`` (the host default, and the only thing single-CIR plans
    ever run on), so a CuPy plan holding device arrays can never be
    served to a NumPy caller or vice versa.
    """
    return (
        str(kind),
        tuple(_template_key(t) for t in templates),
        int(cir_length),
        int(upsample_factor),
        float(sampling_period_s),
        "single" if batch_size is None else ("batch", int(batch_size)),
        str(backend) if backend is not None else "numpy",
    )


def detector_plan(
    templates: Sequence[Pulse],
    cir_length: int,
    upsample_factor: int,
    sampling_period_s: float,
) -> DetectorPlan:
    """A memoised :class:`DetectorPlan` for a (bank, CIR length, factor).

    Plans are immutable; repeated trials with the same shape share one
    instance per process.  The ``detector_plans`` cache's hit rate shows
    up in the runtime metrics report, and plan builds are timed under
    ``detector.plan_build`` in the process-local
    :func:`repro.runtime.metrics.global_metrics` registry.
    """
    key = plan_cache_key(
        templates, cir_length, upsample_factor, sampling_period_s
    )

    def _build() -> DetectorPlan:
        with global_metrics().timer("detector.plan_build").time():
            return DetectorPlan.build(
                templates, cir_length, upsample_factor, sampling_period_s
            )

    return get_cache("detector_plans").get_or_create(key, _build)
