"""The search-and-subtract response detector (paper Sect. IV).

The algorithm, following the paper's seven steps:

1. Upsample the CIR with an FFT (smoother signal; sub-sample peaks).
2. Matched-filter the CIR against the pulse template (Eq. 3).
3. Take the output maximum — the strongest path index ``l_k``.
4. Estimate the path amplitude as the filter output at ``l_k`` (the
   paper's low-complexity replacement for a least-squares solve; with
   unit-energy templates the output at the peak *is* the amplitude).
5. Subtract the estimated response ``alpha_k * s(t - tau_k)`` from the
   received signal.
6. Repeat 2-5 until the N-1 strongest paths are found.
7. Sort responses by delay, ascending — independent of amplitude, which
   is the property that makes the scheme robust to shadowed direct paths
   (challenge IV).

When constructed with a multi-template bank the detector searches all
matched-filter outputs jointly and records which template won each
iteration; that is exactly the pulse-shape identification of Sect. V, so
:mod:`repro.core.pulse_id` builds directly on this class.

Two numerically equivalent execution engines implement the loop:

* the **fast path** (default) pulls a spectrum-cached
  :class:`~repro.core.plan.DetectorPlan` from the runtime cache,
  evaluates the whole template bank as one batched FFT product, and —
  because filtering is linear — realises step 5 as an O(L_template)
  in-place update of the filter outputs using precomputed template
  cross-correlations, instead of re-filtering the full CIR on every
  iteration;
* the **naive path** (``SearchAndSubtractConfig(use_fast=False)``) is
  the literal transcription of the paper's steps: subtract from the
  working signal, re-run every matched filter.  It is the reference the
  fast path is regression-tested against.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Sequence

import numpy as np

from repro.core.matched_filter import matched_filter
from repro.core.plan import DetectorPlan, detector_plan
from repro.runtime.metrics import global_metrics
from repro.signal.pulses import Pulse
from repro.signal.sampling import fft_upsample, place_pulse
from repro.signal.templates import TemplateBank


@dataclass(frozen=True)
class DetectedResponse:
    """One detected responder peak.

    Attributes
    ----------
    index:
        Fractional sample index of the peak, in *original* CIR samples
        (the detector divides upsampled indices back down).
    delay_s:
        Peak position relative to CIR tap 0 (``index * T_s``).
    amplitude:
        Estimated complex amplitude of the response.
    template_index:
        Index of the winning template in the detector's bank (0 when
        detecting with a single template).
    scores:
        Per-template amplitude magnitudes at the peak — the
        ``alpha_hat_{k,i}`` values the classifier of Sect. V compares.
    """

    index: float
    delay_s: float
    amplitude: complex
    template_index: int = 0
    scores: tuple = ()

    @property
    def magnitude(self) -> float:
        return abs(self.amplitude)


@dataclass(frozen=True)
class SearchAndSubtractConfig:
    """Tuning knobs of the detector.

    Attributes
    ----------
    max_responses:
        The ``N - 1`` of the paper: how many peaks to extract.
    upsample_factor:
        FFT upsampling applied to the CIR before filtering (step 1).
    min_peak_snr:
        Early-stop gate: iteration stops when the best remaining filter
        peak falls below ``min_peak_snr * noise_std`` (prevents reporting
        pure-noise "responses" when fewer than ``max_responses``
        responders actually replied).  Set to 0 to always extract exactly
        ``max_responses`` peaks.
    refine_subsample:
        Parabolic sub-sample refinement of each peak position.
    use_fast:
        Run the spectrum-cached batched-FFT engine (default).  Set to
        ``False`` for the naive per-template re-filtering loop — the
        escape hatch the fast path is regression-tested against.
    """

    max_responses: int = 1
    upsample_factor: int = 8
    min_peak_snr: float = 0.0
    refine_subsample: bool = True
    use_fast: bool = True

    def __post_init__(self) -> None:
        if self.max_responses < 1:
            raise ValueError(
                f"max_responses must be >= 1, got {self.max_responses}"
            )
        if self.upsample_factor < 1:
            raise ValueError(
                f"upsample_factor must be >= 1, got {self.upsample_factor}"
            )
        if self.min_peak_snr < 0:
            raise ValueError(f"min_peak_snr must be >= 0, got {self.min_peak_snr}")


def _parabolic_peak(magnitude: np.ndarray, index: int) -> float:
    """Sub-sample peak refinement via a three-point parabola."""
    if index <= 0 or index >= len(magnitude) - 1:
        return float(index)
    left, mid, right = magnitude[index - 1 : index + 2]
    denom = left - 2.0 * mid + right
    if denom == 0.0:
        return float(index)
    return float(index + np.clip(0.5 * (left - right) / denom, -0.5, 0.5))


def _per_trial_noise(noise_std, n_trials: int) -> List[float]:
    """Broadcast a scalar-or-sequence ``noise_std`` to one value per trial."""
    if np.ndim(noise_std) == 0:
        return [float(noise_std)] * n_trials
    stds = [float(v) for v in noise_std]
    if len(stds) != n_trials:
        raise ValueError(
            f"got {len(stds)} noise stds for {n_trials} trial(s)"
        )
    return stds


def build_response(
    magnitudes: np.ndarray,
    template_idx: int,
    peak_idx: int,
    position: float,
    amplitude: complex,
    factor: int,
    period: float,
    scale: float,
) -> DetectedResponse:
    """Assemble one :class:`DetectedResponse` from a picked peak.

    ``magnitudes`` is the ``(n_templates, n_fine)`` magnitude matrix the
    peak was picked from and ``amplitude`` the *raw* (unscaled) complex
    filter output at the peak. Shared by the serial extraction loop and
    the batch-vectorised one (:mod:`repro.core.batch_extract`) so the
    response arithmetic lives in exactly one place.
    """
    return DetectedResponse(
        index=position / factor,
        delay_s=position * period,
        amplitude=amplitude / scale,
        template_index=int(template_idx),
        scores=tuple(
            float(value) / scale
            for value in magnitudes[:, peak_idx]
        ),
    )


def extract_responses(
    plan: DetectorPlan,
    outputs: np.ndarray,
    magnitudes: np.ndarray,
    config: SearchAndSubtractConfig,
    sampling_period_s: float,
    noise_std: float,
) -> List[DetectedResponse]:
    """The search-and-subtract extraction loop over one filter-bank output.

    ``outputs`` is the ``(n_templates, n_fine)`` complex filter-bank
    matrix for one CIR and ``magnitudes`` its ``np.abs``; both are
    consumed destructively (the incremental step-5 update writes into
    them in place).  This single function is the decision core shared by
    the serial fast path (:meth:`SearchAndSubtract.detect`) and the
    cross-trial batched engine (:func:`repro.core.batch.detect_batch`)
    — sharing it is what makes the two paths *identical by
    construction* once their filter-bank outputs agree.

    Returns responses in extraction (amplitude) order; callers sort by
    delay (paper step 7).
    """
    metrics = global_metrics()
    factor = config.upsample_factor
    period = sampling_period_s / factor
    # See SearchAndSubtract._detect_naive for the noise-scaling rationale.
    gate = config.min_peak_snr * noise_std * np.sqrt(factor)
    scale = np.sqrt(factor)

    responses: List[DetectedResponse] = []
    for iteration in range(config.max_responses):
        template_idx, peak_idx = np.unravel_index(
            int(np.argmax(magnitudes)), magnitudes.shape
        )
        best_value = float(magnitudes[template_idx, peak_idx])
        if best_value <= 0.0:
            break
        if gate > 0.0 and best_value < gate:
            break

        position = (
            _parabolic_peak(magnitudes[template_idx], peak_idx)
            if config.refine_subsample
            else float(peak_idx)
        )
        amplitude = complex(outputs[template_idx, peak_idx])
        responses.append(
            build_response(
                magnitudes, int(template_idx), int(peak_idx),
                position, amplitude, factor, period, scale,
            )
        )
        if iteration + 1 >= config.max_responses:
            break  # the final subtraction would never be observed
        # Step 5, incrementally: only a template-footprint window of
        # each filter output changes, so update it in place instead
        # of re-filtering the whole CIR.
        with metrics.timer("detector.incremental_update").time():
            a, b = plan.subtract_response(
                outputs, int(template_idx), position, amplitude
            )
            if a < b:
                np.abs(outputs[:, a:b], out=magnitudes[:, a:b])
        metrics.counter("detector.incremental_updates").inc()
    return responses


class SearchAndSubtract:
    """Iterative matched-filter detector over one or more templates."""

    def __init__(
        self,
        templates: TemplateBank | Pulse | Sequence[Pulse],
        config: SearchAndSubtractConfig | None = None,
    ) -> None:
        if isinstance(templates, Pulse):
            templates = [templates]
        self._templates: List[Pulse] = list(templates)
        if len(self._templates) == 0:
            raise ValueError("detector needs at least one template")
        self.config = config or SearchAndSubtractConfig()

    @property
    def templates(self) -> List[Pulse]:
        return list(self._templates)

    def _plan(self, cir_length: int, sampling_period_s: float) -> DetectorPlan:
        """The cached frequency-domain plan for this detection shape."""
        return detector_plan(
            self._templates,
            cir_length,
            self.config.upsample_factor,
            sampling_period_s,
        )

    def _upsampled_templates(self, sampling_period_s: float) -> List[Pulse]:
        """Templates matching the upsampled CIR rate."""
        target = sampling_period_s / self.config.upsample_factor
        resampled = []
        for template in self._templates:
            # atol=0: default atol (1e-8) would call any two sub-ns
            # periods "close" and silently skip the resampling.
            if np.isclose(template.sampling_period_s, target, rtol=1e-9, atol=0.0):
                resampled.append(template)
            else:
                resampled.append(template.resampled(target))
        return resampled

    def detect(
        self,
        cir: np.ndarray,
        sampling_period_s: float,
        noise_std: float = 0.0,
    ) -> List[DetectedResponse]:
        """Run the full search-and-subtract loop on a CIR.

        Parameters
        ----------
        cir:
            Complex CIR samples at the radio's native tap rate.
        sampling_period_s:
            Tap spacing of ``cir``.
        noise_std:
            Per-tap noise standard deviation (used for the early-stop
            gate; ignored when ``config.min_peak_snr == 0``).

        Returns
        -------
        list of :class:`DetectedResponse`
            At most ``config.max_responses`` responses, sorted by delay
            ascending (paper step 7).
        """
        cir = np.asarray(cir, dtype=complex)
        if cir.ndim != 1:
            raise ValueError(f"expected a 1-D CIR, got shape {cir.shape}")
        if self.config.use_fast:
            responses = self._detect_fast(cir, sampling_period_s, noise_std)
        else:
            responses = self._detect_naive(cir, sampling_period_s, noise_std)
        responses.sort(key=lambda response: response.delay_s)
        return responses

    # -- fast path -----------------------------------------------------------

    def _detect_fast(
        self,
        cir: np.ndarray,
        sampling_period_s: float,
        noise_std: float,
    ) -> List[DetectedResponse]:
        """Batched filter bank + incremental subtraction (the default)."""
        metrics = global_metrics()
        metrics.counter("detector.fast_detects").inc()
        factor = self.config.upsample_factor
        plan = self._plan(len(cir), sampling_period_s)
        with metrics.timer("detector.fast_filter_pass").time():
            working = fft_upsample(cir, factor)
            # One forward FFT, one batched inverse FFT for the whole bank.
            outputs = plan.filter_bank(working)
        magnitudes = np.abs(outputs)
        return extract_responses(
            plan, outputs, magnitudes, self.config, sampling_period_s,
            noise_std,
        )

    def detect_batch(
        self,
        cirs,
        sampling_period_s: float,
        noise_std=0.0,
    ) -> List[List[DetectedResponse]]:
        """Detect a whole batch of equal-length CIRs in one engine pass.

        Delegates to :func:`repro.core.batch.detect_batch`: the B CIRs
        are stacked into one 2-D array, upsampled with a single batched
        FFT, and matched-filtered against the whole bank as one forward
        transform x spectrum matrix x batched inverse transform per
        search-and-subtract iteration.  Per-trial results are identical
        to calling :meth:`detect` on each CIR (same extraction loop,
        same plan artifacts; the batched transforms agree with the
        serial ones to roundoff — byte-identical on pocketfft builds).

        ``noise_std`` may be a scalar (shared by all trials) or a
        sequence of per-trial values.  With
        ``config.use_fast=False`` the naive serial engine runs per CIR
        instead — the escape hatch the batched path is tested against.
        """
        from repro.core.batch import detect_batch as _detect_batch

        if not self.config.use_fast:
            stds = _per_trial_noise(noise_std, len(cirs))
            return [
                self.detect(cir, sampling_period_s, noise_std=std)
                for cir, std in zip(cirs, stds)
            ]
        return _detect_batch(
            cirs,
            self._templates,
            sampling_period_s,
            config=self.config,
            noise_std=noise_std,
        )

    # -- naive path ----------------------------------------------------------

    def _detect_naive(
        self,
        cir: np.ndarray,
        sampling_period_s: float,
        noise_std: float,
    ) -> List[DetectedResponse]:
        """Literal per-iteration re-filtering (the reference engine)."""
        global_metrics().counter("detector.naive_detects").inc()
        factor = self.config.upsample_factor
        working = fft_upsample(cir, factor)
        period = sampling_period_s / factor
        templates = self._upsampled_templates(sampling_period_s)
        # FFT interpolation preserves per-sample noise std; with unit-energy
        # templates the matched-filter output noise has (approximately) the
        # same std. Upsampled templates have their energy spread over
        # factor-times more samples, so renormalisation keeps them
        # unit-energy at the new rate.
        gate = self.config.min_peak_snr * noise_std * np.sqrt(factor)

        responses: List[DetectedResponse] = []
        for _ in range(self.config.max_responses):
            best = self._strongest_peak(working, templates)
            if best is None:
                break
            template_idx, peak_idx, outputs, magnitude = best
            if gate > 0.0 and magnitude[peak_idx] < gate:
                break

            position = (
                _parabolic_peak(magnitude, peak_idx)
                if self.config.refine_subsample
                else float(peak_idx)
            )
            amplitude = complex(outputs[template_idx][peak_idx])
            # Unit-energy templates at the upsampled rate spread their
            # energy over `factor` times more samples, which inflates
            # matched-filter amplitudes by sqrt(factor); report (and
            # score) amplitudes in native CIR units, but keep the raw
            # value for the subtraction, which uses the fine template.
            scale = np.sqrt(factor)
            scores = tuple(
                float(np.abs(out[peak_idx])) / scale for out in outputs
            )
            responses.append(
                DetectedResponse(
                    index=position / factor,
                    delay_s=position * period,
                    amplitude=amplitude / scale,
                    template_index=template_idx,
                    scores=scores,
                )
            )
            # Step 5: subtract the estimated response from the signal.
            template = templates[template_idx]
            place_pulse(
                working,
                template.samples.astype(complex),
                position,
                amplitude=-amplitude,
                peak_index=template.peak_index,
            )
        return responses

    def detect_with_ls_refinement(
        self,
        cir: np.ndarray,
        sampling_period_s: float,
        noise_std: float = 0.0,
    ) -> List[DetectedResponse]:
        """Search-and-subtract followed by a joint least-squares
        re-estimation of all amplitudes.

        This is the Falsi et al. variant the paper's step 4 trades away
        for complexity: once the peak *positions* are fixed, solve

            min_a || r - sum_k a_k s_k(t - tau_k) ||^2

        jointly over all responses.  For overlapping responses the joint
        solve removes the bias that single-peak amplitude reads pick up
        from their neighbours' side lobes.  Positions are kept from the
        search pass.
        """
        responses = self.detect(cir, sampling_period_s, noise_std=noise_std)
        if len(responses) < 2:
            return responses
        return refine_amplitudes_least_squares(
            cir, responses, self._templates, sampling_period_s
        )

    def _strongest_peak(
        self, working: np.ndarray, templates: List[Pulse]
    ) -> tuple[int, int, List[np.ndarray], np.ndarray] | None:
        """Best (template, index) over all matched-filter outputs.

        Returns ``(template_idx, peak_idx, outputs, magnitude)`` where
        ``magnitude`` is the winning template's ``np.abs`` output — the
        peak search already computed it, so callers must not recompute.
        """
        outputs = [matched_filter(working, template) for template in templates]
        best_template = -1
        best_index = -1
        best_value = -np.inf
        best_magnitude: np.ndarray | None = None
        for i, output in enumerate(outputs):
            magnitude = np.abs(output)
            idx = int(np.argmax(magnitude))
            if magnitude[idx] > best_value:
                best_value = float(magnitude[idx])
                best_template = i
                best_index = idx
                best_magnitude = magnitude
        if best_template < 0 or best_value <= 0.0 or best_magnitude is None:
            return None
        return best_template, best_index, outputs, best_magnitude

    def matched_filter_output(
        self, cir: np.ndarray, sampling_period_s: float, template_index: int = 0
    ) -> np.ndarray:
        """The (upsampled) matched-filter output for one template —
        the curves plotted in the paper's Fig. 4b and Fig. 6b."""
        cir = np.asarray(cir, dtype=complex)
        if self.config.use_fast:
            plan = self._plan(len(cir), sampling_period_s)
            working = fft_upsample(cir, self.config.upsample_factor)
            return plan.filter_bank(working)[template_index]
        working = fft_upsample(cir, self.config.upsample_factor)
        templates = self._upsampled_templates(sampling_period_s)
        return matched_filter(working, templates[template_index])


def refine_amplitudes_least_squares(
    cir: np.ndarray,
    responses: Sequence[DetectedResponse],
    templates: Sequence[Pulse],
    sampling_period_s: float,
) -> List[DetectedResponse]:
    """Jointly re-estimate response amplitudes by least squares.

    Builds the dictionary matrix of each response's template placed at
    its (fractional) detected position and solves one complex
    least-squares problem against the raw CIR.  Returns new responses
    with updated amplitudes; positions and template indices are kept.
    """
    cir = np.asarray(cir, dtype=complex)
    if len(responses) == 0:
        return []
    columns = []
    for response in responses:
        template = templates[response.template_index]
        if not np.isclose(
            template.sampling_period_s, sampling_period_s, rtol=1e-9, atol=0.0
        ):
            template = template.resampled(sampling_period_s)
        column = np.zeros(len(cir), dtype=complex)
        place_pulse(
            column,
            template.samples.astype(complex),
            response.index,
            amplitude=1.0,
            peak_index=template.peak_index,
        )
        columns.append(column)
    dictionary = np.stack(columns, axis=1)
    amplitudes, *_ = np.linalg.lstsq(dictionary, cir, rcond=None)
    return [
        replace(response, amplitude=complex(amplitude))
        for response, amplitude in zip(responses, amplitudes)
    ]
