"""repro — reproduction of "Concurrent Ranging with Ultra-Wideband Radios:
From Experimental Evidence to a Practical Solution" (ICDCS 2018).

A full UWB concurrent-ranging stack in pure Python:

* :mod:`repro.signal` — pulse synthesis (``TC_PGDELAY`` shaping) and
  resampling.
* :mod:`repro.channel` — multipath channel models (geometric and
  stochastic).
* :mod:`repro.radio` — a behavioural Decawave DW1000 model (CIR
  accumulator, timestamps, frame timing, energy).
* :mod:`repro.netsim` — a discrete-event network simulator with signal
  superposition.
* :mod:`repro.protocol` — SS-TWR, scheduled ranging, and the concurrent
  ranging protocol.
* :mod:`repro.core` — the paper's contribution: search-and-subtract
  detection, pulse-shape identification, response position modulation,
  and the combined scalable scheme.
* :mod:`repro.localization` — anchor-based positioning on top of
  concurrent ranging (the paper's future-work direction).
* :mod:`repro.analysis` — metrics and result tables.
* :mod:`repro.experiments` — one module per paper table/figure.
* :mod:`repro.runtime` — deterministic trial executor (serial and
  multiprocessing), artifact caches, and runtime metrics.

Quickstart::

    from repro.protocol import ConcurrentRangingSession
    session = ConcurrentRangingSession.build(
        responder_distances_m=[3.0, 6.0, 10.0], seed=42
    )
    result = session.run_round()
    print(result.distances_m)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
