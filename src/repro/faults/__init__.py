"""repro.faults — deterministic, seedable fault injection.

A :class:`FaultPlan` composes :class:`FaultInjector` instances into a
reproducible perturbation schedule; activating it yields an
:class:`ActiveFaults` runtime whose hooks the protocol, medium, and
radio seams consult.  An empty plan is a guaranteed zero-cost
pass-through: simulations are bit-identical with and without the fault
machinery.

Quickstart::

    from repro.faults import (
        FaultPlan, ResponderDropout, ImpulsiveInterference,
    )
    from repro.protocol.concurrent import ConcurrentRangingSession

    session = ConcurrentRangingSession.build(
        [3.0, 6.0, 10.0], n_shapes=3, seed=7,
        faults=FaultPlan(
            [ResponderDropout(0.2), ImpulsiveInterference(0.3)],
            seed=99,
        ),
    )
    result = session.run_round(round_index=0)
    print(result.fault_events)            # what was injected
    print(session.active_faults.counts)   # totals by injector
"""

from repro.faults.attacks import (
    ATTACK_KINDS,
    EarlyReplyAttacker,
    GhostPeakInjector,
    PulseShapeSpoofer,
    ReciprocityTamper,
)
from repro.faults.injectors import (
    CirSaturation,
    ClockDriftRamp,
    ImpulsiveInterference,
    NlosOnset,
    PollLoss,
    ReplyJitter,
    ResponderDropout,
)
from repro.faults.plan import (
    ActiveFaults,
    FaultContext,
    FaultInjector,
    FaultPlan,
)

__all__ = [
    "ATTACK_KINDS",
    "ActiveFaults",
    "CirSaturation",
    "ClockDriftRamp",
    "EarlyReplyAttacker",
    "FaultContext",
    "FaultInjector",
    "FaultPlan",
    "GhostPeakInjector",
    "ImpulsiveInterference",
    "NlosOnset",
    "PollLoss",
    "PulseShapeSpoofer",
    "ReciprocityTamper",
    "ReplyJitter",
    "ResponderDropout",
]
