"""Adversarial injectors: UWB distance-manipulation attacks.

Concurrent ranging's core mechanisms — response position modulation and
pulse-shape identification over one shared CIR — are exactly the surface
that distance-manipulation attacks on UWB ranging target.  Each injector
here models one attacker from the literature, driven by the same
:class:`~repro.faults.plan.FaultPlan` / per-injector ``SeedSequence``
machinery as the benign fault injectors (deterministic under a fixed
seed, zero-cost when the plan is empty):

* :class:`GhostPeakInjector` — an external attacker injects pulses into
  the CIR *ahead* of the true leading edge, shortening the measured
  distance (Cicada/ghost-peak family; cf. arXiv 2406.06252).
* :class:`EarlyReplyAttacker` — a compromised responder replies before
  its RPM slot, committing to a reply time without knowledge of the
  secret time-hopping offset (it cannot: the hop is derived per round
  from a secret the attacker does not hold).
* :class:`PulseShapeSpoofer` — the attacker transmits a victim
  responder's template shape, forging the victim's identity at an
  attacker-chosen CIR position.
* :class:`ReciprocityTamper` — asymmetric perturbation of the CIR's
  feature structure (leading edge vs. tail energy), the
  channel-reciprocity attack surface of arXiv 2405.18255.

All parameters are validated eagerly at construction; an attacker with
``probability=0`` is inert and leaves every capture object-identical to
the clean path.
"""

from __future__ import annotations

import numpy as np

from repro.constants import CIR_SAMPLING_PERIOD_S
from repro.faults.injectors import _id_set, _validate_probability
from repro.faults.plan import FaultInjector
from repro.signal.pulses import dw1000_pulse

__all__ = [
    "ATTACK_KINDS",
    "EarlyReplyAttacker",
    "GhostPeakInjector",
    "PulseShapeSpoofer",
    "ReciprocityTamper",
]

#: Fault-event kinds that are *attacks* (as opposed to benign faults);
#: the campaign layer counts these under ``faults.attacks_injected`` and
#: the security study uses them as per-round attack ground truth.
ATTACK_KINDS = frozenset(
    {"ghost_peak", "early_reply", "shape_spoof", "reciprocity_tamper"}
)


def _validate_positive(name: str, value: float) -> float:
    value = float(value)
    if not value > 0.0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def _validate_non_negative(name: str, value: float) -> float:
    value = float(value)
    if value < 0.0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


def _leading_edge_tap(
    magnitude: np.ndarray, noise_std: float, multiplier: float = 10.0
) -> int:
    """First tap whose magnitude clears the noise gate (attacker's view
    of the leading edge); falls back to the global peak in deep noise."""
    threshold = multiplier * max(noise_std, 1e-15)
    above = np.flatnonzero(magnitude > threshold)
    if len(above):
        return int(above[0])
    return int(np.argmax(magnitude))


class GhostPeakInjector(FaultInjector):
    """Inject attacker pulses ahead of the true leading edge.

    With probability ``probability`` per capture, the segment of
    ``width_taps`` taps starting at the observed leading edge — i.e. the
    earliest legitimate response's own pulse, the most plausible
    waveform an attacker can replay — is copied ``advance_taps`` earlier
    into the CIR, scaled to ``amplitude_scale`` times its original
    amplitude.  First-path detection locks onto the ghost: the receive
    timestamp (and with it the anchor TWR distance) moves early by
    ``advance_taps`` x ~1 ns, shortening every derived distance.
    """

    name = "ghost_peak"

    def __init__(
        self,
        probability: float = 1.0,
        advance_taps: int = 30,
        amplitude_scale: float = 1.0,
        width_taps: int = 24,
    ) -> None:
        self.probability = _validate_probability("probability", probability)
        if int(advance_taps) < 1:
            raise ValueError(
                f"advance_taps must be >= 1, got {advance_taps}"
            )
        self.advance_taps = int(advance_taps)
        self.amplitude_scale = _validate_positive(
            "amplitude_scale", amplitude_scale
        )
        if int(width_taps) < 1:
            raise ValueError(f"width_taps must be >= 1, got {width_taps}")
        self.width_taps = int(width_taps)

    def transform_cir(self, ctx, samples, noise_std, rng) -> np.ndarray:
        if self.probability <= 0.0 or len(samples) == 0:
            return samples
        if self.probability < 1.0 and rng.random() >= self.probability:
            return samples
        magnitude = np.abs(samples)
        edge = _leading_edge_tap(magnitude, noise_std)
        start = max(0, edge - self.advance_taps)
        if start == edge:
            # Leading edge already at tap 0: nowhere earlier to inject.
            return samples
        segment = samples[edge : edge + self.width_taps]
        out = np.array(samples, dtype=complex, copy=True)
        span = min(len(segment), len(out) - start)
        out[start : start + span] += self.amplitude_scale * segment[:span]
        return out


class EarlyReplyAttacker(FaultInjector):
    """A compromised responder replies before its RPM slot.

    With probability ``probability`` per round, the targeted responder's
    reply is hijacked: it transmits ``advance_s`` *early* relative to
    its nominal schedule, and — crucially — without the secret
    time-hopping offset, which the attacker-controlled firmware cannot
    derive.  Without defenses the early reply shortens the measured
    distance by ``advance_s * c / 2``; with time-hopping verification
    the missing hop lands the reply outside the expected window.
    """

    name = "early_reply"

    def __init__(
        self,
        advance_s: float,
        probability: float = 1.0,
        responder_ids=None,
    ) -> None:
        self.advance_s = _validate_non_negative("advance_s", advance_s)
        self.probability = _validate_probability("probability", probability)
        self.responder_ids = _id_set(responder_ids)

    def reply_time_override_s(
        self, ctx, responder_id, scheduled_s, hop_s, rng
    ) -> float:
        if (
            self.responder_ids is not None
            and responder_id not in self.responder_ids
        ):
            return scheduled_s
        if self.probability <= 0.0:
            return scheduled_s
        if self.probability < 1.0 and rng.random() >= self.probability:
            return scheduled_s
        return scheduled_s - hop_s - self.advance_s


class PulseShapeSpoofer(FaultInjector):
    """Transmit a victim responder's template shape.

    The attacker synthesises the pulse shape of ``register`` (a victim's
    ``TC_PGDELAY`` value — pulse shapes are public, only the hop secret
    is not) and injects it ``advance_taps`` ahead of the observed
    leading edge, scaled to ``amplitude_scale`` times the capture's peak
    magnitude.  The classifier decodes the forged pulse as the victim's
    identity, yielding a duplicate (and shortened) reading for that
    responder.
    """

    name = "shape_spoof"

    def __init__(
        self,
        register: int,
        probability: float = 1.0,
        advance_taps: int = 30,
        amplitude_scale: float = 1.0,
    ) -> None:
        self.register = int(register)
        self.probability = _validate_probability("probability", probability)
        if int(advance_taps) < 1:
            raise ValueError(
                f"advance_taps must be >= 1, got {advance_taps}"
            )
        self.advance_taps = int(advance_taps)
        self.amplitude_scale = _validate_positive(
            "amplitude_scale", amplitude_scale
        )
        # Eager: an invalid register raises here, not mid-round.
        pulse = dw1000_pulse(
            self.register, sampling_period_s=CIR_SAMPLING_PERIOD_S
        )
        self._waveform = np.asarray(pulse.samples, dtype=float)
        self._waveform_peak = float(np.max(np.abs(self._waveform)))

    def transform_cir(self, ctx, samples, noise_std, rng) -> np.ndarray:
        if self.probability <= 0.0 or len(samples) == 0:
            return samples
        if self.probability < 1.0 and rng.random() >= self.probability:
            return samples
        magnitude = np.abs(samples)
        edge = _leading_edge_tap(magnitude, noise_std)
        start = max(0, edge - self.advance_taps)
        if start == edge:
            return samples
        peak = float(magnitude.max())
        if peak <= 0.0:
            peak = max(noise_std, 1e-12)
        scale = self.amplitude_scale * peak / self._waveform_peak
        out = np.array(samples, dtype=complex, copy=True)
        span = min(len(self._waveform), len(out) - start)
        out[start : start + span] += scale * self._waveform[:span]
        return out


class ReciprocityTamper(FaultInjector):
    """Asymmetric tampering of the CIR's feature structure.

    With probability ``probability`` per capture, the rising edge (taps
    from the leading edge up to the peak) is attenuated by
    ``edge_attenuation`` and the diffuse tail (``tail_width_taps`` taps
    starting ``tail_start_taps`` after the peak) is scaled by
    ``tail_gain`` — perturbing exactly the leading-edge-to-peak gap,
    template-score margin, and energy-profile features that
    channel-reciprocity checks rely on, without moving the peak itself.
    """

    name = "reciprocity_tamper"

    def __init__(
        self,
        probability: float = 1.0,
        edge_attenuation: float = 0.5,
        tail_gain: float = 2.0,
        tail_start_taps: int = 4,
        tail_width_taps: int = 32,
    ) -> None:
        self.probability = _validate_probability("probability", probability)
        self.edge_attenuation = _validate_probability(
            "edge_attenuation", edge_attenuation
        )
        self.tail_gain = _validate_non_negative("tail_gain", tail_gain)
        if int(tail_start_taps) < 1:
            raise ValueError(
                f"tail_start_taps must be >= 1, got {tail_start_taps}"
            )
        self.tail_start_taps = int(tail_start_taps)
        if int(tail_width_taps) < 1:
            raise ValueError(
                f"tail_width_taps must be >= 1, got {tail_width_taps}"
            )
        self.tail_width_taps = int(tail_width_taps)

    def transform_cir(self, ctx, samples, noise_std, rng) -> np.ndarray:
        if self.probability <= 0.0 or len(samples) == 0:
            return samples
        if self.probability < 1.0 and rng.random() >= self.probability:
            return samples
        if self.edge_attenuation == 0.0 and self.tail_gain == 1.0:
            return samples
        magnitude = np.abs(samples)
        peak = int(np.argmax(magnitude))
        edge = _leading_edge_tap(magnitude, noise_std)
        out = np.array(samples, dtype=complex, copy=True)
        if edge < peak and self.edge_attenuation > 0.0:
            out[edge:peak] *= 1.0 - self.edge_attenuation
        tail_start = peak + self.tail_start_taps
        if tail_start < len(out) and self.tail_gain != 1.0:
            out[tail_start : tail_start + self.tail_width_taps] *= (
                self.tail_gain
            )
        return out
