"""Concrete fault injectors.

Each injector models one perturbation class the UWB literature shows to
matter for concurrent ranging:

* :class:`ResponderDropout` / :class:`PollLoss` — missing responders and
  lost INIT (poll) frames, the paper's own robustness narrative.
* :class:`ReplyJitter` — Gaussian reply-delay jitter plus occasional
  time-hopping spikes (Gou et al., *Resilient Random Time-hopping Reply
  against Distance Attacks in UWB Ranging*).
* :class:`ClockDriftRamp` — a crystal slowly walking away from its
  nominal rate, stressing the CFO-based drift compensation.
* :class:`ImpulsiveInterference` — short high-amplitude bursts added to
  the CIR accumulator (Radunović et al., *Performance of UWB Impulse
  Radio in Presence of Impulsive Interference*).
* :class:`CirSaturation` — accumulator clipping: strong taps compress,
  flattening the very amplitude structure pulse-shape identification
  relies on.
* :class:`NlosOnset` — the LOS path disappears mid-campaign (a door
  closes, a person steps into the corridor), biasing first-path
  detection late.

All decisions are drawn from the injector's dedicated stream handed in
by :class:`~repro.faults.plan.ActiveFaults`; nothing touches the
simulation's own generators.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set

import numpy as np

from repro.faults.plan import FaultContext, FaultInjector

__all__ = [
    "ResponderDropout",
    "PollLoss",
    "ReplyJitter",
    "ClockDriftRamp",
    "ImpulsiveInterference",
    "CirSaturation",
    "NlosOnset",
]


def _validate_probability(name: str, value: float) -> float:
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value


def _id_set(responder_ids) -> Optional[Set[int]]:
    if responder_ids is None:
        return None
    ids = {int(r) for r in responder_ids}
    if not ids:
        raise ValueError("responder_ids, when given, must be non-empty")
    return ids


class ResponderDropout(FaultInjector):
    """A responder decodes the INIT but stays silent this round.

    Models hardware resets, TX queue overruns, or a busy radio — the
    responder consumed the poll but never keyed its reply.
    """

    name = "dropout"

    def __init__(self, probability: float, responder_ids=None) -> None:
        self.probability = _validate_probability("probability", probability)
        self.responder_ids = _id_set(responder_ids)

    def drops_response(self, ctx, responder_id, rng) -> bool:
        if (
            self.responder_ids is not None
            and responder_id not in self.responder_ids
        ):
            return False
        return bool(rng.random() < self.probability)


class PollLoss(FaultInjector):
    """The INIT (poll) frame is lost on the downlink to a responder.

    Unlike :class:`ResponderDropout` the responder never learns the
    round happened — no RX energy is spent and no reply is scheduled.
    """

    name = "poll_loss"

    def __init__(self, probability: float, responder_ids=None) -> None:
        self.probability = _validate_probability("probability", probability)
        self.responder_ids = _id_set(responder_ids)

    def drops_init(self, ctx, responder_id, rng) -> bool:
        if (
            self.responder_ids is not None
            and responder_id not in self.responder_ids
        ):
            return False
        return bool(rng.random() < self.probability)


class ReplyJitter(FaultInjector):
    """Reply-delay jitter and time-hopping spikes.

    ``std_s`` adds zero-mean Gaussian jitter to every reply; with
    probability ``spike_probability`` an additional ``spike_s`` hop is
    applied — the adversarial/time-hopping perturbation of Gou et al.
    Positive offsets delay the reply (reads long); the spike may be
    negative to model early replies.
    """

    name = "reply_jitter"

    def __init__(
        self,
        std_s: float = 0.0,
        spike_probability: float = 0.0,
        spike_s: float = 0.0,
    ) -> None:
        if std_s < 0:
            raise ValueError(f"std_s must be >= 0, got {std_s}")
        self.std_s = float(std_s)
        self.spike_probability = _validate_probability(
            "spike_probability", spike_probability
        )
        self.spike_s = float(spike_s)
        if self.std_s == 0.0 and (
            self.spike_probability == 0.0 or self.spike_s == 0.0
        ):
            raise ValueError(
                "ReplyJitter without std_s or spike parameters injects "
                "nothing; configure at least one"
            )

    def reply_delay_offset_s(self, ctx, responder_id, rng) -> float:
        offset = 0.0
        if self.std_s > 0.0:
            offset += float(rng.normal(0.0, self.std_s))
        if self.spike_probability > 0.0 and self.spike_s != 0.0:
            if rng.random() < self.spike_probability:
                offset += self.spike_s
        return offset


class ClockDriftRamp(FaultInjector):
    """Clock drift growing linearly with the round index.

    ``ppm_per_round`` accumulates each round up to ``max_ppm`` — a
    crystal warming up or aging.  The initiator's CFO estimate tracks
    the *nominal* clock, so the ramp shows up as a growing ranging bias.
    """

    name = "drift_ramp"

    def __init__(
        self,
        ppm_per_round: float,
        max_ppm: float = 50.0,
        responder_ids=None,
    ) -> None:
        if ppm_per_round == 0.0:
            raise ValueError("ppm_per_round must be non-zero")
        if max_ppm <= 0:
            raise ValueError(f"max_ppm must be positive, got {max_ppm}")
        self.ppm_per_round = float(ppm_per_round)
        self.max_ppm = float(max_ppm)
        self.responder_ids = _id_set(responder_ids)

    def clock_drift_offset_ppm(self, ctx, responder_id, rng) -> float:
        if (
            self.responder_ids is not None
            and responder_id not in self.responder_ids
        ):
            return 0.0
        ramp = self.ppm_per_round * ctx.round_index
        return float(np.clip(ramp, -self.max_ppm, self.max_ppm))


class ImpulsiveInterference(FaultInjector):
    """Impulsive bursts added to the captured CIR.

    With probability ``burst_probability`` per capture, ``n_bursts``
    short complex spikes are added at random taps, each scaled to
    ``amplitude_scale`` times the capture's peak magnitude and decaying
    over ``burst_width_taps`` taps.  Strong bursts create phantom peaks
    that the detector must reject (or mistake for responses — the
    degradation the chaos sweep measures).
    """

    name = "interference"

    def __init__(
        self,
        burst_probability: float = 1.0,
        amplitude_scale: float = 1.0,
        n_bursts: int = 1,
        burst_width_taps: int = 3,
    ) -> None:
        self.burst_probability = _validate_probability(
            "burst_probability", burst_probability
        )
        if amplitude_scale <= 0:
            raise ValueError(
                f"amplitude_scale must be positive, got {amplitude_scale}"
            )
        if n_bursts < 1:
            raise ValueError(f"n_bursts must be >= 1, got {n_bursts}")
        if burst_width_taps < 1:
            raise ValueError(
                f"burst_width_taps must be >= 1, got {burst_width_taps}"
            )
        self.amplitude_scale = float(amplitude_scale)
        self.n_bursts = int(n_bursts)
        self.burst_width_taps = int(burst_width_taps)

    def transform_cir(self, ctx, samples, noise_std, rng) -> np.ndarray:
        if self.burst_probability < 1.0 and rng.random() >= self.burst_probability:
            return samples
        out = np.array(samples, dtype=complex, copy=True)
        peak = float(np.max(np.abs(out))) if len(out) else 0.0
        if peak <= 0.0:
            peak = max(noise_std, 1e-12)
        amplitude = self.amplitude_scale * peak
        for _ in range(self.n_bursts):
            tap = int(rng.integers(0, len(out)))
            phase = float(rng.uniform(0.0, 2.0 * np.pi))
            spike = amplitude * np.exp(1j * phase)
            for k in range(self.burst_width_taps):
                if tap + k >= len(out):
                    break
                out[tap + k] += spike * (0.5 ** k)
        return out


class CirSaturation(FaultInjector):
    """Accumulator saturation: tap magnitudes clip at a peak fraction.

    Every tap whose magnitude exceeds ``clip_fraction`` times the
    capture's peak is compressed onto that limit (phase preserved).
    ``clip_fraction == 1.0`` never fires; lower values flatten the
    amplitude structure identification depends on.
    """

    name = "saturation"

    def __init__(self, clip_fraction: float) -> None:
        clip_fraction = float(clip_fraction)
        if not 0.0 < clip_fraction <= 1.0:
            raise ValueError(
                f"clip_fraction must be in (0, 1], got {clip_fraction}"
            )
        self.clip_fraction = clip_fraction

    def transform_cir(self, ctx, samples, noise_std, rng) -> np.ndarray:
        if self.clip_fraction >= 1.0 or len(samples) == 0:
            return samples
        magnitude = np.abs(samples)
        limit = self.clip_fraction * float(magnitude.max())
        if limit <= 0.0:
            return samples
        mask = magnitude > limit
        if not np.any(mask):
            return samples
        out = np.array(samples, dtype=complex, copy=True)
        out[mask] *= limit / magnitude[mask]
        return out


class NlosOnset(FaultInjector):
    """The LOS path disappears from round ``onset_round`` onwards.

    Channels on the configured links (default: all) lose their LOS tap
    (or keep it attenuated to ``attenuation`` times its amplitude) —
    first-path detection then locks onto a reflection and every range
    reads long, the classic NLOS bias.
    """

    name = "nlos_onset"

    def __init__(
        self,
        onset_round: int = 0,
        attenuation: float = 0.0,
        links: Optional[Iterable] = None,
    ) -> None:
        if onset_round < 0:
            raise ValueError(
                f"onset_round must be >= 0, got {onset_round}"
            )
        if attenuation < 0:
            raise ValueError(
                f"attenuation must be >= 0, got {attenuation}"
            )
        self.onset_round = int(onset_round)
        self.attenuation = float(attenuation)
        self.links = (
            None
            if links is None
            else {frozenset((int(a), int(b))) for a, b in links}
        )

    def transform_channel(self, ctx, a_id, b_id, channel, rng):
        if ctx.round_index < self.onset_round:
            return channel
        if self.links is not None and frozenset((a_id, b_id)) not in self.links:
            return channel
        if channel.los_tap is None:
            return channel
        try:
            return channel.without_los(self.attenuation)
        except ValueError:
            # Removing the LOS would leave no taps at all: keep the
            # channel rather than destroying the link entirely.
            return channel
