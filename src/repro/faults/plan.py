"""Deterministic, seedable fault injection — the plan and its runtime.

The paper's whole pitch is that concurrent ranging survives messy
reality: missing responders, overlapping replies, NLOS onset, impulsive
interference.  This module provides a *first-class* fault model so that
graceful degradation can be measured instead of stumbled upon:

* A :class:`FaultInjector` declares narrow hooks — drop an INIT, silence
  a responder, jitter a reply delay, ramp a clock, transform a channel
  realization, corrupt a CIR.  Every hook defaults to a zero-cost
  pass-through, so an empty plan leaves the simulation *bit-identical*
  to a run without any fault machinery.
* A :class:`FaultPlan` is an immutable, seedable composition of
  injectors.  Activating a plan derives one independent
  ``numpy.random.Generator`` per injector from
  ``SeedSequence(plan.seed)`` — the same contract as the trial executor
  (:mod:`repro.runtime.executor`): fault decisions depend only on the
  plan seed and the (deterministic) order of hook invocations, never on
  the worker count or schedule.  The simulation's own random streams are
  untouched by fault draws.
* The :class:`ActiveFaults` runtime aggregates the injectors, records
  every perturbation it actually applied (``counts`` by injector name,
  per-round ``round_events``), and exposes the composed channel/CIR
  transforms that the :class:`~repro.netsim.medium.Medium` and
  :class:`~repro.radio.dw1000.DW1000Radio` seams accept.

Per-trial variation in Monte-Carlo experiments comes from
:meth:`FaultPlan.with_seed`::

    plan = FaultPlan([ResponderDropout(0.3)], seed=99)
    session.attach_faults(plan.with_seed((99, trial_index)))

which keeps serial and parallel campaign results byte-identical for any
worker count.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["FaultContext", "FaultInjector", "FaultPlan", "ActiveFaults"]


class FaultContext:
    """Where in the campaign a fault hook fires.

    Attributes
    ----------
    round_index:
        Zero-based round number within the campaign (retries of one
        round share the index; ``attempt`` distinguishes them).
    time_s:
        Global start time of the round.
    n_responders:
        Responder count of the session.
    attempt:
        Zero-based retry attempt of this round.
    """

    __slots__ = ("round_index", "time_s", "n_responders", "attempt")

    def __init__(
        self,
        round_index: int = 0,
        time_s: float = 0.0,
        n_responders: int = 0,
        attempt: int = 0,
    ) -> None:
        self.round_index = int(round_index)
        self.time_s = float(time_s)
        self.n_responders = int(n_responders)
        self.attempt = int(attempt)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultContext(round={self.round_index}, t={self.time_s:.6f}, "
            f"responders={self.n_responders}, attempt={self.attempt})"
        )


class FaultInjector:
    """Base injector: every hook is a no-op pass-through.

    Subclasses override the hooks they perturb and set ``name`` — the key
    under which applied faults are counted and annotated.  Hooks receive
    a dedicated ``numpy.random.Generator`` (one stream per injector,
    derived from the plan seed); they must *never* draw from any other
    random source, which is what keeps fault injection deterministic and
    side-effect-free for the simulation's own streams.
    """

    #: Counting/annotation key; override in subclasses.
    name: str = "fault"

    def on_round(self, ctx: FaultContext, rng: np.random.Generator) -> None:
        """Called once when a round begins (advance ramps, roll state)."""

    def drops_init(
        self, ctx: FaultContext, responder_id: int, rng: np.random.Generator
    ) -> bool:
        """``True``: this responder never decodes the INIT/poll frame."""
        return False

    def drops_response(
        self, ctx: FaultContext, responder_id: int, rng: np.random.Generator
    ) -> bool:
        """``True``: the responder decodes INIT but stays silent."""
        return False

    def reply_delay_offset_s(
        self, ctx: FaultContext, responder_id: int, rng: np.random.Generator
    ) -> float:
        """Additive perturbation of the programmed reply delay [s]."""
        return 0.0

    def reply_time_override_s(
        self,
        ctx: FaultContext,
        responder_id: int,
        scheduled_s: float,
        hop_s: float,
        rng: np.random.Generator,
    ) -> float:
        """Return a replacement for the scheduled reply instant [s, local].

        ``scheduled_s`` is the responder's fully-composed TX schedule —
        common reply delay, RPM slot delay, the secret time-hopping
        offset ``hop_s`` (0.0 when no defense is attached), and any
        additive jitter already applied.  Adversarial injectors that
        model a *hijacked* reply (a compromised responder or an attacker
        transmitting in its place) override this hook: they may strip
        ``hop_s`` — an attacker does not know the per-round secret — and
        move the reply at will.  Return ``scheduled_s`` unchanged
        (*the same value*) to signal "untouched".
        """
        return scheduled_s

    def clock_drift_offset_ppm(
        self, ctx: FaultContext, responder_id: int, rng: np.random.Generator
    ) -> float:
        """Extra clock drift [ppm] applied to the responder this round."""
        return 0.0

    def transform_channel(
        self,
        ctx: FaultContext,
        a_id: int,
        b_id: int,
        channel,
        rng: np.random.Generator,
    ):
        """Return a (possibly) perturbed channel realization for a link.

        Return the *same object* to signal "untouched" — identity is how
        the runtime decides whether to count a fault.
        """
        return channel

    def transform_cir(
        self,
        ctx: FaultContext,
        samples: np.ndarray,
        noise_std: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Return a (possibly) corrupted copy of the captured CIR.

        Must not mutate ``samples`` in place; return the same array
        object to signal "untouched".
        """
        return samples

    # -- introspection -----------------------------------------------------

    @classmethod
    def _overrides(cls, hook: str) -> bool:
        return getattr(cls, hook) is not getattr(FaultInjector, hook)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class FaultPlan:
    """An immutable, seedable composition of fault injectors.

    Parameters
    ----------
    injectors:
        The injectors to apply, in order.  Order matters for composed
        transforms (e.g. interference *then* saturation) and is part of
        the deterministic contract.
    seed:
        Entropy for the per-injector random streams (int, sequence of
        ints, or ``numpy.random.SeedSequence``).  The same plan with the
        same seed always makes the same decisions.
    """

    def __init__(
        self, injectors: Iterable[FaultInjector] = (), seed=0
    ) -> None:
        self.injectors: Tuple[FaultInjector, ...] = tuple(injectors)
        for injector in self.injectors:
            if not isinstance(injector, FaultInjector):
                raise TypeError(
                    f"expected FaultInjector instances, got {injector!r}"
                )
        if not isinstance(seed, np.random.SeedSequence):
            # Eager validation: a bad seed (float, string, nested junk)
            # must fail at plan construction with a clear message, not
            # deep inside activate() at injection time.
            try:
                np.random.SeedSequence(seed)
            except (TypeError, ValueError) as error:
                raise ValueError(
                    f"FaultPlan seed must be an int, a sequence of ints, "
                    f"or a numpy SeedSequence, got {seed!r}: {error}"
                ) from error
        self.seed = seed

    @property
    def is_empty(self) -> bool:
        return len(self.injectors) == 0

    def __len__(self) -> int:
        return len(self.injectors)

    def with_seed(self, seed) -> "FaultPlan":
        """The same injectors under different entropy (per-trial use)."""
        return FaultPlan(self.injectors, seed=seed)

    def activate(self) -> "ActiveFaults":
        """Fresh runtime state: per-injector generators from the seed."""
        return ActiveFaults(self)

    def describe(self) -> str:
        """One-line human-readable summary of the plan."""
        if self.is_empty:
            return "FaultPlan(empty)"
        names = ", ".join(injector.name for injector in self.injectors)
        return f"FaultPlan([{names}], seed={self.seed!r})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.describe()


class ActiveFaults:
    """Runtime state of an activated :class:`FaultPlan`.

    Aggregates hook results over the plan's injectors, owns one random
    stream per injector, and records every perturbation that was
    actually applied:

    * ``counts`` — total applied faults keyed by injector name.
    * ``round_events`` — ``(responder_id_or_None, kind)`` tuples for the
      round currently in flight (reset by :meth:`begin_round`).
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        if isinstance(plan.seed, np.random.SeedSequence):
            root = plan.seed
        else:
            root = np.random.SeedSequence(plan.seed)
        children = root.spawn(max(1, len(plan.injectors)))
        self._rngs: List[np.random.Generator] = [
            np.random.default_rng(child) for child in children
        ]
        self.counts: Dict[str, int] = {}
        self.round_events: List[Tuple[Optional[int], str]] = []
        # Pre-resolve which injectors override the transform hooks so
        # the pass-through cost of an inactive hook is a None check.
        self._channel_injectors = [
            (i, injector)
            for i, injector in enumerate(plan.injectors)
            if type(injector)._overrides("transform_channel")
        ]
        self._cir_injectors = [
            (i, injector)
            for i, injector in enumerate(plan.injectors)
            if type(injector)._overrides("transform_cir")
        ]
        self._override_injectors = [
            (i, injector)
            for i, injector in enumerate(plan.injectors)
            if type(injector)._overrides("reply_time_override_s")
        ]

    # -- bookkeeping -------------------------------------------------------

    @property
    def total_injected(self) -> int:
        return sum(self.counts.values())

    def _note(self, responder_id: Optional[int], kind: str) -> None:
        self.counts[kind] = self.counts.get(kind, 0) + 1
        self.round_events.append((responder_id, kind))

    def events_for(self, responder_id: int) -> Tuple[str, ...]:
        """Fault kinds recorded for one responder in the current round."""
        return tuple(
            kind for rid, kind in self.round_events if rid == responder_id
        )

    # -- aggregate hooks ---------------------------------------------------

    def begin_round(self, ctx: FaultContext) -> None:
        self.round_events = []
        for injector, rng in zip(self.plan.injectors, self._rngs):
            injector.on_round(ctx, rng)

    def init_lost(self, ctx: FaultContext, responder_id: int) -> bool:
        lost = False
        for injector, rng in zip(self.plan.injectors, self._rngs):
            if injector.drops_init(ctx, responder_id, rng):
                self._note(responder_id, injector.name)
                lost = True
        return lost

    def responder_dropped(self, ctx: FaultContext, responder_id: int) -> bool:
        dropped = False
        for injector, rng in zip(self.plan.injectors, self._rngs):
            if injector.drops_response(ctx, responder_id, rng):
                self._note(responder_id, injector.name)
                dropped = True
        return dropped

    def reply_delay_offset_s(
        self, ctx: FaultContext, responder_id: int
    ) -> float:
        total = 0.0
        for injector, rng in zip(self.plan.injectors, self._rngs):
            offset = injector.reply_delay_offset_s(ctx, responder_id, rng)
            if offset != 0.0:
                self._note(responder_id, injector.name)
                total += offset
        return total

    def clock_drift_offset_ppm(
        self, ctx: FaultContext, responder_id: int
    ) -> float:
        total = 0.0
        for injector, rng in zip(self.plan.injectors, self._rngs):
            offset = injector.clock_drift_offset_ppm(ctx, responder_id, rng)
            if offset != 0.0:
                self._note(responder_id, injector.name)
                total += offset
        return total

    def reply_time_override_s(
        self,
        ctx: FaultContext,
        responder_id: int,
        scheduled_s: float,
        hop_s: float = 0.0,
    ) -> float:
        """The composed reply-schedule hijack seam.

        Zero-cost pass-through when no injector overrides the hook; a
        changed return value counts as an applied fault for the
        overriding injector.
        """
        if not self._override_injectors:
            return scheduled_s
        for i, injector in self._override_injectors:
            overridden = injector.reply_time_override_s(
                ctx, responder_id, scheduled_s, hop_s, self._rngs[i]
            )
            if overridden != scheduled_s:
                self._note(responder_id, injector.name)
            scheduled_s = overridden
        return scheduled_s

    def channel_transform(
        self, ctx: FaultContext
    ) -> Optional[Callable]:
        """The composed channel seam, or ``None`` when no injector
        perturbs channels (zero-cost pass-through for the medium)."""
        if not self._channel_injectors:
            return None

        def transform(a_id: int, b_id: int, channel):
            for i, injector in self._channel_injectors:
                perturbed = injector.transform_channel(
                    ctx, a_id, b_id, channel, self._rngs[i]
                )
                if perturbed is not channel:
                    self._note(None, injector.name)
                channel = perturbed
            return channel

        return transform

    def cir_transform(self, ctx: FaultContext) -> Optional[Callable]:
        """The composed CIR seam, or ``None`` when no injector corrupts
        captures (zero-cost pass-through for the radio)."""
        if not self._cir_injectors:
            return None

        def transform(samples: np.ndarray, noise_std: float = 0.0) -> np.ndarray:
            for i, injector in self._cir_injectors:
                corrupted = injector.transform_cir(
                    ctx, samples, noise_std, self._rngs[i]
                )
                if corrupted is not samples:
                    self._note(None, injector.name)
                samples = corrupted
            return samples

        return transform
