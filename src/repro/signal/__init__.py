"""Signal-level building blocks: UWB pulse synthesis and resampling.

This subpackage models the *transmitted pulse* side of the paper:

* :mod:`repro.signal.pulses` — analytic band-limited pulse templates whose
  width is controlled by the DW1000 ``TC_PGDELAY`` register (paper Fig. 5).
* :mod:`repro.signal.templates` — banks of unit-energy templates used by
  the matched-filter detector and the pulse-shape classifier.
* :mod:`repro.signal.sampling` — FFT-based upsampling and fractional
  delays (step 1 of the paper's detection algorithm).
* :mod:`repro.signal.spectrum` — bandwidth estimation and spectral-mask
  checks used to argue that wider pulses stay within regulations.
"""

from repro.signal.pulses import (
    Pulse,
    dw1000_pulse,
    narrowband_pulse,
    pulse_bandwidth_hz,
    pulse_width_factor,
    raised_cosine_pulse,
)
from repro.signal.templates import TemplateBank
from repro.signal.sampling import (
    fft_upsample,
    fractional_delay,
    place_pulse,
)
from repro.signal.spectrum import (
    estimate_bandwidth_3db,
    estimate_bandwidth_10db,
    power_spectrum,
    occupies_mask,
)

__all__ = [
    "Pulse",
    "dw1000_pulse",
    "narrowband_pulse",
    "pulse_bandwidth_hz",
    "pulse_width_factor",
    "raised_cosine_pulse",
    "TemplateBank",
    "fft_upsample",
    "fractional_delay",
    "place_pulse",
    "estimate_bandwidth_3db",
    "estimate_bandwidth_10db",
    "power_spectrum",
    "occupies_mask",
]
