"""Spectral analysis of pulse templates.

Used to verify the bandwidth side of the pulse-shaping argument in the
paper's Sect. V: widening the pulse *reduces* the occupied bandwidth, so
all non-default shapes stay inside the regulatory spectral mask that the
default (maximum-bandwidth) pulse already satisfies.
"""

from __future__ import annotations

import numpy as np

from repro.signal.pulses import Pulse


def power_spectrum(
    pulse: Pulse, n_fft: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Two-sided power spectrum of a pulse template.

    Returns ``(frequencies_hz, power)`` with power normalised so its peak
    is 1.  ``n_fft`` defaults to 16x the template length for a smooth
    spectrum estimate.
    """
    if n_fft is None:
        n_fft = 16 * len(pulse.samples)
    spectrum = np.fft.fftshift(np.fft.fft(pulse.samples, n=n_fft))
    power = np.abs(spectrum) ** 2
    peak = float(np.max(power))
    if peak == 0.0:
        raise ValueError("cannot analyse an all-zero pulse")
    power = power / peak
    freqs = np.fft.fftshift(np.fft.fftfreq(n_fft, d=pulse.sampling_period_s))
    return freqs, power


def _bandwidth_at_level(pulse: Pulse, level: float) -> float:
    """Two-sided bandwidth where the power spectrum stays above ``level``."""
    freqs, power = power_spectrum(pulse)
    above = freqs[power >= level]
    if len(above) == 0:
        return 0.0
    return float(above.max() - above.min())


def estimate_bandwidth_3db(pulse: Pulse) -> float:
    """-3 dB (half-power) two-sided bandwidth of a pulse [Hz]."""
    return _bandwidth_at_level(pulse, 0.5)


def estimate_bandwidth_10db(pulse: Pulse) -> float:
    """-10 dB two-sided bandwidth of a pulse [Hz] (the 802.15.4a UWB
    definition of occupied bandwidth)."""
    return _bandwidth_at_level(pulse, 0.1)


def occupies_mask(pulse: Pulse, mask_bandwidth_hz: float, level: float = 0.1) -> bool:
    """Whether a pulse's occupied bandwidth fits inside a mask.

    ``True`` means the pulse's power above ``level`` (default -10 dB) is
    confined to ``[-mask/2, +mask/2]``.  Because wider pulses have
    strictly smaller occupied bandwidth, every non-default ``TC_PGDELAY``
    shape passes any mask the default shape passes — the regulatory
    argument of the paper's Sect. V.
    """
    return _bandwidth_at_level(pulse, level) <= mask_bandwidth_hz
