"""FFT-based resampling and sub-sample signal placement.

Step 1 of the paper's detection algorithm upsamples the CIR "using fast
Fourier transform in order to obtain a smoother signal".  This module
implements that operation, plus the fractional (sub-sample) delays needed
to place responder pulses at physically exact path delays when the
simulated channel is synthesised.
"""

from __future__ import annotations

import numpy as np


def fft_upsample(signal: np.ndarray, factor: int) -> np.ndarray:
    """Upsample a signal by an integer factor via FFT zero-padding.

    This is the textbook band-limited interpolation used by the paper's
    step 1: transform, insert zeros at the high frequencies, inverse
    transform, rescale.  Works for real and complex signals; a real input
    yields a real output (up to float rounding, which we strip).

    Parameters
    ----------
    signal:
        1-D input array.
    factor:
        Integer upsampling factor >= 1.  ``factor == 1`` returns a copy.
    """
    signal = np.asarray(signal)
    if signal.ndim != 1:
        raise ValueError(f"expected a 1-D signal, got shape {signal.shape}")
    factor = int(factor)
    if factor < 1:
        raise ValueError(f"upsampling factor must be >= 1, got {factor}")
    if factor == 1:
        return signal.copy()

    n = len(signal)
    was_real = np.isrealobj(signal)
    spectrum = np.fft.fft(signal)
    padded = np.zeros(n * factor, dtype=complex)
    # Number of non-negative-frequency bins (DC included).  For odd n the
    # top positive-frequency bin is (n - 1) / 2, so the positive block
    # holds (n + 1) // 2 bins; using n // 2 would misfile that bin into
    # the negative-frequency block and corrupt the interpolant.
    half = (n + 1) // 2
    padded[:half] = spectrum[:half]
    if n > half:
        padded[-(n - half):] = spectrum[half:]
    # Split the Nyquist bin symmetrically for even-length inputs so a real
    # input stays real after interpolation (odd lengths have no Nyquist
    # bin, so no split is needed).
    if n % 2 == 0:
        padded[half] = spectrum[half] / 2.0
        padded[-half] = spectrum[half] / 2.0
    upsampled = np.fft.ifft(padded) * factor
    return upsampled.real if was_real else upsampled


def fft_upsample_batch(signals: np.ndarray, factor: int) -> np.ndarray:
    """Upsample a batch of equal-length signals in one 2-D FFT pass.

    ``signals`` is a ``(B, N)`` array; the result is ``(B, N * factor)``
    and row ``b`` equals ``fft_upsample(signals[b], factor)``.  The
    implementation applies *the same* spectral zero-padding as the 1-D
    function, just along ``axis=1`` of a single batched transform —
    pocketfft evaluates each row with the identical kernel, so the rows
    are byte-identical to individual :func:`fft_upsample` calls (and in
    any case agree to roundoff; ``tests/test_properties_detection.py``
    asserts ``rtol <= 1e-9``).

    This is the cross-*trial* batching the detection engine in
    :mod:`repro.core.batch` builds on: B Monte-Carlo CIRs share one
    forward and one inverse transform dispatch instead of 2 B.
    """
    signals = np.asarray(signals)
    if signals.ndim != 2:
        raise ValueError(
            f"expected a (B, N) batch of signals, got shape {signals.shape}"
        )
    factor = int(factor)
    if factor < 1:
        raise ValueError(f"upsampling factor must be >= 1, got {factor}")
    if factor == 1:
        return signals.copy()

    batch, n = signals.shape
    if n == 0:
        raise ValueError("cannot upsample zero-length signals")
    was_real = np.isrealobj(signals)
    spectrum = np.fft.fft(signals, axis=1)
    padded = np.zeros((batch, n * factor), dtype=complex)
    # Identical bin bookkeeping to fft_upsample (see comments there).
    half = (n + 1) // 2
    padded[:, :half] = spectrum[:, :half]
    if n > half:
        padded[:, -(n - half):] = spectrum[:, half:]
    if n % 2 == 0:
        padded[:, half] = spectrum[:, half] / 2.0
        padded[:, -half] = spectrum[:, half] / 2.0
    upsampled = np.fft.ifft(padded, axis=1) * factor
    return upsampled.real if was_real else upsampled


def fractional_delay(signal: np.ndarray, delay_samples: float) -> np.ndarray:
    """Delay a signal by a (possibly fractional) number of samples.

    Implemented as a linear phase ramp in the frequency domain, i.e.
    band-limited sinc interpolation with circular wrap-around.  Callers
    that must avoid wrap-around should zero-pad first.
    """
    signal = np.asarray(signal)
    if signal.ndim != 1:
        raise ValueError(f"expected a 1-D signal, got shape {signal.shape}")
    n = len(signal)
    was_real = np.isrealobj(signal)
    freqs = np.fft.fftfreq(n)
    shifted = np.fft.ifft(
        np.fft.fft(signal) * np.exp(-2j * np.pi * freqs * delay_samples)
    )
    return shifted.real if was_real else shifted


def placed_segment(
    pulse_samples: np.ndarray,
    peak_position_samples: float,
    peak_index: int | None = None,
) -> tuple:
    """The integer start index and (fractionally shifted) samples that
    :func:`place_pulse` would add into a buffer.

    Factoring the shift out of :func:`place_pulse` lets the fast
    detection path compute *exactly* the subtrahend the naive path would
    place — same ``fractional_delay`` call on the same padded template —
    and correlate it against the template bank in a short window instead
    of re-filtering the whole signal.

    Returns
    -------
    (start, samples):
        ``start`` is the buffer index of ``samples[0]`` (may be
        negative); ``samples`` is the pulse, fractionally delayed when
        ``peak_position_samples`` has a fractional part (one padding
        sample is appended so the shift cannot wrap energy around).
    """
    if pulse_samples.ndim != 1:
        raise ValueError("pulse must be a 1-D array")
    if peak_index is None:
        peak_index = int(np.argmax(np.abs(pulse_samples)))
    integer = int(np.floor(peak_position_samples))
    fraction = float(peak_position_samples - integer)
    if fraction != 0.0:
        # Pad by one sample so the fractional shift cannot wrap energy
        # from the tail back to the head.
        padded = np.concatenate(
            [pulse_samples, np.zeros(1, dtype=pulse_samples.dtype)]
        )
        shifted = fractional_delay(padded, fraction)
    else:
        shifted = pulse_samples
    return integer - peak_index, shifted


def place_pulse(
    buffer: np.ndarray,
    pulse_samples: np.ndarray,
    peak_position_samples: float,
    amplitude: complex = 1.0,
    peak_index: int | None = None,
) -> None:
    """Add ``amplitude * pulse`` into ``buffer`` with its peak at a
    fractional sample position (in place).

    This is how the channel simulation writes each multipath component /
    responder pulse into the CIR: the integer part selects the insertion
    window and the fractional part is realised with band-limited
    interpolation of the template.

    Parameters
    ----------
    buffer:
        Complex 1-D accumulator; modified in place.
    pulse_samples:
        Real or complex template samples.
    peak_position_samples:
        Desired position of the template peak, in buffer samples.  May lie
        (partially) outside the buffer; out-of-range parts are clipped.
    amplitude:
        Complex amplitude applied to the template.
    peak_index:
        Index of the template's peak sample.  Defaults to the argmax of
        the template magnitude.
    """
    if buffer.ndim != 1 or pulse_samples.ndim != 1:
        raise ValueError("buffer and pulse must be 1-D arrays")
    start, shifted = placed_segment(
        pulse_samples, peak_position_samples, peak_index
    )
    stop = start + len(shifted)
    src_start = max(0, -start)
    src_stop = len(shifted) - max(0, stop - len(buffer))
    if src_start >= src_stop:
        return  # pulse lies entirely outside the buffer
    dst_start = start + src_start
    dst_stop = start + src_stop
    buffer[dst_start:dst_stop] += amplitude * shifted[src_start:src_stop]
