"""UWB pulse synthesis with ``TC_PGDELAY``-controlled width.

The DW1000 does not document its transmitted pulse; the paper measured it
with an SMA-cable campaign (Sect. IV) and showed that the 8-bit
``TC_PGDELAY`` register widens the pulse, i.e. lowers the output bandwidth
(Fig. 5).  We model the *baseband-equivalent* pulse that appears in the
CIR as a raised-cosine pulse: its spectrum is strictly band-limited, so
even the widest-band (default) shape fits below the 499.2 MHz Nyquist
frequency of the 1.0016 ns CIR tap grid.  That matters physically — the
DW1000's accumulator can only represent what its sampling supports — and
numerically, because it makes fractional-delay placement and FFT
upsampling exact.

The register-to-width mapping is linear in the register offset from the
default value ``0x93``.  This is a modelling choice (the true mapping is
undocumented); the paper's algorithms only require that the mapping is
monotone and known to the initiator, which holds here by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import (
    CIR_SAMPLING_PERIOD_S,
    TC_PGDELAY_DEFAULT,
    TC_PGDELAY_MAX,
)

#: Output bandwidth at the default register value [Hz] (paper: channel 7,
#: 900 MHz bandwidth).  This is the flat-band ("-3 dB-ish") bandwidth of
#: the raised-cosine spectrum; the absolute spectral edge is
#: ``BASE_BANDWIDTH_HZ * (1 + ROLLOFF) / 2`` per side.
BASE_BANDWIDTH_HZ = 900e6

#: Raised-cosine rolloff.  0.1 puts the default pulse's spectral edge at
#: +-495 MHz, just inside the 499.2 MHz Nyquist limit of the CIR grid.
ROLLOFF = 0.1

#: Relative pulse-width increase per register step above the default.
#: Chosen so that the register values shown in the paper's Fig. 5 span a
#: clearly distinguishable set of widths: 0xC8 -> ~2.6x, 0xE6 -> ~3.5x,
#: 0xF0 -> ~3.8x the default width.
WIDTH_SLOPE_PER_STEP = 0.03

#: Half-duration of a synthesised template, in units of ``1/bandwidth``.
#: Raised-cosine side lobes decay as 1/t^3; eight lobes keep truncation
#: error below -50 dB.
TEMPLATE_HALF_LOBES = 8.0


class RegisterRangeError(ValueError):
    """Raised when a TC_PGDELAY value is outside the usable range."""


def _check_register(register: int) -> int:
    """Validate a TC_PGDELAY register value and return it as ``int``.

    The paper notes that 0x93 is the lower limit for the employed
    configuration (narrower pulses would violate the spectral mask) and
    that the register is 8 bits wide, giving 108 usable shapes.
    """
    register = int(register)
    if not TC_PGDELAY_DEFAULT <= register <= TC_PGDELAY_MAX:
        raise RegisterRangeError(
            f"TC_PGDELAY must be in [0x{TC_PGDELAY_DEFAULT:02X}, "
            f"0x{TC_PGDELAY_MAX:02X}], got 0x{register:02X}"
        )
    return register


def pulse_width_factor(register: int) -> float:
    """Relative pulse width for a ``TC_PGDELAY`` value.

    Returns 1.0 for the default register ``0x93`` and grows linearly with
    the register offset.  Monotonicity of this mapping is what makes
    pulse-shape identification (paper Sect. V) possible.
    """
    register = _check_register(register)
    return 1.0 + WIDTH_SLOPE_PER_STEP * (register - TC_PGDELAY_DEFAULT)


def pulse_bandwidth_hz(register: int) -> float:
    """Effective output bandwidth for a ``TC_PGDELAY`` value [Hz].

    Widening the pulse shrinks the bandwidth proportionally; the default
    register maps to the paper's 900 MHz channel-7 bandwidth.
    """
    return BASE_BANDWIDTH_HZ / pulse_width_factor(register)


def raised_cosine_pulse(
    t: np.ndarray,
    bandwidth_hz: float,
    rolloff: float = ROLLOFF,
) -> np.ndarray:
    """Evaluate a raised-cosine (RC) pulse at times ``t`` [s].

    The RC pulse's spectrum is flat to ``(1 - rolloff) * B / 2``, rolls
    off cosinely, and is exactly zero beyond ``(1 + rolloff) * B / 2`` —
    a strictly band-limited stand-in for the measured DW1000 template
    with the same main-lobe/side-lobe structure (paper Fig. 5).

    Parameters
    ----------
    t:
        Sample times in seconds, zero-centred on the pulse peak.
    bandwidth_hz:
        Flat-band two-sided bandwidth ``B``; larger means narrower pulse.
    rolloff:
        Excess-bandwidth factor in [0, 1].
    """
    if bandwidth_hz <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth_hz}")
    if not 0.0 <= rolloff <= 1.0:
        raise ValueError(f"rolloff must be in [0, 1], got {rolloff}")
    x = np.asarray(t, dtype=float) * bandwidth_hz
    with np.errstate(divide="ignore", invalid="ignore"):
        numerator = np.sinc(x) * np.cos(np.pi * rolloff * x)
        denominator = 1.0 - (2.0 * rolloff * x) ** 2
        values = numerator / denominator
    if rolloff > 0.0:
        # De L'Hopital limit at the removable singularity x = 1/(2*rolloff).
        singular = np.isclose(np.abs(x), 1.0 / (2.0 * rolloff), atol=1e-9)
        if np.any(singular):
            limit = (
                np.pi
                / 4.0
                * np.sinc(1.0 / (2.0 * rolloff))
            )
            values = np.where(singular, limit, values)
    return values


@dataclass(frozen=True)
class Pulse:
    """A sampled, unit-energy pulse template.

    Attributes
    ----------
    samples:
        Real-valued samples, normalised to unit energy
        (``sum(samples**2) == 1``), matching the paper's footnote that
        templates are scaled to unit energy.
    sampling_period_s:
        Sampling period of ``samples``.
    register:
        ``TC_PGDELAY`` value that produced this template.
    bandwidth_hz:
        Effective (flat-band) bandwidth of the pulse.
    """

    samples: np.ndarray
    sampling_period_s: float
    register: int
    bandwidth_hz: float

    def __post_init__(self) -> None:
        energy = float(np.sum(np.abs(self.samples) ** 2))
        if not np.isclose(energy, 1.0, atol=1e-6):
            raise ValueError(f"pulse template must have unit energy, got {energy}")

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def duration_s(self) -> float:
        """Total duration of the sampled template."""
        return len(self.samples) * self.sampling_period_s

    @property
    def peak_index(self) -> int:
        """Index of the template peak (its nominal arrival-time anchor)."""
        return int(np.argmax(np.abs(self.samples)))

    @property
    def width_3db_s(self) -> float:
        """Width of the main lobe at half power (-3 dB) in seconds.

        Uses linear interpolation between samples, so the value is smooth
        in the register even at coarse sampling.
        """
        mag = np.abs(self.samples)
        peak = self.peak_index
        half = mag[peak] / np.sqrt(2.0)

        def _crossing(indices: np.ndarray) -> float:
            """Distance in samples from the peak to the half-power point."""
            previous = peak
            for idx in indices:
                if mag[idx] < half:
                    # Linear interpolation between previous (above) and idx.
                    frac = (mag[previous] - half) / (mag[previous] - mag[idx])
                    return abs(int(previous) - peak) + frac
                previous = int(idx)
            return float(len(indices))

        right = _crossing(np.arange(peak + 1, len(mag)))
        left = _crossing(np.arange(peak - 1, -1, -1))
        return (left + right) * self.sampling_period_s

    def energy(self) -> float:
        """Template energy (1.0 by construction)."""
        return float(np.sum(np.abs(self.samples) ** 2))

    def resampled(self, sampling_period_s: float) -> "Pulse":
        """Return the same analytic pulse sampled at a different rate."""
        return _sample_pulse(
            self.register, self.bandwidth_hz, sampling_period_s
        )


def _sample_pulse(
    register: int, bandwidth_hz: float, sampling_period_s: float
) -> Pulse:
    """Sample, truncate, and unit-energy-normalise the analytic pulse."""
    half_duration = TEMPLATE_HALF_LOBES / bandwidth_hz
    n_half = max(2, int(np.ceil(half_duration / sampling_period_s)))
    t = np.arange(-n_half, n_half + 1) * sampling_period_s
    samples = raised_cosine_pulse(t, bandwidth_hz)
    samples = samples / np.sqrt(np.sum(samples**2))
    return Pulse(
        samples=samples,
        sampling_period_s=sampling_period_s,
        register=register,
        bandwidth_hz=bandwidth_hz,
    )


def dw1000_pulse(
    register: int = TC_PGDELAY_DEFAULT,
    sampling_period_s: float = CIR_SAMPLING_PERIOD_S,
) -> Pulse:
    """Synthesise the DW1000 pulse template for a ``TC_PGDELAY`` value.

    The template is centred, long enough to include side lobes down to
    roughly -50 dB, and normalised to unit energy.

    Parameters
    ----------
    register:
        ``TC_PGDELAY`` value in ``[0x93, 0xFF]``.
    sampling_period_s:
        Sampling period; use the CIR period (1.0016 ns) for tap-rate
        templates or a fraction of it for upsampled processing.
    """
    register = _check_register(register)
    return _sample_pulse(register, pulse_bandwidth_hz(register), sampling_period_s)


def narrowband_pulse(
    bandwidth_hz: float,
    sampling_period_s: float = CIR_SAMPLING_PERIOD_S,
) -> Pulse:
    """Synthesise a pulse of arbitrary bandwidth (e.g. the 50 MHz pulse
    of the paper's Fig. 1b) for bandwidth-comparison experiments.

    The returned :class:`Pulse` reports the *default* register because
    narrowband pulses are outside the DW1000 register model; they exist
    only for the Fig. 1 comparison of UWB against narrowband systems.
    """
    if bandwidth_hz <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth_hz}")
    return _sample_pulse(TC_PGDELAY_DEFAULT, bandwidth_hz, sampling_period_s)
