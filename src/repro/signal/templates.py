"""Banks of pulse templates for matched filtering and ID classification.

The paper's initiator knows the set of pulse shapes assigned to its
responders (Sect. V: "Performing the algorithm described in Sect. IV with
N_PS = 3 possible pulse templates").  A :class:`TemplateBank` holds that
set, normalised to unit energy and all sampled at the same rate, and maps
between bank indices, ``TC_PGDELAY`` register values, and human-readable
shape names (``s1``, ``s2``, ...).
"""

from __future__ import annotations

from typing import Iterator, List, Sequence

import numpy as np

from repro.constants import (
    CIR_SAMPLING_PERIOD_S,
    NUM_PULSE_SHAPES,
    TC_PGDELAY_DEFAULT,
    TC_PGDELAY_MAX,
)
from repro.signal.pulses import Pulse, dw1000_pulse

#: The register values the paper uses in Fig. 5 for shapes s1..s4.
PAPER_REGISTERS = (0x93, 0xC8, 0xE6, 0xF0)


def evenly_spaced_registers(count: int) -> List[int]:
    """Pick ``count`` register values evenly spread over the usable range.

    The spread maximises the pairwise width difference between shapes,
    which maximises the margin of the maximum-amplitude classifier in the
    paper's Sect. V.  The default register (``0x93``) is always the first
    entry, mirroring the paper where responder 1 uses the default shape.
    """
    if not 1 <= count <= NUM_PULSE_SHAPES:
        raise ValueError(
            f"count must be in [1, {NUM_PULSE_SHAPES}], got {count}"
        )
    if count == 1:
        return [TC_PGDELAY_DEFAULT]
    positions = np.linspace(TC_PGDELAY_DEFAULT, TC_PGDELAY_MAX, count)
    registers = sorted({int(round(p)) for p in positions})
    # Rounding collisions can only happen for very large counts; fill any
    # gaps deterministically with the nearest unused register.
    unused = (
        r
        for r in range(TC_PGDELAY_DEFAULT, TC_PGDELAY_MAX + 1)
        if r not in registers
    )
    while len(registers) < count:
        registers.append(next(unused))
    return sorted(registers)


class TemplateBank:
    """An ordered, immutable set of unit-energy pulse templates.

    Index ``i`` in the bank corresponds to shape name ``s{i+1}`` following
    the paper's naming (``s1`` is the default pulse).
    """

    def __init__(
        self,
        registers: Sequence[int],
        sampling_period_s: float = CIR_SAMPLING_PERIOD_S,
    ) -> None:
        if len(registers) == 0:
            raise ValueError("a template bank needs at least one register")
        if len(set(registers)) != len(registers):
            raise ValueError(f"duplicate registers in bank: {list(registers)}")
        self._registers = tuple(int(r) for r in registers)
        self._sampling_period_s = float(sampling_period_s)
        self._pulses = tuple(
            dw1000_pulse(r, sampling_period_s=sampling_period_s)
            for r in self._registers
        )

    # -- construction helpers ------------------------------------------------

    @classmethod
    def paper_bank(
        cls,
        count: int = 3,
        sampling_period_s: float = CIR_SAMPLING_PERIOD_S,
    ) -> "TemplateBank":
        """The bank of shapes used in the paper's figures (s1..s4).

        ``count`` selects the first ``count`` of the four registers shown
        in Fig. 5 (0x93, 0xC8, 0xE6, 0xF0).
        """
        if not 1 <= count <= len(PAPER_REGISTERS):
            raise ValueError(
                f"paper bank supports 1..{len(PAPER_REGISTERS)} shapes, got {count}"
            )
        return cls(PAPER_REGISTERS[:count], sampling_period_s=sampling_period_s)

    @classmethod
    def spread(
        cls,
        count: int,
        sampling_period_s: float = CIR_SAMPLING_PERIOD_S,
    ) -> "TemplateBank":
        """A bank of ``count`` maximally-spread register values."""
        return cls(
            evenly_spaced_registers(count), sampling_period_s=sampling_period_s
        )

    # -- container protocol ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._pulses)

    def __iter__(self) -> Iterator[Pulse]:
        return iter(self._pulses)

    def __getitem__(self, index: int) -> Pulse:
        return self._pulses[index]

    # -- lookups --------------------------------------------------------------

    @property
    def registers(self) -> tuple:
        """Register values in bank order."""
        return self._registers

    @property
    def sampling_period_s(self) -> float:
        return self._sampling_period_s

    @property
    def names(self) -> List[str]:
        """Paper-style shape names: ``s1`` for index 0, etc."""
        return [f"s{i + 1}" for i in range(len(self))]

    def name_of(self, index: int) -> str:
        if not 0 <= index < len(self):
            raise IndexError(f"shape index {index} out of range 0..{len(self) - 1}")
        return f"s{index + 1}"

    def index_of_register(self, register: int) -> int:
        """Bank index of a register value; raises ``KeyError`` if absent."""
        try:
            return self._registers.index(int(register))
        except ValueError:
            raise KeyError(
                f"register 0x{int(register):02X} is not in this bank"
            ) from None

    def pulse_for_register(self, register: int) -> Pulse:
        return self._pulses[self.index_of_register(register)]

    def resampled(self, sampling_period_s: float) -> "TemplateBank":
        """The same bank sampled at a different rate (e.g. after CIR
        upsampling, step 1 of the detection algorithm)."""
        return TemplateBank(self._registers, sampling_period_s=sampling_period_s)

    def cross_correlation_matrix(self) -> np.ndarray:
        """Peak normalised cross-correlation between every template pair.

        Entry ``[i, j]`` is the maximum of the normalised correlation of
        templates ``i`` and ``j``; the diagonal is 1.  Off-diagonal values
        bound the confusion margin of the maximum-amplitude classifier:
        the closer to 1, the harder two shapes are to distinguish.
        """
        n = len(self)
        matrix = np.eye(n)
        for i in range(n):
            for j in range(i + 1, n):
                corr = np.correlate(
                    self._pulses[i].samples, self._pulses[j].samples, mode="full"
                )
                matrix[i, j] = matrix[j, i] = float(np.max(np.abs(corr)))
        return matrix
