"""repro.runtime — parallel trial execution, artifact caching, metrics.

The runtime subsystem turns every ``--trials N`` loop in the repository
into a parallel, observable, reproducible workload:

* :mod:`repro.runtime.executor` — :class:`SerialExecutor` /
  :class:`ParallelExecutor` with per-trial deterministic seeding
  (``SeedSequence.spawn``), chunked dispatch, per-trial exception
  capture, worker timeouts, graceful serial fallback, and cross-trial
  batching (:class:`BatchTrial` + the ``batch_size`` policy knob).
* :mod:`repro.runtime.cache` — process-local memo caches for immutable
  artifacts (template banks, pulses) with hit/miss accounting.
* :mod:`repro.runtime.metrics` — counters, gauges, timers, histograms,
  and a ``render()`` report (trials/sec, cache hit rates, wall-clock).
* :mod:`repro.runtime.api` — the :func:`run_trials` convenience entry
  point experiments build on.

Quickstart::

    from functools import partial
    from repro.runtime import run_trials

    def trial(rng, index, *, distance_m):
        return simulate_once(distance_m, rng)

    report = run_trials(partial(trial, distance_m=6.0), 1000,
                        seed=7, workers=4)
    print(report.trials_per_s, report.metrics.render())
"""

from repro.runtime.api import TrialRunReport, make_executor, run_trials
from repro.runtime.checkpoint import CheckpointStore, run_key
from repro.runtime.cache import (
    ArtifactCache,
    all_cache_snapshots,
    clear_all_caches,
    get_cache,
    pulse,
    template_bank,
)
from repro.runtime.executor import (
    BatchTrial,
    ExecutionPolicy,
    ParallelExecutor,
    SerialExecutor,
    TrialError,
    TrialExecutor,
    TrialFailure,
    TrialRun,
    WorkerTimeoutError,
    WorkloadShape,
    choose_batch_size,
    resolve_policy,
    spawn_trial_seeds,
)
from repro.runtime.metrics import MetricsRegistry, global_metrics

__all__ = [
    "ArtifactCache",
    "BatchTrial",
    "CheckpointStore",
    "ExecutionPolicy",
    "MetricsRegistry",
    "ParallelExecutor",
    "SerialExecutor",
    "TrialError",
    "TrialExecutor",
    "TrialFailure",
    "TrialRun",
    "TrialRunReport",
    "WorkerTimeoutError",
    "WorkloadShape",
    "all_cache_snapshots",
    "choose_batch_size",
    "clear_all_caches",
    "get_cache",
    "global_metrics",
    "make_executor",
    "pulse",
    "resolve_policy",
    "run_key",
    "run_trials",
    "spawn_trial_seeds",
    "template_bank",
]
