"""Lightweight metrics: counters, gauges, timers, histograms.

Every trial loop in this repository is a production workload in
miniature — thousands of independent Monte-Carlo rounds whose
throughput, cache behaviour, and failure counts we want to *see*, not
guess.  A :class:`MetricsRegistry` is a process-local, dependency-free
registry in the spirit of Prometheus client libraries:

* :class:`Counter` — monotonically increasing counts (trials run,
  cache hits, fallbacks taken).
* :class:`Gauge` — last-written values (worker count, chunk size).
* :class:`Timer` — accumulated wall-clock with a context manager
  (``with metrics.timer("runtime.wall_clock").time(): ...``).
* :class:`Histogram` — streaming summary statistics (count / min /
  max / mean) of observed samples, e.g. per-chunk durations.

Registries merge (:meth:`MetricsRegistry.merge_snapshot`), so parallel
workers can ship their numbers back to the parent as plain dicts —
snapshots are picklable by construction.  :meth:`MetricsRegistry.render`
produces the human-readable report the CLI prints after a run,
including derived figures: trials/second and per-cache hit rates.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Timer",
    "Histogram",
    "MetricsRegistry",
    "global_metrics",
]


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got increment {amount}")
        self.value += amount


class Gauge:
    """A last-value-wins measurement."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Timer:
    """Accumulated wall-clock time over any number of timed sections."""

    __slots__ = ("total_s", "count")

    def __init__(self) -> None:
        self.total_s = 0.0
        self.count = 0

    def record(self, seconds: float) -> None:
        """Add one timed section of ``seconds`` duration."""
        if seconds < 0:
            raise ValueError(f"durations must be non-negative, got {seconds}")
        self.total_s += seconds
        self.count += 1

    @contextmanager
    def time(self) -> Iterator[None]:
        """Context manager measuring the wrapped block."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.record(time.perf_counter() - start)


class Histogram:
    """Streaming summary statistics of observed samples.

    Keeps count / sum / min / max rather than buckets: enough for the
    throughput reports here while staying mergeable across processes.
    """

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Create-or-get registry of named metrics with a text report."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._timers: Dict[str, Timer] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- create-or-get accessors -------------------------------------------

    def counter(self, name: str) -> Counter:
        return self._counters.setdefault(name, Counter())

    def gauge(self, name: str) -> Gauge:
        return self._gauges.setdefault(name, Gauge())

    def timer(self, name: str) -> Timer:
        return self._timers.setdefault(name, Timer())

    def histogram(self, name: str) -> Histogram:
        return self._histograms.setdefault(name, Histogram())

    # -- snapshots and merging ---------------------------------------------

    def snapshot(self) -> dict:
        """A plain-dict, picklable view of every metric."""
        return {
            "counters": {k: c.value for k, c in self._counters.items()},
            "gauges": {k: g.value for k, g in self._gauges.items()},
            "timers": {
                k: (t.total_s, t.count) for k, t in self._timers.items()
            },
            "histograms": {
                k: (h.count, h.total, h.min, h.max)
                for k, h in self._histograms.items()
            },
        }

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` (e.g. from a worker) into this registry.

        Counters, timers, and histograms add; gauges take the incoming
        value (last write wins).
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, (total_s, count) in snapshot.get("timers", {}).items():
            timer = self.timer(name)
            timer.total_s += total_s
            timer.count += count
        for name, (count, total, low, high) in snapshot.get(
            "histograms", {}
        ).items():
            histogram = self.histogram(name)
            histogram.count += count
            histogram.total += total
            histogram.min = min(histogram.min, low)
            histogram.max = max(histogram.max, high)

    # -- reporting ----------------------------------------------------------

    def _derived_lines(self) -> list:
        """Throughput and cache-hit-rate figures computed from raw metrics."""
        lines = []
        trials = self._counters.get("runtime.trials")
        wall = self._timers.get("runtime.wall_clock")
        if wall is not None:
            lines.append(f"{'total wall-clock':<30} {wall.total_s:.3f} s")
        if trials is not None and wall is not None and wall.total_s > 0:
            lines.append(
                f"{'trials/s':<30} {trials.value / wall.total_s:.1f}"
            )
        # Every cache reports cache.<name>.hits / cache.<name>.misses.
        cache_names = sorted(
            {
                key.rsplit(".", 1)[0]
                for key in self._counters
                if key.startswith("cache.")
                and key.endswith((".hits", ".misses"))
            }
        )
        for cache in cache_names:
            hits = self._counters.get(f"{cache}.hits", Counter()).value
            misses = self._counters.get(f"{cache}.misses", Counter()).value
            lookups = hits + misses
            rate = 100.0 * hits / lookups if lookups else 0.0
            lines.append(
                f"{cache + ' hit rate':<30} "
                f"{rate:.1f} % ({hits:.0f} hits / {misses:.0f} misses)"
            )
        return lines

    def render(self, title: str = "runtime metrics") -> str:
        """Human-readable multi-section report of every metric."""
        parts = [f"== {title} =="]
        if self._counters:
            parts.append("counters:")
            for name in sorted(self._counters):
                parts.append(f"  {name.ljust(30)} {self._counters[name].value:g}")
        if self._gauges:
            parts.append("gauges:")
            for name in sorted(self._gauges):
                parts.append(f"  {name.ljust(30)} {self._gauges[name].value:g}")
        if self._timers:
            parts.append("timers:")
            for name in sorted(self._timers):
                timer = self._timers[name]
                parts.append(
                    f"  {name.ljust(30)} {timer.total_s:.3f} s "
                    f"over {timer.count} section(s)"
                )
        if self._histograms:
            parts.append("histograms:")
            for name in sorted(self._histograms):
                h = self._histograms[name]
                parts.append(
                    f"  {name.ljust(30)} n={h.count} mean={h.mean:.4g} "
                    f"min={h.min:.4g} max={h.max:.4g}"
                )
        derived = self._derived_lines()
        if derived:
            parts.append("derived:")
            parts.extend(f"  {line}" for line in derived)
        return "\n".join(parts)

    def is_empty(self) -> bool:
        """True when nothing has been registered yet."""
        return not (
            self._counters or self._gauges or self._timers or self._histograms
        )


#: Process-local default registry (created lazily).
_GLOBAL_REGISTRY: MetricsRegistry | None = None


def global_metrics() -> MetricsRegistry:
    """The process-local default registry.

    Library code that has no registry handed to it (e.g. the hot-path
    detector in :mod:`repro.core.detection`) records into this registry;
    benchmarks and the CLI can read it back with ``render()``.  Like the
    artifact caches it is process-local: parallel workers accumulate
    their own copy, and only cache counters (which the executor ships as
    deltas) are merged across processes.
    """
    global _GLOBAL_REGISTRY
    if _GLOBAL_REGISTRY is None:
        _GLOBAL_REGISTRY = MetricsRegistry()
    return _GLOBAL_REGISTRY
