"""Lightweight metrics: counters, gauges, timers, histograms.

Every trial loop in this repository is a production workload in
miniature — thousands of independent Monte-Carlo rounds whose
throughput, cache behaviour, and failure counts we want to *see*, not
guess.  A :class:`MetricsRegistry` is a process-local, dependency-free
registry in the spirit of Prometheus client libraries:

* :class:`Counter` — monotonically increasing counts (trials run,
  cache hits, fallbacks taken).
* :class:`Gauge` — last-written values (worker count, chunk size).
* :class:`Timer` — accumulated wall-clock with a context manager
  (``with metrics.timer("runtime.wall_clock").time(): ...``).
* :class:`Histogram` — streaming summary statistics (count / min /
  max / mean) plus configurable quantiles (p50/p95/p99 by default)
  estimated from a bounded reservoir, e.g. per-chunk durations or
  per-request service latencies.

Registries merge (:meth:`MetricsRegistry.merge_snapshot`), so parallel
workers can ship their numbers back to the parent as plain dicts —
snapshots are picklable by construction.  :meth:`MetricsRegistry.render`
produces the human-readable report the CLI prints after a run,
including derived figures: trials/second and per-cache hit rates —
and :meth:`MetricsRegistry.render_prometheus` the machine-readable
Prometheus text exposition that :mod:`repro.serve` serves from its
``/metrics`` endpoint.

Every primitive is O(1) per observation and O(1) memory (the histogram
reservoir is a fixed-size ring), so a live service can record per
request and be scraped at 1 Hz without copying sample lists that grow
with traffic.
"""

from __future__ import annotations

import math
import re
import time
from contextlib import contextmanager
from typing import Dict, Iterable, Iterator, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Timer",
    "Histogram",
    "MetricsRegistry",
    "global_metrics",
]

#: Quantiles reported by default in rendered reports and expositions.
DEFAULT_QUANTILES: Tuple[float, ...] = (0.5, 0.95, 0.99)


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got increment {amount}")
        self.value += amount


class Gauge:
    """A last-value-wins measurement."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Timer:
    """Accumulated wall-clock time over any number of timed sections."""

    __slots__ = ("total_s", "count")

    def __init__(self) -> None:
        self.total_s = 0.0
        self.count = 0

    def record(self, seconds: float) -> None:
        """Add one timed section of ``seconds`` duration."""
        if seconds < 0:
            raise ValueError(f"durations must be non-negative, got {seconds}")
        self.total_s += seconds
        self.count += 1

    @contextmanager
    def time(self) -> Iterator[None]:
        """Context manager measuring the wrapped block."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.record(time.perf_counter() - start)


class Histogram:
    """Streaming summary statistics plus reservoir quantiles.

    Keeps count / sum / min / max exactly, and a bounded ring of the
    most recent ``max_samples`` observations for quantile estimates —
    no full sample list ever accumulates, so a histogram fed per
    request stays O(1) memory and can be snapshotted or scraped at 1 Hz
    for free.  Quantiles are nearest-rank over the (recent) reservoir:
    exact until the ring wraps, a sliding-window estimate after — the
    right semantics for a live service, where "p99 latency" means *now*,
    not since boot.
    """

    __slots__ = ("count", "total", "min", "max", "max_samples",
                 "_samples", "_cursor")

    #: Reservoir capacity; 512 float samples keeps a snapshot ~4 KiB.
    DEFAULT_MAX_SAMPLES = 512

    def __init__(self, max_samples: int = DEFAULT_MAX_SAMPLES) -> None:
        if max_samples < 1:
            raise ValueError(f"max_samples must be >= 1, got {max_samples}")
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.max_samples = int(max_samples)
        self._samples: list = []
        self._cursor = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        self._absorb(value)

    def _absorb(self, value: float) -> None:
        """Append one sample to the ring (overwrite oldest when full)."""
        if len(self._samples) < self.max_samples:
            self._samples.append(value)
        else:
            self._samples[self._cursor] = value
            self._cursor = (self._cursor + 1) % self.max_samples

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile over the reservoir (NaN when empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self._samples:
            return float("nan")
        ordered = sorted(self._samples)
        # Nearest-rank: ceil(q * n), clamped into [1, n].
        rank = min(len(ordered), max(1, math.ceil(q * len(ordered))))
        return ordered[rank - 1]

    def quantiles(
        self, qs: Sequence[float] = DEFAULT_QUANTILES
    ) -> Dict[float, float]:
        """Several quantiles from one sort of the reservoir."""
        if not self._samples:
            return {q: float("nan") for q in qs}
        ordered = sorted(self._samples)
        out = {}
        for q in qs:
            if not 0.0 <= q <= 1.0:
                raise ValueError(f"quantile must be in [0, 1], got {q}")
            rank = min(len(ordered), max(1, math.ceil(q * len(ordered))))
            out[q] = ordered[rank - 1]
        return out


#: Prometheus metric-name grammar: anything else becomes an underscore.
_PROMETHEUS_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _prometheus_name(name: str) -> str:
    """Sanitise a dotted metric name for the Prometheus exposition."""
    sanitised = _PROMETHEUS_NAME_RE.sub("_", name)
    if sanitised and sanitised[0].isdigit():
        sanitised = "_" + sanitised
    return sanitised


class MetricsRegistry:
    """Create-or-get registry of named metrics with a text report.

    ``quantiles`` configures which percentiles histogram reports and the
    Prometheus exposition include (p50/p95/p99 by default).
    """

    def __init__(
        self, quantiles: Sequence[float] = DEFAULT_QUANTILES
    ) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._timers: Dict[str, Timer] = {}
        self._histograms: Dict[str, Histogram] = {}
        self.quantiles: Tuple[float, ...] = tuple(quantiles)

    # -- create-or-get accessors -------------------------------------------

    def counter(self, name: str) -> Counter:
        return self._counters.setdefault(name, Counter())

    def gauge(self, name: str) -> Gauge:
        return self._gauges.setdefault(name, Gauge())

    def timer(self, name: str) -> Timer:
        return self._timers.setdefault(name, Timer())

    def histogram(self, name: str) -> Histogram:
        return self._histograms.setdefault(name, Histogram())

    # -- snapshots and merging ---------------------------------------------

    def snapshot(self) -> dict:
        """A plain-dict, picklable view of every metric."""
        return {
            "counters": {k: c.value for k, c in self._counters.items()},
            "gauges": {k: g.value for k, g in self._gauges.items()},
            "timers": {
                k: (t.total_s, t.count) for k, t in self._timers.items()
            },
            "histograms": {
                k: (h.count, h.total, h.min, h.max, list(h._samples))
                for k, h in self._histograms.items()
            },
        }

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` (e.g. from a worker) into this registry.

        Counters, timers, and histograms add; gauges take the incoming
        value (last write wins).  Histogram entries may be the legacy
        4-tuple ``(count, total, min, max)`` or the current 5-tuple with
        a trailing reservoir sample list; both merge.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, (total_s, count) in snapshot.get("timers", {}).items():
            timer = self.timer(name)
            timer.total_s += total_s
            timer.count += count
        for name, entry in snapshot.get("histograms", {}).items():
            count, total, low, high = entry[:4]
            histogram = self.histogram(name)
            histogram.count += count
            histogram.total += total
            histogram.min = min(histogram.min, low)
            histogram.max = max(histogram.max, high)
            if len(entry) > 4:
                for sample in entry[4]:
                    histogram._absorb(float(sample))

    @classmethod
    def merged(
        cls,
        snapshots: Sequence[dict],
        quantiles: Sequence[float] = DEFAULT_QUANTILES,
    ) -> "MetricsRegistry":
        """One registry folding several :meth:`snapshot` dicts together.

        The multi-process serving supervisor uses this to present the
        parent's own metrics plus every worker's latest heartbeat
        snapshot as a single coherent ``/metrics`` view.
        """
        registry = cls(quantiles=quantiles)
        for snapshot in snapshots:
            registry.merge_snapshot(snapshot)
        return registry

    # -- reporting ----------------------------------------------------------

    def _derived_lines(self) -> list:
        """Throughput and cache-hit-rate figures computed from raw metrics."""
        lines = []
        trials = self._counters.get("runtime.trials")
        wall = self._timers.get("runtime.wall_clock")
        if wall is not None:
            lines.append(f"{'total wall-clock':<30} {wall.total_s:.3f} s")
        if trials is not None and wall is not None and wall.total_s > 0:
            lines.append(
                f"{'trials/s':<30} {trials.value / wall.total_s:.1f}"
            )
        # Every cache reports cache.<name>.hits / cache.<name>.misses.
        cache_names = sorted(
            {
                key.rsplit(".", 1)[0]
                for key in self._counters
                if key.startswith("cache.")
                and key.endswith((".hits", ".misses"))
            }
        )
        for cache in cache_names:
            hits = self._counters.get(f"{cache}.hits", Counter()).value
            misses = self._counters.get(f"{cache}.misses", Counter()).value
            lookups = hits + misses
            rate = 100.0 * hits / lookups if lookups else 0.0
            lines.append(
                f"{cache + ' hit rate':<30} "
                f"{rate:.1f} % ({hits:.0f} hits / {misses:.0f} misses)"
            )
        return lines

    def render(self, title: str = "runtime metrics") -> str:
        """Human-readable multi-section report of every metric."""
        parts = [f"== {title} =="]
        if self._counters:
            parts.append("counters:")
            for name in sorted(self._counters):
                parts.append(f"  {name.ljust(30)} {self._counters[name].value:g}")
        if self._gauges:
            parts.append("gauges:")
            for name in sorted(self._gauges):
                parts.append(f"  {name.ljust(30)} {self._gauges[name].value:g}")
        if self._timers:
            parts.append("timers:")
            for name in sorted(self._timers):
                timer = self._timers[name]
                parts.append(
                    f"  {name.ljust(30)} {timer.total_s:.3f} s "
                    f"over {timer.count} section(s)"
                )
        if self._histograms:
            parts.append("histograms:")
            for name in sorted(self._histograms):
                h = self._histograms[name]
                quantile_text = " ".join(
                    f"p{q * 100:g}={value:.4g}"
                    for q, value in h.quantiles(self.quantiles).items()
                )
                parts.append(
                    f"  {name.ljust(30)} n={h.count} mean={h.mean:.4g} "
                    f"{quantile_text} min={h.min:.4g} max={h.max:.4g}"
                )
        derived = self._derived_lines()
        if derived:
            parts.append("derived:")
            parts.extend(f"  {line}" for line in derived)
        return "\n".join(parts)

    def render_prometheus(self) -> str:
        """Prometheus text-exposition-format view of every metric.

        Metric names are sanitised to the Prometheus grammar (dots and
        other separators become underscores).  Counters and gauges map
        directly; timers become ``<name>_seconds`` summaries (sum +
        count); histograms become summaries with one ``quantile``-labelled
        sample per configured quantile plus ``_sum``/``_count``.  The
        whole exposition is computed from O(1)-sized state per metric,
        so scraping it every second costs nothing measurable.
        """
        lines: list = []

        def emit(name: str, kind: str, samples: Iterable[tuple]) -> None:
            lines.append(f"# TYPE {name} {kind}")
            for suffix, labels, value in samples:
                label_text = (
                    "{" + ",".join(
                        f'{k}="{v}"' for k, v in labels
                    ) + "}"
                    if labels
                    else ""
                )
                lines.append(f"{name}{suffix}{label_text} {value:.9g}")

        for name in sorted(self._counters):
            emit(
                _prometheus_name(name), "counter",
                [("", (), self._counters[name].value)],
            )
        for name in sorted(self._gauges):
            emit(
                _prometheus_name(name), "gauge",
                [("", (), self._gauges[name].value)],
            )
        for name in sorted(self._timers):
            timer = self._timers[name]
            emit(
                _prometheus_name(name) + "_seconds", "summary",
                [("_sum", (), timer.total_s), ("_count", (), timer.count)],
            )
        for name in sorted(self._histograms):
            histogram = self._histograms[name]
            samples = [
                ("", (("quantile", f"{q:g}"),), value)
                for q, value in histogram.quantiles(self.quantiles).items()
                if not math.isnan(value)
            ]
            samples.append(("_sum", (), histogram.total))
            samples.append(("_count", (), histogram.count))
            emit(_prometheus_name(name), "summary", samples)
        return "\n".join(lines) + "\n"

    def is_empty(self) -> bool:
        """True when nothing has been registered yet."""
        return not (
            self._counters or self._gauges or self._timers or self._histograms
        )


#: Process-local default registry (created lazily).
_GLOBAL_REGISTRY: MetricsRegistry | None = None


def global_metrics() -> MetricsRegistry:
    """The process-local default registry.

    Library code that has no registry handed to it (e.g. the hot-path
    detector in :mod:`repro.core.detection`) records into this registry;
    benchmarks and the CLI can read it back with ``render()``.  Like the
    artifact caches it is process-local: parallel workers accumulate
    their own copy, and only cache counters (which the executor ships as
    deltas) are merged across processes.
    """
    global _GLOBAL_REGISTRY
    if _GLOBAL_REGISTRY is None:
        _GLOBAL_REGISTRY = MetricsRegistry()
    return _GLOBAL_REGISTRY
