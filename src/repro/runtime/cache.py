"""Process-local memo caches for expensive immutable artifacts.

Trial loops rebuild the same pulse template banks, matched-filter
templates, and upsampled pulses thousands of times: a
:class:`TemplateBank` costs ~0.4 ms to synthesise, which at paper-scale
trial counts (1000-5000 rounds per cell) is pure waste — the artifacts
are immutable and depend only on a small key (register tuple, sampling
period).  An :class:`ArtifactCache` memoises them per process with
hit/miss accounting so the runtime's metrics report can show the cache
doing its job.

Caches are *process-local by design*: parallel workers each warm their
own copy on their first trial, then hit it for every later trial in
the process.  The executor ships each worker's hit/miss deltas back to
the parent so the aggregate hit rate is still observable.

The module-level helpers :func:`template_bank` and :func:`pulse` are
the two artifact constructors the experiments actually share; new
artifact kinds should get their own named cache via :func:`get_cache`.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Hashable, Tuple, TypeVar

from repro.constants import CIR_SAMPLING_PERIOD_S
from repro.signal.pulses import Pulse, dw1000_pulse
from repro.signal.templates import TemplateBank

T = TypeVar("T")

__all__ = [
    "ArtifactCache",
    "get_cache",
    "all_cache_snapshots",
    "clear_all_caches",
    "template_bank",
    "pulse",
]


class ArtifactCache:
    """A keyed memo cache with hit/miss accounting.

    Thread-safe so a future thread-backed executor can share it; the
    lock is uncontended in the common single-threaded case.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._entries: Dict[Hashable, object] = {}
        self._hits = 0
        self._misses = 0
        self._lock = threading.Lock()

    def get_or_create(self, key: Hashable, factory: Callable[[], T]) -> T:
        """Return the cached artifact for ``key``, building it on a miss."""
        with self._lock:
            try:
                value = self._entries[key]
                self._hits += 1
                return value  # type: ignore[return-value]
            except KeyError:
                self._misses += 1
        # Build outside the lock: factories can be slow, and immutable
        # artifacts make a rare duplicate build harmless.
        value = factory()
        with self._lock:
            self._entries.setdefault(key, value)
        return value

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    @property
    def hits(self) -> int:
        return self._hits

    @property
    def misses(self) -> int:
        return self._misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        lookups = self._hits + self._misses
        return self._hits / lookups if lookups else 0.0

    def snapshot(self) -> Tuple[int, int]:
        """Current ``(hits, misses)`` — picklable, for cross-process deltas."""
        return (self._hits, self._misses)

    def clear(self) -> None:
        """Drop all entries and reset the accounting."""
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0


#: Process-local registry of named caches.
_CACHES: Dict[str, ArtifactCache] = {}
_CACHES_LOCK = threading.Lock()


def get_cache(name: str) -> ArtifactCache:
    """The process-local cache called ``name``, created on first use."""
    with _CACHES_LOCK:
        cache = _CACHES.get(name)
        if cache is None:
            cache = _CACHES[name] = ArtifactCache(name)
        return cache


def all_cache_snapshots() -> Dict[str, Tuple[int, int]]:
    """``{name: (hits, misses)}`` for every cache in this process."""
    with _CACHES_LOCK:
        return {name: cache.snapshot() for name, cache in _CACHES.items()}


def clear_all_caches() -> None:
    """Reset every named cache (used by tests)."""
    with _CACHES_LOCK:
        for cache in _CACHES.values():
            cache.clear()


# -- shared artifact constructors -------------------------------------------


def template_bank(
    registers: Tuple[int, ...],
    sampling_period_s: float = CIR_SAMPLING_PERIOD_S,
) -> TemplateBank:
    """A memoised :class:`TemplateBank` for a register tuple.

    Banks are immutable, so sharing one instance across trials (and
    sessions) is safe; the ``templates`` cache's hit rate appears in the
    runtime metrics report.
    """
    registers = tuple(int(r) for r in registers)
    return get_cache("templates").get_or_create(
        (registers, float(sampling_period_s)),
        lambda: TemplateBank(registers, sampling_period_s=sampling_period_s),
    )


def pulse(
    register: int,
    sampling_period_s: float = CIR_SAMPLING_PERIOD_S,
) -> Pulse:
    """A memoised single :class:`Pulse` template."""
    return get_cache("pulses").get_or_create(
        (int(register), float(sampling_period_s)),
        lambda: dw1000_pulse(
            int(register), sampling_period_s=sampling_period_s
        ),
    )
