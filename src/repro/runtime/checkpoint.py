"""Checkpoint/resume for Monte-Carlo trial runs.

A :class:`CheckpointStore` persists per-trial results as *shards* —
small pickle files, each holding a batch of ``(trial_index, ok,
payload)`` entries — under a key derived from the run's identity
(master-seed entropy, trial count, label).  An interrupted campaign
resumes by loading the completed entries and dispatching only the
missing trial indices; because trial ``i`` always consumes seed child
``i`` (see :mod:`repro.runtime.executor`), the resumed run is
byte-identical to an uninterrupted one.

Shards are written atomically (temp file + ``os.replace``) so a run
killed mid-write never corrupts the store: the worst case is losing the
last unflushed batch, which the resume simply re-computes.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Sequence, Set, Tuple

import numpy as np

__all__ = ["CheckpointStore", "run_key"]

#: ``(trial_index, ok, value-or-TrialFailure)`` as produced by executors.
Entry = Tuple[int, bool, Any]


def run_key(seed, n_trials: int, label: str = "trials") -> str:
    """A stable identity for one run configuration.

    Derived from the expanded ``SeedSequence`` entropy (so ``seed=7``
    and ``SeedSequence(7)`` map to the same key), the trial count, and a
    caller-chosen label separating different experiments that happen to
    share seed and size.
    """
    if isinstance(seed, np.random.SeedSequence):
        root = seed
    else:
        root = np.random.SeedSequence(seed)
    token = repr((root.entropy, root.spawn_key, int(n_trials), str(label)))
    return hashlib.sha256(token.encode("utf-8")).hexdigest()[:16]


class CheckpointStore:
    """Sharded on-disk result store for one (seed, n_trials, label) run.

    Parameters
    ----------
    directory:
        Where shards live; created on first write.
    key:
        Run identity (see :func:`run_key`); shards of other runs in the
        same directory are ignored.
    flush_every:
        How many entries the serial executor accumulates before writing
        a shard (the parallel executor writes one shard per completed
        chunk regardless).
    """

    def __init__(
        self, directory, key: str, flush_every: int = 8
    ) -> None:
        if flush_every < 1:
            raise ValueError(f"flush_every must be >= 1, got {flush_every}")
        self.directory = Path(directory)
        self.key = str(key)
        self.flush_every = int(flush_every)

    @classmethod
    def for_run(
        cls,
        directory,
        seed,
        n_trials: int,
        label: str = "trials",
        flush_every: int = 8,
    ) -> "CheckpointStore":
        """The store for one run configuration."""
        return cls(
            directory,
            run_key(seed, n_trials, label),
            flush_every=flush_every,
        )

    # -- paths ---------------------------------------------------------------

    def _shard_paths(self) -> List[Path]:
        if not self.directory.is_dir():
            return []
        return sorted(self.directory.glob(f"{self.key}.shard-*.pkl"))

    def _next_shard_path(self, lo: int, hi: int) -> Path:
        serial = len(self._shard_paths())
        return self.directory / (
            f"{self.key}.shard-{serial:05d}-{lo:06d}-{hi:06d}.pkl"
        )

    # -- persistence ---------------------------------------------------------

    def save_entries(self, entries: Sequence[Entry]) -> Path | None:
        """Atomically persist a batch of entries as one new shard."""
        if not entries:
            return None
        self.directory.mkdir(parents=True, exist_ok=True)
        indices = [entry[0] for entry in entries]
        path = self._next_shard_path(min(indices), max(indices))
        fd, tmp_name = tempfile.mkstemp(
            dir=self.directory, prefix=f".{self.key}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(list(entries), handle)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def load_entries(self) -> Dict[int, Tuple[bool, Any]]:
        """All persisted entries, keyed by trial index.

        Corrupt or truncated shards (a kill mid-``os.replace`` cannot
        produce one, but a full disk can) are skipped — their trials
        simply run again.  Later shards win on duplicate indices.
        """
        loaded: Dict[int, Tuple[bool, Any]] = {}
        for path in self._shard_paths():
            try:
                with open(path, "rb") as handle:
                    entries = pickle.load(handle)
            except Exception:
                continue
            for index, ok, payload in entries:
                loaded[int(index)] = (bool(ok), payload)
        return loaded

    def completed_indices(self) -> Set[int]:
        return set(self.load_entries())

    def clear(self) -> int:
        """Delete this run's shards; returns how many were removed."""
        removed = 0
        for path in self._shard_paths():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
