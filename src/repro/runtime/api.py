"""`run_trials` — the one-call entry point onto the trial runtime.

Experiments should not juggle executors, policies, and registries; they
call::

    report = run_trials(partial(_trial, d2_m=6.0), trials, seed=17,
                        workers=workers, metrics=metrics)
    rate = float(np.mean(report.values))

and get back a :class:`TrialRunReport` with the per-trial values (in
trial order, identical for any worker count), captured failures, and
throughput numbers.  The shared :class:`MetricsRegistry` accumulates
across calls, so an experiment sweeping ten parameter cells reports one
aggregate trials/sec and cache hit rate for the whole run.
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass
from typing import Any, List, Optional, Union

from repro.runtime.checkpoint import CheckpointStore
from repro.runtime.executor import (
    ExecutionPolicy,
    ParallelExecutor,
    SerialExecutor,
    TrialExecutor,
    TrialFailure,
    TrialFn,
    TrialRun,
    _assemble,
)
from repro.runtime.metrics import MetricsRegistry

__all__ = ["TrialRunReport", "make_executor", "run_trials"]


def _default_label(fn: TrialFn) -> str:
    """A checkpoint label from the trial function's name."""
    if isinstance(fn, functools.partial):
        fn = fn.func
    return getattr(fn, "__name__", None) or "trials"


@dataclass
class TrialRunReport:
    """A finished trial batch plus the registry that observed it."""

    run: TrialRun
    metrics: MetricsRegistry
    workers: int

    @property
    def values(self) -> List[Any]:
        """Successful trials' return values in trial-index order."""
        return self.run.values

    @property
    def failures(self) -> List[TrialFailure]:
        return self.run.failures

    @property
    def n_trials(self) -> int:
        return self.run.n_trials

    @property
    def elapsed_s(self) -> float:
        return self.run.elapsed_s

    @property
    def trials_per_s(self) -> float:
        return self.run.trials_per_s


def make_executor(
    workers: int = 1,
    policy: Optional[ExecutionPolicy] = None,
) -> TrialExecutor:
    """A serial executor for ``workers <= 1``, else a parallel one."""
    if workers <= 1:
        return SerialExecutor(policy)
    return ParallelExecutor(workers=workers, policy=policy)


def run_trials(
    fn: TrialFn,
    n_trials: int,
    *,
    seed=0,
    workers: int = 1,
    metrics: Optional[MetricsRegistry] = None,
    fail_fast: bool = True,
    chunk_size: Optional[int] = None,
    worker_timeout_s: float = 600.0,
    fallback_to_serial: bool = True,
    max_trial_retries: int = 0,
    retry_backoff_s: float = 0.0,
    batch_size: Union[int, str] = 1,
    checkpoint_dir=None,
    checkpoint_label: Optional[str] = None,
    executor: Optional[TrialExecutor] = None,
) -> TrialRunReport:
    """Run ``n_trials`` deterministic Monte-Carlo trials of ``fn``.

    Parameters
    ----------
    fn:
        Trial function ``fn(rng, index) -> value``.  Bind experiment
        parameters with ``functools.partial`` over a module-level
        function so the parallel path can pickle it.
    n_trials:
        Number of independent trials.
    seed:
        Master seed (int, sequence of ints, or ``SeedSequence``).  Trial
        ``i`` receives child ``i`` of ``SeedSequence(seed)`` regardless
        of the worker count, so results are reproducible *and*
        executor-independent.
    workers:
        1 (default) runs in-process; >= 2 dispatches to a process pool.
    metrics:
        Optional shared registry; a fresh one is created otherwise.
        Counters/timers accumulate across calls to support multi-cell
        experiments.
    fail_fast:
        ``True``: first trial exception raises
        :class:`~repro.runtime.executor.TrialError`.  ``False``: failures
        are collected on the report and remaining trials continue.
    chunk_size, worker_timeout_s, fallback_to_serial, max_trial_retries,
    retry_backoff_s:
        See :class:`~repro.runtime.executor.ExecutionPolicy`.
    batch_size:
        When ``fn`` is a :class:`~repro.runtime.executor.BatchTrial`,
        group up to this many consecutive trials of each chunk into one
        batched engine call (e.g. one
        :func:`repro.core.batch.detect_batch` pass across the group).
        The string ``"auto"`` picks the batch size from the workload
        shape (see :func:`~repro.runtime.executor.choose_batch_size`)
        when the trial carries a
        :class:`~repro.runtime.executor.WorkloadShape`, and runs
        unbatched otherwise.  Per-trial seeding is unchanged, so results
        equal the ``batch_size=1`` run for any value.  Ignored for plain
        trial functions.
    checkpoint_dir:
        When given, completed trials are persisted to sharded
        checkpoints in this directory as the run progresses, and a
        subsequent call with the same ``(seed, n_trials, label)`` skips
        everything already on disk — an interrupted run resumes where it
        stopped and yields results byte-identical to an uninterrupted
        one.  Trial values must be picklable.
    checkpoint_label:
        Separates checkpoints of different experiments sharing seed and
        trial count; defaults to the trial function's name.
    executor:
        Pre-built executor override (ignores ``workers`` and the policy
        arguments).
    """
    if n_trials < 0:
        raise ValueError(f"n_trials must be >= 0, got {n_trials}")
    metrics = metrics if metrics is not None else MetricsRegistry()
    if executor is None:
        policy = ExecutionPolicy(
            fail_fast=fail_fast,
            chunk_size=chunk_size,
            worker_timeout_s=worker_timeout_s,
            fallback_to_serial=fallback_to_serial,
            max_trial_retries=max_trial_retries,
            retry_backoff_s=retry_backoff_s,
            batch_size=batch_size,
        )
        executor = make_executor(workers=workers, policy=policy)

    if checkpoint_dir is None:
        run = executor.run(fn, n_trials, seed, metrics=metrics)
        return TrialRunReport(
            run=run, metrics=metrics, workers=max(1, workers)
        )

    # Checkpointed path: the store is the source of truth.  Load what a
    # previous (possibly killed) run already computed, dispatch only the
    # missing indices, then assemble the full result from disk — which
    # is what makes `resume == uninterrupted` hold by construction.
    store = CheckpointStore.for_run(
        checkpoint_dir,
        seed,
        n_trials,
        label=checkpoint_label or _default_label(fn),
    )
    started = time.perf_counter()
    done = store.load_entries()
    if done:
        metrics.counter("runtime.checkpoint_hits").inc(len(done))
    missing = [i for i in range(n_trials) if i not in done]
    elapsed_s = 0.0
    fallback_reason = None
    if missing:
        partial_run = executor.run(
            fn,
            n_trials,
            seed,
            metrics=metrics,
            indices=missing,
            checkpoint=store,
        )
        elapsed_s = partial_run.elapsed_s
        fallback_reason = partial_run.fallback_reason
        done = store.load_entries()
    entries = [(index, ok, payload) for index, (ok, payload) in done.items()]
    run = _assemble(
        n_trials, entries, elapsed_s or (time.perf_counter() - started)
    )
    run.fallback_reason = fallback_reason
    return TrialRunReport(run=run, metrics=metrics, workers=max(1, workers))
