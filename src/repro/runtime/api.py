"""`run_trials` — the one-call entry point onto the trial runtime.

Experiments should not juggle executors, policies, and registries; they
call::

    report = run_trials(partial(_trial, d2_m=6.0), trials, seed=17,
                        workers=workers, metrics=metrics)
    rate = float(np.mean(report.values))

and get back a :class:`TrialRunReport` with the per-trial values (in
trial order, identical for any worker count), captured failures, and
throughput numbers.  The shared :class:`MetricsRegistry` accumulates
across calls, so an experiment sweeping ten parameter cells reports one
aggregate trials/sec and cache hit rate for the whole run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

from repro.runtime.executor import (
    ExecutionPolicy,
    ParallelExecutor,
    SerialExecutor,
    TrialExecutor,
    TrialFailure,
    TrialFn,
    TrialRun,
)
from repro.runtime.metrics import MetricsRegistry

__all__ = ["TrialRunReport", "make_executor", "run_trials"]


@dataclass
class TrialRunReport:
    """A finished trial batch plus the registry that observed it."""

    run: TrialRun
    metrics: MetricsRegistry
    workers: int

    @property
    def values(self) -> List[Any]:
        """Successful trials' return values in trial-index order."""
        return self.run.values

    @property
    def failures(self) -> List[TrialFailure]:
        return self.run.failures

    @property
    def n_trials(self) -> int:
        return self.run.n_trials

    @property
    def elapsed_s(self) -> float:
        return self.run.elapsed_s

    @property
    def trials_per_s(self) -> float:
        return self.run.trials_per_s


def make_executor(
    workers: int = 1,
    policy: Optional[ExecutionPolicy] = None,
) -> TrialExecutor:
    """A serial executor for ``workers <= 1``, else a parallel one."""
    if workers <= 1:
        return SerialExecutor(policy)
    return ParallelExecutor(workers=workers, policy=policy)


def run_trials(
    fn: TrialFn,
    n_trials: int,
    *,
    seed=0,
    workers: int = 1,
    metrics: Optional[MetricsRegistry] = None,
    fail_fast: bool = True,
    chunk_size: Optional[int] = None,
    worker_timeout_s: float = 600.0,
    fallback_to_serial: bool = True,
    executor: Optional[TrialExecutor] = None,
) -> TrialRunReport:
    """Run ``n_trials`` deterministic Monte-Carlo trials of ``fn``.

    Parameters
    ----------
    fn:
        Trial function ``fn(rng, index) -> value``.  Bind experiment
        parameters with ``functools.partial`` over a module-level
        function so the parallel path can pickle it.
    n_trials:
        Number of independent trials.
    seed:
        Master seed (int, sequence of ints, or ``SeedSequence``).  Trial
        ``i`` receives child ``i`` of ``SeedSequence(seed)`` regardless
        of the worker count, so results are reproducible *and*
        executor-independent.
    workers:
        1 (default) runs in-process; >= 2 dispatches to a process pool.
    metrics:
        Optional shared registry; a fresh one is created otherwise.
        Counters/timers accumulate across calls to support multi-cell
        experiments.
    fail_fast:
        ``True``: first trial exception raises
        :class:`~repro.runtime.executor.TrialError`.  ``False``: failures
        are collected on the report and remaining trials continue.
    chunk_size, worker_timeout_s, fallback_to_serial:
        See :class:`~repro.runtime.executor.ExecutionPolicy`.
    executor:
        Pre-built executor override (ignores ``workers`` and the policy
        arguments).
    """
    if n_trials < 0:
        raise ValueError(f"n_trials must be >= 0, got {n_trials}")
    metrics = metrics if metrics is not None else MetricsRegistry()
    if executor is None:
        policy = ExecutionPolicy(
            fail_fast=fail_fast,
            chunk_size=chunk_size,
            worker_timeout_s=worker_timeout_s,
            fallback_to_serial=fallback_to_serial,
        )
        executor = make_executor(workers=workers, policy=policy)
    run = executor.run(fn, n_trials, seed, metrics=metrics)
    return TrialRunReport(run=run, metrics=metrics, workers=max(1, workers))
