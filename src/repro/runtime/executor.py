"""Trial executors: serial and multiprocessing-backed parallel runs.

The experiments in this repository are embarrassingly parallel: every
Monte-Carlo trial builds its own topology, draws its own channels, and
returns a small result.  A :class:`TrialExecutor` runs ``n`` such
trials and returns their results *in trial order* with per-trial
deterministic seeding:

* The master seed expands into per-trial ``numpy.random.SeedSequence``
  children (``SeedSequence(seed).spawn(n)``), so trial ``i`` sees the
  same random stream no matter which process runs it, in which chunk,
  or in what order — :class:`SerialExecutor` and
  :class:`ParallelExecutor` produce **identical** results for the same
  master seed.
* Per-trial exceptions are captured as :class:`TrialFailure` records
  under the ``fail_fast=False`` policy, or re-raised as
  :class:`TrialError` (with the original traceback text) under the
  default fail-fast policy.
* :class:`ParallelExecutor` dispatches chunks of trials to a
  ``multiprocessing`` pool, enforces a per-chunk timeout, and falls
  back to an in-process serial run when the pool cannot start (Pool
  creation failure, unpicklable trial function) — degraded throughput,
  never a crash, and identical results either way.

Trial functions have the signature ``fn(rng, index) -> value`` with
``rng`` a ``numpy.random.Generator``; use ``functools.partial`` over a
module-level function to bind experiment parameters (module-level
functions keep the callable picklable for the parallel path).
"""

from __future__ import annotations

import os
import pickle
import time
import traceback as traceback_module
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.runtime.cache import all_cache_snapshots
from repro.runtime.metrics import MetricsRegistry

__all__ = [
    "TrialFailure",
    "TrialError",
    "WorkerTimeoutError",
    "TrialRun",
    "ExecutionPolicy",
    "TrialExecutor",
    "SerialExecutor",
    "ParallelExecutor",
    "spawn_trial_seeds",
]

#: Trial function type: ``fn(rng, index) -> value``.
TrialFn = Callable[[np.random.Generator, int], Any]


@dataclass(frozen=True)
class TrialFailure:
    """One captured per-trial exception."""

    index: int
    error: str
    traceback: str


class TrialError(RuntimeError):
    """A trial failed under the fail-fast policy.

    Carries the failing trial's index and the formatted traceback from
    the process that ran it (which may not be this one).
    """

    def __init__(self, failure: TrialFailure) -> None:
        super().__init__(
            f"trial {failure.index} failed: {failure.error}\n"
            f"{failure.traceback}"
        )
        self.failure = failure

    def __reduce__(self):
        # Default exception pickling would re-call __init__ with the
        # formatted message instead of the TrialFailure, blowing up in
        # the pool's result-handler thread (which then hangs .get()).
        return (TrialError, (self.failure,))


class WorkerTimeoutError(RuntimeError):
    """A worker chunk exceeded the configured timeout."""


@dataclass
class TrialRun:
    """Results of one executor run.

    ``values`` holds the successful trials' return values in trial-index
    order (failed trials are absent); ``failures`` the captured
    exceptions, also in index order.
    """

    n_trials: int
    values: List[Any] = field(default_factory=list)
    failures: List[TrialFailure] = field(default_factory=list)
    elapsed_s: float = 0.0
    #: Set when a parallel run degraded to serial (why it did).
    fallback_reason: Optional[str] = None

    @property
    def n_ok(self) -> int:
        return len(self.values)

    @property
    def n_failed(self) -> int:
        return len(self.failures)

    @property
    def trials_per_s(self) -> float:
        return self.n_trials / self.elapsed_s if self.elapsed_s > 0 else 0.0


@dataclass(frozen=True)
class ExecutionPolicy:
    """Executor behaviour knobs.

    Parameters
    ----------
    fail_fast:
        ``True`` (default): the first trial exception aborts the run as
        a :class:`TrialError`.  ``False``: exceptions become
        :class:`TrialFailure` records and the run continues.
    chunk_size:
        Trials per parallel task.  ``None`` auto-sizes to roughly four
        chunks per worker, balancing dispatch overhead against load
        balance.
    worker_timeout_s:
        Per-chunk result deadline for the parallel executor.
    fallback_to_serial:
        When ``True`` (default) the parallel executor degrades to an
        in-process serial run if the pool cannot start, the trial
        function cannot be pickled, or a chunk times out — results are
        identical by construction, only slower.
    """

    fail_fast: bool = True
    chunk_size: Optional[int] = None
    worker_timeout_s: float = 600.0
    fallback_to_serial: bool = True


def spawn_trial_seeds(seed, n_trials: int) -> List[np.random.SeedSequence]:
    """Per-trial seed sequences from a master seed.

    ``seed`` may be an ``int``, a sequence of ints, or an existing
    ``SeedSequence``.  Trial ``i`` always receives the same child, which
    is what makes serial and parallel runs interchangeable.
    """
    if isinstance(seed, np.random.SeedSequence):
        root = seed
    else:
        root = np.random.SeedSequence(seed)
    return root.spawn(n_trials)


def _run_one(
    fn: TrialFn, index: int, seed: np.random.SeedSequence
) -> Tuple[bool, Any]:
    """Run one trial; returns ``(ok, value-or-TrialFailure)``."""
    try:
        return True, fn(np.random.default_rng(seed), index)
    except Exception as error:  # noqa: BLE001 — captured by design
        return False, TrialFailure(
            index=index,
            error=repr(error),
            traceback=traceback_module.format_exc(),
        )


def _cache_delta(
    before: Dict[str, Tuple[int, int]],
    after: Dict[str, Tuple[int, int]],
) -> Dict[str, Tuple[int, int]]:
    """Per-cache ``(hits, misses)`` accumulated between two snapshots."""
    delta = {}
    for name, (hits, misses) in after.items():
        hits0, misses0 = before.get(name, (0, 0))
        if hits != hits0 or misses != misses0:
            delta[name] = (hits - hits0, misses - misses0)
    return delta


def _execute_chunk(
    fn: TrialFn,
    start_index: int,
    seeds: Sequence[np.random.SeedSequence],
    fail_fast: bool,
) -> Tuple[List[Tuple[int, bool, Any]], Dict[str, Tuple[int, int]], float]:
    """Worker entry point: run a contiguous chunk of trials.

    Returns ``(entries, cache_delta, chunk_seconds)`` where each entry is
    ``(trial_index, ok, value-or-TrialFailure)``.  Under ``fail_fast`` a
    failing trial raises :class:`TrialError`, which multiprocessing
    ships back to the parent.
    """
    started = time.perf_counter()
    cache_before = all_cache_snapshots()
    entries: List[Tuple[int, bool, Any]] = []
    for offset, seed in enumerate(seeds):
        index = start_index + offset
        ok, payload = _run_one(fn, index, seed)
        if not ok and fail_fast:
            raise TrialError(payload)
        entries.append((index, ok, payload))
    delta = _cache_delta(cache_before, all_cache_snapshots())
    return entries, delta, time.perf_counter() - started


def _record_cache_delta(
    metrics: MetricsRegistry, delta: Dict[str, Tuple[int, int]]
) -> None:
    for name, (hits, misses) in delta.items():
        metrics.counter(f"cache.{name}.hits").inc(hits)
        metrics.counter(f"cache.{name}.misses").inc(misses)


def _assemble(
    n_trials: int,
    entries: List[Tuple[int, bool, Any]],
    elapsed_s: float,
) -> TrialRun:
    """Order chunk entries by trial index and split values/failures."""
    entries = sorted(entries, key=lambda entry: entry[0])
    run = TrialRun(n_trials=n_trials, elapsed_s=elapsed_s)
    for _, ok, payload in entries:
        if ok:
            run.values.append(payload)
        else:
            run.failures.append(payload)
    return run


class TrialExecutor(ABC):
    """Runs ``n`` independently seeded trials of a trial function."""

    @abstractmethod
    def run(
        self,
        fn: TrialFn,
        n_trials: int,
        seed,
        metrics: Optional[MetricsRegistry] = None,
    ) -> TrialRun:
        """Execute ``fn`` for ``n_trials`` trials; results in index order."""

    def _start_run(
        self, n_trials: int, metrics: Optional[MetricsRegistry]
    ) -> MetricsRegistry:
        metrics = metrics if metrics is not None else MetricsRegistry()
        metrics.counter("runtime.trials").inc(n_trials)
        return metrics

    def _finish_run(self, metrics: MetricsRegistry, run: TrialRun) -> TrialRun:
        metrics.timer("runtime.wall_clock").record(run.elapsed_s)
        metrics.counter("runtime.trials_ok").inc(run.n_ok)
        metrics.counter("runtime.trials_failed").inc(run.n_failed)
        return run


class SerialExecutor(TrialExecutor):
    """In-process, one-at-a-time execution — the reference semantics."""

    def __init__(self, policy: ExecutionPolicy | None = None) -> None:
        self.policy = policy or ExecutionPolicy()

    def run(
        self,
        fn: TrialFn,
        n_trials: int,
        seed,
        metrics: Optional[MetricsRegistry] = None,
    ) -> TrialRun:
        metrics = self._start_run(n_trials, metrics)
        metrics.gauge("runtime.workers").set(1)
        seeds = spawn_trial_seeds(seed, n_trials)
        started = time.perf_counter()
        cache_before = all_cache_snapshots()
        entries: List[Tuple[int, bool, Any]] = []
        for index, child in enumerate(seeds):
            ok, payload = _run_one(fn, index, child)
            if not ok and self.policy.fail_fast:
                raise TrialError(payload)
            entries.append((index, ok, payload))
        _record_cache_delta(
            metrics, _cache_delta(cache_before, all_cache_snapshots())
        )
        run = _assemble(n_trials, entries, time.perf_counter() - started)
        return self._finish_run(metrics, run)


class ParallelExecutor(TrialExecutor):
    """Chunked dispatch of trials onto a ``multiprocessing`` pool.

    Determinism comes from the seeding scheme, not the schedule: chunks
    may complete in any order, but trial ``i`` always consumes seed
    child ``i`` and results are re-assembled in index order.
    """

    def __init__(
        self,
        workers: int | None = None,
        policy: ExecutionPolicy | None = None,
    ) -> None:
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers or (os.cpu_count() or 1)
        self.policy = policy or ExecutionPolicy()

    # -- helpers ------------------------------------------------------------

    def _chunk_size(self, n_trials: int) -> int:
        if self.policy.chunk_size is not None:
            if self.policy.chunk_size < 1:
                raise ValueError(
                    f"chunk_size must be >= 1, got {self.policy.chunk_size}"
                )
            return self.policy.chunk_size
        # ~4 chunks per worker: granular enough to balance uneven trial
        # costs, coarse enough to amortise dispatch overhead.
        return max(1, -(-n_trials // (self.workers * 4)))

    def _serial_fallback(
        self,
        fn: TrialFn,
        n_trials: int,
        seed,
        metrics: MetricsRegistry,
        reason: str,
    ) -> TrialRun:
        metrics.counter("runtime.serial_fallbacks").inc()
        metrics.gauge("runtime.workers").set(1)
        run = SerialExecutor(self.policy).run(fn, n_trials, seed, metrics)
        # The serial executor already counted this run's trials; undo the
        # double count from our own _start_run.
        metrics.counter("runtime.trials").value -= n_trials
        run.fallback_reason = reason
        return run

    # -- execution ----------------------------------------------------------

    def run(
        self,
        fn: TrialFn,
        n_trials: int,
        seed,
        metrics: Optional[MetricsRegistry] = None,
    ) -> TrialRun:
        metrics = self._start_run(n_trials, metrics)
        metrics.gauge("runtime.workers").set(self.workers)

        if n_trials == 0:
            return self._finish_run(metrics, TrialRun(n_trials=0))

        # A trial function the pool cannot pickle would fail deep inside
        # the dispatch machinery; detect it up front and degrade.
        try:
            pickle.dumps(fn)
        except Exception as error:  # pickling errors vary by payload
            if self.policy.fallback_to_serial:
                return self._serial_fallback(
                    fn, n_trials, seed, metrics, f"unpicklable fn: {error!r}"
                )
            raise

        seeds = spawn_trial_seeds(seed, n_trials)
        chunk_size = self._chunk_size(n_trials)
        metrics.gauge("runtime.chunk_size").set(chunk_size)
        chunks = [
            (start, seeds[start:start + chunk_size])
            for start in range(0, n_trials, chunk_size)
        ]

        import multiprocessing

        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # platforms without fork
            context = multiprocessing.get_context()

        started = time.perf_counter()
        cache_before = all_cache_snapshots()
        try:
            pool = context.Pool(processes=min(self.workers, len(chunks)))
        except Exception as error:  # pool refused to start (sandbox, limits)
            if self.policy.fallback_to_serial:
                return self._serial_fallback(
                    fn, n_trials, seed, metrics, f"pool start failed: {error!r}"
                )
            raise

        entries: List[Tuple[int, bool, Any]] = []
        try:
            pending = [
                pool.apply_async(
                    _execute_chunk,
                    (fn, start, chunk_seeds, self.policy.fail_fast),
                )
                for start, chunk_seeds in chunks
            ]
            pool.close()
            for result in pending:
                try:
                    chunk_entries, delta, chunk_s = result.get(
                        timeout=self.policy.worker_timeout_s
                    )
                except multiprocessing.TimeoutError:
                    pool.terminate()
                    if self.policy.fallback_to_serial:
                        return self._serial_fallback(
                            fn,
                            n_trials,
                            seed,
                            metrics,
                            f"chunk exceeded {self.policy.worker_timeout_s}s",
                        )
                    raise WorkerTimeoutError(
                        f"a chunk of {chunk_size} trial(s) exceeded the "
                        f"{self.policy.worker_timeout_s}s worker timeout"
                    ) from None
                except TrialError:
                    pool.terminate()
                    raise
                entries.extend(chunk_entries)
                _record_cache_delta(metrics, delta)
                metrics.counter("runtime.chunks").inc()
                metrics.histogram("runtime.chunk_seconds").observe(chunk_s)
        finally:
            pool.terminate()
            pool.join()

        # The parent process may have warmed caches too (e.g. building a
        # reference artifact before dispatch).
        _record_cache_delta(
            metrics, _cache_delta(cache_before, all_cache_snapshots())
        )
        run = _assemble(n_trials, entries, time.perf_counter() - started)
        return self._finish_run(metrics, run)
