"""Trial executors: serial and multiprocessing-backed parallel runs.

The experiments in this repository are embarrassingly parallel: every
Monte-Carlo trial builds its own topology, draws its own channels, and
returns a small result.  A :class:`TrialExecutor` runs ``n`` such
trials and returns their results *in trial order* with per-trial
deterministic seeding:

* The master seed expands into per-trial ``numpy.random.SeedSequence``
  children (``SeedSequence(seed).spawn(n)``), so trial ``i`` sees the
  same random stream no matter which process runs it, in which chunk,
  or in what order — :class:`SerialExecutor` and
  :class:`ParallelExecutor` produce **identical** results for the same
  master seed.
* Per-trial exceptions are captured as :class:`TrialFailure` records
  under the ``fail_fast=False`` policy, or re-raised as
  :class:`TrialError` (with the original traceback text) under the
  default fail-fast policy.
* :class:`ParallelExecutor` dispatches chunks of trials to a
  ``multiprocessing`` pool, enforces a per-chunk timeout, and falls
  back to an in-process serial run when the pool cannot start (Pool
  creation failure, unpicklable trial function) — degraded throughput,
  never a crash, and identical results either way.

Trial functions have the signature ``fn(rng, index) -> value`` with
``rng`` a ``numpy.random.Generator``; use ``functools.partial`` over a
module-level function to bind experiment parameters (module-level
functions keep the callable picklable for the parallel path).
"""

from __future__ import annotations

import dataclasses
import os
import pickle
import time
import traceback as traceback_module
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.runtime.cache import all_cache_snapshots
from repro.runtime.metrics import MetricsRegistry

__all__ = [
    "TrialFailure",
    "TrialError",
    "WorkerTimeoutError",
    "TrialRun",
    "BatchTrial",
    "WorkloadShape",
    "ExecutionPolicy",
    "TrialExecutor",
    "SerialExecutor",
    "ParallelExecutor",
    "choose_batch_size",
    "resolve_policy",
    "spawn_trial_seeds",
]

#: Trial function type: ``fn(rng, index) -> value``.
TrialFn = Callable[[np.random.Generator, int], Any]

#: Batched trial function type: ``fn(rngs, indices) -> values`` with one
#: generator and one value per trial.
BatchTrialFn = Callable[
    [List[np.random.Generator], List[int]], Sequence[Any]
]


@dataclass(frozen=True)
class WorkloadShape:
    """What the executor needs to know about a batched engine workload.

    ``batch_size="auto"`` resolves through :func:`choose_batch_size`,
    which needs the shape of the per-trial engine call: the native CIR
    length, the template-bank size, and the upsampling factor (the three
    knobs that size the ``(B, n_templates, fft_length)`` batch scratch
    buffers).  A :class:`BatchTrial` that carries its workload shape
    opts in to auto batch sizing; one without it runs unbatched under
    ``"auto"``.
    """

    cir_length: int
    bank_size: int
    upsample_factor: int = 8

    def __post_init__(self) -> None:
        if self.cir_length < 1:
            raise ValueError(
                f"cir_length must be >= 1, got {self.cir_length}"
            )
        if self.bank_size < 1:
            raise ValueError(f"bank_size must be >= 1, got {self.bank_size}")
        if self.upsample_factor < 1:
            raise ValueError(
                f"upsample_factor must be >= 1, got {self.upsample_factor}"
            )


#: Scratch-memory ceiling for one batched engine pass (the
#: ``(B, n_templates, fft_length)`` complex product buffer plus its
#: inverse-transform output) used by :func:`choose_batch_size` when the
#: selected array backend does not report its own budget.  Matches
#: :data:`repro.core.backend.DEFAULT_HOST_MEMORY_BUDGET` (kept as a
#: literal here to avoid a runtime -> core import at module load).
MAX_BATCH_SCRATCH_BYTES = 256 * 1024 * 1024

#: Largest batch size :func:`choose_batch_size` will ever pick; beyond
#: this the FFT batching gains flatten while the scratch buffers keep
#: growing (see ``benchmarks/bench_detector.py``, B in {1, 8, 64}).
MAX_AUTO_BATCH = 64


def choose_batch_size(
    n_trials: int,
    cir_length: int,
    bank_size: int,
    workers: int = 1,
    *,
    upsample_factor: int = 8,
    memory_budget_bytes: int | None = None,
) -> int:
    """Pick a batch size from the workload shape (``batch_size="auto"``).

    The heuristic balances three pressures:

    * **Enough trials per group.**  Each worker sees roughly
      ``n_trials / workers`` trials; a batch larger than that degrades
      into one short group per worker and gains nothing.
    * **Bounded scratch memory.**  One batched pass materialises two
      ``(B, bank_size, ~2 * cir_length * upsample_factor)`` complex
      tensors (spectrum product + inverse-transform output); B is capped
      so they stay under ``memory_budget_bytes``.
    * **Diminishing returns.**  Past :data:`MAX_AUTO_BATCH` the
      forward/inverse transforms are already fully amortised
      (measured in ``BENCH_detector.json``), so larger batches only pay
      memory.

    The result is rounded down to a power of two so chunks split into
    even groups, and is always >= 1.  Determinism note: the choice
    depends only on the arguments and the configured array backend —
    never on runtime load — so a run with ``batch_size="auto"`` is
    exactly reproducible (and, by the :class:`BatchTrial` equivalence
    contract, equals the ``batch_size=1`` run anyway).  With
    ``memory_budget_bytes=None`` the budget comes from the selected
    backend (:meth:`repro.core.backend.ArrayBackend.memory_budget_bytes`
    — a fixed host constant for NumPy, free device memory for GPU
    backends); note a GPU budget *is* load-dependent, so pass an
    explicit budget when byte-stable auto sizing matters there.
    """
    if n_trials <= 1 or cir_length < 1 or bank_size < 1:
        return 1
    if memory_budget_bytes is None:
        # Imported lazily: repro.core modules import this one at load.
        from repro.core.backend import get_backend

        try:
            memory_budget_bytes = get_backend().memory_budget_bytes()
        except Exception:
            memory_budget_bytes = MAX_BATCH_SCRATCH_BYTES
    # Two complex (B, bank, padded-length) tensors; the padded FFT
    # length is ~2x the upsampled CIR length (next_fast_len of the full
    # linear-correlation support).
    bytes_per_trial = 2 * 16 * bank_size * 2 * cir_length * upsample_factor
    memory_cap = max(1, int(memory_budget_bytes // max(1, bytes_per_trial)))
    per_worker = max(1, n_trials // max(1, workers))
    batch = min(MAX_AUTO_BATCH, memory_cap, per_worker)
    # Round down to a power of two for even group splits.
    return 1 << (int(batch).bit_length() - 1)


@dataclass(frozen=True)
class BatchTrial:
    """A per-trial function paired with a batched equivalent.

    The batched form ``batch(rngs, indices)`` must return one value per
    trial, with entry ``k`` equal to what ``single(rngs[k], indices[k])``
    would have returned — the executors *assume* this equivalence, and
    the ported experiments prove it in
    ``tests/test_runtime_experiments.py`` by asserting ``batch_size=B``
    runs equal ``batch_size=1`` runs.

    Each trial still consumes its own seed child: the executor builds
    ``rngs[k] = np.random.default_rng(seed_child(indices[k]))`` before
    the batched call, so batching changes neither the random streams nor
    the results — only how many trials share one engine pass (e.g. one
    2-D FFT across the batch via :func:`repro.core.batch.detect_batch`).

    If the batched call raises (or returns the wrong number of values),
    the executor falls back to running the group's trials one at a time
    through ``single`` — counted under ``runtime.batch_fallbacks`` — so
    per-trial retry and ``fail_fast`` semantics are preserved exactly.

    Build instances from ``functools.partial`` over module-level
    functions to keep them picklable for the parallel path.

    ``workload`` (optional) describes the shape of the batched engine
    call (:class:`WorkloadShape`); carrying it opts the trial into
    ``batch_size="auto"`` resolution via :func:`choose_batch_size`.
    """

    single: TrialFn
    batch: BatchTrialFn
    workload: Optional[WorkloadShape] = None

    def __call__(self, rng: np.random.Generator, index: int) -> Any:
        return self.single(rng, index)

    def run_batch(
        self, rngs: List[np.random.Generator], indices: List[int]
    ) -> Sequence[Any]:
        return self.batch(rngs, indices)


@dataclass(frozen=True)
class TrialFailure:
    """One captured per-trial exception."""

    index: int
    error: str
    traceback: str


class TrialError(RuntimeError):
    """A trial failed under the fail-fast policy.

    Carries the failing trial's index and the formatted traceback from
    the process that ran it (which may not be this one).
    """

    def __init__(self, failure: TrialFailure) -> None:
        super().__init__(
            f"trial {failure.index} failed: {failure.error}\n"
            f"{failure.traceback}"
        )
        self.failure = failure

    def __reduce__(self):
        # Default exception pickling would re-call __init__ with the
        # formatted message instead of the TrialFailure, blowing up in
        # the pool's result-handler thread (which then hangs .get()).
        return (TrialError, (self.failure,))


class WorkerTimeoutError(RuntimeError):
    """A worker chunk exceeded the configured timeout."""


@dataclass
class TrialRun:
    """Results of one executor run.

    ``values`` holds the successful trials' return values in trial-index
    order (failed trials are absent); ``failures`` the captured
    exceptions, also in index order.
    """

    n_trials: int
    values: List[Any] = field(default_factory=list)
    failures: List[TrialFailure] = field(default_factory=list)
    elapsed_s: float = 0.0
    #: Set when a parallel run degraded to serial (why it did).
    fallback_reason: Optional[str] = None

    @property
    def n_ok(self) -> int:
        return len(self.values)

    @property
    def n_failed(self) -> int:
        return len(self.failures)

    @property
    def trials_per_s(self) -> float:
        return self.n_trials / self.elapsed_s if self.elapsed_s > 0 else 0.0


@dataclass(frozen=True)
class ExecutionPolicy:
    """Executor behaviour knobs.

    Parameters
    ----------
    fail_fast:
        ``True`` (default): the first trial exception aborts the run as
        a :class:`TrialError`.  ``False``: exceptions become
        :class:`TrialFailure` records and the run continues.
    chunk_size:
        Trials per parallel task.  ``None`` auto-sizes to roughly four
        chunks per worker, balancing dispatch overhead against load
        balance.
    worker_timeout_s:
        Per-chunk result deadline for the parallel executor.
    fallback_to_serial:
        When ``True`` (default) the parallel executor degrades
        gracefully: it runs serially in-process if the pool cannot start
        or the trial function cannot be pickled, and re-dispatches *only
        the lost chunk* in-process when a worker chunk times out —
        results are identical by construction, only slower.
    max_trial_retries:
        Per-trial retry budget: a trial raising an exception is re-run
        up to this many extra times (with a fresh generator from the
        *same* seed child, so deterministic failures stay failures and
        results stay reproducible) before it counts as failed.
    retry_backoff_s / retry_backoff_factor:
        Exponential backoff between per-trial retries: attempt ``k``
        sleeps ``retry_backoff_s * retry_backoff_factor**k`` seconds of
        real time first.
    batch_size:
        Trials per batched engine call when the trial function is a
        :class:`BatchTrial`.  ``1`` (default) runs every trial through
        the per-trial path; ``B >= 2`` groups up to ``B`` consecutive
        trials of each chunk into one ``run_batch`` call.  The string
        ``"auto"`` defers the choice to :func:`choose_batch_size`, using
        the :class:`WorkloadShape` carried by the :class:`BatchTrial`
        (a trial without one runs unbatched).  Seeding is unchanged
        (trial ``i`` still consumes seed child ``i``), so results are
        identical for any batch size as long as the batched function
        matches its per-trial form.  Ignored for plain trial functions.
    """

    fail_fast: bool = True
    chunk_size: Optional[int] = None
    worker_timeout_s: float = 600.0
    fallback_to_serial: bool = True
    max_trial_retries: int = 0
    retry_backoff_s: float = 0.0
    retry_backoff_factor: float = 2.0
    batch_size: Union[int, str] = 1

    def __post_init__(self) -> None:
        if not self.worker_timeout_s > 0:
            raise ValueError(
                "worker_timeout_s must be positive, got "
                f"{self.worker_timeout_s}"
            )
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError(
                f"chunk_size must be >= 1 (or None), got {self.chunk_size}"
            )
        if self.max_trial_retries < 0:
            raise ValueError(
                "max_trial_retries must be >= 0, got "
                f"{self.max_trial_retries}"
            )
        if self.retry_backoff_s < 0:
            raise ValueError(
                f"retry_backoff_s must be >= 0, got {self.retry_backoff_s}"
            )
        if self.retry_backoff_factor < 1.0:
            raise ValueError(
                "retry_backoff_factor must be >= 1, got "
                f"{self.retry_backoff_factor}"
            )
        if isinstance(self.batch_size, str):
            if self.batch_size != "auto":
                raise ValueError(
                    "batch_size must be an int >= 1 or the string "
                    f"'auto', got {self.batch_size!r}"
                )
        elif self.batch_size < 1:
            raise ValueError(
                f"batch_size must be >= 1, got {self.batch_size}"
            )


def resolve_policy(
    policy: "ExecutionPolicy",
    fn: TrialFn,
    n_trials: int,
    workers: int,
) -> "ExecutionPolicy":
    """Resolve ``batch_size="auto"`` into a concrete integer policy.

    Called once at the top of every executor run, so the dispatch
    machinery (chunk sizing, group iteration, worker entry points) only
    ever sees integer batch sizes.  An ``"auto"`` policy resolves via
    :func:`choose_batch_size` when ``fn`` is a :class:`BatchTrial`
    carrying a :class:`WorkloadShape`, and to ``1`` (unbatched)
    otherwise.  Concrete policies pass through unchanged.
    """
    if policy.batch_size != "auto":
        return policy
    if isinstance(fn, BatchTrial) and fn.workload is not None:
        shape = fn.workload
        batch = choose_batch_size(
            n_trials,
            shape.cir_length,
            shape.bank_size,
            workers,
            upsample_factor=shape.upsample_factor,
        )
    else:
        batch = 1
    return dataclasses.replace(policy, batch_size=batch)


def spawn_trial_seeds(seed, n_trials: int) -> List[np.random.SeedSequence]:
    """Per-trial seed sequences from a master seed.

    ``seed`` may be an ``int``, a sequence of ints, or an existing
    ``SeedSequence``.  Trial ``i`` always receives the same child, which
    is what makes serial and parallel runs interchangeable.
    """
    if isinstance(seed, np.random.SeedSequence):
        root = seed
    else:
        root = np.random.SeedSequence(seed)
    return root.spawn(n_trials)


def _run_one(
    fn: TrialFn,
    index: int,
    seed: np.random.SeedSequence,
    policy: Optional["ExecutionPolicy"] = None,
) -> Tuple[bool, Any, int]:
    """Run one trial; returns ``(ok, value-or-TrialFailure, retries)``.

    Each retry re-runs the trial with a *fresh* generator built from the
    same seed child: a deterministic exception fails every attempt
    (reported once the budget is spent) while transient failures recover
    — and a recovered trial is byte-identical to one that never failed,
    because the random stream restarts from the same child.
    """
    max_retries = policy.max_trial_retries if policy is not None else 0
    attempt = 0
    while True:
        try:
            return True, fn(np.random.default_rng(seed), index), attempt
        except Exception as error:  # noqa: BLE001 — captured by design
            if attempt >= max_retries:
                return False, TrialFailure(
                    index=index,
                    error=repr(error),
                    traceback=traceback_module.format_exc(),
                ), attempt
            assert policy is not None
            delay_s = policy.retry_backoff_s * (
                policy.retry_backoff_factor**attempt
            )
            if delay_s > 0:
                time.sleep(delay_s)
            attempt += 1


def _iter_groups(
    items: Sequence[Tuple[int, np.random.SeedSequence]], batch_size: int
):
    """Split a chunk's items into consecutive groups of ``batch_size``."""
    for start in range(0, len(items), batch_size):
        yield items[start:start + batch_size]


def _run_group(
    fn: TrialFn,
    group: Sequence[Tuple[int, np.random.SeedSequence]],
    policy: "ExecutionPolicy",
) -> Tuple[List[Tuple[int, bool, Any, int]], int, int]:
    """Run one group of ``(trial_index, seed)`` items.

    Returns ``(results, batches, batch_fallbacks)`` with each result a
    ``(trial_index, ok, value-or-TrialFailure, retries)`` tuple in group
    order.  A group takes the batched engine path when the policy asks
    for batching (``batch_size > 1``), the trial function is a
    :class:`BatchTrial`, and the group has at least two trials (a
    trailing singleton gains nothing from a B=1 engine pass).  Any
    exception from the batched call — or a wrong-length return —
    degrades the group to the per-trial path, preserving retry and
    failure-capture semantics exactly.
    """
    if (
        policy.batch_size > 1
        and isinstance(fn, BatchTrial)
        and len(group) > 1
    ):
        indices = [index for index, _ in group]
        rngs = [np.random.default_rng(seed) for _, seed in group]
        try:
            values = list(fn.run_batch(rngs, indices))
            if len(values) != len(group):
                raise ValueError(
                    f"run_batch returned {len(values)} values for "
                    f"{len(group)} trials"
                )
        except Exception:  # noqa: BLE001 — degrade, never lose trials
            fallback = 1
        else:
            return (
                [(i, True, v, 0) for i, v in zip(indices, values)],
                1,
                0,
            )
    else:
        fallback = 0
    results = []
    for index, seed in group:
        ok, payload, attempts = _run_one(fn, index, seed, policy)
        results.append((index, ok, payload, attempts))
    return results, 0, fallback


def _cache_delta(
    before: Dict[str, Tuple[int, int]],
    after: Dict[str, Tuple[int, int]],
) -> Dict[str, Tuple[int, int]]:
    """Per-cache ``(hits, misses)`` accumulated between two snapshots."""
    delta = {}
    for name, (hits, misses) in after.items():
        hits0, misses0 = before.get(name, (0, 0))
        if hits != hits0 or misses != misses0:
            delta[name] = (hits - hits0, misses - misses0)
    return delta


def _execute_chunk(
    fn: TrialFn,
    items: Sequence[Tuple[int, np.random.SeedSequence]],
    policy: "ExecutionPolicy",
) -> Tuple[
    List[Tuple[int, bool, Any]],
    Dict[str, Tuple[int, int]],
    float,
    int,
    Tuple[int, int],
]:
    """Worker entry point: run a chunk of ``(trial_index, seed)`` items.

    Items need not be contiguous (checkpoint resume dispatches only the
    missing indices).  Returns ``(entries, cache_delta, chunk_seconds,
    retries, (batches, batch_fallbacks))`` where each entry is
    ``(trial_index, ok, value-or-TrialFailure)``.  With
    ``policy.batch_size > 1`` and a :class:`BatchTrial` function, the
    chunk's trials run in groups through the batched engine path (see
    :func:`_run_group`).  Under ``fail_fast`` a failing trial raises
    :class:`TrialError`, which multiprocessing ships back to the parent.
    """
    started = time.perf_counter()
    cache_before = all_cache_snapshots()
    entries: List[Tuple[int, bool, Any]] = []
    retries = 0
    batches = 0
    batch_fallbacks = 0
    for group in _iter_groups(items, policy.batch_size):
        results, group_batches, group_fallbacks = _run_group(
            fn, group, policy
        )
        batches += group_batches
        batch_fallbacks += group_fallbacks
        for index, ok, payload, attempts in results:
            retries += attempts
            if not ok and policy.fail_fast:
                raise TrialError(payload)
            entries.append((index, ok, payload))
    delta = _cache_delta(cache_before, all_cache_snapshots())
    return (
        entries,
        delta,
        time.perf_counter() - started,
        retries,
        (batches, batch_fallbacks),
    )


def _record_cache_delta(
    metrics: MetricsRegistry, delta: Dict[str, Tuple[int, int]]
) -> None:
    for name, (hits, misses) in delta.items():
        metrics.counter(f"cache.{name}.hits").inc(hits)
        metrics.counter(f"cache.{name}.misses").inc(misses)


def _assemble(
    n_trials: int,
    entries: List[Tuple[int, bool, Any]],
    elapsed_s: float,
) -> TrialRun:
    """Order chunk entries by trial index and split values/failures."""
    entries = sorted(entries, key=lambda entry: entry[0])
    run = TrialRun(n_trials=n_trials, elapsed_s=elapsed_s)
    for _, ok, payload in entries:
        if ok:
            run.values.append(payload)
        else:
            run.failures.append(payload)
    return run


class TrialExecutor(ABC):
    """Runs ``n`` independently seeded trials of a trial function."""

    @abstractmethod
    def run(
        self,
        fn: TrialFn,
        n_trials: int,
        seed,
        metrics: Optional[MetricsRegistry] = None,
        *,
        indices: Optional[Sequence[int]] = None,
        checkpoint=None,
    ) -> TrialRun:
        """Execute ``fn`` for ``n_trials`` trials; results in index order.

        ``indices`` restricts execution to a subset of trial indices
        (seeding is unchanged: trial ``i`` still consumes seed child
        ``i`` of the full ``n_trials`` expansion) — the checkpoint
        resume path uses this to run only the missing trials.
        ``checkpoint`` is an optional
        :class:`~repro.runtime.checkpoint.CheckpointStore`; completed
        entries are persisted to it as the run progresses, so an
        interrupted run can resume.
        """

    def _start_run(
        self, n_trials: int, metrics: Optional[MetricsRegistry]
    ) -> MetricsRegistry:
        metrics = metrics if metrics is not None else MetricsRegistry()
        metrics.counter("runtime.trials").inc(n_trials)
        return metrics

    def _finish_run(self, metrics: MetricsRegistry, run: TrialRun) -> TrialRun:
        metrics.timer("runtime.wall_clock").record(run.elapsed_s)
        metrics.counter("runtime.trials_ok").inc(run.n_ok)
        metrics.counter("runtime.trials_failed").inc(run.n_failed)
        return run


class SerialExecutor(TrialExecutor):
    """In-process, one-at-a-time execution — the reference semantics."""

    def __init__(self, policy: ExecutionPolicy | None = None) -> None:
        self.policy = policy or ExecutionPolicy()

    def run(
        self,
        fn: TrialFn,
        n_trials: int,
        seed,
        metrics: Optional[MetricsRegistry] = None,
        *,
        indices: Optional[Sequence[int]] = None,
        checkpoint=None,
    ) -> TrialRun:
        metrics = self._start_run(n_trials, metrics)
        metrics.gauge("runtime.workers").set(1)
        policy = resolve_policy(self.policy, fn, n_trials, 1)
        metrics.gauge("runtime.batch_size").set(policy.batch_size)
        seeds = spawn_trial_seeds(seed, n_trials)
        work = (
            list(range(n_trials))
            if indices is None
            else sorted(int(i) for i in indices)
        )
        started = time.perf_counter()
        cache_before = all_cache_snapshots()
        entries: List[Tuple[int, bool, Any]] = []
        unflushed: List[Tuple[int, bool, Any]] = []
        items = [(index, seeds[index]) for index in work]
        try:
            for group in _iter_groups(items, policy.batch_size):
                results, batches, fallbacks = _run_group(
                    fn, group, policy
                )
                if batches:
                    metrics.counter("runtime.batches").inc(batches)
                if fallbacks:
                    metrics.counter("runtime.batch_fallbacks").inc(fallbacks)
                for index, ok, payload, attempts in results:
                    if attempts:
                        metrics.counter("runtime.trial_retries").inc(attempts)
                    if not ok and policy.fail_fast:
                        raise TrialError(payload)
                    entries.append((index, ok, payload))
                    if checkpoint is not None:
                        unflushed.append((index, ok, payload))
                        if len(unflushed) >= checkpoint.flush_every:
                            checkpoint.save_entries(unflushed)
                            unflushed = []
        finally:
            # Persist whatever completed, even when a trial raised —
            # a resumed run re-does only the missing indices.
            if checkpoint is not None and unflushed:
                checkpoint.save_entries(unflushed)
        _record_cache_delta(
            metrics, _cache_delta(cache_before, all_cache_snapshots())
        )
        run = _assemble(n_trials, entries, time.perf_counter() - started)
        return self._finish_run(metrics, run)


class ParallelExecutor(TrialExecutor):
    """Chunked dispatch of trials onto a ``multiprocessing`` pool.

    Determinism comes from the seeding scheme, not the schedule: chunks
    may complete in any order, but trial ``i`` always consumes seed
    child ``i`` and results are re-assembled in index order.
    """

    def __init__(
        self,
        workers: int | None = None,
        policy: ExecutionPolicy | None = None,
    ) -> None:
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers or (os.cpu_count() or 1)
        self.policy = policy or ExecutionPolicy()

    # -- helpers ------------------------------------------------------------

    def _chunk_size(self, n_trials: int, policy: ExecutionPolicy) -> int:
        if policy.chunk_size is not None:
            return policy.chunk_size
        # ~4 chunks per worker: granular enough to balance uneven trial
        # costs, coarse enough to amortise dispatch overhead.
        size = max(1, -(-n_trials // (self.workers * 4)))
        if policy.batch_size > 1:
            # Round up to a whole number of batches so the batched
            # engine path sees full groups (a short group only at the
            # very end of each chunk's item list).
            size = -(-size // policy.batch_size) * policy.batch_size
        return size

    def _serial_fallback(
        self,
        fn: TrialFn,
        n_trials: int,
        seed,
        metrics: MetricsRegistry,
        reason: str,
        policy: Optional[ExecutionPolicy] = None,
        indices: Optional[Sequence[int]] = None,
        checkpoint=None,
    ) -> TrialRun:
        metrics.counter("runtime.serial_fallbacks").inc()
        metrics.gauge("runtime.workers").set(1)
        run = SerialExecutor(policy or self.policy).run(
            fn, n_trials, seed, metrics, indices=indices, checkpoint=checkpoint
        )
        # The serial executor already counted this run's trials; undo the
        # double count from our own _start_run.
        metrics.counter("runtime.trials").value -= n_trials
        run.fallback_reason = reason
        return run

    # -- execution ----------------------------------------------------------

    def run(
        self,
        fn: TrialFn,
        n_trials: int,
        seed,
        metrics: Optional[MetricsRegistry] = None,
        *,
        indices: Optional[Sequence[int]] = None,
        checkpoint=None,
    ) -> TrialRun:
        metrics = self._start_run(n_trials, metrics)
        metrics.gauge("runtime.workers").set(self.workers)
        policy = resolve_policy(self.policy, fn, n_trials, self.workers)
        metrics.gauge("runtime.batch_size").set(policy.batch_size)

        work = (
            list(range(n_trials))
            if indices is None
            else sorted(int(i) for i in indices)
        )
        if not work:
            return self._finish_run(metrics, TrialRun(n_trials=n_trials))

        # A trial function the pool cannot pickle would fail deep inside
        # the dispatch machinery; detect it up front and degrade.
        try:
            pickle.dumps(fn)
        except Exception as error:  # pickling errors vary by payload
            if policy.fallback_to_serial:
                return self._serial_fallback(
                    fn, n_trials, seed, metrics,
                    f"unpicklable fn: {error!r}",
                    policy=policy, indices=indices, checkpoint=checkpoint,
                )
            raise

        seeds = spawn_trial_seeds(seed, n_trials)
        items = [(index, seeds[index]) for index in work]
        chunk_size = self._chunk_size(len(items), policy)
        metrics.gauge("runtime.chunk_size").set(chunk_size)
        chunks = [
            items[start:start + chunk_size]
            for start in range(0, len(items), chunk_size)
        ]

        import multiprocessing

        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # platforms without fork
            context = multiprocessing.get_context()

        started = time.perf_counter()
        cache_before = all_cache_snapshots()
        try:
            pool = context.Pool(processes=min(self.workers, len(chunks)))
        except Exception as error:  # pool refused to start (sandbox, limits)
            if policy.fallback_to_serial:
                return self._serial_fallback(
                    fn, n_trials, seed, metrics,
                    f"pool start failed: {error!r}",
                    policy=policy, indices=indices, checkpoint=checkpoint,
                )
            raise

        entries: List[Tuple[int, bool, Any]] = []
        redispatched = 0
        try:
            pending = [
                pool.apply_async(
                    _execute_chunk, (fn, chunk_items, policy)
                )
                for chunk_items in chunks
            ]
            pool.close()
            for chunk_items, result in zip(chunks, pending):
                try:
                    (
                        chunk_entries, delta, chunk_s, retries, batch_stats
                    ) = result.get(timeout=policy.worker_timeout_s)
                except multiprocessing.TimeoutError:
                    if not policy.fallback_to_serial:
                        pool.terminate()
                        raise WorkerTimeoutError(
                            f"a chunk of {len(chunk_items)} trial(s) "
                            f"exceeded the {policy.worker_timeout_s}s "
                            "worker timeout"
                        ) from None
                    # Worker crash/hang recovery: re-run ONLY the lost
                    # chunk in-process; the other chunks keep streaming
                    # from the pool (the hung worker's slot is written
                    # off).  Identical results by construction — the
                    # chunk's trials still consume their own seed
                    # children.
                    redispatched += 1
                    metrics.counter("runtime.chunk_redispatches").inc()
                    (
                        chunk_entries, delta, chunk_s, retries, batch_stats
                    ) = _execute_chunk(fn, chunk_items, policy)
                except TrialError:
                    pool.terminate()
                    raise
                entries.extend(chunk_entries)
                if checkpoint is not None:
                    checkpoint.save_entries(chunk_entries)
                _record_cache_delta(metrics, delta)
                if retries:
                    metrics.counter("runtime.trial_retries").inc(retries)
                if batch_stats[0]:
                    metrics.counter("runtime.batches").inc(batch_stats[0])
                if batch_stats[1]:
                    metrics.counter("runtime.batch_fallbacks").inc(
                        batch_stats[1]
                    )
                metrics.counter("runtime.chunks").inc()
                metrics.histogram("runtime.chunk_seconds").observe(chunk_s)
        finally:
            pool.terminate()
            pool.join()

        # The parent process may have warmed caches too (e.g. building a
        # reference artifact before dispatch).
        _record_cache_delta(
            metrics, _cache_delta(cache_before, all_cache_snapshots())
        )
        run = _assemble(n_trials, entries, time.perf_counter() - started)
        if redispatched:
            run.fallback_reason = (
                f"re-dispatched {redispatched} timed-out chunk(s) in-process"
            )
        return self._finish_run(metrics, run)
