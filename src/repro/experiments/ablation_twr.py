"""EXP-A4 — Ablation: SS-TWR (+/- drift compensation) vs DS-TWR.

Quantifies the clock-drift context the paper's scheme lives in: plain
SS-TWR is exposed to ``(reply_delay / 2) * drift * c`` of bias, which at
290 us and a few ppm is tens of centimetres; CFO compensation (what the
paper's hardware does implicitly) or a third DS-TWR message both remove
it — but DS-TWR costs 50 % more messages per link, which is exactly the
traffic concurrent ranging eliminates.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import Table
from repro.channel.stochastic import IndoorEnvironment
from repro.experiments.common import ExperimentResult
from repro.netsim.medium import Medium
from repro.netsim.node import Node
from repro.protocol.twr import DsTwr, SsTwr

DISTANCE_M = 5.0


def _nodes(rng):
    medium = Medium(environment=IndoorEnvironment.office(), rng=rng)
    initiator = Node.at(0, 0.0, 0.0, rng=rng)
    responder = Node.at(1, DISTANCE_M, 0.0, rng=rng)
    medium.add_nodes([initiator, responder])
    return medium, initiator, responder


def run(trials: int = 400, seed: int = 59) -> ExperimentResult:
    rng = np.random.default_rng(seed)
    medium, initiator, responder = _nodes(rng)

    ss = SsTwr(medium, initiator, responder)
    ss_estimates = ss.run_many(trials, rng)
    ss_raw = np.array(
        [ss.run(rng).uncompensated_distance_m for _ in range(trials)]
    )
    ds = DsTwr(medium, initiator, responder)
    ds_estimates = ds.run_many(trials, rng)

    result = ExperimentResult(
        experiment_id="Ablation A4",
        description="TWR scheme comparison under clock drift",
    )
    table = Table(
        ["scheme", "messages/link", "bias [m]", "std [m]"],
        title=f"{trials} exchanges at {DISTANCE_M} m, ~2 ppm crystals",
    )
    rows = (
        ("SS-TWR, no compensation", 2, ss_raw),
        ("SS-TWR + CFO compensation", 2, ss_estimates),
        ("DS-TWR (asymmetric)", 3, ds_estimates),
    )
    for label, messages, estimates in rows:
        table.add_row(
            [
                label,
                messages,
                float(np.mean(estimates) - DISTANCE_M),
                float(np.std(estimates)),
            ]
        )
    result.add_table(table)

    result.compare(
        "ss_raw_abs_bias_m",
        float(abs(np.mean(ss_raw) - DISTANCE_M)),
        paper=None,
        unit="m",
    )
    result.compare(
        "ss_compensated_std_m", float(np.std(ss_estimates)), paper=0.0228,
        unit="m",
    )
    result.compare(
        "ds_std_m", float(np.std(ds_estimates)), paper=None, unit="m"
    )
    result.note(
        "compensated SS-TWR and DS-TWR both reach the cm band; plain "
        "SS-TWR carries the drift bias.  Concurrent ranging inherits the "
        "compensated SS-TWR error model on its anchor link."
    )
    return result
