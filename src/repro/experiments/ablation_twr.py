"""EXP-A4 — Ablation: SS-TWR (+/- drift compensation) vs DS-TWR.

Quantifies the clock-drift context the paper's scheme lives in: plain
SS-TWR is exposed to ``(reply_delay / 2) * drift * c`` of bias, which at
290 us and a few ppm is tens of centimetres; CFO compensation (what the
paper's hardware does implicitly) or a third DS-TWR message both remove
it — but DS-TWR costs 50 % more messages per link, which is exactly the
traffic concurrent ranging eliminates.

Every trial is one independently seeded exchange triple (raw SS-TWR,
compensated SS-TWR, DS-TWR) on the :mod:`repro.runtime` executor, so
``--workers`` sweeps are byte-identical to serial runs and
``checkpoint`` resumes interrupted ones.
"""

from __future__ import annotations

from functools import partial
from typing import Optional

import numpy as np

from repro.analysis.tables import Table
from repro.channel.stochastic import IndoorEnvironment
from repro.experiments.common import ExperimentResult, standard_run
from repro.netsim.medium import Medium
from repro.netsim.node import Node
from repro.protocol.twr import DsTwr, SsTwr
from repro.runtime import MetricsRegistry, run_trials

DISTANCE_M = 5.0


def _nodes(rng, clock_rng):
    medium = Medium(environment=IndoorEnvironment.office(), rng=rng)
    initiator = Node.at(0, 0.0, 0.0, rng=clock_rng)
    responder = Node.at(1, DISTANCE_M, 0.0, rng=clock_rng)
    medium.add_nodes([initiator, responder])
    return medium, initiator, responder


def _trial(rng: np.random.Generator, index: int, *, seed: int) -> tuple:
    """One exchange per scheme.

    The crystal pair is drawn once from the master seed — every trial
    ranges between the *same* two (drifting) clocks, as the historical
    single-node-pair loop did, so the raw SS-TWR bias stays visible
    instead of averaging out over fresh crystals.  Channel fading and
    timestamp noise come from the per-trial stream.

    Returns ``(ss_compensated_m, ss_raw_m, ds_m)``; the raw estimate
    comes from the *same* SS exchange as the compensated one, so the
    pair differs only by the CFO correction.
    """
    clock_rng = np.random.default_rng(
        np.random.SeedSequence((seed, 101))
    )
    medium, initiator, responder = _nodes(rng, clock_rng)
    ss_outcome = SsTwr(medium, initiator, responder).run(rng)
    ds_outcome = DsTwr(medium, initiator, responder).run(rng)
    return (
        ss_outcome.distance_m,
        ss_outcome.uncompensated_distance_m,
        ds_outcome.distance_m,
    )


@standard_run("trials", "seed")
def run(
    *,
    trials: int = 400,
    seed: int = 59,
    workers: int = 1,
    batch_size=1,
    checkpoint=None,
    metrics: Optional[MetricsRegistry] = None,
) -> ExperimentResult:
    """Bias/std of the three TWR schemes over ``trials`` exchanges.

    ``batch_size`` is accepted for the standard run signature and
    ignored (one exchange triple per trial).
    """
    del batch_size  # standard-signature parameter; no batched engine here
    metrics = metrics if metrics is not None else MetricsRegistry()
    report = run_trials(
        partial(_trial, seed=seed),
        trials,
        seed=seed,
        workers=workers,
        metrics=metrics,
        checkpoint_dir=checkpoint,
        checkpoint_label="ablation-twr",
    )
    values = np.array(report.values, dtype=float)
    ss_estimates = values[:, 0]
    ss_raw = values[:, 1]
    ds_estimates = values[:, 2]

    result = ExperimentResult(
        experiment_id="Ablation A4",
        description="TWR scheme comparison under clock drift",
    )
    table = Table(
        ["scheme", "messages/link", "bias [m]", "std [m]"],
        title=f"{trials} exchanges at {DISTANCE_M} m, ~2 ppm crystals",
    )
    rows = (
        ("SS-TWR, no compensation", 2, ss_raw),
        ("SS-TWR + CFO compensation", 2, ss_estimates),
        ("DS-TWR (asymmetric)", 3, ds_estimates),
    )
    for label, messages, estimates in rows:
        table.add_row(
            [
                label,
                messages,
                float(np.mean(estimates) - DISTANCE_M),
                float(np.std(estimates)),
            ]
        )
    result.add_table(table)

    result.compare(
        "ss_raw_abs_bias_m",
        float(abs(np.mean(ss_raw) - DISTANCE_M)),
        paper=None,
        unit="m",
    )
    result.compare(
        "ss_compensated_std_m", float(np.std(ss_estimates)), paper=0.0228,
        unit="m",
    )
    result.compare(
        "ds_std_m", float(np.std(ds_estimates)), paper=None, unit="m"
    )
    result.note(
        "compensated SS-TWR and DS-TWR both reach the cm band; plain "
        "SS-TWR carries the drift bias.  Concurrent ranging inherits the "
        "compensated SS-TWR error model on its anchor link."
    )
    return result
