"""EXP-N1 — Future-work extension: concurrent ranging under NLOS.

The paper's conclusion: "we have neglected the impact of non-line-of-
sight situations on the performance of concurrent ranging.  We will
hence investigate this impact thoroughly."  This experiment does so in
simulation: the same three-responder round is run across progressively
harsher channel presets — hallway (strong LOS), office, multipath-rich
(attenuated LOS), and NLOS (blocked LOS) — measuring identification
rate and distance bias.

Expected physics: as the direct path weakens, (i) reflections start to
out-power it, costing detections of *other* responders (challenge IV),
and (ii) the first detectable path arrives later than the geometric
LOS, biasing distances long.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import Table
from repro.channel.stochastic import IndoorEnvironment
from repro.experiments.common import ExperimentResult
from repro.protocol.concurrent import ConcurrentRangingSession

DISTANCES_M = (3.0, 6.0, 10.0)

ENVIRONMENTS = (
    ("hallway (LOS)", IndoorEnvironment.hallway),
    ("office", IndoorEnvironment.office),
    ("multipath-rich", IndoorEnvironment.multipath_rich),
    ("NLOS (blocked)", IndoorEnvironment.nlos),
)


def _run_environment(
    environment: IndoorEnvironment, trials: int, seed: int
) -> dict:
    session = ConcurrentRangingSession.build(
        responder_distances_m=list(DISTANCES_M),
        n_shapes=3,
        environment=environment,
        seed=seed,
        compensate_tx_quantization=True,  # isolate the channel effect
    )
    identified = 0
    biases = []
    total = 0
    for _ in range(trials):
        outcome = session.run_round()
        for responder in outcome.outcomes:
            total += 1
            if responder.identified:
                identified += 1
                biases.append(responder.error_m)
    return {
        "id_rate": identified / total,
        "bias_m": float(np.mean(biases)) if biases else float("nan"),
        "std_m": float(np.std(biases)) if biases else float("nan"),
    }


def run(trials: int = 60, seed: int = 47) -> ExperimentResult:
    """Sweep the channel presets."""
    result = ExperimentResult(
        experiment_id="NLOS study (future work)",
        description="concurrent ranging vs channel severity",
    )
    table = Table(
        ["environment", "identification rate", "distance bias [m]",
         "distance std [m]"],
        title=f"3 responders at 3/6/10 m, {trials} rounds per environment",
    )
    rates = {}
    for label, factory in ENVIRONMENTS:
        stats = _run_environment(factory(), trials, seed)
        rates[label] = stats["id_rate"]
        table.add_row([label, stats["id_rate"], stats["bias_m"], stats["std_m"]])
    result.add_table(table)

    result.compare("id_rate_los", rates["hallway (LOS)"], paper=None)
    result.compare("id_rate_nlos", rates["NLOS (blocked)"], paper=None)
    result.note(
        "no paper numbers exist (declared future work); expected shape: "
        "identification degrades and bias grows as the LOS weakens"
    )
    return result
