"""EXP-N1 — Future-work extension: concurrent ranging under NLOS.

The paper's conclusion: "we have neglected the impact of non-line-of-
sight situations on the performance of concurrent ranging.  We will
hence investigate this impact thoroughly."  This experiment does so in
simulation: the same three-responder round is run across progressively
harsher channel presets — hallway (strong LOS), office, multipath-rich
(attenuated LOS), and NLOS (blocked LOS) — measuring identification
rate and distance bias.

Expected physics: as the direct path weakens, (i) reflections start to
out-power it, costing detections of *other* responders (challenge IV),
and (ii) the first detectable path arrives later than the geometric
LOS, biasing distances long.

Each round is one independently seeded trial on the
:mod:`repro.runtime` executor (``run(..., workers=W)``): trial ``i``
builds its own session from seed child ``i``, so serial and parallel
runs produce identical statistics —
``tests/test_runtime_experiments.py`` asserts it.
"""

from __future__ import annotations

from functools import partial

import numpy as np

from repro.analysis.tables import Table
from repro.channel.stochastic import IndoorEnvironment
from repro.experiments.common import ExperimentResult, standard_run
from repro.protocol.concurrent import ConcurrentRangingSession
from repro.runtime import MetricsRegistry, run_trials

DISTANCES_M = (3.0, 6.0, 10.0)

ENVIRONMENTS = (
    ("hallway (LOS)", IndoorEnvironment.hallway),
    ("office", IndoorEnvironment.office),
    ("multipath-rich", IndoorEnvironment.multipath_rich),
    ("NLOS (blocked)", IndoorEnvironment.nlos),
)

_ENV_FACTORIES = dict(ENVIRONMENTS)


def _environment_trial(rng: np.random.Generator, index: int, *, environment: str):
    """One three-responder round in the named channel preset.

    The environment travels as its preset *name* (a string) so the
    partial stays picklable for the parallel executor; the trial's own
    generator seeds the session, making every round independent and
    executor-order-free.  Returns ``(n_identified, n_responders,
    biases)`` with one bias entry per identified responder.
    """
    session = ConcurrentRangingSession.build(
        responder_distances_m=list(DISTANCES_M),
        n_shapes=3,
        environment=_ENV_FACTORIES[environment](),
        seed=rng,
        compensate_tx_quantization=True,  # isolate the channel effect
    )
    outcome = session.run_round()
    identified = 0
    biases = []
    for responder in outcome.outcomes:
        if responder.identified:
            identified += 1
            biases.append(float(responder.error_m))
    return identified, len(outcome.outcomes), tuple(biases)


def _run_environment(
    label: str,
    trials: int,
    seed: int,
    env_index: int,
    workers: int,
    metrics: MetricsRegistry | None,
) -> dict:
    report = run_trials(
        partial(_environment_trial, environment=label),
        trials,
        seed=[seed, env_index],
        workers=workers,
        metrics=metrics,
    )
    identified = sum(n for n, _, _ in report.values)
    total = sum(t for _, t, _ in report.values)
    biases = [b for _, _, bs in report.values for b in bs]
    return {
        "id_rate": identified / total,
        "bias_m": float(np.mean(biases)) if biases else float("nan"),
        "std_m": float(np.std(biases)) if biases else float("nan"),
    }


@standard_run("trials", "seed", "workers", "metrics")
def run(
    *,
    trials: int = 60,
    seed: int = 47,
    workers: int = 1,
    batch_size=1,
    checkpoint=None,
    metrics: MetricsRegistry | None = None,
) -> ExperimentResult:
    """Sweep the channel presets.

    ``batch_size`` and ``checkpoint`` are accepted for the standard run
    signature and ignored (full protocol rounds per trial, per-cell
    loops with their own seeding).
    """
    del batch_size, checkpoint  # standard-signature parameters; unused
    result = ExperimentResult(
        experiment_id="NLOS study (future work)",
        description="concurrent ranging vs channel severity",
    )
    table = Table(
        ["environment", "identification rate", "distance bias [m]",
         "distance std [m]"],
        title=f"3 responders at 3/6/10 m, {trials} rounds per environment",
    )
    rates = {}
    for env_index, (label, _) in enumerate(ENVIRONMENTS):
        stats = _run_environment(
            label, trials, seed, env_index, workers, metrics
        )
        rates[label] = stats["id_rate"]
        table.add_row([label, stats["id_rate"], stats["bias_m"], stats["std_m"]])
    result.add_table(table)

    result.compare("id_rate_los", rates["hallway (LOS)"], paper=None)
    result.compare("id_rate_nlos", rates["NLOS (blocked)"], paper=None)
    result.note(
        "no paper numbers exist (declared future work); expected shape: "
        "identification degrades and bias grows as the LOS weakens"
    )
    return result
