"""Paper experiments: one module per table/figure.

Every experiment module exposes a ``run(...)`` function returning an
:class:`~repro.experiments.common.ExperimentResult` that knows the paper's
reference numbers, the measured numbers, and how to print itself as the
paper's table.  The benchmark suite calls these; so can users::

    from repro.experiments import table1_pulse_id
    print(table1_pulse_id.run(trials=200).render())
"""

from repro.experiments.common import ExperimentResult

__all__ = ["ExperimentResult"]
