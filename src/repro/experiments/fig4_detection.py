"""EXP-F4 — Fig. 4: the response detection pipeline on three responders.

The paper's illustration: three responders at 3, 6, and 10 m in a
hallway reply concurrently; the initiator's CIR shows three peaks; the
search-and-subtract algorithm extracts them and Eq. 4 turns the delays
into distances.

``run()`` performs a Monte-Carlo version (detection rates and distance
errors over many rounds) on the :mod:`repro.runtime` trial executor:
every round is one independently seeded trial, so ``workers=4``
parallelises the experiment with results identical to a serial run.
``pipeline_stages()`` reproduces the figure's four panels (CIR,
matched-filter output, output after one subtraction, final detections)
for a single round.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial

import numpy as np

from repro.analysis.metrics import detection_rate, summarize_errors
from repro.analysis.tables import Table
from repro.channel.stochastic import IndoorEnvironment
from repro.core.detection import SearchAndSubtract, SearchAndSubtractConfig
from repro.core.matched_filter import matched_filter
from repro.core.rpm import SlotPlan
from repro.core.scheme import CombinedScheme
from repro.experiments.common import ExperimentResult, standard_run
from repro.netsim.medium import Medium
from repro.netsim.node import Node
from repro.protocol.concurrent import ConcurrentRangingSession
from repro.runtime import MetricsRegistry, run_trials, template_bank
from repro.signal.sampling import fft_upsample, place_pulse

#: The paper's layout: d1 = 3 m, d2 = 6 m, d3 = 10 m in a hallway.
DISTANCES_M = (3.0, 6.0, 10.0)

#: Tolerance for "this detection corresponds to that responder": half the
#: worst-case TX-quantisation displacement (8 ns -> 1.2 m) plus margin.
MATCH_TOLERANCE_M = 1.5


@dataclass(frozen=True)
class PipelineStages:
    """The four panels of Fig. 4 for one round."""

    cir_magnitude: np.ndarray
    filter_output: np.ndarray
    after_first_subtraction: np.ndarray
    detections: tuple
    sampling_period_s: float


def pipeline_stages(seed: int = 11) -> PipelineStages:
    """One round's CIR and the intermediate detector signals."""
    session = ConcurrentRangingSession.build(
        responder_distances_m=list(DISTANCES_M),
        n_slots=1,
        n_shapes=1,
        seed=seed,
        # Plain Sect. IV operation: all responders share the default
        # pulse shape (ranging stays anonymous, as before Sect. V).
        allow_duplicate_assignments=True,
    )
    round_result = session.run_round()
    capture = round_result.capture
    template = session.scheme.bank[0]
    detector = SearchAndSubtract(
        template, SearchAndSubtractConfig(max_responses=3, upsample_factor=8)
    )
    factor = detector.config.upsample_factor
    fine_period = capture.sampling_period_s / factor
    working = fft_upsample(capture.samples, factor)
    fine_template = template.resampled(fine_period)
    output_before = matched_filter(working, fine_template)

    detections = detector.detect(
        capture.samples, capture.sampling_period_s, noise_std=capture.noise_std
    )
    # Re-create the "after subtracting the strongest response" panel.
    strongest = max(detections, key=lambda d: abs(d.amplitude)) if detections else None
    after = working.copy()
    if strongest is not None:
        place_pulse(
            after,
            fine_template.samples.astype(complex),
            strongest.index * factor,
            amplitude=-strongest.amplitude * np.sqrt(factor),
            peak_index=fine_template.peak_index,
        )
    output_after = matched_filter(after, fine_template)
    return PipelineStages(
        cir_magnitude=np.abs(capture.samples),
        filter_output=np.abs(output_before),
        after_first_subtraction=np.abs(output_after),
        detections=tuple(detections),
        sampling_period_s=capture.sampling_period_s,
    )


def _trial(
    rng: np.random.Generator,
    index: int,
    *,
    compensate_tx_quantization: bool,
) -> tuple:
    """One concurrent round at the Fig. 4 layout.

    Returns a tuple of per-responder estimated distances (``None`` when
    the responder was not matched within :data:`MATCH_TOLERANCE_M`).
    The 3-shape paper bank comes from the process-local runtime cache.
    """
    medium = Medium(environment=IndoorEnvironment.hallway(), rng=rng)
    initiator = Node.at(0, 0.0, 0.0, rng=rng)
    responders = [
        Node.at(i + 1, float(d), 0.0, rng=rng)
        for i, d in enumerate(DISTANCES_M)
    ]
    medium.add_nodes([initiator] + responders)

    bank = template_bank((0x93, 0xC8, 0xE6))  # paper_bank(3)
    scheme = CombinedScheme(SlotPlan.for_range(20.0, n_slots=1), bank)
    session = ConcurrentRangingSession(
        medium=medium,
        initiator=initiator,
        responders=responders,
        scheme=scheme,
        compensate_tx_quantization=compensate_tx_quantization,
        rng=rng,
    )
    outcome = session.run_round()
    estimates = []
    for responder in outcome.outcomes:
        ok = (
            responder.estimated_distance_m is not None
            and abs(responder.estimated_distance_m - responder.true_distance_m)
            <= MATCH_TOLERANCE_M
        )
        estimates.append(responder.estimated_distance_m if ok else None)
    return tuple(estimates)


@standard_run(
    "trials", "seed", "compensate_tx_quantization", "workers", "metrics"
)
def run(
    *,
    trials: int = 200,
    seed: int = 11,
    compensate_tx_quantization: bool = False,
    workers: int = 1,
    batch_size=1,
    checkpoint=None,
    metrics: MetricsRegistry | None = None,
) -> ExperimentResult:
    """Monte-Carlo reproduction of the Fig. 4 scenario.

    ``workers`` parallelises the rounds; for a fixed ``seed`` the
    reproduced numbers are identical for any worker count.
    ``batch_size`` is accepted for the standard run signature and
    ignored (each trial runs a full protocol round through the serial
    session); ``checkpoint`` persists trial checkpoints for resumable
    runs.
    """
    del batch_size  # standard-signature parameter; no batched engine here
    report = run_trials(
        partial(_trial, compensate_tx_quantization=compensate_tx_quantization),
        trials,
        seed=seed,
        workers=workers,
        metrics=metrics,
        checkpoint_dir=checkpoint,
        checkpoint_label="fig4",
    )
    per_responder_estimates: list[list[float]] = [[] for _ in DISTANCES_M]
    all_found: list[bool] = []
    for estimates in report.values:
        for i, estimate in enumerate(estimates):
            if estimate is not None:
                per_responder_estimates[i].append(estimate)
        all_found.append(all(e is not None for e in estimates))

    result = ExperimentResult(
        experiment_id="Fig. 4",
        description="response detection with responders at 3/6/10 m",
    )
    table = Table(
        ["responder", "true [m]", "mean est [m]", "std [m]", "found rate"],
        title=f"Fig. 4 reproduction ({trials} rounds, "
        f"TX quantisation {'compensated' if compensate_tx_quantization else 'active'})",
    )
    for i, true_distance in enumerate(DISTANCES_M):
        estimates = per_responder_estimates[i]
        if estimates:
            stats = summarize_errors(estimates, true_distance)
            table.add_row(
                [
                    f"resp {i + 1}",
                    true_distance,
                    float(np.mean(estimates)),
                    stats["std_m"],
                    len(estimates) / trials,
                ]
            )
        else:
            table.add_row([f"resp {i + 1}", true_distance, float("nan"),
                           float("nan"), 0.0])
    result.add_table(table)
    result.compare("all_three_detected_rate", detection_rate(all_found), paper=1.0)
    for i, true_distance in enumerate(DISTANCES_M):
        estimates = per_responder_estimates[i]
        if estimates:
            result.compare(
                f"mean_distance_resp{i + 1}_m",
                float(np.mean(estimates)),
                paper=true_distance,
                unit="m",
            )
    result.note(
        "the paper shows a single capture with all three peaks at the "
        "correct distances; the Monte-Carlo version quantifies how often "
        "that picture holds"
    )
    return result
