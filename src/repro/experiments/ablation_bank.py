"""EXP-A2 — Ablation: identification accuracy vs template-bank size.

The paper claims up to ~100 usable pulse shapes (Sect. V/VIII).  More
shapes squeezed into the fixed register range means more similar
neighbours and a smaller classification margin.  This ablation sweeps
the bank size and measures single-response shape-classification accuracy
at a fixed SNR, quantifying where the "~100 shapes" claim starts to cost
accuracy.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import Table
from repro.constants import CIR_SAMPLING_PERIOD_S
from repro.core.detection import SearchAndSubtractConfig
from repro.core.pulse_id import PulseShapeClassifier
from repro.experiments.common import ExperimentResult
from repro.signal.sampling import place_pulse
from repro.signal.templates import TemplateBank

CIR_LENGTH = 512
BANK_SIZES = (2, 3, 4, 8, 16, 32, 64)
SNR_DB = 30.0


def classification_accuracy(
    bank_size: int, trials: int, snr_db: float, rng: np.random.Generator
) -> float:
    """Accuracy of decoding a single response's shape with a given bank."""
    bank = TemplateBank.spread(bank_size)
    classifier = PulseShapeClassifier(
        bank, SearchAndSubtractConfig(max_responses=1, upsample_factor=8)
    )
    amplitude = 10.0 ** (snr_db / 20.0)
    hits = 0
    for _ in range(trials):
        true_shape = int(rng.integers(0, bank_size))
        cir = np.zeros(CIR_LENGTH, dtype=complex)
        position = float(rng.uniform(100, CIR_LENGTH - 150))
        phase = np.exp(1j * rng.uniform(0, 2 * np.pi))
        place_pulse(
            cir,
            bank[true_shape].samples.astype(complex),
            position,
            amplitude * phase,
        )
        cir += (
            rng.standard_normal(CIR_LENGTH) + 1j * rng.standard_normal(CIR_LENGTH)
        ) / np.sqrt(2.0)
        classified = classifier.classify(cir, CIR_SAMPLING_PERIOD_S, noise_std=1.0)
        if classified and classified[0].shape_index == true_shape:
            hits += 1
    return hits / trials


def run(trials: int = 100, seed: int = 41) -> ExperimentResult:
    """Sweep the bank size at fixed SNR."""
    rng = np.random.default_rng(seed)
    result = ExperimentResult(
        experiment_id="Ablation A2",
        description="shape-classification accuracy vs bank size",
    )
    table = Table(
        ["bank size", "min register step", "accuracy"],
        title=f"single-response classification over {trials} trials "
        f"at {SNR_DB:.0f} dB SNR",
    )
    accuracies = []
    for size in BANK_SIZES:
        bank = TemplateBank.spread(size)
        registers = bank.registers
        min_step = min(
            registers[i + 1] - registers[i] for i in range(len(registers) - 1)
        )
        accuracy = classification_accuracy(size, trials, SNR_DB, rng)
        accuracies.append(accuracy)
        table.add_row([size, min_step, accuracy])
    result.add_table(table)

    result.compare("accuracy_3_shapes", accuracies[BANK_SIZES.index(3)], paper=0.99)
    result.compare(
        f"accuracy_{BANK_SIZES[-1]}_shapes", accuracies[-1], paper=None
    )
    result.note(
        "the paper evaluates 3 shapes (Table I) and conjectures ~100; the "
        "sweep shows how the margin erodes as shapes pack tighter"
    )
    return result
