"""EXP-A2 — Ablation: identification accuracy vs template-bank size.

The paper claims up to ~100 usable pulse shapes (Sect. V/VIII).  More
shapes squeezed into the fixed register range means more similar
neighbours and a smaller classification margin.  This ablation sweeps
the bank size and measures single-response shape-classification accuracy
at a fixed SNR, quantifying where the "~100 shapes" claim starts to cost
accuracy.

Ported to the :mod:`repro.runtime` trial executor: one trial per bank
size, each drawing from its own spawned generator, so ``--workers``
parallelises the sweep and serial and parallel runs are byte-identical.
The historical ``run(trials, seed)`` positional call keeps working
through the :func:`~repro.experiments.common.standard_run` shim (with a
``DeprecationWarning``).
"""

from __future__ import annotations

from functools import partial
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.analysis.tables import Table
from repro.constants import CIR_SAMPLING_PERIOD_S
from repro.core.detection import SearchAndSubtractConfig
from repro.core.pulse_id import PulseShapeClassifier
from repro.experiments.common import ExperimentResult, standard_run
from repro.runtime import MetricsRegistry, run_trials
from repro.signal.sampling import place_pulse
from repro.signal.templates import TemplateBank

CIR_LENGTH = 512
BANK_SIZES = (2, 3, 4, 8, 16, 32, 64)
SNR_DB = 30.0


def classification_accuracy(
    bank_size: int, trials: int, snr_db: float, rng: np.random.Generator
) -> float:
    """Accuracy of decoding a single response's shape with a given bank."""
    bank = TemplateBank.spread(bank_size)
    classifier = PulseShapeClassifier(
        bank, SearchAndSubtractConfig(max_responses=1, upsample_factor=8)
    )
    amplitude = 10.0 ** (snr_db / 20.0)
    hits = 0
    for _ in range(trials):
        true_shape = int(rng.integers(0, bank_size))
        cir = np.zeros(CIR_LENGTH, dtype=complex)
        position = float(rng.uniform(100, CIR_LENGTH - 150))
        phase = np.exp(1j * rng.uniform(0, 2 * np.pi))
        place_pulse(
            cir,
            bank[true_shape].samples.astype(complex),
            position,
            amplitude * phase,
        )
        cir += (
            rng.standard_normal(CIR_LENGTH) + 1j * rng.standard_normal(CIR_LENGTH)
        ) / np.sqrt(2.0)
        classified = classifier.classify(cir, CIR_SAMPLING_PERIOD_S, noise_std=1.0)
        if classified and classified[0].shape_index == true_shape:
            hits += 1
    return hits / trials


def _bank_cell(
    rng: np.random.Generator,
    index: int,
    *,
    sizes: Sequence[int],
    trials: int,
) -> Tuple[int, int, float]:
    """(bank size, min register step, accuracy) for one sweep cell."""
    size = int(sizes[index])
    registers = TemplateBank.spread(size).registers
    min_step = min(
        registers[i + 1] - registers[i] for i in range(len(registers) - 1)
    )
    return size, int(min_step), classification_accuracy(
        size, trials, SNR_DB, rng
    )


@standard_run("trials", "seed")
def run(
    *,
    trials: int = 100,
    seed: int = 41,
    workers: int = 1,
    batch_size=1,
    checkpoint=None,
    metrics: Optional[MetricsRegistry] = None,
) -> ExperimentResult:
    """Sweep the bank size at fixed SNR.

    ``trials`` is the number of single-response classifications per bank
    size; ``batch_size`` is accepted for the standard run signature and
    ignored (each size is one indivisible sweep cell).
    """
    del batch_size  # standard-signature parameter; unused
    result = ExperimentResult(
        experiment_id="Ablation A2",
        description="shape-classification accuracy vs bank size",
    )
    table = Table(
        ["bank size", "min register step", "accuracy"],
        title=f"single-response classification over {trials} trials "
        f"at {SNR_DB:.0f} dB SNR",
    )
    report = run_trials(
        partial(_bank_cell, sizes=BANK_SIZES, trials=trials),
        len(BANK_SIZES),
        seed=seed,
        workers=workers,
        metrics=metrics,
        checkpoint_dir=checkpoint,
        checkpoint_label="ablation-bank",
    )
    accuracies = {}
    for size, min_step, accuracy in report.values:
        accuracies[size] = accuracy
        table.add_row([size, min_step, accuracy])
    result.add_table(table)

    result.compare("accuracy_3_shapes", accuracies[3], paper=0.99)
    result.compare(
        f"accuracy_{BANK_SIZES[-1]}_shapes", accuracies[BANK_SIZES[-1]],
        paper=None,
    )
    result.note(
        "the paper evaluates 3 shapes (Table I) and conjectures ~100; the "
        "sweep shows how the margin erodes as shapes pack tighter"
    )
    return result
