"""EXP-SECURITY — distance-manipulation attacks vs. time-hopping defenses.

Concurrent ranging inherits the classic UWB security problem: an
attacker who can inject CIR energy ahead of the true leading edge (ghost
peaks, Cicada-style early replies, spoofed pulse shapes) *shortens* the
measured distance, and a reciprocity tamper distorts the channel
features a verifier would inspect.  This experiment measures both sides
of the arms race on the Fig. 4 hallway layout:

* **attack success rate** — fraction of attacked rounds in which the
  round survives the screen *unflagged* and some surviving responder
  outcome reports a distance reduction beyond ``SUCCESS_THRESHOLD_M``
  (a flagged round is discarded by the system, so its distances are
  never used);
* **detection rate** — fraction of attacked rounds the
  :class:`~repro.protocol.defense.DefensePlan` screen flags;
* **false positive rate** — fraction of *clean* rounds flagged anyway.

The grid crosses attacker type x intensity x defense on/off, plus a
clean cell per defense arm.  Intensity ``1.0`` is the full-strength
attack each injector was tuned against; defenses combine the secret
time-hopping reply verification (500 ns hop range) with the CIR-feature
anomaly detector.

Every trial is one independently seeded campaign on the
:mod:`repro.runtime` executor — serial and parallel sweeps are
byte-identical, and ``checkpoint_dir`` resumes interrupted grids.

Run from the shell::

    python -m repro.experiments.security_study --quick --check
    python -m repro.experiments.security_study --trials 20 --workers 4
"""

from __future__ import annotations

import argparse
import sys
from functools import partial
from typing import Optional, Sequence

import numpy as np

from repro.channel.stochastic import IndoorEnvironment
from repro.core.detection import SearchAndSubtractConfig
from repro.core.rpm import SlotPlan
from repro.core.scheme import CombinedScheme
from repro.experiments.common import ExperimentResult, standard_run
from repro.analysis.tables import Table
from repro.faults import (
    ATTACK_KINDS,
    EarlyReplyAttacker,
    FaultPlan,
    GhostPeakInjector,
    PulseShapeSpoofer,
    ReciprocityTamper,
)
from repro.netsim.medium import Medium
from repro.netsim.node import Node
from repro.protocol.campaign import RangingCampaign, ResiliencePolicy
from repro.protocol.concurrent import ConcurrentRangingSession
from repro.protocol.defense import (
    AnomalyDetectorConfig,
    DefensePlan,
    TimeHoppingConfig,
)
from repro.runtime import MetricsRegistry, run_trials, template_bank

#: The Fig. 4 layout the study attacks.
DISTANCES_M = (3.0, 6.0, 10.0)

#: Attacker types on the grid (keys of :func:`attack_plan`).
ATTACKERS = ("ghost_peak", "early_reply", "shape_spoof", "reciprocity_tamper")

#: Default intensity grid (1.0 = the full-strength tuned attack).
INTENSITIES = (0.25, 0.5, 0.75, 1.0)

#: A round counts as an attack *success* when a surviving outcome
#: reports a distance reduced by more than this (the attacker's goal is
#: always to appear closer).
SUCCESS_THRESHOLD_M = 0.5


def attack_plan(attacker: Optional[str], intensity: float, seed) -> FaultPlan:
    """One attacker at one intensity as a seeded :class:`FaultPlan`.

    ``attacker=None`` or ``intensity == 0`` returns the *empty* plan —
    the clean baseline runs with the fault machinery fully detached.
    Intensity scales the tuned full-strength parameters: ghost/spoof
    advance taps, early-reply advance, and tamper gain/attenuation.
    """
    if not 0.0 <= intensity <= 1.0:
        raise ValueError(f"intensity must be in [0, 1], got {intensity}")
    if attacker is None or intensity == 0.0:
        return FaultPlan([], seed=seed)
    if attacker == "ghost_peak":
        injector = GhostPeakInjector(
            advance_taps=max(1, round(60 * intensity))
        )
    elif attacker == "early_reply":
        injector = EarlyReplyAttacker(advance_s=40e-9 * intensity)
    elif attacker == "shape_spoof":
        injector = PulseShapeSpoofer(
            register=0x93, advance_taps=max(1, round(60 * intensity))
        )
    elif attacker == "reciprocity_tamper":
        injector = ReciprocityTamper(
            tail_gain=1.0 + 4.0 * intensity,
            edge_attenuation=0.6 * intensity,
        )
    else:
        raise ValueError(
            f"unknown attacker {attacker!r}; choose from {ATTACKERS}"
        )
    return FaultPlan([injector], seed=seed)


def defense_plan(secret_seed) -> DefensePlan:
    """The tuned defense configuration the study evaluates.

    500 ns of secret reply-slot hopping (large relative to the 2 * ToF
    spread of the hallway, still small against the ~1 us slot) plus the
    CIR anomaly screen at the thresholds calibrated for <= 5%% clean
    false positives on this layout.
    """
    return DefensePlan(
        time_hopping=TimeHoppingConfig(
            secret_seed=secret_seed, hop_range_s=500e-9
        ),
        anomaly=AnomalyDetectorConfig(
            dup_min_amplitude_ratio=0.6, max_tail_peak_ratio=1.5
        ),
    )


def _trial(
    rng: np.random.Generator,
    index: int,
    *,
    attacker: Optional[str],
    intensity: float,
    defended: bool,
    fault_seed: int,
    n_rounds: int,
) -> tuple:
    """One campaign in one grid cell.

    Returns ``(n_rounds, attacked, detected, false_positives,
    successes, median_abs_error_m, n_quarantined)`` — plain scalars so
    the parallel path ships small payloads.  The error statistic covers
    only *unflagged* rounds (the measurements a deployment would keep)
    and is a median: a slipped-through attack or a mis-identified
    de-hop anchor produces tens-of-metres outliers that would swamp a
    mean.
    """
    medium = Medium(environment=IndoorEnvironment.hallway(), rng=rng)
    initiator = Node.at(0, 0.0, 0.0, rng=rng)
    responders = [
        Node.at(i + 1, float(d), 0.0, rng=rng)
        for i, d in enumerate(DISTANCES_M)
    ]
    medium.add_nodes([initiator] + responders)
    bank = template_bank((0x93, 0xC8, 0xE6))  # paper_bank(3)
    scheme = CombinedScheme(SlotPlan.for_range(20.0, n_slots=1), bank)
    session = ConcurrentRangingSession(
        medium=medium,
        initiator=initiator,
        responders=responders,
        scheme=scheme,
        # One headroom slot above the responder count: a ghost peak must
        # not displace a legitimate extraction, or the duplicate screen
        # goes blind to the copy it needs to see.
        detector_config=SearchAndSubtractConfig(
            max_responses=5, min_peak_snr=8.0
        ),
        rng=rng,
        # Attack decisions depend only on (fault seed, trial index),
        # never on the worker schedule.
        faults=attack_plan(attacker, intensity, seed=(fault_seed, index)),
        defense=(
            defense_plan(secret_seed=(fault_seed, 77)) if defended else None
        ),
    )
    campaign = RangingCampaign(
        session,
        round_interval_s=0.05,
        # Quorum 0 / zero retries: every round fires exactly once (same
        # per-round behaviour as a plain campaign) while quarantine
        # bookkeeping stays live, so rejected attackers show up in
        # `quarantined_responders`.
        resilience=ResiliencePolicy(
            quorum_fraction=0.0,
            max_round_retries=0,
            quarantine_after=3,
            seed=(fault_seed, index, 7),
        ),
    )
    result = campaign.run(n_rounds)

    successes = 0
    abs_errors = []
    for round_result in result.rounds:
        attacked = any(
            kind in ATTACK_KINDS for _, kind in round_result.fault_events
        )
        # A flagged round is discarded by the system, so whatever
        # distances survive in it are never *used*: the attack only
        # succeeds when it slips past the screen entirely.
        flagged = (
            round_result.defense is not None
            and round_result.defense.triggered
        )
        reduced = False
        for outcome in round_result.outcomes:
            if outcome.identified and outcome.error_m is not None:
                if not flagged:
                    abs_errors.append(abs(outcome.error_m))
                if outcome.error_m < -SUCCESS_THRESHOLD_M:
                    reduced = True
        if attacked and reduced and not flagged:
            successes += 1
    return (
        result.n_rounds,
        result.attacked_rounds,
        result.detected_rounds,
        result.false_positive_rounds,
        successes,
        float(np.median(abs_errors)) if abs_errors else float("nan"),
        len(result.quarantined_responders),
    )


def _cell_seed(seed: int, attacker: Optional[str], intensity: float,
               defended: bool):
    """Distinct, stable seed stream per grid cell."""
    attacker_index = 0 if attacker is None else 1 + ATTACKERS.index(attacker)
    return (seed, attacker_index, int(round(1000 * intensity)), int(defended))


def _cell_label(attacker: Optional[str], intensity: float,
                defended: bool) -> str:
    name = attacker or "clean"
    arm = "def" if defended else "off"
    return f"security-{name}-{intensity:.2f}-{arm}"


def _grid(
    attackers: Sequence[str], intensities: Sequence[float]
) -> list:
    """(attacker, intensity, defended) cells: clean + the attack grid."""
    cells = []
    for defended in (False, True):
        cells.append((None, 0.0, defended))
        for attacker in attackers:
            for intensity in intensities:
                cells.append((attacker, float(intensity), defended))
    return cells


@standard_run(
    "trials", "seed", "workers", "metrics", "rounds", "checkpoint_dir",
    renames={"checkpoint_dir": "checkpoint"},
)
def run(
    *,
    trials: int = 10,
    seed: int = 41,
    workers: int = 1,
    batch_size=1,
    checkpoint=None,
    metrics: Optional[MetricsRegistry] = None,
    attackers: Sequence[str] = ATTACKERS,
    intensities: Sequence[float] = INTENSITIES,
    rounds: int = 10,
) -> ExperimentResult:
    """Attack-success vs. detection curves over the security grid.

    Headline metrics (pinned as goldens) are taken at the highest
    intensity on the grid: per-attacker detection rate and defended /
    undefended success rates, plus the clean-cell false-positive rate.

    ``batch_size`` is accepted for the standard run signature and
    ignored (full campaigns per trial); ``checkpoint`` persists per-cell
    trial checkpoints for resumable grids.
    """
    del batch_size  # standard-signature parameter; no batched engine here
    metrics = metrics if metrics is not None else MetricsRegistry()
    result = ExperimentResult(
        experiment_id="Security study",
        description="distance-manipulation attacks vs. time-hopping "
        "and CIR-anomaly defenses",
    )
    table = Table(
        [
            "attacker",
            "intensity",
            "defense",
            "success rate",
            "det rate",
            "fp rate",
            "med |err| [m]",
            "quarantined/camp",
        ],
        title=f"attack success vs. detection ({trials} campaigns x "
        f"{rounds} rounds per cell)",
    )

    full = max(float(i) for i in intensities)
    stats: dict = {}
    for attacker, intensity, defended in _grid(attackers, intensities):
        report = run_trials(
            partial(
                _trial,
                attacker=attacker,
                intensity=intensity,
                defended=defended,
                fault_seed=seed,
                n_rounds=rounds,
            ),
            trials,
            seed=_cell_seed(seed, attacker, intensity, defended),
            workers=workers,
            metrics=metrics,
            checkpoint_dir=checkpoint,
            checkpoint_label=_cell_label(attacker, intensity, defended),
        )
        values = np.array(report.values, dtype=float)
        n_rounds = values[:, 0].sum()
        attacked = values[:, 1].sum()
        detected = values[:, 2].sum()
        false_positives = values[:, 3].sum()
        successes = values[:, 4].sum()
        errors = values[:, 5]
        clean_rounds = n_rounds - attacked
        success_rate = float(successes / attacked) if attacked else float("nan")
        det_rate = float(detected / attacked) if attacked else float("nan")
        fp_rate = (
            float(false_positives / clean_rounds)
            if clean_rounds
            else float("nan")
        )
        mean_error = (
            float(np.nanmean(errors))
            if not np.all(np.isnan(errors))
            else float("nan")
        )
        quarantined = float(np.mean(values[:, 6]))
        stats[(attacker, intensity, defended)] = (
            success_rate, det_rate, fp_rate
        )
        metrics.counter("security.rounds").inc(float(n_rounds))
        metrics.counter("security.attacked_rounds").inc(float(attacked))
        metrics.counter("security.detected_rounds").inc(float(detected))
        metrics.counter("security.false_positive_rounds").inc(
            float(false_positives)
        )
        metrics.counter("security.successful_attacks").inc(float(successes))
        table.add_row(
            [
                attacker or "clean",
                intensity,
                "on" if defended else "off",
                success_rate,
                det_rate,
                fp_rate,
                mean_error,
                quarantined,
            ]
        )

    result.add_table(table)

    detection_rates = []
    for attacker in attackers:
        success_off, _, _ = stats[(attacker, full, False)]
        success_on, det_rate, _ = stats[(attacker, full, True)]
        detection_rates.append(det_rate)
        result.compare(f"success_undefended_{attacker}", success_off)
        result.compare(f"success_defended_{attacker}", success_on)
        result.compare(f"detection_rate_{attacker}", det_rate)
    _, _, fp_clean = stats[(None, 0.0, True)]
    result.compare("min_detection_rate_full", float(min(detection_rates)))
    result.compare("false_positive_rate_clean", fp_clean)
    result.note(
        "success = an attacked round surviving the screen unflagged "
        "with some outcome reporting a distance reduced by more than "
        f"{SUCCESS_THRESHOLD_M} m; detection/false-positive rates come "
        "from the campaign's defense counters; med |err| covers "
        "unflagged rounds only (the measurements a deployment keeps)"
    )
    result.note(
        "defenses: 500 ns secret time-hopping reply verification + "
        "CIR anomaly screen (duplicate-id amplitude ratio 0.6, "
        "tail/peak energy threshold 1.5)"
    )
    return result


def check(result: ExperimentResult) -> list:
    """Acceptance gate: detection and false-positive thresholds.

    Returns the list of violated criteria (empty when the run passes):
    every attacker must be detected in >= 90%% of full-intensity
    attacked rounds, and clean defended rounds must stay under 5%%
    false positives.
    """
    failures = []
    minimum = result.metric("min_detection_rate_full").measured
    if not minimum >= 0.9:
        failures.append(
            f"min full-intensity detection rate {minimum:.3f} < 0.9"
        )
    fp_rate = result.metric("false_positive_rate_clean").measured
    if not fp_rate <= 0.05:
        failures.append(f"clean false-positive rate {fp_rate:.3f} > 0.05")
    return failures


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Security study: distance-manipulation attacks vs. "
        "time-hopping and CIR-anomaly defenses."
    )
    parser.add_argument("--trials", type=int, default=10)
    parser.add_argument("--seed", type=int, default=41)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument(
        "--rounds", type=int, default=10, help="campaign rounds per trial"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smoke configuration (full intensity only, few trials)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero unless detection >= 0.9 at full intensity "
        "and clean false positives <= 0.05",
    )
    parser.add_argument(
        "--checkpoint",
        default=None,
        metavar="DIR",
        help="persist per-trial checkpoints to DIR as the grid runs",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="with --checkpoint: reuse checkpoints from a previous "
        "(possibly interrupted) run instead of clearing them",
    )
    args = parser.parse_args(argv)
    if args.resume and not args.checkpoint:
        parser.error("--resume requires --checkpoint DIR")

    intensities = (1.0,) if args.quick else INTENSITIES
    trials = min(args.trials, 4) if args.quick else args.trials
    rounds = min(args.rounds, 6) if args.quick else args.rounds

    if args.checkpoint and not args.resume:
        # Fresh grid: stale shards from older runs of the same
        # configuration would otherwise short-circuit the trials.
        from repro.runtime import CheckpointStore

        for attacker, intensity, defended in _grid(ATTACKERS, intensities):
            CheckpointStore.for_run(
                args.checkpoint,
                _cell_seed(args.seed, attacker, intensity, defended),
                trials,
                label=_cell_label(attacker, intensity, defended),
            ).clear()

    metrics = MetricsRegistry()
    result = run(
        trials=trials,
        seed=args.seed,
        workers=args.workers,
        metrics=metrics,
        intensities=intensities,
        rounds=rounds,
        checkpoint=args.checkpoint,
    )
    result.print()
    print()
    print(metrics.render(title="runtime metrics — security study"))
    if args.check:
        failures = check(result)
        if failures:
            for failure in failures:
                print(f"CHECK FAILED: {failure}", file=sys.stderr)
            return 1
        print("CHECK PASSED: detection >= 0.9 at full intensity, "
              "clean false positives <= 0.05")
    return 0


if __name__ == "__main__":
    sys.exit(main())
