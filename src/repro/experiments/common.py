"""Shared experiment harness.

An :class:`ExperimentResult` couples an identifier (e.g. ``"Table I"``),
the reproduced table, and a flat dictionary of scalar metrics with their
paper reference values, so EXPERIMENTS.md and the benchmark printers can
treat every experiment uniformly.

The module also owns the **standard run API**: every runtime-ported
experiment exposes::

    run(*, trials=..., seed=..., workers=1, batch_size=1,
        checkpoint=None, metrics=None, ...extras) -> ExperimentResult

with keyword-only parameters in that canonical vocabulary
(``batch_size`` accepts an int or ``"auto"``; ``checkpoint`` is a
directory for resumable runs).  :func:`standard_run` decorates each
``run`` with a deprecation shim that keeps the module's *historical*
positional call working (mapped by the old parameter order, with a
``DeprecationWarning``), and :func:`build_run_kwargs` is the one
CLI-side argument builder that matches global flags against whatever
signature an experiment actually has.
"""

from __future__ import annotations

import functools
import inspect
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.analysis.tables import Table


@dataclass(frozen=True)
class Comparison:
    """One measured-vs-paper scalar."""

    name: str
    measured: float
    paper: float | None = None
    unit: str = ""

    @property
    def ratio(self) -> float | None:
        if self.paper in (None, 0.0):
            return None
        return self.measured / self.paper


@dataclass
class ExperimentResult:
    """Outcome of one experiment run."""

    experiment_id: str
    description: str
    tables: List[Table] = field(default_factory=list)
    comparisons: List[Comparison] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_table(self, table: Table) -> None:
        self.tables.append(table)

    def compare(
        self,
        name: str,
        measured: float,
        paper: float | None = None,
        unit: str = "",
    ) -> None:
        self.comparisons.append(
            Comparison(name=name, measured=measured, paper=paper, unit=unit)
        )

    def note(self, text: str) -> None:
        self.notes.append(text)

    def metric(self, name: str) -> Comparison:
        """Look up a comparison by name; raises ``KeyError`` if absent."""
        for comparison in self.comparisons:
            if comparison.name == name:
                return comparison
        raise KeyError(f"no metric named {name!r} in {self.experiment_id}")

    def as_dict(self) -> Dict[str, float]:
        """Measured values keyed by metric name."""
        return {c.name: c.measured for c in self.comparisons}

    def render(self) -> str:
        """Human-readable report: tables, comparisons, notes."""
        parts = [f"== {self.experiment_id}: {self.description} =="]
        for table in self.tables:
            parts.append(table.render())
        if self.comparisons:
            comparison_table = Table(
                ["metric", "measured", "paper", "unit"], title="paper vs measured"
            )
            for c in self.comparisons:
                comparison_table.add_row(
                    [
                        c.name,
                        c.measured,
                        c.paper if c.paper is not None else "-",
                        c.unit,
                    ]
                )
            parts.append(comparison_table.render())
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n\n".join(parts)

    def print(self) -> None:
        print(self.render())


def standard_run(
    *legacy_order: str,
    renames: Optional[Mapping[str, str]] = None,
) -> Callable:
    """Standard-signature shim for an experiment ``run()``.

    The decorated function must take keyword-only parameters (the
    canonical ``run(*, trials, seed, workers, batch_size,
    checkpoint=None, metrics=None, ...)`` form).  ``legacy_order`` names
    the module's *old* positional parameter order; a legacy positional
    call is remapped onto keywords by that order and flagged with a
    ``DeprecationWarning`` — so ``fig2_cir.run(3, 25)`` still means
    ``run(seed=3, trials=25)`` even though ``trials`` now comes first in
    the canonical vocabulary.

    ``renames`` maps retired parameter names to their canonical
    replacements (e.g. ``{"checkpoint_dir": "checkpoint"}``); both
    legacy positional slots and legacy keyword calls are translated,
    again with a ``DeprecationWarning``.
    """
    renames = dict(renames or {})

    def decorate(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any):
            if args:
                if len(args) > len(legacy_order):
                    raise TypeError(
                        f"{fn.__module__}.run() takes at most "
                        f"{len(legacy_order)} legacy positional "
                        f"argument(s) ({', '.join(legacy_order)}), got "
                        f"{len(args)}"
                    )
                mapped = [
                    renames.get(name, name)
                    for name in legacy_order[: len(args)]
                ]
                warnings.warn(
                    f"positional arguments to {fn.__module__}.run() are "
                    "deprecated; call run("
                    + ", ".join(f"{name}=..." for name in mapped)
                    + ") instead",
                    DeprecationWarning,
                    stacklevel=2,
                )
                for name, value in zip(mapped, args):
                    if name in kwargs:
                        raise TypeError(
                            f"run() got multiple values for argument "
                            f"{name!r}"
                        )
                    kwargs[name] = value
            for old, new in renames.items():
                if old in kwargs:
                    warnings.warn(
                        f"{fn.__module__}.run(): parameter {old!r} is "
                        f"deprecated; use {new!r}",
                        DeprecationWarning,
                        stacklevel=2,
                    )
                    if new in kwargs:
                        raise TypeError(
                            f"run() got values for both {old!r} and "
                            f"{new!r}"
                        )
                    kwargs[new] = kwargs.pop(old)
            return fn(**kwargs)

        wrapper.__standard_run__ = True
        wrapper.__legacy_order__ = tuple(legacy_order)
        return wrapper

    return decorate


def build_run_kwargs(
    run_fn: Callable,
    **requested: Any,
) -> Tuple[Dict[str, Any], List[str]]:
    """Match CLI-level arguments against an experiment's ``run()``.

    ``requested`` holds the standard vocabulary values (``trials``,
    ``seed``, ``workers``, ``batch_size``, ``checkpoint``, ``metrics``,
    ...); entries whose value is ``None`` are skipped (flag not given —
    the experiment's default wins).  Returns ``(kwargs, unsupported)``:
    the keyword arguments the function accepts, plus the names it does
    *not* accept so the caller can tell the user which flags were
    ignored.  Works with both decorated (:func:`standard_run`) and plain
    ``run`` functions by inspecting through ``__wrapped__``.
    """
    fn = inspect.unwrap(run_fn)
    parameters = inspect.signature(fn).parameters
    accepts_kwargs = any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()
    )
    kwargs: Dict[str, Any] = {}
    unsupported: List[str] = []
    for name, value in requested.items():
        if value is None:
            continue
        if name in parameters or accepts_kwargs:
            kwargs[name] = value
        else:
            unsupported.append(name)
    return kwargs, unsupported
