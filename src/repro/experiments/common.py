"""Shared experiment harness.

An :class:`ExperimentResult` couples an identifier (e.g. ``"Table I"``),
the reproduced table, and a flat dictionary of scalar metrics with their
paper reference values, so EXPERIMENTS.md and the benchmark printers can
treat every experiment uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.analysis.tables import Table


@dataclass(frozen=True)
class Comparison:
    """One measured-vs-paper scalar."""

    name: str
    measured: float
    paper: float | None = None
    unit: str = ""

    @property
    def ratio(self) -> float | None:
        if self.paper in (None, 0.0):
            return None
        return self.measured / self.paper


@dataclass
class ExperimentResult:
    """Outcome of one experiment run."""

    experiment_id: str
    description: str
    tables: List[Table] = field(default_factory=list)
    comparisons: List[Comparison] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_table(self, table: Table) -> None:
        self.tables.append(table)

    def compare(
        self,
        name: str,
        measured: float,
        paper: float | None = None,
        unit: str = "",
    ) -> None:
        self.comparisons.append(
            Comparison(name=name, measured=measured, paper=paper, unit=unit)
        )

    def note(self, text: str) -> None:
        self.notes.append(text)

    def metric(self, name: str) -> Comparison:
        """Look up a comparison by name; raises ``KeyError`` if absent."""
        for comparison in self.comparisons:
            if comparison.name == name:
                return comparison
        raise KeyError(f"no metric named {name!r} in {self.experiment_id}")

    def as_dict(self) -> Dict[str, float]:
        """Measured values keyed by metric name."""
        return {c.name: c.measured for c in self.comparisons}

    def render(self) -> str:
        """Human-readable report: tables, comparisons, notes."""
        parts = [f"== {self.experiment_id}: {self.description} =="]
        for table in self.tables:
            parts.append(table.render())
        if self.comparisons:
            comparison_table = Table(
                ["metric", "measured", "paper", "unit"], title="paper vs measured"
            )
            for c in self.comparisons:
                comparison_table.add_row(
                    [
                        c.name,
                        c.measured,
                        c.paper if c.paper is not None else "-",
                        c.unit,
                    ]
                )
            parts.append(comparison_table.render())
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n\n".join(parts)

    def print(self) -> None:
        print(self.render())
