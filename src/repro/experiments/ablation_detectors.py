"""EXP-A1 — Ablation: detector performance vs response separation & SNR.

Extends the paper's single-point Sect. VI comparison into full curves:
sweep the true separation between two responses (0-6 ns) and the CIR
SNR, and measure both detectors' both-found rates.  Expected shape: the
threshold detector collapses below one pulse window of separation, while
search-and-subtract keeps working down to a fraction of a pulse width.

Each synthetic CIR is one independently seeded trial on the
:mod:`repro.runtime` executor, and the trial function ships as a
:class:`~repro.runtime.BatchTrial`: with ``run(..., batch_size=B)`` the
executor groups B trials per engine call —
:func:`repro.core.batch.detect_batch` for search-and-subtract and
:meth:`~repro.core.threshold.ThresholdDetector.detect_batch` for the
baseline — one 2-D FFT pass per group instead of B filter-bank passes.
Both paths share :func:`_make_cir` (same per-trial RNG stream) and the
engines are numerically identical, so ``batch_size`` changes throughput
only; ``tests/test_runtime_experiments.py`` asserts the equality.
"""

from __future__ import annotations

from functools import partial
from typing import List, Tuple

import numpy as np

from repro.analysis.metrics import detection_rate
from repro.analysis.tables import Table
from repro.constants import CIR_SAMPLING_PERIOD_S
from repro.core.batch import detect_batch
from repro.core.detection import SearchAndSubtract, SearchAndSubtractConfig
from repro.core.threshold import ThresholdConfig, ThresholdDetector
from repro.experiments.common import ExperimentResult, standard_run
from repro.runtime import (
    BatchTrial,
    MetricsRegistry,
    WorkloadShape,
    pulse,
    run_trials,
)
from repro.signal.pulses import TC_PGDELAY_DEFAULT
from repro.signal.sampling import place_pulse

CIR_LENGTH = 1016
BASE_POSITION = 200.0
MATCH_TOLERANCE_SAMPLES = 2.0

SEPARATIONS_NS = (0.0, 0.5, 1.0, 2.0, 3.0, 4.0, 6.0)
SNR_DB = 30.0
NOISE_STD = 1.0

_SEARCH_CONFIG = SearchAndSubtractConfig(max_responses=2, upsample_factor=8)
_THRESHOLD_CONFIG = ThresholdConfig(max_responses=2, upsample_factor=8)


def _positions(separation_ns: float) -> Tuple[float, float]:
    """True pulse positions (native-sample units) for a separation."""
    return (
        BASE_POSITION,
        BASE_POSITION + separation_ns * 1e-9 / CIR_SAMPLING_PERIOD_S,
    )


def _make_cir(
    rng: np.random.Generator, separation_ns: float, snr_db: float, template
) -> np.ndarray:
    """One synthetic two-pulse CIR.

    Shared by the per-trial and batched paths so both consume the
    trial's RNG stream identically — the precondition for
    ``batch_size=B`` runs equalling ``batch_size=1`` runs exactly.
    """
    amplitude = 10.0 ** (snr_db / 20.0)
    cir = np.zeros(CIR_LENGTH, dtype=complex)
    for position in _positions(separation_ns):
        phase = np.exp(1j * rng.uniform(0, 2 * np.pi))
        place_pulse(
            cir, template.samples.astype(complex), position, amplitude * phase
        )
    cir += NOISE_STD * (
        rng.standard_normal(CIR_LENGTH) + 1j * rng.standard_normal(CIR_LENGTH)
    ) / np.sqrt(2.0)
    return cir


def _both_found(detections, separation_ns: float) -> bool:
    """Each true position matched by a distinct detection within
    tolerance."""
    available = list(detections)
    for truth in _positions(separation_ns):
        best, best_err = None, MATCH_TOLERANCE_SAMPLES
        for det in available:
            err = abs(det.index - truth)
            if err <= best_err:
                best, best_err = det, err
        if best is None:
            return False
        available.remove(best)
    return True


def _separation_trial(
    rng: np.random.Generator,
    index: int,
    *,
    separation_ns: float,
    snr_db: float = SNR_DB,
) -> Tuple[bool, bool]:
    """Per-trial path: one CIR through both serial detectors."""
    template = pulse(TC_PGDELAY_DEFAULT)
    cir = _make_cir(rng, separation_ns, snr_db, template)
    search = SearchAndSubtract(template, _SEARCH_CONFIG)
    threshold = ThresholdDetector(template, _THRESHOLD_CONFIG)
    search_found = search.detect(
        cir, CIR_SAMPLING_PERIOD_S, noise_std=NOISE_STD
    )
    threshold_found = threshold.detect(
        cir, CIR_SAMPLING_PERIOD_S, noise_std=NOISE_STD
    )
    return (
        _both_found(search_found, separation_ns),
        _both_found(threshold_found, separation_ns),
    )


def _separation_batch(
    rngs: List[np.random.Generator],
    indices: List[int],
    *,
    separation_ns: float,
    snr_db: float = SNR_DB,
) -> List[Tuple[bool, bool]]:
    """Batched path: B CIRs through one engine pass per detector."""
    template = pulse(TC_PGDELAY_DEFAULT)
    cirs = np.stack(
        [_make_cir(rng, separation_ns, snr_db, template) for rng in rngs]
    )
    search_lists = detect_batch(
        cirs, template, CIR_SAMPLING_PERIOD_S, _SEARCH_CONFIG,
        noise_std=NOISE_STD,
    )
    threshold_lists = ThresholdDetector(
        template, _THRESHOLD_CONFIG
    ).detect_batch(cirs, CIR_SAMPLING_PERIOD_S, noise_std=NOISE_STD)
    return [
        (
            _both_found(search_found, separation_ns),
            _both_found(threshold_found, separation_ns),
        )
        for search_found, threshold_found in zip(
            search_lists, threshold_lists
        )
    ]


@standard_run("trials", "seed", "workers", "metrics", "batch_size")
def run(
    *,
    trials: int = 100,
    seed: int = 37,
    workers: int = 1,
    batch_size=1,
    checkpoint=None,
    metrics: MetricsRegistry | None = None,
) -> ExperimentResult:
    """Sweep separation at fixed SNR.

    ``batch_size`` groups trials per engine call (an integer, or
    ``"auto"`` to let the runtime pick a batch from the workload shape);
    ``checkpoint`` persists per-cell trial checkpoints for resumable
    runs.
    """
    result = ExperimentResult(
        experiment_id="Ablation A1",
        description="detector success vs response separation",
    )
    table = Table(
        ["separation [ns]", "search&subtract", "threshold"],
        title=f"both-found rate over {trials} trials at {SNR_DB:.0f} dB SNR",
    )
    search_rates = []
    threshold_rates = []
    for cell, separation in enumerate(SEPARATIONS_NS):
        fn = BatchTrial(
            partial(_separation_trial, separation_ns=separation),
            partial(_separation_batch, separation_ns=separation),
            workload=WorkloadShape(
                cir_length=CIR_LENGTH,
                bank_size=1,
                upsample_factor=_SEARCH_CONFIG.upsample_factor,
            ),
        )
        report = run_trials(
            fn,
            trials,
            seed=[seed, cell],
            workers=workers,
            metrics=metrics,
            batch_size=batch_size,
            checkpoint_dir=checkpoint,
            checkpoint_label=f"ablation-sep{separation:g}",
        )
        s_rate = detection_rate([s for s, _ in report.values])
        t_rate = detection_rate([t for _, t in report.values])
        search_rates.append(s_rate)
        threshold_rates.append(t_rate)
        table.add_row([separation, s_rate, t_rate])
    result.add_table(table)

    # Headline: mean advantage over the overlapping regime (< 4 ns).
    overlap_idx = [i for i, s in enumerate(SEPARATIONS_NS) if 0 < s < 4.0]
    result.compare(
        "mean_search_rate_overlapping",
        float(np.mean([search_rates[i] for i in overlap_idx])),
        paper=0.926,
    )
    result.compare(
        "mean_threshold_rate_overlapping",
        float(np.mean([threshold_rates[i] for i in overlap_idx])),
        paper=0.48,
    )
    result.note(
        "the paper reports one operating point (92.6 % vs 48 %); the sweep "
        "shows where each detector breaks down"
    )
    return result
