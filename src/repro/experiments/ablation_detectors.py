"""EXP-A1 — Ablation: detector performance vs response separation & SNR.

Extends the paper's single-point Sect. VI comparison into full curves:
sweep the true separation between two responses (0-6 ns) and the CIR
SNR, and measure both detectors' both-found rates.  Expected shape: the
threshold detector collapses below one pulse window of separation, while
search-and-subtract keeps working down to a fraction of a pulse width.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.metrics import detection_rate
from repro.analysis.tables import Table
from repro.core.detection import SearchAndSubtract, SearchAndSubtractConfig
from repro.core.threshold import ThresholdConfig, ThresholdDetector
from repro.constants import CIR_SAMPLING_PERIOD_S
from repro.experiments.common import ExperimentResult
from repro.signal.pulses import dw1000_pulse
from repro.signal.sampling import place_pulse

CIR_LENGTH = 1016
BASE_POSITION = 200.0
MATCH_TOLERANCE_SAMPLES = 2.0

SEPARATIONS_NS = (0.0, 0.5, 1.0, 2.0, 3.0, 4.0, 6.0)
SNR_DB = 30.0


def _trial(
    separation_ns: float,
    snr_db: float,
    rng: np.random.Generator,
    search: SearchAndSubtract,
    threshold: ThresholdDetector,
    template,
) -> tuple[bool, bool]:
    """One synthetic two-pulse CIR; returns (search_ok, threshold_ok)."""
    amplitude = 10.0 ** (snr_db / 20.0)
    noise_std = 1.0
    cir = np.zeros(CIR_LENGTH, dtype=complex)
    positions = (
        BASE_POSITION,
        BASE_POSITION + separation_ns * 1e-9 / CIR_SAMPLING_PERIOD_S,
    )
    for position in positions:
        phase = np.exp(1j * rng.uniform(0, 2 * np.pi))
        place_pulse(
            cir, template.samples.astype(complex), position, amplitude * phase
        )
    cir += noise_std * (
        rng.standard_normal(CIR_LENGTH) + 1j * rng.standard_normal(CIR_LENGTH)
    ) / np.sqrt(2.0)

    def both_found(detections) -> bool:
        available = list(detections)
        for truth in positions:
            best, best_err = None, MATCH_TOLERANCE_SAMPLES
            for det in available:
                err = abs(det.index - truth)
                if err <= best_err:
                    best, best_err = det, err
            if best is None:
                return False
            available.remove(best)
        return True

    search_detections = search.detect(
        cir, CIR_SAMPLING_PERIOD_S, noise_std=noise_std
    )
    threshold_detections = threshold.detect(
        cir, CIR_SAMPLING_PERIOD_S, noise_std=noise_std
    )
    return both_found(search_detections), both_found(threshold_detections)


def run(trials: int = 100, seed: int = 37) -> ExperimentResult:
    """Sweep separation at fixed SNR."""
    rng = np.random.default_rng(seed)
    template = dw1000_pulse()
    search = SearchAndSubtract(
        template, SearchAndSubtractConfig(max_responses=2, upsample_factor=8)
    )
    threshold = ThresholdDetector(
        template, ThresholdConfig(max_responses=2, upsample_factor=8)
    )

    result = ExperimentResult(
        experiment_id="Ablation A1",
        description="detector success vs response separation",
    )
    table = Table(
        ["separation [ns]", "search&subtract", "threshold"],
        title=f"both-found rate over {trials} trials at {SNR_DB:.0f} dB SNR",
    )
    search_rates = []
    threshold_rates = []
    for separation in SEPARATIONS_NS:
        outcomes = [
            _trial(separation, SNR_DB, rng, search, threshold, template)
            for _ in range(trials)
        ]
        s_rate = detection_rate([s for s, _ in outcomes])
        t_rate = detection_rate([t for _, t in outcomes])
        search_rates.append(s_rate)
        threshold_rates.append(t_rate)
        table.add_row([separation, s_rate, t_rate])
    result.add_table(table)

    # Headline: mean advantage over the overlapping regime (< 4 ns).
    overlap_idx = [i for i, s in enumerate(SEPARATIONS_NS) if 0 < s < 4.0]
    result.compare(
        "mean_search_rate_overlapping",
        float(np.mean([search_rates[i] for i in overlap_idx])),
        paper=0.926,
    )
    result.compare(
        "mean_threshold_rate_overlapping",
        float(np.mean([threshold_rates[i] for i in overlap_idx])),
        paper=0.48,
    )
    result.note(
        "the paper reports one operating point (92.6 % vs 48 %); the sweep "
        "shows where each detector breaks down"
    )
    return result
