"""EXP-F7 — Fig. 7 / Sect. VI: detection of overlapping responses.

The paper's stress test: two responders at the *same* distance
(d1 = d2 = 4 m) reply concurrently.  Because the DW1000 floors delayed
transmissions to an ~8 ns grid, the two responses land with a random
relative offset inside +-8 ns; only trials where they actually overlap
are evaluated.  Result in the paper: search-and-subtract detects both
responses in 92.6 % of overlapping trials, the threshold detector in
only 48 %.

Each round is one independently seeded trial on the
:mod:`repro.runtime` executor.  Non-overlapping rounds return ``None``
and are discarded; the experiment launches deterministic waves of
trials until ``trials`` overlapping rounds have been evaluated (or the
20x attempt budget is exhausted), so serial and parallel runs evaluate
the *same* rounds in the same order for a fixed seed.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.metrics import detection_rate
from repro.analysis.tables import Table
from repro.channel.stochastic import IndoorEnvironment
from repro.constants import PAPER_OVERLAP_DETECTION
from repro.core.detection import SearchAndSubtract, SearchAndSubtractConfig
from repro.core.threshold import ThresholdConfig, ThresholdDetector
from repro.experiments.common import ExperimentResult, standard_run
from repro.netsim.medium import Medium
from repro.netsim.node import Node
from repro.protocol.concurrent import ConcurrentRangingSession
from repro.core.rpm import SlotPlan
from repro.core.scheme import CombinedScheme
from repro.runtime import MetricsRegistry, run_trials, template_bank

DISTANCE_M = 4.0

#: Two responses "actually overlap" when their true peak separation is
#: below this bound — one pulse footprint including the side lobes
#: (the s1 template spans ~19 ns, so half-extent ~8 ns; this also equals
#: the delayed-TX quantisation step that causes the spread).
OVERLAP_BOUND_S = 8.0e-9

#: A response counts as found if a detection lies within this window of
#: its true CIR position.  Tight enough (one pulse main lobe) that an
#: interference side-hump of the merged pulse pair cannot pass as the
#: second response.
MATCH_TOLERANCE_S = 1.0e-9

#: Attempt budget: give up after this many rounds per requested
#: overlapping trial (matches the pre-runtime rejection-sampling cap).
MAX_ATTEMPT_FACTOR = 20


def _true_peak_times(capture) -> list[float]:
    """Ground-truth first-path positions (relative to CIR tap 0) of each
    arrival in a capture."""
    return [
        arrival.first_path_arrival_s - capture.time_origin_s
        for arrival in capture.arrivals
    ]


def _both_found(detections, truths) -> bool:
    """Each truth matched by a distinct detection within tolerance."""
    available = list(detections)
    for truth in truths:
        best = None
        best_err = MATCH_TOLERANCE_S
        for det in available:
            err = abs(det.delay_s - truth)
            if err <= best_err:
                best = det
                best_err = err
        if best is None:
            return False
        available.remove(best)
    return True


def _overlap_trial(rng: np.random.Generator, index: int):
    """One concurrent round of the Sect. VI duel.

    Returns ``None`` when the two responses did not actually overlap,
    else ``(search_found_both, threshold_found_both)``.
    """
    medium = Medium(environment=IndoorEnvironment.hallway(), rng=rng)
    initiator = Node.at(0, 0.0, 0.0, rng=rng)
    responder1 = Node.at(1, DISTANCE_M, 0.0, rng=rng)
    responder2 = Node.at(2, 0.0, DISTANCE_M, rng=rng)
    medium.add_nodes([initiator, responder1, responder2])

    bank = template_bank((0x93,))
    scheme = CombinedScheme(SlotPlan.for_range(20.0, n_slots=1), bank)
    session = ConcurrentRangingSession(
        medium=medium,
        initiator=initiator,
        responders=[responder1, responder2],
        scheme=scheme,
        rng=rng,
        # Both responders deliberately share slot 0 and the default
        # shape, as in the paper's Sect. VI setup.
        allow_duplicate_assignments=True,
    )
    outcome = session.run_round()
    capture = outcome.capture
    truths = _true_peak_times(capture)
    if abs(truths[0] - truths[1]) > OVERLAP_BOUND_S:
        return None  # paper considers only actually-overlapping trials

    template = bank[0]
    search = SearchAndSubtract(
        template, SearchAndSubtractConfig(max_responses=2, upsample_factor=8)
    )
    threshold = ThresholdDetector(
        template, ThresholdConfig(max_responses=2, upsample_factor=8)
    )
    search_detections = search.detect(
        capture.samples, capture.sampling_period_s, noise_std=capture.noise_std
    )
    threshold_detections = threshold.detect(
        capture.samples, capture.sampling_period_s, noise_std=capture.noise_std
    )
    return (
        _both_found(search_detections, truths),
        _both_found(threshold_detections, truths),
    )


def _collect_overlapping(
    trials: int,
    seed: int,
    workers: int,
    metrics: MetricsRegistry | None,
) -> list:
    """First ``trials`` overlapping outcomes, in deterministic order.

    Waves of trials are launched with wave-derived seeds; wave sizes
    depend only on how many overlapping outcomes earlier waves produced,
    which is itself deterministic — so the evaluated set of rounds is
    independent of the worker count.
    """
    outcomes: list = []
    attempts = 0
    budget = MAX_ATTEMPT_FACTOR * trials
    wave = 0
    while len(outcomes) < trials and attempts < budget:
        want = trials - len(outcomes)
        # Modest over-provisioning: most rounds overlap in this layout.
        n_wave = min(max(8, want + want // 2), budget - attempts)
        report = run_trials(
            _overlap_trial,
            n_wave,
            seed=[seed, wave],
            workers=workers,
            metrics=metrics,
        )
        outcomes.extend(v for v in report.values if v is not None)
        attempts += n_wave
        wave += 1
    return outcomes[:trials]


@standard_run("trials", "seed", "workers", "metrics")
def run(
    *,
    trials: int = 500,
    seed: int = 23,
    workers: int = 1,
    batch_size=1,
    checkpoint=None,
    metrics: MetricsRegistry | None = None,
) -> ExperimentResult:
    """Reproduce the Sect. VI comparison (paper count: 2000 trials).

    ``batch_size`` and ``checkpoint`` are accepted for the standard run
    signature; the rejection-sampled wave loop keeps its own bookkeeping
    (no batched engine, no per-wave checkpoints), so both are ignored.
    """
    del batch_size, checkpoint  # standard-signature parameters; unused
    outcomes = _collect_overlapping(trials, seed, workers, metrics)
    search_ok = [s for s, _ in outcomes]
    threshold_ok = [t for _, t in outcomes]

    result = ExperimentResult(
        experiment_id="Fig. 7 / Sect. VI",
        description="detection of overlapping responses (d1 = d2 = 4 m)",
    )
    search_rate = detection_rate(search_ok)
    threshold_rate = detection_rate(threshold_ok)
    table = Table(
        ["algorithm", "both detected [%]", "paper [%]"],
        title=f"Sect. VI reproduction ({len(outcomes)} overlapping trials)",
    )
    table.add_row(
        [
            "search and subtract",
            search_rate * 100,
            PAPER_OVERLAP_DETECTION["search_and_subtract"] * 100,
        ]
    )
    table.add_row(
        [
            "threshold-based",
            threshold_rate * 100,
            PAPER_OVERLAP_DETECTION["threshold"] * 100,
        ]
    )
    result.add_table(table)

    result.compare(
        "search_and_subtract_rate",
        search_rate,
        paper=PAPER_OVERLAP_DETECTION["search_and_subtract"],
    )
    result.compare(
        "threshold_rate",
        threshold_rate,
        paper=PAPER_OVERLAP_DETECTION["threshold"],
    )
    result.compare(
        "advantage_ratio",
        search_rate / threshold_rate if threshold_rate > 0 else float("inf"),
        paper=PAPER_OVERLAP_DETECTION["search_and_subtract"]
        / PAPER_OVERLAP_DETECTION["threshold"],
    )
    result.note(
        "shape criterion: search-and-subtract substantially outperforms "
        "the threshold detector on overlapping responses (~2x in the paper)"
    )
    return result
