"""EXP-CHAOS — degradation curves of concurrent ranging under injected faults.

The paper argues concurrent ranging keeps working when reality misbehaves;
this experiment measures *how gracefully* it degrades.  A fault-intensity
knob ``x ∈ [0, 1]`` scales a composed :class:`~repro.faults.FaultPlan`
(responder dropout, poll loss, reply jitter, impulsive CIR interference,
accumulator saturation), and for each intensity a short resilient campaign
(quorum retry + quarantine, see
:class:`~repro.protocol.campaign.ResiliencePolicy`) runs on the Fig. 4
layout.  The output is the degradation curve: identification/detection
rate and ranging error versus fault intensity, plus the resilience
bookkeeping (retries, partial rounds, quarantined responders, injected
faults).

Every trial is one independently seeded campaign on the
:mod:`repro.runtime` executor: fault decisions derive from
``(fault seed, trial index)``, so serial and parallel sweeps are
byte-identical, and ``checkpoint_dir`` lets an interrupted sweep resume
without recomputing finished trials.

Run from the shell::

    python -m repro.experiments.chaos_sweep --quick
    python -m repro.experiments.chaos_sweep --trials 40 --workers 4 \
        --checkpoint /tmp/chaos-ckpt --resume
"""

from __future__ import annotations

import argparse
import sys
from functools import partial
from typing import Optional, Sequence

import numpy as np

from repro.channel.stochastic import IndoorEnvironment
from repro.core.detection import SearchAndSubtractConfig
from repro.core.rpm import SlotPlan
from repro.core.scheme import CombinedScheme
from repro.experiments.common import ExperimentResult, standard_run
from repro.analysis.tables import Table
from repro.faults import (
    CirSaturation,
    FaultPlan,
    ImpulsiveInterference,
    PollLoss,
    ReplyJitter,
    ResponderDropout,
)
from repro.netsim.medium import Medium
from repro.netsim.node import Node
from repro.protocol.campaign import RangingCampaign, ResiliencePolicy
from repro.protocol.concurrent import ConcurrentRangingSession
from repro.runtime import MetricsRegistry, run_trials, template_bank

#: The Fig. 4 layout the sweep stresses.
DISTANCES_M = (3.0, 6.0, 10.0)

#: Default intensity grid for the degradation curve.
INTENSITIES = (0.0, 0.25, 0.5, 0.75, 1.0)


def fault_plan(intensity: float, seed) -> FaultPlan:
    """The composed fault plan at one intensity.

    ``intensity == 0`` returns the *empty* plan — the clean baseline runs
    with the fault machinery fully detached (zero-cost pass-through),
    pinning the left edge of the degradation curve to fault-free
    behaviour.
    """
    if not 0.0 <= intensity <= 1.0:
        raise ValueError(f"intensity must be in [0, 1], got {intensity}")
    if intensity == 0.0:
        return FaultPlan([], seed=seed)
    return FaultPlan(
        [
            ResponderDropout(0.35 * intensity),
            PollLoss(0.15 * intensity),
            ReplyJitter(
                std_s=0.3e-9 * intensity,
                spike_probability=0.1 * intensity,
                spike_s=3e-9,
            ),
            ImpulsiveInterference(
                burst_probability=min(1.0, 0.8 * intensity),
                amplitude_scale=0.9,
                n_bursts=2,
            ),
            CirSaturation(1.0 - 0.4 * intensity),
        ],
        seed=seed,
    )


def _trial(
    rng: np.random.Generator,
    index: int,
    *,
    intensity: float,
    fault_seed: int,
    n_rounds: int,
) -> tuple:
    """One resilient campaign at one fault intensity.

    Returns ``(id_rate, det_rate, mean_abs_error_m, retries,
    partial_rounds, n_quarantined, faults_injected)`` — plain scalars so
    the parallel path ships small payloads.
    """
    medium = Medium(environment=IndoorEnvironment.hallway(), rng=rng)
    initiator = Node.at(0, 0.0, 0.0, rng=rng)
    responders = [
        Node.at(i + 1, float(d), 0.0, rng=rng)
        for i, d in enumerate(DISTANCES_M)
    ]
    medium.add_nodes([initiator] + responders)
    bank = template_bank((0x93, 0xC8, 0xE6))  # paper_bank(3)
    scheme = CombinedScheme(SlotPlan.for_range(20.0, n_slots=1), bank)
    session = ConcurrentRangingSession(
        medium=medium,
        initiator=initiator,
        responders=responders,
        scheme=scheme,
        detector_config=SearchAndSubtractConfig(
            max_responses=3, min_peak_snr=8.0
        ),
        rng=rng,
        # Per-trial fault streams: decisions depend only on the fault
        # seed and the trial index, never on the worker schedule.
        faults=fault_plan(intensity, seed=(fault_seed, index)),
    )
    campaign = RangingCampaign(
        session,
        round_interval_s=0.05,
        resilience=ResiliencePolicy(
            quorum_fraction=0.6,
            max_round_retries=2,
            backoff_base_s=1e-3,
            backoff_jitter=0.1,
            quarantine_after=2,
            # Stable across processes (never use hash(): PYTHONHASHSEED
            # would break serial == parallel for the retry jitter).
            seed=(fault_seed, index, 7),
        ),
    )
    result = campaign.run(n_rounds)

    total = 0
    identified = 0
    detected = 0
    abs_errors = []
    for round_result in result.rounds:
        for outcome in round_result.outcomes:
            total += 1
            identified += outcome.identified
            detected += outcome.detected
            if outcome.identified and outcome.error_m is not None:
                abs_errors.append(abs(outcome.error_m))
    return (
        identified / total,
        detected / total,
        float(np.mean(abs_errors)) if abs_errors else float("nan"),
        result.retries,
        result.partial_rounds,
        len(result.quarantined_responders),
        sum(result.faults_injected.values()),
    )


@standard_run(
    "trials", "seed", "workers", "metrics", "intensities", "rounds",
    "checkpoint_dir",
    renames={"checkpoint_dir": "checkpoint"},
)
def run(
    *,
    trials: int = 20,
    seed: int = 23,
    workers: int = 1,
    batch_size=1,
    checkpoint=None,
    metrics: Optional[MetricsRegistry] = None,
    intensities: Sequence[float] = INTENSITIES,
    rounds: int = 4,
) -> ExperimentResult:
    """The degradation curve: ``trials`` campaigns per intensity cell.

    Identification should be near-perfect at intensity 0 and fall
    monotonically (modulo Monte-Carlo noise) as faults intensify, while
    the campaign machinery keeps every cell crash-free — retries and
    quarantines grow instead of exceptions.

    ``batch_size`` is accepted for the standard run signature and
    ignored (full resilient campaigns per trial); ``checkpoint``
    persists per-cell trial checkpoints for resumable sweeps.
    """
    del batch_size  # standard-signature parameter; no batched engine here
    metrics = metrics if metrics is not None else MetricsRegistry()
    result = ExperimentResult(
        experiment_id="Chaos sweep",
        description="graceful degradation under composed fault injection",
    )
    table = Table(
        [
            "intensity",
            "id rate",
            "det rate",
            "|err| [m]",
            "retries/camp",
            "partial/camp",
            "quarantined/camp",
            "faults/camp",
        ],
        title=f"degradation vs fault intensity ({trials} campaigns x "
        f"{rounds} rounds per cell)",
    )

    id_rates = []
    for intensity in intensities:
        report = run_trials(
            partial(
                _trial,
                intensity=float(intensity),
                fault_seed=seed,
                n_rounds=rounds,
            ),
            trials,
            # Distinct seed stream per cell, all derived from the master.
            seed=(seed, int(round(1000 * intensity))),
            workers=workers,
            metrics=metrics,
            checkpoint_dir=checkpoint,
            checkpoint_label=f"chaos-{intensity:.2f}",
        )
        values = np.array(report.values, dtype=float)
        id_rate = float(np.mean(values[:, 0]))
        det_rate = float(np.mean(values[:, 1]))
        errors = values[:, 2]
        mean_error = (
            float(np.nanmean(errors)) if not np.all(np.isnan(errors))
            else float("nan")
        )
        retries = float(np.mean(values[:, 3]))
        partials = float(np.mean(values[:, 4]))
        quarantined = float(np.mean(values[:, 5]))
        faults = float(np.mean(values[:, 6]))
        metrics.counter("chaos.faults_injected").inc(float(values[:, 6].sum()))
        metrics.counter("chaos.retries").inc(float(values[:, 3].sum()))
        metrics.counter("chaos.quarantined_responders").inc(
            float(values[:, 5].sum())
        )
        table.add_row(
            [
                float(intensity),
                id_rate,
                det_rate,
                mean_error,
                retries,
                partials,
                quarantined,
                faults,
            ]
        )
        id_rates.append(id_rate)
        result.compare(
            f"id_rate_intensity_{intensity:g}", id_rate, unit=""
        )

    result.add_table(table)
    result.compare("id_rate_clean", id_rates[0], paper=1.0)
    result.compare("id_rate_worst", id_rates[-1])
    result.compare(
        "degradation_span", id_rates[0] - id_rates[-1], unit=""
    )
    result.note(
        "intensity 0 runs with an empty FaultPlan (fault machinery "
        "detached); the curve quantifies graceful degradation — no cell "
        "may crash, faults surface as retries/quarantines/partial rounds"
    )
    return result


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Chaos sweep: concurrent-ranging degradation curves "
        "under composed fault injection."
    )
    parser.add_argument("--trials", type=int, default=20)
    parser.add_argument("--seed", type=int, default=23)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument(
        "--rounds", type=int, default=4, help="campaign rounds per trial"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="tiny smoke configuration (3 intensities, few trials)",
    )
    parser.add_argument(
        "--checkpoint",
        default=None,
        metavar="DIR",
        help="persist per-trial checkpoints to DIR as the sweep runs",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="with --checkpoint: reuse checkpoints from a previous "
        "(possibly interrupted) sweep instead of clearing them",
    )
    args = parser.parse_args(argv)
    if args.resume and not args.checkpoint:
        parser.error("--resume requires --checkpoint DIR")

    intensities = (0.0, 0.5, 1.0) if args.quick else INTENSITIES
    trials = min(args.trials, 4) if args.quick else args.trials
    rounds = min(args.rounds, 3) if args.quick else args.rounds

    if args.checkpoint and not args.resume:
        # Fresh sweep: stale shards from older runs of the same
        # configuration would otherwise short-circuit the trials.
        from repro.runtime import CheckpointStore

        for intensity in intensities:
            CheckpointStore.for_run(
                args.checkpoint,
                (args.seed, int(round(1000 * intensity))),
                trials,
                label=f"chaos-{intensity:.2f}",
            ).clear()

    metrics = MetricsRegistry()
    result = run(
        trials=trials,
        seed=args.seed,
        workers=args.workers,
        metrics=metrics,
        intensities=intensities,
        rounds=rounds,
        checkpoint=args.checkpoint,
    )
    result.print()
    print()
    print(metrics.render(title="runtime metrics — chaos sweep"))
    return 0


if __name__ == "__main__":
    sys.exit(main())
