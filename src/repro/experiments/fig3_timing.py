"""EXP-F3 — Fig. 3 / Sect. III: frame timing and the response delay.

Checks the paper's arithmetic: with DR = 6.8 Mbps, PRF = 64 MHz,
PSR = 128, the minimum RMARKER-to-RMARKER response delay (INIT PHR +
payload, plus RESP preamble + SFD) is 178.5 us; adding the <100 us
turnaround and a safety gap, the paper sets DELTA_RESP = 290 us.

The (single, deterministic) budget computation runs on the
:mod:`repro.runtime` trial executor so ``run()`` carries the standard
``run(trials, seed, workers, batch_size, checkpoint)`` surface like
every other experiment — uniformity is the point; the arithmetic itself
needs no parallelism.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import Table
from repro.constants import DELTA_RESP_S, PAPER_MIN_DELTA_RESP_S
from repro.experiments.common import ExperimentResult, standard_run
from repro.protocol.messages import INIT_PAYLOAD_BYTES
from repro.radio.frame import (
    RadioConfig,
    frame_duration,
    min_response_delay_s,
)
from repro.runtime import MetricsRegistry, run_trials


def _timing_trial(rng: np.random.Generator, index: int) -> tuple:
    """The Sect. III timing budget (closed form; seeding unused)."""
    config = RadioConfig()  # the paper's defaults
    init = frame_duration(config, INIT_PAYLOAD_BYTES)
    resp = frame_duration(config, 0)
    return (
        init.phr_s,
        init.payload_s,
        resp.preamble_s,
        resp.sfd_s,
        init.after_rmarker_s + resp.shr_s,
        min_response_delay_s(config, INIT_PAYLOAD_BYTES),
    )


@standard_run()
def run(
    *,
    trials: int | None = None,
    seed: int = 0,
    workers: int = 1,
    batch_size=1,
    checkpoint=None,
    metrics: MetricsRegistry | None = None,
) -> ExperimentResult:
    """Recompute the Sect. III timing budget from the PHY model.

    ``trials``, ``workers``, and ``batch_size`` are accepted for the
    standard run signature and ignored beyond executor plumbing: the
    budget is one deterministic trial.
    """
    del trials, batch_size  # standard-signature parameters; unused
    result = ExperimentResult(
        experiment_id="Fig. 3 / Sect. III",
        description="frame structure timing and minimum response delay",
    )
    report = run_trials(
        _timing_trial,
        1,
        seed=seed,
        workers=workers,
        metrics=metrics,
        checkpoint_dir=checkpoint,
        checkpoint_label="fig3-timing",
    )
    (phr_s, payload_s, preamble_s, sfd_s, minimum, with_turnaround) = (
        report.values[0]
    )

    table = Table(["frame section", "duration [us]"], title="frame timing budget")
    table.add_row(["INIT PHR", phr_s * 1e6])
    table.add_row([f"INIT payload ({INIT_PAYLOAD_BYTES} B)", payload_s * 1e6])
    table.add_row(["RESP preamble (PSR=128)", preamble_s * 1e6])
    table.add_row(["RESP SFD", sfd_s * 1e6])
    table.add_row(["minimum RMARKER-to-RMARKER", minimum * 1e6])
    result.add_table(table)

    result.compare(
        "min_delay_us", minimum * 1e6, paper=PAPER_MIN_DELTA_RESP_S * 1e6, unit="us"
    )
    result.compare(
        "with_turnaround_us", with_turnaround * 1e6, paper=278.5, unit="us"
    )
    result.compare(
        "chosen_delta_resp_us", DELTA_RESP_S * 1e6, paper=290.0, unit="us"
    )
    result.note(
        "DELTA_RESP (290 us) must exceed the turnaround-inclusive minimum; "
        "the margin is the paper's 'safety gap'"
    )
    return result
