"""EXP-F3 — Fig. 3 / Sect. III: frame timing and the response delay.

Checks the paper's arithmetic: with DR = 6.8 Mbps, PRF = 64 MHz,
PSR = 128, the minimum RMARKER-to-RMARKER response delay (INIT PHR +
payload, plus RESP preamble + SFD) is 178.5 us; adding the <100 us
turnaround and a safety gap, the paper sets DELTA_RESP = 290 us.
"""

from __future__ import annotations

from repro.analysis.tables import Table
from repro.constants import DELTA_RESP_S, PAPER_MIN_DELTA_RESP_S
from repro.experiments.common import ExperimentResult
from repro.protocol.messages import INIT_PAYLOAD_BYTES
from repro.radio.frame import (
    RadioConfig,
    frame_duration,
    min_response_delay_s,
)


def run() -> ExperimentResult:
    """Recompute the Sect. III timing budget from the PHY model."""
    result = ExperimentResult(
        experiment_id="Fig. 3 / Sect. III",
        description="frame structure timing and minimum response delay",
    )
    config = RadioConfig()  # the paper's defaults
    init = frame_duration(config, INIT_PAYLOAD_BYTES)
    resp = frame_duration(config, 0)

    table = Table(["frame section", "duration [us]"], title="frame timing budget")
    table.add_row(["INIT PHR", init.phr_s * 1e6])
    table.add_row([f"INIT payload ({INIT_PAYLOAD_BYTES} B)", init.payload_s * 1e6])
    table.add_row(["RESP preamble (PSR=128)", resp.preamble_s * 1e6])
    table.add_row(["RESP SFD", resp.sfd_s * 1e6])
    minimum = init.after_rmarker_s + resp.shr_s
    table.add_row(["minimum RMARKER-to-RMARKER", minimum * 1e6])
    result.add_table(table)

    with_turnaround = min_response_delay_s(config, INIT_PAYLOAD_BYTES)
    result.compare(
        "min_delay_us", minimum * 1e6, paper=PAPER_MIN_DELTA_RESP_S * 1e6, unit="us"
    )
    result.compare(
        "with_turnaround_us", with_turnaround * 1e6, paper=278.5, unit="us"
    )
    result.compare(
        "chosen_delta_resp_us", DELTA_RESP_S * 1e6, paper=290.0, unit="us"
    )
    result.note(
        "DELTA_RESP (290 us) must exceed the turnaround-inclusive minimum; "
        "the margin is the paper's 'safety gap'"
    )
    return result
