"""EXP-S9 — Stress test: identification vs responder count (ours).

Sect. VIII gives the *capacity* formula N_max = N_RPM x N_PS but never
measures how the decode behaves as the scheme fills up.  This stress
test sweeps the responder count from 2 up to the full 12-responder
capacity of the Fig. 8 scheme (4 slots x 3 shapes) and measures the
per-responder identification rate — quantifying the graceful (or not)
degradation as slots grow crowded and the detector must pull more and
more peaks out of one CIR.

The sweep runs on the :mod:`repro.runtime` trial executor (one trial
per responder count), so ``run()`` carries the standard
``run(trials, seed, workers, batch_size, checkpoint)`` surface:
``--workers`` parallelises the per-count simulations and
``--checkpoint`` persists them.  Each count seeds its own generator as
``seed + count`` — exactly the serial sweep's derivation — so results
are identical at any worker count.

Counts *above* the 12-responder scheme capacity cannot use the static
single-round layout at all: every responder ID must be unique, so the
legacy path simply raises.  Those counts delegate to the
:class:`~repro.netsim.swarm.SwarmScenario` medium (one initiator, no
mobility-breaking concurrency), where responders keep persistent
global identities and alias onto (slot, shape) pairs modulo the
capacity — the oversubscribed regime the swarm layer was built to
measure.  Counts ``<= 12`` still run the original code path
byte-for-byte (pinned by ``tests/test_swarm.py``).
"""

from __future__ import annotations

from functools import partial
from typing import Sequence, Tuple

import numpy as np

from repro.analysis.tables import Table
from repro.channel.stochastic import IndoorEnvironment
from repro.core.detection import SearchAndSubtractConfig
from repro.core.rpm import SlotPlan
from repro.core.scheme import CombinedScheme
from repro.experiments.common import ExperimentResult, standard_run
from repro.netsim.medium import Medium
from repro.netsim.node import Node
from repro.protocol.concurrent import ConcurrentRangingSession
from repro.runtime import MetricsRegistry, run_trials
from repro.signal.templates import TemplateBank

N_SLOTS = 4
N_SHAPES = 3
RESPONDER_COUNTS = (2, 4, 6, 9, 12)

#: Oversubscribed counts (> N_SLOTS x N_SHAPES) measured on the swarm
#: medium, where identities alias modulo the scheme capacity.
SWARM_COUNTS = (18, 24)

#: Radial distance pattern: spread between 3 and 12 m.
def _distance(i: int) -> float:
    return 3.0 + (i * 9.0 / 11.0)


def _identification_rate(
    n_responders: int, trials: int, seed: int
) -> float:
    rng = np.random.default_rng(seed)
    medium = Medium(environment=IndoorEnvironment.hallway(), rng=rng)
    initiator = Node.at(0, 0.0, 0.0, rng=rng)
    responders = []
    for i in range(n_responders):
        angle = 2.0 * np.pi * i / n_responders
        responders.append(
            Node.at(
                i + 1,
                float(_distance(i) * np.cos(angle)),
                float(_distance(i) * np.sin(angle)),
                rng=rng,
            )
        )
    medium.add_nodes([initiator] + responders)
    scheme = CombinedScheme(
        SlotPlan.for_range(15.0, n_slots=N_SLOTS),
        TemplateBank.paper_bank(N_SHAPES),
    )
    session = ConcurrentRangingSession(
        medium=medium,
        initiator=initiator,
        responders=responders,
        scheme=scheme,
        detector_config=SearchAndSubtractConfig(
            max_responses=n_responders, upsample_factor=8
        ),
        compensate_tx_quantization=True,
        rng=rng,
    )
    hits = 0
    total = 0
    for _ in range(trials):
        outcome = session.run_round()
        for responder in outcome.outcomes:
            total += 1
            hits += responder.identified
    return hits / total


def _swarm_identification_rate(
    n_responders: int, trials: int, seed: int
) -> float:
    """Identification rate above scheme capacity, on the swarm medium.

    One static initiator polls a 12-wide round-robin window of a
    ``n_responders`` population whose persistent identities alias onto
    the 4 x 3 scheme modulo its capacity.  ``trials`` becomes swarm
    epochs (one round each); decodes that alias >1 in-range member
    count as *ambiguous*, not identified — exactly the failure mode
    the capacity formula predicts past ``N_max``.
    """
    from repro.netsim.swarm import SwarmConfig, SwarmScenario

    config = SwarmConfig(
        n_responders=n_responders,
        n_initiators=1,
        n_concurrent=1,
        arena_m=9.0,
        comm_range_m=6.0,
        window=12,
        n_slots=N_SLOTS,
        n_shapes=N_SHAPES,
        upsample_factor=8,
    )
    result = SwarmScenario(config, seed=seed, shards=1).run(trials)
    return result.identified / result.polled if result.polled else 0.0


def _capacity_trial(
    rng: np.random.Generator,
    index: int,
    *,
    counts: Sequence[int],
    trials: int,
    seed: int,
) -> Tuple[int, float]:
    """Measure one responder count's identification rate.

    The simulation derives its own generator from ``seed + count`` (the
    serial sweep's exact seeding), so the trial seeding contract goes
    unused — results are identical at any worker count or trial order.
    Counts above the scheme capacity dispatch to the swarm medium (the
    static layout cannot assign >12 unique IDs at all).
    """
    count = int(counts[index])
    if count <= N_SLOTS * N_SHAPES:
        return count, _identification_rate(count, trials, seed + count)
    return count, _swarm_identification_rate(count, trials, seed + count)


@standard_run("trials", "seed")
def run(
    *,
    trials: int = 40,
    seed: int = 67,
    workers: int = 1,
    batch_size=1,
    checkpoint=None,
    metrics: MetricsRegistry | None = None,
) -> ExperimentResult:
    """Sweep responder counts and report per-responder ID rates.

    ``trials`` is the number of ranging rounds simulated per responder
    count; ``batch_size`` is accepted for the standard run signature
    and ignored (each count is one indivisible simulation).
    """
    del batch_size  # standard-signature parameter; unused
    result = ExperimentResult(
        experiment_id="Capacity stress (ours)",
        description="identification rate as the Fig. 8 scheme fills up",
    )
    table = Table(
        ["responders", "scheme load", "medium", "per-responder ID rate"],
        title=f"4 slots x 3 shapes (capacity 12), {trials} rounds per point",
    )
    counts = RESPONDER_COUNTS + SWARM_COUNTS
    report = run_trials(
        partial(
            _capacity_trial,
            counts=counts,
            trials=trials,
            seed=seed,
        ),
        len(counts),
        seed=seed,
        workers=workers,
        metrics=metrics,
        checkpoint_dir=checkpoint,
        checkpoint_label="capacity-stress",
    )
    rates = {}
    for count, rate in report.values:
        rates[count] = rate
        medium = "static" if count <= N_SLOTS * N_SHAPES else "swarm"
        table.add_row([count, f"{count}/12", medium, rate])
    result.add_table(table)

    result.compare("id_rate_2", rates[2], paper=None)
    result.compare("id_rate_9", rates[9], paper=1.0)
    result.compare("id_rate_12_full", rates[12], paper=None)
    for count in SWARM_COUNTS:
        result.compare(f"id_rate_{count}_swarm", rates[count], paper=None)
    result.note(
        "the paper demonstrates 9 of 12; the sweep shows how much margin "
        "remains at full capacity"
    )
    result.note(
        "counts past capacity run on the swarm medium with aliased "
        "persistent identities (decodes matching >1 in-range member are "
        "ambiguous, not identified); counts <= 12 are byte-identical to "
        "the historical static sweep"
    )
    return result
