"""EXP-S5 — Sect. V: pulse shaping does not hurt ranging precision.

The paper places two nodes 3 m apart in an office, runs 5000 SS-TWR
exchanges per pulse shape (s1, s2, s3), and reports the standard
deviation of the ranging error: 0.0228 m, 0.0221 m, 0.0283 m — i.e. all
shapes land in the same 2-3 cm band, so pulse shaping is free.

Each SS-TWR exchange is one independently seeded trial on the
:mod:`repro.runtime` executor, so the sweep parallelises across workers
with bit-identical statistics for a fixed master seed.
"""

from __future__ import annotations

from functools import partial

import numpy as np

from repro.analysis.tables import Table
from repro.channel.stochastic import IndoorEnvironment
from repro.constants import PAPER_SIGMA_TWR_M
from repro.experiments.common import ExperimentResult, standard_run
from repro.netsim.medium import Medium
from repro.netsim.node import Node
from repro.protocol.twr import SsTwr
from repro.radio.frame import RadioConfig
from repro.runtime import MetricsRegistry, run_trials

DISTANCE_M = 3.0
SHAPE_REGISTERS = {"s1": 0x93, "s2": 0xC8, "s3": 0xE6}


def _twr_trial(
    rng: np.random.Generator, index: int, *, register: int
) -> float:
    """Ranging error of one independent SS-TWR exchange with one shape."""
    medium = Medium(environment=IndoorEnvironment.office(), rng=rng)
    config = RadioConfig(tc_pgdelay=register)
    initiator = Node.at(0, 0.0, 0.0, rng=rng, config=config)
    responder = Node.at(1, DISTANCE_M, 0.0, rng=rng, config=config)
    medium.add_nodes([initiator, responder])
    twr = SsTwr(medium, initiator, responder)
    return twr.run(rng).distance_m - DISTANCE_M


def twr_errors(
    register: int,
    trials: int,
    seed: int,
    workers: int = 1,
    metrics: MetricsRegistry | None = None,
    checkpoint=None,
) -> np.ndarray:
    """Ranging errors of ``trials`` SS-TWR exchanges with one shape."""
    report = run_trials(
        partial(_twr_trial, register=register),
        trials,
        seed=seed,
        workers=workers,
        metrics=metrics,
        checkpoint_dir=checkpoint,
        checkpoint_label=f"sect5_0x{register:02X}",
    )
    return np.array(report.values)


@standard_run("trials", "seed", "workers", "metrics")
def run(
    *,
    trials: int = 1000,
    seed: int = 29,
    workers: int = 1,
    batch_size=1,
    checkpoint=None,
    metrics: MetricsRegistry | None = None,
) -> ExperimentResult:
    """Reproduce the Sect. V precision comparison (paper: 5000 trials).

    ``batch_size`` is accepted for the standard run signature; the
    SS-TWR trials are scalar (no batched engine) so it is ignored.
    ``checkpoint`` persists per-shape trial checkpoints for resumable
    runs.
    """
    del batch_size  # standard-signature parameter; no batched engine here
    result = ExperimentResult(
        experiment_id="Sect. V precision",
        description="SS-TWR error std per pulse shape (2 nodes, 3 m apart)",
    )
    table = Table(
        ["shape", "register", "sigma measured [m]", "sigma paper [m]"],
        title=f"Sect. V reproduction ({trials} SS-TWR exchanges per shape)",
    )
    sigmas = {}
    for name, register in SHAPE_REGISTERS.items():
        errors = twr_errors(
            register,
            trials,
            seed + register,
            workers=workers,
            metrics=metrics,
            checkpoint=checkpoint,
        )
        sigma = float(np.std(errors))
        sigmas[name] = sigma
        table.add_row([name, f"0x{register:02X}", sigma, PAPER_SIGMA_TWR_M[name]])
        result.compare(
            f"sigma_{name}_m", sigma, paper=PAPER_SIGMA_TWR_M[name], unit="m"
        )
    result.add_table(table)

    spread = max(sigmas.values()) / min(sigmas.values())
    result.compare("max_over_min_sigma", spread, paper=0.0283 / 0.0221)
    result.note(
        "shape criterion: all three sigmas in the 2-3 cm band -> pulse "
        "shaping has negligible impact on ranging precision"
    )
    return result
