"""EXP-S5 — Sect. V: pulse shaping does not hurt ranging precision.

The paper places two nodes 3 m apart in an office, runs 5000 SS-TWR
exchanges per pulse shape (s1, s2, s3), and reports the standard
deviation of the ranging error: 0.0228 m, 0.0221 m, 0.0283 m — i.e. all
shapes land in the same 2-3 cm band, so pulse shaping is free.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.metrics import std, summarize_errors
from repro.analysis.tables import Table
from repro.channel.stochastic import IndoorEnvironment
from repro.constants import PAPER_SIGMA_TWR_M
from repro.experiments.common import ExperimentResult
from repro.netsim.medium import Medium
from repro.netsim.node import Node
from repro.protocol.twr import SsTwr
from repro.radio.frame import RadioConfig

DISTANCE_M = 3.0
SHAPE_REGISTERS = {"s1": 0x93, "s2": 0xC8, "s3": 0xE6}


def twr_errors(
    register: int, trials: int, seed: int
) -> np.ndarray:
    """Ranging errors of ``trials`` SS-TWR exchanges with one shape."""
    rng = np.random.default_rng(seed)
    medium = Medium(environment=IndoorEnvironment.office(), rng=rng)
    config = RadioConfig(tc_pgdelay=register)
    initiator = Node.at(0, 0.0, 0.0, rng=rng, config=config)
    responder = Node.at(1, DISTANCE_M, 0.0, rng=rng, config=config)
    medium.add_nodes([initiator, responder])
    twr = SsTwr(medium, initiator, responder)
    distances = twr.run_many(trials, rng)
    return distances - DISTANCE_M


def run(trials: int = 1000, seed: int = 29) -> ExperimentResult:
    """Reproduce the Sect. V precision comparison (paper: 5000 trials)."""
    result = ExperimentResult(
        experiment_id="Sect. V precision",
        description="SS-TWR error std per pulse shape (2 nodes, 3 m apart)",
    )
    table = Table(
        ["shape", "register", "sigma measured [m]", "sigma paper [m]"],
        title=f"Sect. V reproduction ({trials} SS-TWR exchanges per shape)",
    )
    sigmas = {}
    for name, register in SHAPE_REGISTERS.items():
        errors = twr_errors(register, trials, seed + register)
        sigma = float(np.std(errors))
        sigmas[name] = sigma
        table.add_row([name, f"0x{register:02X}", sigma, PAPER_SIGMA_TWR_M[name]])
        result.compare(
            f"sigma_{name}_m", sigma, paper=PAPER_SIGMA_TWR_M[name], unit="m"
        )
    result.add_table(table)

    spread = max(sigmas.values()) / min(sigmas.values())
    result.compare("max_over_min_sigma", spread, paper=0.0283 / 0.0221)
    result.note(
        "shape criterion: all three sigmas in the 2-3 cm band -> pulse "
        "shaping has negligible impact on ranging precision"
    )
    return result
