"""EXP-F6 — Fig. 6: identifying two responders by pulse shape.

The paper's demonstration: responder 1 at 4 m uses the default shape
s1 (0x93), responder 2 at 10 m uses the wider s3 (0xE6).  Running the
detector with an N_PS = 3 template bank, both peaks are found and each
peak's winning template identifies its responder.

Runs on the :mod:`repro.runtime` trial executor: each round is one
independently seeded trial, so ``workers=4`` parallelises the run with
results identical to a serial one, and the template bank comes from the
process-local runtime cache.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.metrics import detection_rate
from repro.analysis.tables import Table
from repro.channel.stochastic import IndoorEnvironment
from repro.core.rpm import SlotPlan
from repro.core.scheme import CombinedScheme
from repro.experiments.common import ExperimentResult, standard_run
from repro.netsim.medium import Medium
from repro.netsim.node import Node
from repro.protocol.concurrent import ConcurrentRangingSession
from repro.runtime import MetricsRegistry, run_trials, template_bank

D1_M = 4.0
D2_M = 10.0


def _trial(rng: np.random.Generator, index: int) -> tuple:
    """One round: ``(both_detected, both_identified)`` booleans.

    Responders at 4 m and 10 m.  With one slot and a 3-shape bank the
    session maps responder ID -> shape index; using three responders
    would change the scenario, so we emulate the paper's setup by
    giving the far responder shape s3 via a 2-entry bank built from
    registers (0x93, 0xE6) and noting the paper runs the *classifier*
    with all three templates.
    """
    medium = Medium(environment=IndoorEnvironment.hallway(), rng=rng)
    initiator = Node.at(0, 0.0, 0.0, rng=rng)
    near = Node.at(1, D1_M, 0.0, rng=rng)
    far = Node.at(2, D2_M, 0.0, rng=rng)
    medium.add_nodes([initiator, near, far])

    bank = template_bank((0x93, 0xE6))  # s1 and s3 of the paper's Fig. 5
    scheme = CombinedScheme(SlotPlan.for_range(20.0, n_slots=1), bank)
    session = ConcurrentRangingSession(
        medium=medium,
        initiator=initiator,
        responders=[near, far],
        scheme=scheme,
        rng=rng,
    )
    outcome = session.run_round()
    near_outcome = outcome.outcome_for(0)
    far_outcome = outcome.outcome_for(1)
    return (
        near_outcome.detected and far_outcome.detected,
        near_outcome.identified and far_outcome.identified,
    )


@standard_run("trials", "seed", "workers", "metrics")
def run(
    *,
    trials: int = 300,
    seed: int = 5,
    workers: int = 1,
    batch_size=1,
    checkpoint=None,
    metrics: MetricsRegistry | None = None,
) -> ExperimentResult:
    """Monte-Carlo version of Fig. 6: detection + identification rates.

    ``workers`` parallelises the rounds; for a fixed ``seed`` the
    reproduced numbers are identical for any worker count.
    ``batch_size`` is accepted for the standard run signature and
    ignored (full protocol rounds); ``checkpoint`` persists trial
    checkpoints for resumable runs.
    """
    del batch_size  # standard-signature parameter; no batched engine here
    report = run_trials(
        _trial,
        trials,
        seed=seed,
        workers=workers,
        metrics=metrics,
        checkpoint_dir=checkpoint,
        checkpoint_label="fig6",
    )
    both_detected = [detected for detected, _ in report.values]
    both_identified = [identified for _, identified in report.values]

    result = ExperimentResult(
        experiment_id="Fig. 6",
        description="pulse-shape identification of two responders (4 m / 10 m)",
    )
    table = Table(
        ["responder", "distance [m]", "shape"], title="Fig. 6 setup"
    )
    table.add_row(["1", D1_M, "s1 (0x93)"])
    table.add_row(["2", D2_M, "s3 (0xE6)"])
    result.add_table(table)

    result.compare("both_detected_rate", detection_rate(both_detected), paper=1.0)
    result.compare(
        "both_identified_rate", detection_rate(both_identified), paper=0.99
    )
    result.note(
        "paper shows one capture where both responses are 'easily "
        "detectable' and correctly associated; Table I quantifies the rate"
    )
    return result
