"""EXP-A3 — Ablation: step-4 amplitude estimate vs joint least squares.

The paper's step 4 reads each response's amplitude directly off the
matched-filter output "to reduce complexity, instead of the least
squares solution suggested in [13]".  This ablation quantifies the
trade: amplitude accuracy and wall-clock cost of the plain estimate vs.
a joint least-squares refinement, as two responses approach each other.

Ported to the :mod:`repro.runtime` trial executor: one trial per
separation, each drawing from its own spawned generator, so
``--workers`` parallelises the sweep and serial and parallel runs are
byte-identical (the timing column is the only non-deterministic value
and never leaves the table).  The historical ``run(trials, seed)``
positional call keeps working through the
:func:`~repro.experiments.common.standard_run` shim.
"""

from __future__ import annotations

import time
from functools import partial
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.analysis.tables import Table
from repro.constants import CIR_SAMPLING_PERIOD_S
from repro.core.detection import SearchAndSubtract, SearchAndSubtractConfig
from repro.experiments.common import ExperimentResult, standard_run
from repro.runtime import MetricsRegistry, run_trials
from repro.signal.pulses import dw1000_pulse
from repro.signal.sampling import place_pulse

SEPARATIONS_NS = (0.8, 1.5, 3.0, 6.0, 20.0)
TRUE_AMPLITUDES = (1.0, 0.7)
SNR_DB = 30.0


def _trial_cir(separation_ns: float, rng: np.random.Generator, template):
    cir = np.zeros(1016, dtype=complex)
    positions = (
        300.0,
        300.0 + separation_ns * 1e-9 / CIR_SAMPLING_PERIOD_S,
    )
    scale = 10.0 ** (SNR_DB / 20.0)
    for position, amplitude in zip(positions, TRUE_AMPLITUDES):
        phase = np.exp(1j * rng.uniform(0, 2 * np.pi))
        place_pulse(
            cir, template.samples.astype(complex), position,
            scale * amplitude * phase,
        )
    cir += (
        rng.standard_normal(1016) + 1j * rng.standard_normal(1016)
    ) / np.sqrt(2)
    return cir, scale


def _amplitude_rmse(responses, scale) -> float:
    """RMSE of |amplitude| against truth, best-match by magnitude order."""
    if len(responses) < 2:
        return float("nan")
    estimated = sorted((abs(r.amplitude) / scale for r in responses), reverse=True)
    truth = sorted(TRUE_AMPLITUDES, reverse=True)
    return float(
        np.sqrt(np.mean([(e - t) ** 2 for e, t in zip(estimated, truth)]))
    )


def _amplitude_cell(
    rng: np.random.Generator,
    index: int,
    *,
    separations: Sequence[float],
    trials: int,
) -> Tuple[float, float, float, float]:
    """(separation, plain RMSE, LS RMSE, LS extra time %) for one cell."""
    separation = float(separations[index])
    template = dw1000_pulse()
    detector = SearchAndSubtract(
        template, SearchAndSubtractConfig(max_responses=2, upsample_factor=8)
    )
    plain_errors, ls_errors = [], []
    plain_time, ls_time = 0.0, 0.0
    for _ in range(trials):
        cir, scale = _trial_cir(separation, rng, template)
        start = time.perf_counter()
        plain = detector.detect(cir, CIR_SAMPLING_PERIOD_S, noise_std=1.0)
        plain_time += time.perf_counter() - start
        start = time.perf_counter()
        refined = detector.detect_with_ls_refinement(
            cir, CIR_SAMPLING_PERIOD_S, noise_std=1.0
        )
        ls_time += time.perf_counter() - start
        plain_errors.append(_amplitude_rmse(plain, scale))
        ls_errors.append(_amplitude_rmse(refined, scale))
    return (
        separation,
        float(np.nanmean(plain_errors)),
        float(np.nanmean(ls_errors)),
        100.0 * (ls_time - plain_time) / plain_time if plain_time else 0.0,
    )


@standard_run("trials", "seed")
def run(
    *,
    trials: int = 60,
    seed: int = 53,
    workers: int = 1,
    batch_size=1,
    checkpoint=None,
    metrics: Optional[MetricsRegistry] = None,
) -> ExperimentResult:
    """Sweep response separations and compare amplitude estimators.

    ``trials`` is the number of two-response CIRs per separation;
    ``batch_size`` is accepted for the standard run signature and
    ignored (each separation is one indivisible sweep cell).
    """
    del batch_size  # standard-signature parameter; unused
    result = ExperimentResult(
        experiment_id="Ablation A3",
        description="step-4 amplitude estimate vs joint least squares",
    )
    table = Table(
        ["separation [ns]", "step-4 RMSE", "LS RMSE", "LS extra time [%]"],
        title=f"amplitude accuracy over {trials} trials at {SNR_DB:.0f} dB SNR",
    )
    report = run_trials(
        partial(_amplitude_cell, separations=SEPARATIONS_NS, trials=trials),
        len(SEPARATIONS_NS),
        seed=seed,
        workers=workers,
        metrics=metrics,
        checkpoint_dir=checkpoint,
        checkpoint_label="ablation-amplitude",
    )
    plain_by_sep = {}
    ls_by_sep = {}
    for separation, plain_rmse, ls_rmse, extra_pct in report.values:
        plain_by_sep[separation] = plain_rmse
        ls_by_sep[separation] = ls_rmse
        table.add_row([separation, plain_rmse, ls_rmse, extra_pct])
    result.add_table(table)

    result.compare(
        "plain_rmse_overlapping", plain_by_sep[SEPARATIONS_NS[0]], paper=None
    )
    result.compare(
        "ls_rmse_overlapping", ls_by_sep[SEPARATIONS_NS[0]], paper=None
    )
    result.compare(
        "plain_rmse_separated", plain_by_sep[SEPARATIONS_NS[-1]], paper=None
    )
    result.note(
        "the paper's trade: for well-separated responses the cheap "
        "estimate matches LS; the LS advantage only appears for heavy "
        "overlap, at extra solve cost"
    )
    return result
