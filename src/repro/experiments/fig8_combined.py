"""EXP-F8 — Fig. 8: nine responders via RPM x pulse shaping.

The paper's capstone figure: N_RPM = 4 slots and N_PS = 3 shapes carry
nine concurrent responders (capacity 12).  Every responder's slot comes
from ``ID % 4`` and its shape from its ID; the initiator decodes all nine
identities and distances from a single CIR.

Runs on the :mod:`repro.runtime` trial executor as a
:class:`~repro.core.batch_id.ClassifyBatchTrial`: each round is one
independently seeded trial (its own topology, channels, and capture)
split at the classification boundary, so ``workers=W`` parallelises the
rounds and ``batch_size=B`` (the default ``"auto"`` sizes B from the
workload shape) stacks B rounds' nine-response CIRs into one batched
classifier pass — with results identical to a serial, unbatched run for
a fixed seed.  :func:`build_session` keeps the single fixed-topology
session for the examples and benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import Table
from repro.channel.stochastic import IndoorEnvironment
from repro.constants import CIR_LENGTH_PRF64, CIR_SAMPLING_PERIOD_S
from repro.core.batch_id import ClassifyBatchTrial
from repro.core.detection import SearchAndSubtractConfig
from repro.core.rpm import SlotPlan
from repro.core.scheme import CombinedScheme
from repro.experiments.common import ExperimentResult, standard_run
from repro.netsim.medium import Medium
from repro.netsim.node import Node
from repro.protocol.concurrent import ConcurrentRangingSession
from repro.runtime import MetricsRegistry, run_trials, template_bank

N_SLOTS = 4
N_SHAPES = 3
N_RESPONDERS = 9

#: Responder distances [m]; spread inside a 12 m operating range so that
#: same-slot responders differ by pulse shape, as in the paper's sketch.
DISTANCES_M = (3.0, 4.5, 6.0, 7.5, 9.0, 10.5, 12.0, 5.0, 8.0)

#: The bank shared by the session classifier and the batched engine
#: (``template_bank`` memoises it; content equals ``paper_bank(3)``).
BANK_REGISTERS = (0x93, 0xC8, 0xE6)

#: The session's detector knobs — bound once so the external (batched)
#: classification step uses the exact configuration the session would.
DETECTOR_CONFIG = SearchAndSubtractConfig(
    max_responses=N_RESPONDERS, upsample_factor=8
)


def _session_from_rng(
    rng: np.random.Generator, compensate_tx_quantization: bool = True
) -> ConcurrentRangingSession:
    """The Fig. 8 topology from an explicit generator (trial entry)."""
    medium = Medium(environment=IndoorEnvironment.hallway(), rng=rng)
    initiator = Node.at(0, 0.0, 0.0, rng=rng)
    responders = []
    for i, distance in enumerate(DISTANCES_M):
        angle = 2.0 * np.pi * i / len(DISTANCES_M)
        responders.append(
            Node.at(
                i + 1,
                float(distance * np.cos(angle)),
                float(distance * np.sin(angle)),
                rng=rng,
            )
        )
    medium.add_nodes([initiator] + responders)
    bank = template_bank(BANK_REGISTERS)
    # Slot width sized for the experiment's <= 15 m operating range.
    plan = SlotPlan.for_range(15.0, mode="safe", n_slots=N_SLOTS)
    scheme = CombinedScheme(plan, bank)
    return ConcurrentRangingSession(
        medium=medium,
        initiator=initiator,
        responders=responders,
        scheme=scheme,
        detector_config=DETECTOR_CONFIG,
        compensate_tx_quantization=compensate_tx_quantization,
        rng=rng,
    )


def build_session(
    seed: int = 31, compensate_tx_quantization: bool = True
) -> ConcurrentRangingSession:
    """The Fig. 8 topology: 9 responders on distinct bearings."""
    return _session_from_rng(
        np.random.default_rng(seed), compensate_tx_quantization
    )


def _prepare(rng: np.random.Generator, index: int):
    """One Fig. 8 round up to the classification boundary.

    Every trial draws its *own* topology and channels from its seed
    child, so rounds are independent and executor-order-free (the old
    serial loop reused one session; the runtime port re-rolls it per
    trial).
    """
    session = _session_from_rng(rng)
    pending = session.begin_round()
    return pending.cir, pending.noise_std, (session, pending)


def _finish(classified, context, rng, index) -> tuple:
    """Score one classified round.

    Returns ``(identified_flags, abs_errors)`` with one flag per
    responder and one error entry per identified responder.
    """
    session, pending = context
    outcome = session.finish_round(pending, classified)
    identified = tuple(o.identified for o in outcome.outcomes)
    errors = tuple(
        abs(o.error_m)
        for o in outcome.outcomes
        if o.identified and o.error_m is not None
    )
    return identified, errors


def _fig8_trial() -> ClassifyBatchTrial:
    """The batched trial function for the Fig. 8 round."""
    return ClassifyBatchTrial(
        _prepare,
        _finish,
        bank=template_bank(BANK_REGISTERS),
        sampling_period_s=CIR_SAMPLING_PERIOD_S,
        config=DETECTOR_CONFIG,
        cir_length=CIR_LENGTH_PRF64,
    )


@standard_run("trials", "seed")
def run(
    *,
    trials: int = 100,
    seed: int = 31,
    workers: int = 1,
    batch_size="auto",
    checkpoint=None,
    metrics: MetricsRegistry | None = None,
) -> ExperimentResult:
    """Monte-Carlo reproduction of the Fig. 8 decode.

    ``workers`` parallelises the rounds and ``batch_size`` groups them
    per batched-classifier call — the default ``"auto"`` lets the
    runtime size batches from the workload shape (nine-response CIRs
    against the 3-template bank); results are identical for any worker
    count and batch size at a fixed ``seed``.  ``checkpoint`` persists
    trial checkpoints for resumable runs.
    """
    report = run_trials(
        _fig8_trial(),
        trials,
        seed=seed,
        workers=workers,
        metrics=metrics,
        batch_size=batch_size,
        checkpoint_dir=checkpoint,
        checkpoint_label="fig8",
    )
    identified_counts = []
    per_responder_hits = np.zeros(N_RESPONDERS)
    errors = []
    for identified, round_errors in report.values:
        identified_counts.append(sum(identified))
        for i, ok in enumerate(identified):
            per_responder_hits[i] += ok
        errors.extend(round_errors)

    result = ExperimentResult(
        experiment_id="Fig. 8",
        description="combined RPM x pulse shaping with 9 responders",
    )
    # Assignment table from the (deterministic) reference topology.
    session = build_session(seed)
    table = Table(
        ["responder ID", "slot (ID % 4)", "shape", "true dist [m]",
         "identified rate"],
        title=f"Fig. 8 reproduction ({trials} rounds)",
    )
    for i in range(N_RESPONDERS):
        assignment = session.scheme.assignment(i)
        table.add_row(
            [
                i,
                assignment.slot,
                assignment.shape_name,
                DISTANCES_M[i],
                per_responder_hits[i] / trials,
            ]
        )
    result.add_table(table)

    result.compare(
        "mean_identified_of_9", float(np.mean(identified_counts)), paper=9.0
    )
    result.compare(
        "capacity", float(session.scheme.capacity), paper=12.0, unit="responders"
    )
    if errors:
        result.compare(
            "median_abs_error_m", float(np.median(errors)), paper=None, unit="m"
        )
    result.note(
        "paper illustrates one round with all nine responders decoded; "
        "capacity N_max = N_RPM * N_PS = 12"
    )
    result.note(
        f"{trials} independently seeded rounds on the trial executor "
        "(identical for any --workers / --batch-size setting)"
    )
    return result
