"""EXP-F8 — Fig. 8: nine responders via RPM x pulse shaping.

The paper's capstone figure: N_RPM = 4 slots and N_PS = 3 shapes carry
nine concurrent responders (capacity 12).  Every responder's slot comes
from ``ID % 4`` and its shape from its ID; the initiator decodes all nine
identities and distances from a single CIR.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import Table
from repro.channel.stochastic import IndoorEnvironment
from repro.core.detection import SearchAndSubtractConfig
from repro.core.rpm import SlotPlan
from repro.core.scheme import CombinedScheme
from repro.experiments.common import ExperimentResult
from repro.netsim.medium import Medium
from repro.netsim.node import Node
from repro.protocol.concurrent import ConcurrentRangingSession
from repro.signal.templates import TemplateBank

N_SLOTS = 4
N_SHAPES = 3
N_RESPONDERS = 9

#: Responder distances [m]; spread inside a 12 m operating range so that
#: same-slot responders differ by pulse shape, as in the paper's sketch.
DISTANCES_M = (3.0, 4.5, 6.0, 7.5, 9.0, 10.5, 12.0, 5.0, 8.0)


def build_session(
    seed: int = 31, compensate_tx_quantization: bool = True
) -> ConcurrentRangingSession:
    """The Fig. 8 topology: 9 responders on distinct bearings."""
    rng = np.random.default_rng(seed)
    medium = Medium(environment=IndoorEnvironment.hallway(), rng=rng)
    initiator = Node.at(0, 0.0, 0.0, rng=rng)
    responders = []
    for i, distance in enumerate(DISTANCES_M):
        angle = 2.0 * np.pi * i / len(DISTANCES_M)
        responders.append(
            Node.at(
                i + 1,
                float(distance * np.cos(angle)),
                float(distance * np.sin(angle)),
                rng=rng,
            )
        )
    medium.add_nodes([initiator] + responders)
    bank = TemplateBank.paper_bank(N_SHAPES)
    # Slot width sized for the experiment's <= 15 m operating range.
    plan = SlotPlan.for_range(15.0, mode="safe", n_slots=N_SLOTS)
    scheme = CombinedScheme(plan, bank)
    return ConcurrentRangingSession(
        medium=medium,
        initiator=initiator,
        responders=responders,
        scheme=scheme,
        detector_config=SearchAndSubtractConfig(
            max_responses=N_RESPONDERS, upsample_factor=8
        ),
        compensate_tx_quantization=compensate_tx_quantization,
        rng=rng,
    )


def run(trials: int = 100, seed: int = 31) -> ExperimentResult:
    """Monte-Carlo reproduction of the Fig. 8 decode."""
    session = build_session(seed)
    identified_counts = []
    per_responder_hits = np.zeros(N_RESPONDERS)
    errors = []
    for _ in range(trials):
        outcome = session.run_round()
        identified = [o.identified for o in outcome.outcomes]
        identified_counts.append(sum(identified))
        for i, ok in enumerate(identified):
            per_responder_hits[i] += ok
        errors.extend(
            abs(o.error_m)
            for o in outcome.outcomes
            if o.identified and o.error_m is not None
        )

    result = ExperimentResult(
        experiment_id="Fig. 8",
        description="combined RPM x pulse shaping with 9 responders",
    )
    table = Table(
        ["responder ID", "slot (ID % 4)", "shape", "true dist [m]",
         "identified rate"],
        title=f"Fig. 8 reproduction ({trials} rounds)",
    )
    for i in range(N_RESPONDERS):
        assignment = session.scheme.assignment(i)
        table.add_row(
            [
                i,
                assignment.slot,
                assignment.shape_name,
                DISTANCES_M[i],
                per_responder_hits[i] / trials,
            ]
        )
    result.add_table(table)

    result.compare(
        "mean_identified_of_9", float(np.mean(identified_counts)), paper=9.0
    )
    result.compare(
        "capacity", float(session.scheme.capacity), paper=12.0, unit="responders"
    )
    if errors:
        result.compare(
            "median_abs_error_m", float(np.median(errors)), paper=None, unit="m"
        )
    result.note(
        "paper illustrates one round with all nine responders decoded; "
        "capacity N_max = N_RPM * N_PS = 12"
    )
    return result
