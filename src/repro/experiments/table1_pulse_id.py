"""EXP-T1 — Table I: pulse-shape identification accuracy.

The paper's setup: responder 1 fixed at d1 = 3 m with the default shape
s1; responder 2 at d2 in {6, 7, 8, 9, 10} m using either s2 (0xC8) or
s3 (0xE6); 1000 concurrent ranging rounds per cell.  Reported: the
percentage of rounds in which responder 2's pulse shape was identified
correctly (paper: >= 99.2 % everywhere).

Runs on the :mod:`repro.runtime` trial executor as a
:class:`~repro.core.batch_id.ClassifyBatchTrial`: each round is one
independently seeded trial split at the classification boundary
(:meth:`~repro.protocol.concurrent.ConcurrentRangingSession.begin_round`
/ :meth:`~repro.protocol.concurrent.ConcurrentRangingSession.
finish_round`), so ``workers=4`` parallelises a cell and
``batch_size=B`` (or ``"auto"``) stacks B rounds' CIRs into one batched
classifier pass — with results identical to a serial, unbatched run for
a fixed seed.
"""

from __future__ import annotations

from functools import partial

import numpy as np

from repro.analysis.tables import Table
from repro.channel.stochastic import IndoorEnvironment
from repro.constants import (
    CIR_LENGTH_PRF64,
    CIR_SAMPLING_PERIOD_S,
    PAPER_TABLE1,
)
from repro.core.batch_id import ClassifyBatchTrial
from repro.core.detection import SearchAndSubtractConfig
from repro.core.rpm import SlotPlan
from repro.core.scheme import CombinedScheme
from repro.experiments.common import ExperimentResult, standard_run
from repro.netsim.medium import Medium
from repro.netsim.node import Node
from repro.protocol.concurrent import ConcurrentRangingSession
from repro.runtime import MetricsRegistry, run_trials, template_bank

D1_M = 3.0
D2_VALUES_M = (6.0, 7.0, 8.0, 9.0, 10.0)

#: Register of the second responder per table row (paper Fig. 5 names).
SHAPE_REGISTERS = {"s2": 0xC8, "s3": 0xE6}


def _bank_registers(register: int) -> tuple:
    """The initiator's 3-template bank for one table row.

    Always the three paper templates (N_PS = 3 as in Sect. V), ordered
    so that responder 2's session ID (1) naturally maps onto the row's
    register.
    """
    other = next(r for r in SHAPE_REGISTERS.values() if r != register)
    return (0x93, register, other)


def _prepare(
    rng: np.random.Generator,
    index: int,
    *,
    d2_m: float,
    register: int,
):
    """One round up to the classification boundary.

    Builds the cell's topology from the trial's own generator and runs
    :meth:`~ConcurrentRangingSession.begin_round`, which consumes every
    random draw the round makes before (and after) classification — so
    serial and batched classification see byte-identical CIRs.
    """
    medium = Medium(environment=IndoorEnvironment.hallway(), rng=rng)
    initiator = Node.at(0, 0.0, 0.0, rng=rng)
    responder1 = Node.at(1, D1_M, 0.0, rng=rng)
    responder2 = Node.at(2, d2_m, 0.0, rng=rng)
    medium.add_nodes([initiator, responder1, responder2])

    bank = template_bank(_bank_registers(register))
    scheme = CombinedScheme(SlotPlan.for_range(20.0, n_slots=1), bank)
    session = ConcurrentRangingSession(
        medium=medium,
        initiator=initiator,
        responders=[responder1, responder2],
        scheme=scheme,
        rng=rng,
    )
    pending = session.begin_round()
    return pending.cir, pending.noise_std, (session, pending)


def _finish(classified, context, rng, index) -> float:
    """Score one classified round; 1.0 when responder 2's shape decodes."""
    session, pending = context
    outcome = session.finish_round(pending, classified)
    # d2 >= 2 * d1, so responder 2 is always the later response; its
    # decoded shape must be bank index 1 (the row's register).
    if len(outcome.classified) >= 2:
        later = max(outcome.classified, key=lambda c: c.delay_s)
        if later.shape_index == 1:
            return 1.0
    return 0.0


def _cell_trial(d2_m: float, register: int) -> ClassifyBatchTrial:
    """The batched trial function for one Table I cell.

    The bank and detector configuration mirror the session's own
    classifier (``max_responses`` raised to the responder count), so the
    external classification step — serial or batched — equals what
    :meth:`~ConcurrentRangingSession.run_round` would have computed.
    """
    return ClassifyBatchTrial(
        partial(_prepare, d2_m=d2_m, register=register),
        _finish,
        bank=template_bank(_bank_registers(register)),
        sampling_period_s=CIR_SAMPLING_PERIOD_S,
        config=SearchAndSubtractConfig(max_responses=2),
        cir_length=CIR_LENGTH_PRF64,
    )


def _identification_rate(
    d2_m: float,
    register: int,
    trials: int,
    seed: int,
    workers: int = 1,
    batch_size=1,
    metrics: MetricsRegistry | None = None,
    checkpoint=None,
) -> float:
    """Fraction of rounds where responder 2's shape decoded correctly."""
    report = run_trials(
        _cell_trial(d2_m, register),
        trials,
        seed=seed,
        workers=workers,
        metrics=metrics,
        batch_size=batch_size,
        checkpoint_dir=checkpoint,
        checkpoint_label=f"table1-0x{register:02X}-d{d2_m:g}",
    )
    return float(np.mean(report.values))


@standard_run("trials", "seed", "workers", "metrics")
def run(
    *,
    trials: int = 200,
    seed: int = 17,
    workers: int = 1,
    batch_size=1,
    checkpoint=None,
    metrics: MetricsRegistry | None = None,
) -> ExperimentResult:
    """Reproduce Table I (use ``trials=1000`` for the paper's count).

    ``workers`` parallelises the per-cell trial loops and ``batch_size``
    groups rounds per batched-classifier call (an integer, or ``"auto"``
    to size batches from the workload shape); for a fixed ``seed`` the
    reproduced numbers are identical for any worker count and batch
    size.  ``checkpoint`` persists per-cell trial checkpoints for
    resumable runs.
    """
    result = ExperimentResult(
        experiment_id="Table I",
        description="percentage of pulse shapes identified correctly",
    )
    table = Table(
        ["d2 [m]"] + [f"{d:.0f}" for d in D2_VALUES_M],
        title=f"Table I reproduction ({trials} rounds per cell)",
    )
    for shape_name, register in SHAPE_REGISTERS.items():
        rates = []
        for i, d2 in enumerate(D2_VALUES_M):
            rate = _identification_rate(
                d2,
                register,
                trials,
                seed + i + 100 * register,
                workers=workers,
                batch_size=batch_size,
                metrics=metrics,
                checkpoint=checkpoint,
            )
            rates.append(rate)
            result.compare(
                f"{shape_name}_d2_{d2:.0f}m_pct",
                rate * 100.0,
                paper=PAPER_TABLE1[shape_name][int(d2)],
                unit="%",
            )
        table.add_row(
            [f"{shape_name} (0x{register:02X}) [%]"]
            + [f"{rate * 100:.1f}" for rate in rates]
        )
    result.add_table(table)
    result.note("paper: >= 99.2 % in every cell")
    return result
