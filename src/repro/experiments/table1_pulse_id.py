"""EXP-T1 — Table I: pulse-shape identification accuracy.

The paper's setup: responder 1 fixed at d1 = 3 m with the default shape
s1; responder 2 at d2 in {6, 7, 8, 9, 10} m using either s2 (0xC8) or
s3 (0xE6); 1000 concurrent ranging rounds per cell.  Reported: the
percentage of rounds in which responder 2's pulse shape was identified
correctly (paper: >= 99.2 % everywhere).

Runs on the :mod:`repro.runtime` trial executor: each round is one
independently seeded trial, so ``workers=4`` parallelises a cell with
results identical to a serial run, and template banks come from the
process-local runtime cache.
"""

from __future__ import annotations

from functools import partial

import numpy as np

from repro.analysis.tables import Table
from repro.channel.stochastic import IndoorEnvironment
from repro.constants import PAPER_TABLE1
from repro.core.rpm import SlotPlan
from repro.core.scheme import CombinedScheme
from repro.experiments.common import ExperimentResult
from repro.netsim.medium import Medium
from repro.netsim.node import Node
from repro.protocol.concurrent import ConcurrentRangingSession
from repro.runtime import MetricsRegistry, run_trials, template_bank

D1_M = 3.0
D2_VALUES_M = (6.0, 7.0, 8.0, 9.0, 10.0)

#: Register of the second responder per table row (paper Fig. 5 names).
SHAPE_REGISTERS = {"s2": 0xC8, "s3": 0xE6}


def _trial(
    rng: np.random.Generator,
    index: int,
    *,
    d2_m: float,
    register: int,
) -> float:
    """One concurrent ranging round; 1.0 when responder 2's shape decodes.

    The initiator's bank always holds the three paper templates
    (N_PS = 3 as in Sect. V); the bank is ordered so that responder 2's
    session ID (1) naturally maps onto the row's register.
    """
    medium = Medium(environment=IndoorEnvironment.hallway(), rng=rng)
    initiator = Node.at(0, 0.0, 0.0, rng=rng)
    responder1 = Node.at(1, D1_M, 0.0, rng=rng)
    responder2 = Node.at(2, d2_m, 0.0, rng=rng)
    medium.add_nodes([initiator, responder1, responder2])

    other = next(r for r in SHAPE_REGISTERS.values() if r != register)
    bank = template_bank((0x93, register, other))
    scheme = CombinedScheme(SlotPlan.for_range(20.0, n_slots=1), bank)
    session = ConcurrentRangingSession(
        medium=medium,
        initiator=initiator,
        responders=[responder1, responder2],
        scheme=scheme,
        rng=rng,
    )
    outcome = session.run_round()
    # d2 >= 2 * d1, so responder 2 is always the later response; its
    # decoded shape must be bank index 1 (the row's register).
    if len(outcome.classified) >= 2:
        later = max(outcome.classified, key=lambda c: c.delay_s)
        if later.shape_index == 1:
            return 1.0
    return 0.0


def _identification_rate(
    d2_m: float,
    register: int,
    trials: int,
    seed: int,
    workers: int = 1,
    metrics: MetricsRegistry | None = None,
) -> float:
    """Fraction of rounds where responder 2's shape decoded correctly."""
    report = run_trials(
        partial(_trial, d2_m=d2_m, register=register),
        trials,
        seed=seed,
        workers=workers,
        metrics=metrics,
    )
    return float(np.mean(report.values))


def run(
    trials: int = 200,
    seed: int = 17,
    workers: int = 1,
    metrics: MetricsRegistry | None = None,
) -> ExperimentResult:
    """Reproduce Table I (use ``trials=1000`` for the paper's count).

    ``workers`` parallelises the per-cell trial loops; for a fixed
    ``seed`` the reproduced numbers are identical for any worker count.
    """
    result = ExperimentResult(
        experiment_id="Table I",
        description="percentage of pulse shapes identified correctly",
    )
    table = Table(
        ["d2 [m]"] + [f"{d:.0f}" for d in D2_VALUES_M],
        title=f"Table I reproduction ({trials} rounds per cell)",
    )
    for shape_name, register in SHAPE_REGISTERS.items():
        rates = []
        for i, d2 in enumerate(D2_VALUES_M):
            rate = _identification_rate(
                d2,
                register,
                trials,
                seed + i + 100 * register,
                workers=workers,
                metrics=metrics,
            )
            rates.append(rate)
            result.compare(
                f"{shape_name}_d2_{d2:.0f}m_pct",
                rate * 100.0,
                paper=PAPER_TABLE1[shape_name][int(d2)],
                unit="%",
            )
        table.add_row(
            [f"{shape_name} (0x{register:02X}) [%]"]
            + [f"{rate * 100:.1f}" for rate in rates]
        )
    result.add_table(table)
    result.note("paper: >= 99.2 % in every cell")
    return result
