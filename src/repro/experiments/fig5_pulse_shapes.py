"""EXP-F5 — Fig. 5: pulse shapes for different TC_PGDELAY values.

Reproduces the paper's template campaign: the four register values shown
in Fig. 5 (0x93 default, 0xC8, 0xE6, 0xF0) yield monotonically wider
pulses, all scaled to unit energy, and the register space supports 108
distinct shapes.

The per-register synthesis runs on the :mod:`repro.runtime` trial
executor (one trial per register), so ``run()`` carries the standard
``run(trials, seed, workers, batch_size, checkpoint)`` surface:
``--workers`` parallelises the shape renders and ``--checkpoint``
persists them, with results identical at any worker count because the
synthesis is deterministic.
"""

from __future__ import annotations

from functools import partial
from typing import Sequence

import numpy as np

from repro.analysis.tables import Table
from repro.constants import NUM_PULSE_SHAPES
from repro.experiments.common import ExperimentResult, standard_run
from repro.runtime import MetricsRegistry, run_trials
from repro.signal.pulses import dw1000_pulse, pulse_width_factor
from repro.signal.spectrum import estimate_bandwidth_10db, occupies_mask
from repro.signal.templates import PAPER_REGISTERS

#: Fine sampling for smooth width estimates.
SAMPLING_PERIOD_S = 0.1252e-9

#: Regulatory mask: the default pulse's occupied bandwidth defines it.
MASK_BANDWIDTH_HZ = 1.1e9


def _shape_trial(
    rng: np.random.Generator, index: int, *, registers: Sequence[int]
) -> tuple:
    """Synthesise and score one register's Fig. 5 pulse shape.

    Pulse synthesis is deterministic, so the trial seeding contract goes
    unused — results are identical at any worker count or trial order.
    """
    register = int(registers[index])
    pulse = dw1000_pulse(register, sampling_period_s=SAMPLING_PERIOD_S)
    return (
        register,
        pulse_width_factor(register),
        pulse.width_3db_s,
        estimate_bandwidth_10db(pulse),
        pulse.energy(),
        occupies_mask(pulse, MASK_BANDWIDTH_HZ),
    )


@standard_run()
def run(
    *,
    trials: int | None = None,
    seed: int = 0,
    workers: int = 1,
    batch_size=1,
    checkpoint=None,
    metrics: MetricsRegistry | None = None,
) -> ExperimentResult:
    """Synthesise the four paper shapes and check their properties.

    ``trials`` and ``batch_size`` are accepted for the standard run
    signature and ignored: the experiment always renders exactly the
    four Fig. 5 registers, one (deterministic) trial each.
    """
    del trials, batch_size  # standard-signature parameters; unused
    result = ExperimentResult(
        experiment_id="Fig. 5",
        description="pulse shape vs TC_PGDELAY register",
    )
    table = Table(
        [
            "shape",
            "register",
            "width factor",
            "-3 dB width [ns]",
            "-10 dB bandwidth [MHz]",
            "unit energy",
            "fits mask",
        ],
        title="Fig. 5 reproduction",
    )

    report = run_trials(
        partial(_shape_trial, registers=PAPER_REGISTERS),
        len(PAPER_REGISTERS),
        seed=seed,
        workers=workers,
        metrics=metrics,
        checkpoint_dir=checkpoint,
        checkpoint_label="fig5-pulse-shapes",
    )
    widths = []
    for i, row in enumerate(report.values):
        register, width_factor, width_3db_s, bandwidth_hz, energy, fits = row
        widths.append(width_3db_s)
        table.add_row(
            [
                f"s{i + 1}",
                f"0x{register:02X}",
                width_factor,
                width_3db_s * 1e9,
                bandwidth_hz / 1e6,
                f"{energy:.6f}",
                fits,
            ]
        )
    result.add_table(table)

    monotone = all(widths[i] < widths[i + 1] for i in range(len(widths) - 1))
    result.compare("width_monotone_in_register", float(monotone), paper=1.0)
    result.compare(
        "supported_shapes", float(NUM_PULSE_SHAPES), paper=108.0, unit="registers"
    )
    result.note(
        "paper: making the pulse wider does not violate the spectral "
        "mask; only narrower pulses would"
    )
    return result
