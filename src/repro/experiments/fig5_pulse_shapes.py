"""EXP-F5 — Fig. 5: pulse shapes for different TC_PGDELAY values.

Reproduces the paper's template campaign: the four register values shown
in Fig. 5 (0x93 default, 0xC8, 0xE6, 0xF0) yield monotonically wider
pulses, all scaled to unit energy, and the register space supports 108
distinct shapes.
"""

from __future__ import annotations

from repro.analysis.tables import Table
from repro.constants import NUM_PULSE_SHAPES
from repro.experiments.common import ExperimentResult
from repro.signal.pulses import dw1000_pulse, pulse_width_factor
from repro.signal.spectrum import estimate_bandwidth_10db, occupies_mask
from repro.signal.templates import PAPER_REGISTERS

#: Fine sampling for smooth width estimates.
SAMPLING_PERIOD_S = 0.1252e-9

#: Regulatory mask: the default pulse's occupied bandwidth defines it.
MASK_BANDWIDTH_HZ = 1.1e9


def run() -> ExperimentResult:
    """Synthesise the four paper shapes and check their properties."""
    result = ExperimentResult(
        experiment_id="Fig. 5",
        description="pulse shape vs TC_PGDELAY register",
    )
    table = Table(
        [
            "shape",
            "register",
            "width factor",
            "-3 dB width [ns]",
            "-10 dB bandwidth [MHz]",
            "unit energy",
            "fits mask",
        ],
        title="Fig. 5 reproduction",
    )
    widths = []
    for i, register in enumerate(PAPER_REGISTERS):
        pulse = dw1000_pulse(register, sampling_period_s=SAMPLING_PERIOD_S)
        widths.append(pulse.width_3db_s)
        table.add_row(
            [
                f"s{i + 1}",
                f"0x{register:02X}",
                pulse_width_factor(register),
                pulse.width_3db_s * 1e9,
                estimate_bandwidth_10db(pulse) / 1e6,
                f"{pulse.energy():.6f}",
                occupies_mask(pulse, MASK_BANDWIDTH_HZ),
            ]
        )
    result.add_table(table)

    monotone = all(widths[i] < widths[i + 1] for i in range(len(widths) - 1))
    result.compare("width_monotone_in_register", float(monotone), paper=1.0)
    result.compare(
        "supported_shapes", float(NUM_PULSE_SHAPES), paper=108.0, unit="registers"
    )
    result.note(
        "paper: making the pulse wider does not violate the spectral "
        "mask; only narrower pulses would"
    )
    return result
