"""EXP-SWARM — Sect. VIII identification measured at city-swarm scale.

Sect. VIII of the paper *derives* the capacity of the combined scheme —
``N_max = N_RPM x N_PS`` = 16 slots x 96 shapes = 1536 >= 1500 — but
never runs it: the testbed stops at 12 responders.  This experiment is
the first measured point on that curve.  A :class:`SwarmScenario`
(:mod:`repro.netsim.swarm`) puts N mobile responders and several
concurrent initiators in a shared arena; each epoch every active
initiator polls a round-robin window of its in-range members, the
superposed CIR is decoded through the full production path
(search-and-subtract -> pulse-shape classification -> RPM slot decode
-> TWR anchor), and identified responders become multilateration
anchors for the initiator's own fix.

The sweep reports, per responder count:

* **identification rate** — decoded (slot, shape) pairs matching the
  polled member's scheme ID, over all polled members;
* **ambiguous fraction** — correct decodes that alias >1 in-range
  member once the population exceeds scheme capacity;
* **ranging / fix error** — median absolute error of identified
  distances and of the multilateration fixes built from them;
* **rounds/s** — wall-clock throughput of the sharded event loop
  (reported in the table and the metrics registry only: timing is not
  a comparable metric).

Each count is one :mod:`repro.runtime` trial seeded ``(seed, count)``
— the serial sweep's exact derivation — so results are byte-identical
at any worker count, and ``--shards`` changes the partitioning of the
event loop without changing a single byte of the result (the swarm
test suite pins this).

Run from the shell::

    python -m repro.experiments.swarm_scale --quick --check
    python -m repro.experiments.swarm_scale --epochs 10 --workers 4
"""

from __future__ import annotations

import argparse
import sys
from functools import partial
from typing import Optional, Sequence, Tuple

from repro.analysis.tables import Table
from repro.experiments.common import ExperimentResult, standard_run
from repro.netsim.swarm import SwarmConfig, SwarmScenario
from repro.runtime import MetricsRegistry, run_trials

#: The responder-count sweep: the paper's testbed scale (12), three
#: intermediate city-block populations, the Sect. VIII claim (1500),
#: and one point past scheme capacity (2000 > 1536) where aliasing
#: must appear.
RESPONDER_COUNTS = (12, 100, 500, 1000, 1500, 2000)

#: The smoke sweep used by ``--quick``, the golden-metrics suite, and
#: the CI swarm job.
QUICK_COUNTS = (12, 100, 500)

#: Paper Sect. VIII scheme: 16 RPM slots x 96 pulse shapes.
N_SLOTS = 16
N_SHAPES = 96


def swarm_config(count: int, *, serial_classifier: bool = False) -> SwarmConfig:
    """The sweep's scenario configuration for one responder count.

    Everything except the population is pinned so the sweep varies one
    axis; the arena grows with ``sqrt(count)`` (constant density), which
    is what makes this a *scale* sweep rather than a congestion sweep.
    """
    return SwarmConfig(
        n_responders=count,
        n_slots=N_SLOTS,
        n_shapes=N_SHAPES,
        serial_classifier=serial_classifier,
    )


def _swarm_cell(
    rng,
    index: int,
    *,
    counts: Sequence[int],
    epochs: int,
    seed: int,
    shards: int,
) -> Tuple:
    """Run one responder count's swarm and return its scalar summary.

    The scenario derives its own generator stream from ``(seed, count)``
    (the serial sweep's exact seeding), so the trial executor's ``rng``
    goes unused — results are identical at any worker count or trial
    order.  ``elapsed_s`` is the only non-deterministic element of the
    tuple; everything ``run()`` pins as a comparison metric comes from
    the deterministic prefix.
    """
    del rng  # scenario seeds itself from (seed, count); see docstring
    count = int(counts[index])
    scenario = SwarmScenario(
        swarm_config(count), seed=(seed, count), shards=shards
    )
    result = scenario.run(epochs)
    return (
        count,
        result.rounds,
        result.polled,
        result.identified,
        result.ambiguous,
        float(result.median_abs_error_m),
        float(result.median_fix_error_m),
        float(result.median_track_error_m),
        float(result.coverage),
        float(result.elapsed_s),
    )


@standard_run("trials", "seed")
def run(
    *,
    trials: int = 8,
    seed: int = 71,
    workers: int = 1,
    batch_size=1,
    checkpoint=None,
    metrics: Optional[MetricsRegistry] = None,
    counts: Sequence[int] = RESPONDER_COUNTS,
    shards: int = 1,
) -> ExperimentResult:
    """Sweep responder counts and report the Sect. VIII curve.

    ``trials`` is the number of swarm epochs simulated per responder
    count; ``batch_size`` is accepted for the standard run signature
    and ignored (the swarm batches CIR classification internally, see
    :attr:`SwarmConfig.batch_size`).  ``shards`` partitions each
    scenario's event loop spatially; any value yields byte-identical
    results.
    """
    del batch_size  # standard-signature parameter; swarm batches itself
    metrics = metrics if metrics is not None else MetricsRegistry()
    counts = tuple(int(c) for c in counts)
    capacity = N_SLOTS * N_SHAPES
    result = ExperimentResult(
        experiment_id="Swarm scale (ours)",
        description="Sect. VIII identification measured from 12 to "
        f"{max(counts)} responders",
    )
    table = Table(
        [
            "responders",
            "scheme load",
            "rounds",
            "polled",
            "ID rate",
            "ambiguous",
            "med |err| [m]",
            "med fix [m]",
            "coverage",
            "rounds/s",
        ],
        title=f"{N_SLOTS} slots x {N_SHAPES} shapes (capacity {capacity}), "
        f"{trials} epochs per point",
    )
    report = run_trials(
        partial(
            _swarm_cell,
            counts=counts,
            epochs=trials,
            seed=seed,
            shards=shards,
        ),
        len(counts),
        seed=seed,
        workers=workers,
        metrics=metrics,
        checkpoint_dir=checkpoint,
        checkpoint_label="swarm-scale",
    )

    stats = {}
    for row in report.values:
        (
            count,
            rounds,
            polled,
            identified,
            ambiguous,
            med_err,
            med_fix,
            med_track,
            coverage,
            elapsed,
        ) = row
        id_rate = identified / polled if polled else float("nan")
        amb_frac = ambiguous / polled if polled else float("nan")
        rounds_per_s = rounds / elapsed if elapsed > 0 else float("nan")
        stats[count] = {
            "id_rate": id_rate,
            "ambiguous_fraction": amb_frac,
            "median_abs_error_m": med_err,
            "median_fix_error_m": med_fix,
            "median_track_error_m": med_track,
            "coverage": coverage,
        }
        metrics.counter("swarm.rounds").inc(float(rounds))
        metrics.counter("swarm.polled").inc(float(polled))
        metrics.counter("swarm.identified").inc(float(identified))
        metrics.gauge(f"swarm.rounds_per_s.{count}").set(rounds_per_s)
        table.add_row(
            [
                count,
                f"{count}/{capacity}",
                rounds,
                polled,
                id_rate,
                amb_frac,
                med_err,
                med_fix,
                coverage,
                rounds_per_s,
            ]
        )
    result.add_table(table)

    for count in counts:
        cell = stats[count]
        result.compare(f"id_rate_{count}", float(cell["id_rate"]))
        result.compare(
            f"median_abs_error_m_{count}",
            float(cell["median_abs_error_m"]),
            unit="m",
        )
    top = max(counts)
    result.compare("coverage_top", float(stats[top]["coverage"]))
    result.compare(
        "ambiguous_fraction_top", float(stats[top]["ambiguous_fraction"])
    )
    result.compare("scheme_capacity", float(capacity), paper=1500.0)
    result.note(
        "the paper's Sect. VIII claim is a *capacity* (16 x 96 = 1536 "
        ">= 1500 codes); this sweep measures what the decode chain "
        "actually identifies at that population — shape classification "
        "over a 96-template bank is the binding constraint (see the "
        "bank-size ablation), not slot decoding"
    )
    result.note(
        "rounds/s is wall-clock throughput of the sharded swarm loop "
        "and lives in the table/metrics only; every pinned metric above "
        "is byte-deterministic in (seed, counts, epochs) and invariant "
        "in --workers and --shards"
    )
    return result


def check(result: ExperimentResult) -> list:
    """Acceptance gate for the smoke sweep (``--quick --check``).

    Returns the violated criteria (empty when the run passes): the
    scheme must actually cover the Sect. VIII population, the testbed-
    scale point must identify a solid majority, identification must
    still function at 500 responders, and identified distances must
    stay centimetre-grade at every swept count.
    """
    failures = []
    capacity = result.metric("scheme_capacity").measured
    if not capacity >= 1500:
        failures.append(f"scheme capacity {capacity:.0f} < 1500")
    id_12 = result.metric("id_rate_12").measured
    if not id_12 >= 0.5:
        failures.append(f"id rate at 12 responders {id_12:.3f} < 0.5")
    id_500 = result.metric("id_rate_500").measured
    if not id_500 >= 0.2:
        failures.append(f"id rate at 500 responders {id_500:.3f} < 0.2")
    for comparison in result.comparisons:
        if comparison.name.startswith("median_abs_error_m_"):
            if not comparison.measured <= 0.5:
                failures.append(
                    f"{comparison.name} = {comparison.measured:.3f} m > 0.5 m"
                )
    return failures


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Swarm scale: Sect. VIII identification measured "
        "from 12 to 2000 responders."
    )
    parser.add_argument(
        "--trials", "--epochs", dest="trials", type=int, default=8,
        help="swarm epochs per responder count",
    )
    parser.add_argument("--seed", type=int, default=71)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument(
        "--shards", type=int, default=1,
        help="spatial shards for the swarm event loop (any value is "
        "byte-identical)",
    )
    parser.add_argument(
        "--counts", type=int, nargs="+", default=None,
        help="override the responder-count sweep",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help=f"smoke sweep {QUICK_COUNTS} with few epochs",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero unless the acceptance gate passes",
    )
    parser.add_argument(
        "--checkpoint", default=None, metavar="DIR",
        help="persist per-count checkpoints to DIR as the sweep runs",
    )
    args = parser.parse_args(argv)

    counts = tuple(args.counts) if args.counts else RESPONDER_COUNTS
    trials = args.trials
    if args.quick:
        counts = QUICK_COUNTS if not args.counts else counts
        trials = min(trials, 3)

    metrics = MetricsRegistry()
    result = run(
        trials=trials,
        seed=args.seed,
        workers=args.workers,
        metrics=metrics,
        counts=counts,
        shards=args.shards,
        checkpoint=args.checkpoint,
    )
    result.print()
    print()
    print(metrics.render(title="runtime metrics — swarm scale"))
    if args.check:
        failures = check(result)
        if failures:
            for failure in failures:
                print(f"CHECK FAILED: {failure}", file=sys.stderr)
            return 1
        print(
            "CHECK PASSED: capacity >= 1500, id rate >= 0.5 at 12 / "
            ">= 0.2 at 500, median |err| <= 0.5 m at every count"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
